//! Chain-composition invariants (ISSUE 3): sequential chains add, pipelining
//! with full resources never loses, partitioned pipelining stays bracketed,
//! and structurally impossible chains return typed errors.

use omega_gnn::core::models::{to_chain, uniform_layer_dataflows, GnnModel};
use omega_gnn::core::multiphase::{
    evaluate_chain, Chain, ChainError, ChainNode, Link, Stage,
};
use omega_gnn::prelude::*;
use omega_accel::engine::GemmDims;
use omega_dataflow::{Dim, IntraTiling, LoopOrder, Phase};

fn cmb_tiling(tiles: [usize; 3]) -> IntraTiling {
    IntraTiling::new(
        Phase::Combination,
        LoopOrder::new(Phase::Combination, [Dim::V, Dim::G, Dim::F]).unwrap(),
        tiles,
    )
}

fn agg_tiling(tiles: [usize; 3]) -> IntraTiling {
    IntraTiling::new(
        Phase::Aggregation,
        LoopOrder::new(Phase::Aggregation, [Dim::V, Dim::F, Dim::N]).unwrap(),
        tiles,
    )
}

/// A 4-stage chain mixing SpMM and GEMM stages of different weights.
fn stages() -> Vec<Stage> {
    vec![
        Stage::spmm("s0", vec![6; 96], 32, agg_tiling([8, 4, 1])),
        Stage::gemm("s1", GemmDims { v: 96, f: 32, g: 24 }, cmb_tiling([8, 8, 1])),
        Stage::gemm("s2", GemmDims { v: 96, f: 24, g: 48 }, cmb_tiling([16, 4, 1])),
        Stage::gemm("s3", GemmDims { v: 96, f: 48, g: 8 }, cmb_tiling([4, 4, 2])),
    ]
}

fn all_sequential() -> Chain {
    let nodes: Vec<ChainNode> = stages().into_iter().map(ChainNode::Single).collect();
    let links = vec![Link::Sequential; 3];
    Chain { nodes, links }
}

#[test]
fn all_sequential_chain_is_the_sum_of_its_stages() {
    let hw = AccelConfig::paper_default();
    let r = evaluate_chain(&all_sequential(), &hw).unwrap();
    assert_eq!(r.stages.len(), 4);
    let sum: u64 = r.stages.iter().map(|(_, s)| s.cycles).sum();
    assert_eq!(r.total_cycles, sum);
}

#[test]
fn pipelining_any_sequential_link_never_increases_total_cycles() {
    // Converting one Sequential link to Pipelined with `split: None` keeps
    // both stages' full resources — the schedule can only improve (or tie).
    let hw = AccelConfig::paper_default();
    let base = evaluate_chain(&all_sequential(), &hw).unwrap();
    for link_idx in 0..3 {
        for pel in [64u64, 96 * 8, 96 * 24] {
            let mut chain = all_sequential();
            chain.links[link_idx] = Link::pipelined(pel);
            let r = evaluate_chain(&chain, &hw).unwrap();
            assert!(
                r.total_cycles <= base.total_cycles,
                "link {link_idx} pel {pel}: {} > {}",
                r.total_cycles,
                base.total_cycles
            );
            // And the pipelined pair can never finish before its slower stage.
            let slowest = r.stages.iter().map(|(_, s)| s.cycles).max().unwrap();
            assert!(r.total_cycles >= slowest);
        }
    }
}

#[test]
fn partitioned_pipelining_stays_within_the_sequential_bracket_of_its_own_stages() {
    // A partitioned link throttles both stages, so it may well lose to the
    // sequential chain — but it must stay within [max, sum] of the stage
    // cycles it actually produced.
    let hw = AccelConfig::paper_default();
    let mut chain = all_sequential();
    chain.links[1] = Link::pipelined_split(96 * 8, 256, 256);
    let r = evaluate_chain(&chain, &hw).unwrap();
    let s: Vec<u64> = r.stages.iter().map(|(_, st)| st.cycles).collect();
    // stages 0 and 3 are sequential; 1→2 pipeline contributes ≤ s1+s2.
    assert!(r.total_cycles <= s.iter().sum::<u64>());
    assert!(r.total_cycles >= s[0] + s[3] + s[1].max(s[2]));
}

#[test]
fn model_chain_sequential_to_pipelined_inter_layer_invariant() {
    // The same invariant through the model lowering: pipelining the layer
    // boundary of a GCN-2 with full resources kept never increases the total.
    let hw = AccelConfig::paper_default();
    let dataset = DatasetSpec::mutag().generate(4);
    let wl = GnnWorkload::gcn_layer(&dataset, 16);
    let model = GnnModel::gcn_2layer(7);
    let preset = Preset::by_name("Seq1").unwrap();
    let dfs = uniform_layer_dataflows(&model, &wl, &preset, &hw).unwrap();
    let seq = to_chain(&model, &wl, &dfs, &[Link::Sequential], &hw).unwrap();
    let r_seq = evaluate_chain(&seq, &hw).unwrap();
    let (elems, _) = model.layer_output_shape(&wl, 0);
    for pel in [elems / 2, elems / 8, elems / 64] {
        let pip = to_chain(&model, &wl, &dfs, &[Link::pipelined(pel.max(1))], &hw).unwrap();
        let r_pip = evaluate_chain(&pip, &hw).unwrap();
        assert!(
            r_pip.total_cycles <= r_seq.total_cycles,
            "pel {pel}: {} > {}",
            r_pip.total_cycles,
            r_seq.total_cycles
        );
    }
}

#[test]
fn structural_errors_are_typed_not_panics() {
    let hw = AccelConfig::paper_default();

    // Link count mismatch.
    let mut chain = all_sequential();
    chain.links.pop();
    assert!(matches!(
        evaluate_chain(&chain, &hw),
        Err(ChainError::LinkCountMismatch { nodes: 4, links: 2 })
    ));

    // Pipelined link into a Parallel node.
    let chain = Chain {
        nodes: vec![
            ChainNode::Single(Stage::gemm("a", GemmDims { v: 8, f: 8, g: 8 }, cmb_tiling([2, 2, 1]))),
            ChainNode::Parallel(vec![Stage::gemm(
                "b",
                GemmDims { v: 8, f: 8, g: 8 },
                cmb_tiling([2, 2, 1]),
            )]),
        ],
        links: vec![Link::pipelined(8)],
    };
    assert!(matches!(
        evaluate_chain(&chain, &hw),
        Err(ChainError::PipelinedParallelNode { node: 1 })
    ));

    // A middle stage pipelined on both sides.
    let mut chain = all_sequential();
    chain.links[0] = Link::pipelined(64);
    chain.links[1] = Link::pipelined(64);
    assert!(matches!(
        evaluate_chain(&chain, &hw),
        Err(ChainError::PipelinedBothSides { node: 1 })
    ));

    // Partition allocations that cannot hold the stage tilings.
    let mut chain = all_sequential();
    chain.links[0] = Link::pipelined_split(64, 8, 504); // s0 footprint is 32
    assert!(matches!(
        evaluate_chain(&chain, &hw),
        Err(ChainError::PartitionTooSmall { node: 0, allocated: 8, footprint: 32 })
    ));
    let mut chain = all_sequential();
    chain.links[0] = Link::pipelined_split(64, 400, 200);
    assert!(matches!(
        evaluate_chain(&chain, &hw),
        Err(ChainError::PartitionOversubscribed { allocated: 600, available: 512 })
    ));

    // The valid paths still evaluate.
    assert!(evaluate_chain(&all_sequential(), &hw).is_ok());
}
