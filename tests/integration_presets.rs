//! Cross-crate integration: every Table V preset evaluates on every Table IV
//! dataset, and every report obeys the Table III closed forms.

use omega_gnn::core::model_check::verify_report;
use omega_gnn::prelude::*;

fn suite() -> Vec<(String, GnnWorkload)> {
    omega_gnn::graph::suite(0x0E5A_2022)
        .into_iter()
        .map(|d| (d.name().to_string(), GnnWorkload::gcn_layer(&d, 16)))
        .collect()
}

fn concretize(preset: &Preset, wl: &GnnWorkload, hw: &AccelConfig) -> GnnDataflow {
    let ctx = wl.tile_context(preset.pattern.phase_order);
    let (a, c) = if preset.pattern.inter == InterPhase::ParallelPipeline {
        (hw.num_pes / 2, hw.num_pes / 2)
    } else {
        (hw.num_pes, hw.num_pes)
    };
    preset.concretize(&ctx, a, c)
}

#[test]
fn every_preset_on_every_dataset() {
    let hw = AccelConfig::paper_default();
    for (name, wl) in suite() {
        for preset in Preset::all() {
            let df = concretize(&preset, &wl, &hw);
            let report = evaluate(&wl, &df, &hw)
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", preset.name));
            // Work invariants: the dataflow must schedule exactly the layer's MACs.
            assert_eq!(report.agg.macs, wl.nnz * wl.f as u64, "{name}/{} agg", preset.name);
            assert_eq!(
                report.cmb.macs,
                (wl.v as u64) * (wl.f as u64) * (wl.g as u64),
                "{name}/{} cmb",
                preset.name
            );
            assert!(report.total_cycles > 0);
            assert!(report.energy.total_pj() > 0.0);
            // Table III consistency.
            verify_report(&report, &wl).unwrap_or_else(|e| panic!("{name}/{}: {e}", preset.name));
        }
    }
}

#[test]
fn compute_bound_is_respected() {
    // No dataflow can beat total MACs / PEs.
    let hw = AccelConfig::paper_default();
    for (name, wl) in suite() {
        let floor = wl.total_macs(PhaseOrder::AC) / hw.num_pes as u64;
        for preset in Preset::all() {
            let df = concretize(&preset, &wl, &hw);
            let report = evaluate(&wl, &df, &hw).expect("legal");
            // PP runs the phases on half the array each, so its floor is the
            // max of the two phases' own floors — still ≤ the sum-based bound.
            assert!(
                report.total_cycles >= floor,
                "{name}/{}: {} < floor {floor}",
                preset.name,
                report.total_cycles
            );
        }
    }
}

#[test]
fn sp_presets_keep_intermediate_out_of_gb() {
    let hw = AccelConfig::paper_default();
    for (name, wl) in suite() {
        for preset_name in ["SP1", "SP2", "SPhighV"] {
            let preset = Preset::by_name(preset_name).expect("preset");
            let df = concretize(&preset, &wl, &hw);
            let report = evaluate(&wl, &df, &hw).expect("legal");
            assert!(report.sp_optimized, "{name}/{preset_name}");
            assert_eq!(
                report.counters.gb_of(OperandClass::Intermediate),
                0,
                "{name}/{preset_name}"
            );
            assert_eq!(report.intermediate_buffer_elems, 0, "{name}/{preset_name}");
        }
    }
}

#[test]
fn seq_buffers_the_whole_intermediate() {
    let hw = AccelConfig::paper_default();
    for (name, wl) in suite() {
        let preset = Preset::by_name("Seq1").expect("preset");
        let df = concretize(&preset, &wl, &hw);
        let report = evaluate(&wl, &df, &hw).expect("legal");
        assert_eq!(
            report.intermediate_buffer_elems,
            (wl.v * wl.f) as u64,
            "{name}: Seq buffering is V x F (Table III)"
        );
        // And each intermediate element crosses the GB at least twice
        // (written by Aggregation, read by Combination).
        assert!(report.counters.gb_of(OperandClass::Intermediate) >= 2 * (wl.v * wl.f) as u64);
    }
}

#[test]
fn pp_splits_the_array_and_buffers_two_pel() {
    let hw = AccelConfig::paper_default();
    for (name, wl) in suite() {
        for preset_name in ["PP1", "PP2", "PP3", "PP4"] {
            let preset = Preset::by_name(preset_name).expect("preset");
            let df = concretize(&preset, &wl, &hw);
            assert!(df.agg.pe_footprint() <= 256, "{name}/{preset_name}");
            assert!(df.cmb.pe_footprint() <= 256, "{name}/{preset_name}");
            let report = evaluate(&wl, &df, &hw).expect("legal");
            let pel = report.pel.expect("PP has Pel");
            assert_eq!(report.intermediate_buffer_elems, 2 * pel, "{name}/{preset_name}");
            // Pipeline bounds: between the slower phase and the phase sum.
            assert!(report.total_cycles >= report.agg.cycles.max(report.cmb.cycles));
            assert!(report.total_cycles <= report.agg.cycles + report.cmb.cycles);
        }
    }
}

#[test]
fn ca_phase_order_round_trip() {
    // CA evaluation works end to end through the public API.
    use omega_gnn::dataflow::{Dim, IntraTiling, LoopOrder, Phase};
    let hw = AccelConfig::paper_default();
    let d = DatasetSpec::mutag().generate(9);
    let wl = GnnWorkload::gcn_layer(&d, 16);
    let agg = IntraTiling::new(
        Phase::Aggregation,
        LoopOrder::new(Phase::Aggregation, [Dim::V, Dim::F, Dim::N]).unwrap(),
        [32, 16, 1],
    );
    let cmb = IntraTiling::new(
        Phase::Combination,
        LoopOrder::new(Phase::Combination, [Dim::V, Dim::G, Dim::F]).unwrap(),
        [32, 16, 1],
    );
    let df = GnnDataflow { inter: InterPhase::Sequential, phase_order: PhaseOrder::CA, agg, cmb };
    let report = evaluate(&wl, &df, &hw).expect("legal CA dataflow");
    assert_eq!(report.agg.macs, wl.nnz * wl.g as u64, "CA aggregation runs over G-wide rows");
    assert_eq!(report.intermediate_buffer_elems, (wl.v * wl.g) as u64);
}

#[test]
fn dataflow_strings_round_trip_through_parser() {
    let hw = AccelConfig::paper_default();
    let d = DatasetSpec::proteins().generate(3);
    let wl = GnnWorkload::gcn_layer(&d, 16);
    for preset in Preset::all() {
        let df = concretize(&preset, &wl, &hw);
        let pattern: GnnDataflowPattern = df.to_string().parse().expect("engine output parses");
        assert!(pattern.admits(&df), "{}", preset.name);
    }
}
