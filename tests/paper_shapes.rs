//! Paper-shape assertions: the qualitative results of Section V must hold in
//! this reproduction (EXPERIMENTS.md documents the quantitative comparison and
//! the known deviations).

use std::collections::HashMap;
use std::sync::OnceLock;

use omega_gnn::prelude::*;

/// All (dataset, preset) → report evaluations, computed once.
fn grid() -> &'static HashMap<(String, String), CostReport> {
    static GRID: OnceLock<HashMap<(String, String), CostReport>> = OnceLock::new();
    GRID.get_or_init(|| {
        let hw = AccelConfig::paper_default();
        let mut out = HashMap::new();
        for dataset in omega_gnn::graph::suite(0x0E5A_2022) {
            let wl = GnnWorkload::gcn_layer(&dataset, 16);
            for preset in Preset::all() {
                let ctx = wl.tile_context(preset.pattern.phase_order);
                let (a, c) = if preset.pattern.inter == InterPhase::ParallelPipeline {
                    (256, 256)
                } else {
                    (512, 512)
                };
                let df = preset.concretize(&ctx, a, c);
                let report = evaluate(&wl, &df, &hw).expect("legal preset");
                out.insert((dataset.name().to_string(), preset.name.to_string()), report);
            }
        }
        out
    })
}

fn cycles(dataset: &str, preset: &str) -> u64 {
    grid()[&(dataset.to_string(), preset.to_string())].total_cycles
}

fn normalized(dataset: &str, preset: &str) -> f64 {
    cycles(dataset, preset) as f64 / cycles(dataset, "Seq1") as f64
}

fn energy(dataset: &str, preset: &str) -> f64 {
    grid()[&(dataset.to_string(), preset.to_string())].energy.total_pj()
}

const HF: [&str; 3] = ["Reddit-bin", "Citeseer", "Cora"];
const LEF: [&str; 2] = ["Mutag", "Proteins"];
const ALL: [&str; 7] = ["Mutag", "Proteins", "Imdb-bin", "Collab", "Reddit-bin", "Citeseer", "Cora"];
const PRESETS: [&str; 9] = ["Seq1", "Seq2", "SP1", "SP2", "SPhighV", "PP1", "PP2", "PP3", "PP4"];

/// Section V-B1 / V-D: "extremely high T_V can lead to delays since the
/// performance is limited by a dense row ('evil row')" — SPhighV collapses on
/// the skewed HF datasets but stays moderate on the near-regular molecular sets
/// ("Mutag and Proteins have great performance despite extremely high T_V").
#[test]
fn evil_rows_break_sp_high_v_on_hf_only() {
    for d in HF {
        assert!(normalized(d, "SPhighV") >= 1.8, "{d}: {}", normalized(d, "SPhighV"));
    }
    for d in LEF {
        assert!(normalized(d, "SPhighV") <= 1.7, "{d}: {}", normalized(d, "SPhighV"));
    }
    // And pushing SP2's pattern to T_V = 512 never pays off: SPhighV is always
    // at least as slow as SP2 (the same pattern with a sane tile).
    for d in ALL {
        assert!(normalized(d, "SPhighV") >= normalized(d, "SP2") - 1e-9, "{d}");
    }
}

/// Section V-B1: the SP family leads on the large sparse workloads (the paper's
/// "SP2 performs well in most cases"; in our substrate SP1/SP2 split the crown,
/// see EXPERIMENTS.md).
#[test]
fn sp_family_leads_on_sparse_workloads() {
    for d in ["Collab", "Reddit-bin", "Citeseer", "Cora"] {
        let best_sp = normalized(d, "SP1").min(normalized(d, "SP2"));
        for p in PRESETS {
            if p.starts_with("SP") && p != "SPhighV" {
                continue;
            }
            assert!(
                best_sp <= normalized(d, p) + 1e-9,
                "{d}: best SP {best_sp} vs {p} {}",
                normalized(d, p)
            );
        }
    }
}

/// Section V-B1: "For the Collab dataset, PP performs worst due to poor load
/// balancing between Aggregation and Combination."
#[test]
fn pp_suffers_most_on_collab() {
    // At least one PP variant is > 2x on Collab...
    let worst_pp_collab = ["PP1", "PP2", "PP3", "PP4"]
        .iter()
        .map(|p| normalized("Collab", p))
        .fold(0.0, f64::max);
    assert!(worst_pp_collab >= 2.0, "worst PP on Collab = {worst_pp_collab}");
    // ...and PP is systematically worse on Collab than on the HF sets.
    for p in ["PP2", "PP4"] {
        for d in HF {
            assert!(
                normalized("Collab", p) > normalized(d, p),
                "{p}: Collab {} vs {d} {}",
                normalized("Collab", p),
                normalized(d, p)
            );
        }
    }
}

/// Section V-E: high pipelining granularity (PP3) beats low granularity (PP1)
/// on the HF workloads.
#[test]
fn high_granularity_pp_wins_on_hf() {
    for d in HF {
        assert!(
            normalized(d, "PP3") <= normalized(d, "PP1") + 1e-9,
            "{d}: PP3 {} vs PP1 {}",
            normalized(d, "PP3"),
            normalized(d, "PP1")
        );
    }
}

/// Section V-B1: spatial aggregation pays off on the densely-connected ego
/// networks (Imdb-bin) — Seq2 ≤ Seq1 and PP4 ≤ PP3 there — while on the very
/// sparse molecular sets the spatial-N tile buys nothing (optimal T_N is low).
#[test]
fn spatial_aggregation_helps_on_dense_graphs() {
    assert!(normalized("Imdb-bin", "Seq2") <= 1.0 + 1e-9);
    assert!(normalized("Imdb-bin", "PP4") <= normalized("Imdb-bin", "PP3") + 1e-9);
    for d in LEF {
        // Sparse: Seq2 within noise of Seq1, never a real win.
        let r = normalized(d, "Seq2");
        assert!((0.95..=1.1).contains(&r), "{d}: Seq2 {r}");
    }
}

/// Section V-E energy summary: "For HF workloads, PP3 and SP2 have the best
/// energies. ... For LEF workloads, SP1 [is among the best]" — and the SP
/// family is always within a whisker of the global minimum (it has zero
/// intermediate traffic), while SPhighV pays the partial-sum overhead.
#[test]
fn sp_family_has_lowest_energy() {
    for d in ALL {
        let global_min = PRESETS.iter().map(|p| energy(d, p)).fold(f64::INFINITY, f64::min);
        let best_sp = energy(d, "SP1").min(energy(d, "SP2"));
        assert!(best_sp <= 1.10 * global_min, "{d}: best SP {best_sp} vs min {global_min}");
        // SPhighV's psum overhead shows up against SP2 (same pattern family).
        assert!(energy(d, "SPhighV") > energy(d, "SP2"), "{d}");
    }
    // LEF: SP1 is the outright minimum.
    for d in LEF {
        let global_min = PRESETS.iter().map(|p| energy(d, p)).fold(f64::INFINITY, f64::min);
        assert!((energy(d, "SP1") - global_min).abs() < 1e-6, "{d}");
    }
    // HF: the minimum comes from the {SP2, PP3, PP4} group the paper names.
    for d in HF {
        let global_min = PRESETS.iter().map(|p| energy(d, p)).fold(f64::INFINITY, f64::min);
        let named = ["SP2", "PP3", "PP4"].iter().map(|p| energy(d, p)).fold(f64::INFINITY, f64::min);
        assert!((named - global_min).abs() < 1e-6, "{d}");
    }
}

/// Section V-B2: SPhighV spills partial sums (Psum GB traffic > 0) while
/// SP1/SP2 keep them in the register files.
#[test]
fn psum_spill_is_sp_high_v_specific() {
    for d in ALL {
        let g = grid();
        let high_v = &g[&(d.to_string(), "SPhighV".to_string())];
        assert!(high_v.counters.gb_of(OperandClass::Psum) > 0, "{d}: SPhighV psums");
        for p in ["SP1", "SP2"] {
            let r = &g[&(d.to_string(), p.to_string())];
            assert_eq!(r.counters.gb_of(OperandClass::Psum), 0, "{d}/{p}");
        }
    }
}

/// Fig. 13: on Collab the input-feature accesses dominate the GB traffic; on
/// Citeseer the low-`T_V` dataflows (SP1/PP1) are weight-dominated (weights are
/// re-streamed per vertex tile).
#[test]
fn gb_breakdown_shapes() {
    let g = grid();
    let collab_seq1 = &g[&("Collab".to_string(), "Seq1".to_string())];
    let inp = collab_seq1.counters.gb_of(OperandClass::Input);
    for c in OperandClass::ALL {
        assert!(inp >= collab_seq1.counters.gb_of(c), "Collab Seq1: Inp vs {c}");
    }
    let citeseer_sp1 = &g[&("Citeseer".to_string(), "SP1".to_string())];
    let wt = citeseer_sp1.counters.gb_of(OperandClass::Weight);
    for c in OperandClass::ALL {
        assert!(wt >= citeseer_sp1.counters.gb_of(c), "Citeseer SP1: Wt vs {c}");
    }
}

/// Fig. 12: PP's dedicated intermediate partition is cheaper per access than
/// the global buffer Seq stages the intermediate through.
#[test]
fn pp_intermediate_partition_discount() {
    let g = grid();
    for d in ALL {
        let seq = &g[&(d.to_string(), "Seq1".to_string())];
        let pp = &g[&(d.to_string(), "PP1".to_string())];
        let seq_rate =
            seq.energy.intermediate_pj / seq.counters.gb_of(OperandClass::Intermediate).max(1) as f64;
        let pp_rate =
            pp.energy.intermediate_pj / pp.counters.gb_of(OperandClass::Intermediate).max(1) as f64;
        assert!(pp_rate < seq_rate, "{d}: {pp_rate} vs {seq_rate}");
    }
}
