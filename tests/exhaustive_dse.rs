//! Integration coverage for the exhaustive DSE engine (ISSUE 2): on multiple
//! datasets, the engine's winner is never beaten by any preset, extended, or
//! sampled candidate, and the streaming enumeration agrees with the collected
//! one on the paper's 6,656 count.

use omega_gnn::prelude::*;

use omega_dataflow::enumerate::{all_patterns, design_space_size, PatternSpace};

fn explore_best(workload: &GnnWorkload, hw: &AccelConfig, objective: Objective) -> f64 {
    let out = dse::explore(
        workload,
        hw,
        &DseOptions { objective, threads: 2, top_k: 1, ..DseOptions::default() },
    );
    assert_eq!(out.space, 6656);
    out.best().expect("non-empty space").score
}

#[test]
fn exhaustive_winner_never_beaten_by_any_candidate_source() {
    let hw = AccelConfig::paper_default();
    // Two datasets of different regimes: near-regular molecules and denser
    // protein graphs (LEF + the heavier tail).
    for spec in [DatasetSpec::mutag(), DatasetSpec::proteins()] {
        let workload = GnnWorkload::gcn_layer(&spec.generate(4), 16);
        for objective in [Objective::Runtime, Objective::Edp] {
            let best = explore_best(&workload, &hw, objective);
            let mut candidates = mapper::preset_candidates(&workload, &hw);
            candidates.extend(mapper::extended_candidates(&workload, &hw));
            candidates.extend(mapper::sampled_candidates(&workload, &hw, 400, 5));
            for df in &candidates {
                if let Ok(r) = evaluate(&workload, df, &hw) {
                    assert!(
                        best <= objective.score(&r) + 1e-9,
                        "{}: {df} beats the exhaustive winner under {objective:?} \
                         ({} vs {})",
                        workload.name,
                        objective.score(&r),
                        best,
                    );
                }
            }
        }
    }
}

#[test]
fn streaming_and_collected_enumeration_agree() {
    // The lazy iterator, the indexed space, and the closed-form count all say
    // 6,656 — and the streamed patterns are exactly the indexed ones.
    assert_eq!(design_space_size(), 6656);
    let collected: Vec<_> = all_patterns().collect();
    assert_eq!(collected.len(), 6656);
    let space = PatternSpace::new();
    assert_eq!(space.len(), collected.len());
    for (i, p) in collected.iter().enumerate() {
        assert_eq!(space.get(i), *p, "index {i}");
    }
}

#[test]
fn model_explore_winners_are_thread_count_invariant() {
    use omega_gnn::core::dse::model::{explore_model, ModelDseOptions, ModelExploreOutcome};
    use omega_gnn::core::models::GnnModel;

    let hw = AccelConfig::paper_default();
    let workload = GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 16);
    let model = GnnModel::gcn_2layer(7);
    let cache = DseCache::new();
    let run = |threads: usize, chunk: usize| -> ModelExploreOutcome {
        explore_model(
            &model,
            &workload,
            &hw,
            &ModelDseOptions {
                threads,
                chunk,
                top_k: 4,
                per_layer_k: 3,
                pel_rungs: 2,
                ..Default::default()
            },
            &cache,
        )
    };
    let a = run(1, 16);
    let b = run(2, 7);
    let c = run(8, 1);
    // Bit-identical ranked winners regardless of worker count and chunking.
    let key = |o: &ModelExploreOutcome| -> Vec<(String, u64, Option<usize>)> {
        o.ranked
            .iter()
            .map(|r| (format!("{}", r.mapping), r.report.total_cycles, r.index))
            .collect()
    };
    assert!(!a.ranked.is_empty());
    assert_eq!(key(&a), key(&b));
    assert_eq!(key(&a), key(&c));
    assert_eq!((a.evaluated, a.skipped, a.space), (b.evaluated, b.skipped, b.space));
    assert_eq!((a.evaluated, a.skipped, a.space), (c.evaluated, c.skipped, c.space));
}

#[test]
fn pruned_cached_explore_is_bit_identical_on_two_datasets_and_objectives() {
    // ISSUE 4's contract: the phase-factored, lower-bound-pruned engine must
    // reproduce the brute-force reference *exactly* — ranked dataflows,
    // f64-bit scores, pattern indices, reports, and the work accounting — on
    // Mutag and Proteins under both Runtime and Edp.
    let hw = AccelConfig::paper_default();
    for spec in [DatasetSpec::mutag(), DatasetSpec::proteins()] {
        let workload = GnnWorkload::gcn_layer(&spec.generate(4), 16);
        for objective in [Objective::Runtime, Objective::Edp] {
            let base = DseOptions { objective, threads: 2, top_k: 8, ..DseOptions::default() };
            let fast = dse::explore(&workload, &hw, &base);
            let reference = dse::explore(
                &workload,
                &hw,
                &DseOptions { prune: false, phase_cache: false, ..base },
            );
            // Reference really is the brute-force path.
            assert_eq!(reference.pruned, 0, "{}/{objective:?}", workload.name);
            assert_eq!(reference.phase_cache_hits, 0);
            assert_eq!(reference.phase_sims, 0);
            // Accounting: every candidate the reference evaluated was either
            // evaluated or soundly pruned by the fast path; validation skips
            // are identical.
            assert_eq!(
                fast.evaluated + fast.pruned,
                reference.evaluated,
                "{}/{objective:?}",
                workload.name
            );
            assert_eq!(fast.skipped, reference.skipped);
            assert_eq!(fast.seeded, reference.seeded);
            // Ranked output, bit for bit.
            let key = |o: &dse::ExploreOutcome| -> Vec<(String, String, u64, u64, u64, Option<usize>)> {
                o.ranked
                    .iter()
                    .map(|r| {
                        (
                            r.dataflow.to_string(),
                            format!("{:?}", r.dataflow.tile_tuple()),
                            r.score.to_bits(),
                            r.report.total_cycles,
                            r.report.energy.total_pj().to_bits(),
                            r.pattern_index,
                        )
                    })
                    .collect()
            };
            assert_eq!(key(&fast), key(&reference), "{}/{objective:?}", workload.name);
            // Under Runtime the prune must actually bite; under Edp it is off.
            match objective {
                Objective::Runtime => assert!(fast.pruned > 0, "{}", workload.name),
                _ => assert_eq!(fast.pruned, 0),
            }
        }
    }
}

#[test]
fn sequential_candidates_share_phase_simulations() {
    // PhaseSimCache observability: the full sweep touches each unique phase
    // configuration once — far fewer engine runs than 2 sims × candidates —
    // and the direct cache API shows Sequential dataflows sharing sims.
    let hw = AccelConfig::paper_default();
    let workload = GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 16);
    let out = dse::explore(
        &workload,
        &hw,
        &DseOptions { threads: 2, prune: false, ..DseOptions::default() },
    );
    // With pruning off, every valid candidate evaluates, so the reuse ratio is
    // directly visible: hits + sims == 2 × (evaluated per-phase lookups).
    assert_eq!(out.phase_sims + out.phase_cache_hits, 2 * out.evaluated);
    assert!(
        out.phase_cache_hits > out.phase_sims,
        "expected most lookups served from cache: {} hits vs {} sims",
        out.phase_cache_hits,
        out.phase_sims
    );

    // And at the API level: two Sequential candidates differing only in the
    // Combination tiling share the Aggregation simulation.
    use omega_gnn::core::{PhaseSimCache, PreparedEval};
    let prep = PreparedEval::new(&workload, &hw);
    let cache = PhaseSimCache::new();
    use omega_gnn::dataflow::IntraTiling;
    let ctx = workload.tile_context(PhaseOrder::AC);
    let a = Preset::by_name("Seq1").unwrap().concretize(&ctx, hw.num_pes, hw.num_pes);
    let mut b = a;
    // Same Aggregation tiling, different Combination tiling.
    let mut tiles = *a.cmb.tiles();
    tiles[0] = if tiles[0] > 1 { tiles[0] / 2 } else { 2 };
    b.cmb = IntraTiling::new(a.cmb.phase(), a.cmb.order(), tiles);
    assert_ne!(a, b);
    let ra = prep.evaluate_with_cache(&a, &cache).unwrap();
    assert_eq!(cache.hits(), 0);
    assert_eq!(cache.misses(), 2); // one agg + one cmb sim
    let rb = prep.evaluate_with_cache(&b, &cache).unwrap();
    assert_eq!(cache.hits(), 1, "the shared Aggregation sim must be a hit");
    assert_eq!(cache.misses(), 3); // only the new cmb sim ran
    assert_eq!(ra.agg.cycles, rb.agg.cycles);
    // The cached path is bit-identical to the plain evaluation.
    let rb_plain = evaluate(&workload, &b, &hw).unwrap();
    assert_eq!(rb.total_cycles, rb_plain.total_cycles);
    assert_eq!(rb.counters, rb_plain.counters);
}

#[test]
fn search_result_counts_are_consistent() {
    let hw = AccelConfig::paper_default();
    let workload = GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 16);
    let candidates = mapper::extended_candidates(&workload, &hw);
    let best = mapper::best_of(&candidates, &workload, &hw, Objective::Runtime, 2)
        .expect("candidates evaluated");
    assert_eq!(best.evaluated + best.skipped, candidates.len());
    assert_eq!(best.skipped, 0);
}

#[test]
fn gat_layer_explore_is_bit_identical_and_skips_sddmm_illegal_patterns() {
    // ISSUE 5: the layer-level exhaustive search over an attention workload
    // threads the third (SDDMM) phase through the factored engine — the
    // pruned/cached path must stay bit-identical to brute force, and the
    // CA / N-before-V patterns the SDDMM cannot run count as validation skips.
    let hw = AccelConfig::paper_default();
    let plain = GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 16);
    let gat = GnnWorkload::gat_layer(&DatasetSpec::mutag().generate(4), 16, 4);
    let base = DseOptions { threads: 2, top_k: 8, ..DseOptions::new(Objective::Runtime) };
    let fast = dse::explore(&gat, &hw, &base);
    let reference =
        dse::explore(&gat, &hw, &DseOptions { prune: false, phase_cache: false, ..base });
    assert_eq!(reference.phase_sims, 0);
    assert_eq!(fast.evaluated + fast.pruned, reference.evaluated);
    assert_eq!(fast.skipped, reference.skipped);
    let key = |o: &dse::ExploreOutcome| -> Vec<(String, u64, u64, Option<usize>)> {
        o.ranked
            .iter()
            .map(|r| (r.dataflow.to_string(), r.score.to_bits(), r.report.total_cycles, r.pattern_index))
            .collect()
    };
    assert_eq!(key(&fast), key(&reference));
    // The attention gates shrink the evaluable space: every CA pattern and
    // every N-before-V aggregation order is now a validation skip.
    let plain_out = dse::explore(&plain, &hw, &base);
    assert!(fast.skipped > plain_out.skipped, "{} vs {}", fast.skipped, plain_out.skipped);
    // Every ranked winner is AC with an SDDMM-legal aggregation order and a
    // scoring phase in its report.
    for r in &fast.ranked {
        assert_eq!(r.dataflow.phase_order, PhaseOrder::AC);
        assert!(omega_dataflow::validate_sddmm(&r.dataflow.agg).is_ok(), "{}", r.dataflow);
        assert!(r.report.sddmm.is_some());
        assert!(r.report.total_cycles > 0);
    }
    // Attention work is never free: the GAT optimum is strictly costlier than
    // the plain optimum of the same layer shape.
    assert!(fast.best().unwrap().score > plain_out.best().unwrap().score);
}

/// Ranked-list key capturing everything a DSE consumer can observe: dataflow,
/// tile tuple, f64-bit score, cycles, energy bits, and the pattern index.
fn ranked_key(o: &dse::ExploreOutcome) -> Vec<(String, String, u64, u64, u64, Option<usize>)> {
    o.ranked
        .iter()
        .map(|r| {
            (
                r.dataflow.to_string(),
                format!("{:?}", r.dataflow.tile_tuple()),
                r.score.to_bits(),
                r.report.total_cycles,
                r.report.energy.total_pj().to_bits(),
                r.pattern_index,
            )
        })
        .collect()
}

#[test]
fn scale_dataset_explore_is_thread_and_prune_invariant() {
    // ISSUE 10: the summary-driven walk makes a full 6,656-pattern sweep over
    // a 65k-vertex R-MAT graph test-sized — and the result must be bit-equal
    // across worker counts and with the lower-bound prune on or off.
    let graph = omega_gnn::graph::scale_graph("rmat-16", 11).expect("rmat-16 resolves");
    assert_eq!(graph.num_vertices(), 1 << 16);
    let workload = GnnWorkload::from_graph(&graph, 16);
    let hw = AccelConfig::paper_default();
    let run = |threads: usize, prune: bool| {
        dse::explore(
            &workload,
            &hw,
            &DseOptions { threads, prune, top_k: 8, ..DseOptions::new(Objective::Runtime) },
        )
    };
    let one = run(1, true);
    let two = run(2, true);
    let eight = run(8, true);
    let brute = run(2, false);
    assert_eq!(one.space, 6656);
    assert_eq!(ranked_key(&one), ranked_key(&two));
    assert_eq!(ranked_key(&one), ranked_key(&eight));
    assert_eq!(ranked_key(&one), ranked_key(&brute));
    assert_eq!(one.evaluated + one.pruned, brute.evaluated);
    // The scaling machinery actually engaged: batched tile classes were
    // replayed rather than walked (the counter is process-wide and monotone,
    // so parallel tests only ever add to the delta — it cannot read zero
    // spuriously).
    assert!(one.class_replays > 0, "summary walk never replayed a class");
}

#[test]
fn summary_and_reference_walks_agree_at_dse_level() {
    // The per-edge oracle, threaded through the whole DSE stack via
    // `ModelKnobs::reference_walk`, must rank the scale-family space exactly
    // like the summary walk — scores bit-for-bit, same work accounting.
    let graph = omega_gnn::graph::scale_graph("chung-lu-8", 3).expect("chung-lu-8 resolves");
    let workload = GnnWorkload::from_graph(&graph, 16);
    let hw = AccelConfig::paper_default();
    let mut hw_oracle = hw;
    hw_oracle.knobs.reference_walk = true;
    let opts = DseOptions { threads: 2, top_k: 8, ..DseOptions::new(Objective::Runtime) };
    let summary = dse::explore(&workload, &hw, &opts);
    let oracle = dse::explore(&workload, &hw_oracle, &opts);
    assert_eq!(ranked_key(&summary), ranked_key(&oracle));
    // The evaluated/pruned *split* is thread-scheduling-dependent (the prune
    // threshold evolves with worker completion order), but their sum — the
    // candidates admitted past legality — is an invariant of the space.
    assert_eq!(summary.evaluated + summary.pruned, oracle.evaluated + oracle.pruned);
    assert_eq!(summary.skipped, oracle.skipped);
    assert!(summary.class_replays > 0);
}

#[test]
fn model_search_on_sampled_scale_subgraph_is_thread_invariant() {
    use omega_gnn::core::dse::model::{explore_model, ModelDseOptions, ModelExploreOutcome};
    use omega_gnn::core::models::GnnModel;

    // Model-level search over a subgraph sampled from a 16k-vertex R-MAT
    // graph: the sampled workload is deterministic, and the ranked model
    // mappings are invariant to worker count and work-chunk size.
    let graph = omega_gnn::graph::scale_graph("rmat-14", 5).expect("rmat-14 resolves");
    let sub = omega_gnn::graph::scale::sample_subgraph(&graph, 400, 9);
    assert_eq!(sub.num_vertices(), 400);
    let workload = GnnWorkload::from_graph(&sub, 16);
    let model = GnnModel::gcn_2layer(7);
    let hw = AccelConfig::paper_default();
    let cache = DseCache::new();
    let run = |threads: usize, chunk: usize| -> ModelExploreOutcome {
        explore_model(
            &model,
            &workload,
            &hw,
            &ModelDseOptions {
                threads,
                chunk,
                top_k: 4,
                per_layer_k: 3,
                pel_rungs: 2,
                ..Default::default()
            },
            &cache,
        )
    };
    let a = run(1, 16);
    let b = run(8, 3);
    let key = |o: &ModelExploreOutcome| -> Vec<(String, u64, Option<usize>)> {
        o.ranked
            .iter()
            .map(|r| (format!("{}", r.mapping), r.report.total_cycles, r.index))
            .collect()
    };
    assert!(!a.ranked.is_empty());
    assert_eq!(key(&a), key(&b));
    assert_eq!((a.evaluated, a.skipped, a.space), (b.evaluated, b.skipped, b.space));
}
