//! Integration coverage for the exhaustive DSE engine (ISSUE 2): on multiple
//! datasets, the engine's winner is never beaten by any preset, extended, or
//! sampled candidate, and the streaming enumeration agrees with the collected
//! one on the paper's 6,656 count.

use omega_gnn::prelude::*;

use omega_dataflow::enumerate::{all_patterns, design_space_size, PatternSpace};

fn explore_best(workload: &GnnWorkload, hw: &AccelConfig, objective: Objective) -> f64 {
    let out = dse::explore(
        workload,
        hw,
        &DseOptions { objective, threads: 2, top_k: 1, ..DseOptions::default() },
    );
    assert_eq!(out.space, 6656);
    out.best().expect("non-empty space").score
}

#[test]
fn exhaustive_winner_never_beaten_by_any_candidate_source() {
    let hw = AccelConfig::paper_default();
    // Two datasets of different regimes: near-regular molecules and denser
    // protein graphs (LEF + the heavier tail).
    for spec in [DatasetSpec::mutag(), DatasetSpec::proteins()] {
        let workload = GnnWorkload::gcn_layer(&spec.generate(4), 16);
        for objective in [Objective::Runtime, Objective::Edp] {
            let best = explore_best(&workload, &hw, objective);
            let mut candidates = mapper::preset_candidates(&workload, &hw);
            candidates.extend(mapper::extended_candidates(&workload, &hw));
            candidates.extend(mapper::sampled_candidates(&workload, &hw, 400, 5));
            for df in &candidates {
                if let Ok(r) = evaluate(&workload, df, &hw) {
                    assert!(
                        best <= objective.score(&r) + 1e-9,
                        "{}: {df} beats the exhaustive winner under {objective:?} \
                         ({} vs {})",
                        workload.name,
                        objective.score(&r),
                        best,
                    );
                }
            }
        }
    }
}

#[test]
fn streaming_and_collected_enumeration_agree() {
    // The lazy iterator, the indexed space, and the closed-form count all say
    // 6,656 — and the streamed patterns are exactly the indexed ones.
    assert_eq!(design_space_size(), 6656);
    let collected: Vec<_> = all_patterns().collect();
    assert_eq!(collected.len(), 6656);
    let space = PatternSpace::new();
    assert_eq!(space.len(), collected.len());
    for (i, p) in collected.iter().enumerate() {
        assert_eq!(space.get(i), *p, "index {i}");
    }
}

#[test]
fn model_explore_winners_are_thread_count_invariant() {
    use omega_gnn::core::dse::model::{explore_model, ModelDseOptions, ModelExploreOutcome};
    use omega_gnn::core::models::GnnModel;

    let hw = AccelConfig::paper_default();
    let workload = GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 16);
    let model = GnnModel::gcn_2layer(7);
    let cache = DseCache::new();
    let run = |threads: usize, chunk: usize| -> ModelExploreOutcome {
        explore_model(
            &model,
            &workload,
            &hw,
            &ModelDseOptions {
                threads,
                chunk,
                top_k: 4,
                per_layer_k: 3,
                pel_rungs: 2,
                ..Default::default()
            },
            &cache,
        )
    };
    let a = run(1, 16);
    let b = run(2, 7);
    let c = run(8, 1);
    // Bit-identical ranked winners regardless of worker count and chunking.
    let key = |o: &ModelExploreOutcome| -> Vec<(String, u64, Option<usize>)> {
        o.ranked
            .iter()
            .map(|r| (format!("{}", r.mapping), r.report.total_cycles, r.index))
            .collect()
    };
    assert!(!a.ranked.is_empty());
    assert_eq!(key(&a), key(&b));
    assert_eq!(key(&a), key(&c));
    assert_eq!((a.evaluated, a.skipped, a.space), (b.evaluated, b.skipped, b.space));
    assert_eq!((a.evaluated, a.skipped, a.space), (c.evaluated, c.skipped, c.space));
}

#[test]
fn search_result_counts_are_consistent() {
    let hw = AccelConfig::paper_default();
    let workload = GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 16);
    let candidates = mapper::extended_candidates(&workload, &hw);
    let best = mapper::best_of(&candidates, &workload, &hw, Objective::Runtime, 2)
        .expect("candidates evaluated");
    assert_eq!(best.evaluated + best.skipped, candidates.len());
    assert_eq!(best.skipped, 0);
}
