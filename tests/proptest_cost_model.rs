//! Property tests on the end-to-end cost model.

use proptest::prelude::*;

use omega_gnn::core::model_check::verify_report;
use omega_gnn::prelude::*;

/// A small random workload: degrees, feature widths.
fn workload_strategy() -> impl Strategy<Value = GnnWorkload> {
    (
        proptest::collection::vec(1usize..24, 8..80),
        2usize..64,
        1usize..24,
    )
        .prop_map(|(degrees, f, g)| {
            let v = degrees.len();
            let nnz: u64 = degrees.iter().map(|&d| d as u64).sum();
            let max_degree = degrees.iter().copied().max().unwrap_or(0);
            let mean_degree = nnz as f64 / v as f64;
            GnnWorkload {
                name: "prop".into(),
                v,
                f,
                g,
                degrees,
                nnz,
                mean_degree,
                max_degree,
                attention: None,
                post_op: None,
            }
        })
}

fn concretize(preset: &Preset, wl: &GnnWorkload, hw: &AccelConfig) -> GnnDataflow {
    let ctx = wl.tile_context(preset.pattern.phase_order);
    let (a, c) = if preset.pattern.inter == InterPhase::ParallelPipeline {
        (hw.num_pes / 2, hw.num_pes / 2)
    } else {
        (hw.num_pes, hw.num_pes)
    };
    preset.concretize(&ctx, a, c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every preset on every random workload: evaluates, obeys Table III, and
    /// schedules exactly the layer's MACs.
    #[test]
    fn presets_are_consistent_on_random_workloads(wl in workload_strategy(), preset_idx in 0usize..9) {
        let hw = AccelConfig::paper_default();
        let preset = &Preset::all()[preset_idx];
        let df = concretize(preset, &wl, &hw);
        let report = evaluate(&wl, &df, &hw).expect("presets are legal");
        prop_assert_eq!(report.agg.macs, wl.nnz * wl.f as u64);
        prop_assert_eq!(report.cmb.macs, (wl.v * wl.f * wl.g) as u64);
        verify_report(&report, &wl).map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    /// PP runtime is bounded by its phases: max ≤ total ≤ sum.
    #[test]
    fn pp_pipeline_bounds(wl in workload_strategy(), pp_idx in 0usize..4) {
        let hw = AccelConfig::paper_default();
        let name = ["PP1", "PP2", "PP3", "PP4"][pp_idx];
        let preset = Preset::by_name(name).expect("preset");
        let df = concretize(&preset, &wl, &hw);
        let report = evaluate(&wl, &df, &hw).expect("legal");
        prop_assert!(report.total_cycles >= report.agg.cycles.max(report.cmb.cycles));
        prop_assert!(report.total_cycles <= report.agg.cycles + report.cmb.cycles);
    }

    /// Lower bandwidth can never speed a dataflow up (end-to-end monotonicity).
    #[test]
    fn bandwidth_monotonicity_end_to_end(wl in workload_strategy(), preset_idx in 0usize..9) {
        let preset = &Preset::all()[preset_idx];
        let mut prev = None;
        for bw in [512usize, 128, 16] {
            let hw = AccelConfig::paper_default().with_bandwidth(bw);
            let df = concretize(preset, &wl, &hw);
            let report = evaluate(&wl, &df, &hw).expect("legal");
            if let Some(p) = prev {
                prop_assert!(report.total_cycles >= p, "{}: bw {bw}", preset.name);
            }
            prev = Some(report.total_cycles);
        }
    }

    /// More PEs can never slow a dataflow down (with scaled bandwidth).
    #[test]
    fn pe_scaling_monotonicity(wl in workload_strategy(), preset_idx in 0usize..9) {
        let preset = &Preset::all()[preset_idx];
        let mut prev: Option<u64> = None;
        for pes in [128usize, 512, 2048] {
            let hw = AccelConfig::paper_default().with_pes(pes);
            let df = concretize(preset, &wl, &hw);
            let report = evaluate(&wl, &df, &hw).expect("legal");
            if let Some(p) = prev {
                // Allow a tiny slack for remainder-tile effects.
                prop_assert!(
                    report.total_cycles <= p + p / 4 + 64,
                    "{}: {} PEs took {} vs {}",
                    preset.name, pes, report.total_cycles, p
                );
            }
            prev = Some(report.total_cycles);
        }
    }

    /// The energy breakdown is internally consistent.
    #[test]
    fn energy_breakdown_adds_up(wl in workload_strategy(), preset_idx in 0usize..9) {
        let hw = AccelConfig::paper_default();
        let preset = &Preset::all()[preset_idx];
        let df = concretize(preset, &wl, &hw);
        let report = evaluate(&wl, &df, &hw).expect("legal");
        let e = &report.energy;
        let class_sum: f64 = e.gb_by_class_pj.iter().sum();
        prop_assert!((class_sum - (e.gb_pj + e.intermediate_pj)).abs() < 1e-6);
        prop_assert!((e.total_pj() - (e.gb_pj + e.rf_pj + e.intermediate_pj)).abs() < 1e-9);
        prop_assert!(e.total_pj() > 0.0);
    }
}
