//! Shape assertions for the case studies: Fig. 14 (load balancing), Fig. 15
//! (scalability), Fig. 16 (bandwidth).

use omega_gnn::prelude::*;

fn workload(name: &str) -> GnnWorkload {
    let spec = DatasetSpec::by_name(name).expect("dataset exists");
    GnnWorkload::gcn_layer(&spec.generate(0x0E5A_2022), 16)
}

fn eval_pp_split(wl: &GnnWorkload, preset_name: &str, agg_frac: f64, hw: &AccelConfig) -> u64 {
    let preset = Preset::by_name(preset_name).expect("preset");
    let agg = ((hw.num_pes as f64 * agg_frac) as usize).clamp(1, hw.num_pes - 1);
    let ctx = wl.tile_context(preset.pattern.phase_order);
    let df = preset.concretize(&ctx, agg, hw.num_pes - agg);
    evaluate(wl, &df, hw).expect("legal").total_cycles
}

fn eval_preset(wl: &GnnWorkload, preset_name: &str, hw: &AccelConfig) -> u64 {
    let preset = Preset::by_name(preset_name).expect("preset");
    let ctx = wl.tile_context(preset.pattern.phase_order);
    let (a, c) = if preset.pattern.inter == InterPhase::ParallelPipeline {
        (hw.num_pes / 2, hw.num_pes / 2)
    } else {
        (hw.num_pes, hw.num_pes)
    };
    let df = preset.concretize(&ctx, a, c);
    evaluate(wl, &df, hw).expect("legal").total_cycles
}

/// Fig. 14: "Collab has higher density (HE category) hence slow Aggregation,
/// therefore 25-75 performs poorly. ... Since Citeseer is sparse and has high
/// number of features (HF category), the Combination phase is slower, therefore
/// 75-25 allocation performs poorly."
#[test]
fn pp_load_balancing_directions() {
    let hw = AccelConfig::paper_default();

    let collab = workload("Collab");
    let c25 = eval_pp_split(&collab, "PP1", 0.25, &hw);
    let c50 = eval_pp_split(&collab, "PP1", 0.50, &hw);
    assert!(c25 as f64 >= 1.2 * c50 as f64, "Collab 25-75 {c25} vs 50-50 {c50}");

    let citeseer = workload("Citeseer");
    let s75 = eval_pp_split(&citeseer, "PP1", 0.75, &hw);
    let s50 = eval_pp_split(&citeseer, "PP1", 0.50, &hw);
    assert!(s75 as f64 >= 1.3 * s50 as f64, "Citeseer 75-25 {s75} vs 50-50 {s50}");

    // Mutag: 50-50 is the best of the three allocations (Section V-C1).
    let mutag = workload("Mutag");
    let m25 = eval_pp_split(&mutag, "PP1", 0.25, &hw);
    let m50 = eval_pp_split(&mutag, "PP1", 0.50, &hw);
    let m75 = eval_pp_split(&mutag, "PP1", 0.75, &hw);
    assert!(m50 <= m25 && m50 <= m75, "Mutag: {m25}/{m50}/{m75}");
}

/// Fig. 15: "the runtimes normalized to the Seq1 dataflow are similar in case
/// of 512 and 2048 PEs ... the relative performance of dataflows generalizes
/// for different scales of acceleration."
#[test]
fn normalized_runtimes_are_scale_stable() {
    // The paper qualifies the claim: "especially for dataflows with low
    // runtimes" — SPhighV is the deliberate pathology (its vertex tile grows
    // with the array, so the evil row synchronises ever more rows) and is
    // checked separately below.
    let presets = ["Seq2", "SP1", "SP2", "PP1", "PP3"];
    for name in ["Mutag", "Citeseer"] {
        let wl = workload(name);
        let hw512 = AccelConfig::paper_default();
        let hw2048 = AccelConfig::paper_default().with_pes(2048);
        let base512 = eval_preset(&wl, "Seq1", &hw512) as f64;
        let base2048 = eval_preset(&wl, "Seq1", &hw2048) as f64;
        for p in presets {
            let n512 = eval_preset(&wl, p, &hw512) as f64 / base512;
            let n2048 = eval_preset(&wl, p, &hw2048) as f64 / base2048;
            assert!(
                (n512 - n2048).abs() <= 0.75,
                "{name}/{p}: {n512:.2} @512 vs {n2048:.2} @2048"
            );
        }
        // The headline ordering survives scaling: SPhighV stays the worst SP at
        // both scales (and only gets relatively worse with more PEs).
        for hw in [&hw512, &hw2048] {
            assert!(eval_preset(&wl, "SPhighV", hw) >= eval_preset(&wl, "SP2", hw), "{name}");
        }
    }
}

/// Fig. 16: "Runtime reduces with the decrease in the bandwidth and PP dataflow
/// suffers the most since the bandwidth is shared between the two phases."
/// The sharing penalty shows on the large workloads (Citeseer, Collab); on the
/// tiny Mutag batch, Seq's bigger tiles stall on their own reads first, so only
/// monotonicity is asserted there (see EXPERIMENTS.md).
#[test]
fn bandwidth_sensitivity_and_pp_sharing() {
    for name in ["Citeseer", "Collab"] {
        let wl = workload(name);
        let mut prev: Option<(u64, u64, u64)> = None;
        let mut degradation = Vec::new();
        for bw in [512usize, 256, 128, 64] {
            let hw = AccelConfig::paper_default().with_bandwidth(bw);
            let seq = eval_preset(&wl, "Seq1", &hw);
            let sp = eval_preset(&wl, "SP2", &hw);
            let pp = eval_preset(&wl, "PP3", &hw);
            if let Some((pseq, psp, ppp)) = prev {
                assert!(seq >= pseq && sp >= psp && pp >= ppp, "{name}@{bw}: monotone");
            }
            // PP stays the slowest of the three strategies at every bandwidth.
            assert!(pp >= seq && pp >= sp, "{name}@{bw}: PP not slowest");
            prev = Some((seq, sp, pp));
            degradation.push((seq, sp, pp));
        }
        // On the dense HE workload the sharing penalty also shows as a steeper
        // degradation slope (on Citeseer the PP tiles are small enough that its
        // proportional share keeps pace — see EXPERIMENTS.md).
        if name == "Collab" {
            let (seq0, sp0, pp0) = degradation[0];
            let (seq3, sp3, pp3) = degradation[3];
            let seq_slope = seq3 as f64 / seq0 as f64;
            let sp_slope = sp3 as f64 / sp0 as f64;
            let pp_slope = pp3 as f64 / pp0 as f64;
            assert!(pp_slope > seq_slope, "{name}: PP {pp_slope:.2} vs Seq {seq_slope:.2}");
            assert!(pp_slope > sp_slope, "{name}: PP {pp_slope:.2} vs SP {sp_slope:.2}");
        }
    }

    // Every strategy is at least monotone on the small batches too.
    let wl = workload("Mutag");
    let mut prev = None;
    for bw in [512usize, 128, 32] {
        let hw = AccelConfig::paper_default().with_bandwidth(bw);
        let total: u64 = ["Seq1", "SP2", "PP3"].iter().map(|p| eval_preset(&wl, p, &hw)).sum();
        if let Some(p) = prev {
            assert!(total >= p, "Mutag@{bw}");
        }
        prev = Some(total);
    }
}

/// The generated HF datasets actually contain the hubs ("evil rows") the
/// SPhighV pathology requires.
#[test]
fn hf_datasets_have_evil_rows() {
    for name in ["Citeseer", "Cora", "Reddit-bin"] {
        let wl = workload(name);
        let skew = wl.max_degree as f64 / wl.mean_degree;
        assert!(skew > 15.0, "{name}: degree skew {skew:.1}");
    }
    // And the molecular sets do not.
    for name in ["Mutag", "Proteins"] {
        let wl = workload(name);
        let skew = wl.max_degree as f64 / wl.mean_degree;
        assert!(skew < 5.0, "{name}: degree skew {skew:.1}");
    }
}
