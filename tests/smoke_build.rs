//! Smoke test: the facade doctest's end-to-end path, exercised as a plain
//! integration test so the public `omega_gnn::prelude` surface stays covered
//! even when doctests are skipped (e.g. `cargo test --tests`).

use omega_gnn::prelude::*;

/// `DatasetSpec` → `GnnWorkload::gcn_layer` → `Preset::by_name("SP2")` →
/// `concretize` → `evaluate`, exactly as the crate-level doc example.
#[test]
fn prelude_end_to_end_sp2_on_mutag() {
    let dataset = DatasetSpec::mutag().generate(42);
    let workload = GnnWorkload::gcn_layer(&dataset, 16);

    let hw = AccelConfig::paper_default();

    let preset = Preset::by_name("SP2").expect("SP2 is a Table V preset");
    let ctx = workload.tile_context(preset.pattern.phase_order);
    let dataflow = preset.concretize(&ctx, hw.num_pes, hw.num_pes);

    let report = evaluate(&workload, &dataflow, &hw).expect("SP2 is legal on MUTAG");
    assert!(report.total_cycles > 0);
    assert!(report.energy.total_uj() > 0.0);
    // The Display impl the doctest prints with must not panic either.
    let line = format!("{dataflow}: {} cycles", report.total_cycles);
    assert!(line.contains("cycles"));
}

/// Every named preset resolves and evaluates on the doc example's workload.
#[test]
fn every_preset_evaluates_via_prelude() {
    let dataset = DatasetSpec::mutag().generate(42);
    let workload = GnnWorkload::gcn_layer(&dataset, 16);
    let hw = AccelConfig::paper_default();

    for preset in Preset::all() {
        let ctx = workload.tile_context(preset.pattern.phase_order);
        let (agg, cmb) = if preset.pattern.inter == InterPhase::ParallelPipeline {
            (hw.num_pes / 2, hw.num_pes / 2)
        } else {
            (hw.num_pes, hw.num_pes)
        };
        let dataflow = preset.concretize(&ctx, agg, cmb);
        let report = evaluate(&workload, &dataflow, &hw)
            .unwrap_or_else(|e| panic!("{} failed to evaluate: {e:?}", preset.name));
        assert!(report.total_cycles > 0, "{} produced zero cycles", preset.name);
    }
}

/// The mapper path re-exported through the prelude finds a best dataflow.
#[test]
fn mapper_best_of_via_prelude() {
    let dataset = DatasetSpec::mutag().generate(42);
    let workload = GnnWorkload::gcn_layer(&dataset, 16);
    let hw = AccelConfig::paper_default();

    let candidates = mapper::preset_candidates(&workload, &hw);
    assert!(!candidates.is_empty());
    let best = mapper::best_of(&candidates, &workload, &hw, Objective::Runtime, 4)
        .expect("at least one candidate evaluates");
    assert!(best.report.total_cycles > 0);
    assert_eq!(best.evaluated, candidates.len());
}
