//! Functional correctness across the stack: a dataflow is only a schedule, so
//! executing a GCN layer in any preset's tile order must reproduce the
//! reference kernels bit-for-bit (integer-valued operands keep f32 exact).

use omega_gnn::accel::functional::{execute_gemm, execute_spmm};
use omega_gnn::prelude::*;

#[test]
fn every_preset_schedule_computes_the_same_layer() {
    let _hw = AccelConfig::paper_default();
    let dataset = DatasetSpec::mutag().generate(13);
    let graph = &dataset.graph;
    let wl = GnnWorkload::gcn_layer(&dataset, 16);

    let x0 = graph.features(3);
    let w = DenseMatrix::from_fn(wl.f, wl.g, |i, j| (((i * 5 + j * 3) % 7) as f32) - 3.0);
    let h_ref = ops::spmm(graph.adjacency(), &x0).expect("shapes agree");
    let out_ref = ops::gemm(&h_ref, &w).expect("shapes agree");

    for preset in Preset::all() {
        let ctx = wl.tile_context(preset.pattern.phase_order);
        let (a, c) = if preset.pattern.inter == InterPhase::ParallelPipeline {
            (256, 256)
        } else {
            (512, 512)
        };
        let df = preset.concretize(&ctx, a, c);
        let h = execute_spmm(graph.adjacency(), &x0, &df.agg);
        assert_eq!(h, h_ref, "{}: aggregation result", preset.name);
        let out = execute_gemm(&h, &w, &df.cmb);
        assert_eq!(out, out_ref, "{}: combination result", preset.name);
    }
}

#[test]
fn parallel_reference_kernels_agree_on_graph_workloads() {
    let dataset = DatasetSpec::proteins().generate(5);
    let graph = &dataset.graph;
    let x0 = graph.features(9);
    let seq = ops::spmm(graph.adjacency(), &x0).expect("shapes agree");
    let par = ops::spmm_parallel(graph.adjacency(), &x0, 8).expect("shapes agree");
    assert_eq!(seq, par);
}

#[test]
fn gcn_normalisation_preserves_structure() {
    // Normalised adjacency changes values, not the sparsity structure the cost
    // model consumes.
    let spec = DatasetSpec::mutag();
    let plain = spec.generate(21).graph;
    let a = plain.adjacency();
    let normalised = GraphBuilder::new("norm", a.rows(), plain.feature_dim())
        .normalise(true)
        .edges(
            (0..a.rows())
                .flat_map(|r| a.row_cols(r).iter().map(move |&c| (r, c as usize)))
                .filter(|(r, c)| r < c),
        )
        .build();
    assert_eq!(normalised.num_vertices(), plain.num_vertices());
    // Row sums of the normalised matrix are bounded by 1-ish (symmetric norm).
    let d = normalised.adjacency();
    for r in 0..d.rows() {
        let sum: f32 = d.row_vals(r).iter().sum();
        assert!(sum <= 1.5, "row {r} sum {sum}");
    }
}
