//! Model-level DSE acceptance (ISSUE 3): the streaming parallel joint search
//! matches a brute-force enumeration of its space, and per-layer-specialised
//! (+pipelined) mappings strictly beat the best uniform Table V preset on the
//! Cora GCN-2 chain.

use omega_gnn::core::dse::model::{
    build_space, evaluate_mapping, explore_model, ModelDseOptions,
};
use omega_gnn::core::models::GnnModel;
use omega_gnn::prelude::*;

fn small_opts() -> ModelDseOptions {
    ModelDseOptions {
        threads: 2,
        top_k: 3,
        per_layer_k: 3,
        pel_rungs: 3, // the ISSUE's "small exhaustive case" ladder
        split_fractions: vec![0.25, 0.5, 0.75],
        ..Default::default()
    }
}

#[test]
fn model_winner_matches_brute_force_enumeration_on_mutag() {
    let hw = AccelConfig::paper_default();
    let workload = GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 16);
    let model = GnnModel::gcn_2layer(7);
    let opts = small_opts();
    let cache = DseCache::new();

    let out = explore_model(&model, &workload, &hw, &opts, &cache);
    let best = out.best().expect("non-empty space");

    // Brute force: walk the identical joint space sequentially and keep the
    // minimum by (score, index) — exactly the search's deterministic order.
    let space = build_space(&model, &workload, &hw, &opts, &cache);
    assert_eq!(space.len(), out.space);
    let mut brute: Option<(f64, usize, u64, String)> = None;
    let mut evaluated = 0;
    let mut skipped = 0;
    for i in 0..space.len() {
        let mapping = space.mapping(i);
        match evaluate_mapping(&model, &workload, &mapping, &hw, opts.objective) {
            Ok((score, report)) => {
                evaluated += 1;
                if brute.as_ref().is_none_or(|b| score < b.0) {
                    brute = Some((score, i, report.total_cycles, format!("{mapping}")));
                }
            }
            Err(_) => skipped += 1,
        }
    }
    let (b_score, b_index, b_cycles, b_desc) = brute.expect("at least one feasible mapping");

    // The parallel streaming search found the same winner, bit for bit —
    // unless a uniform-preset seed won, which the enumerated space must then
    // have tied (seeds can only improve the result).
    assert!(best.score <= b_score);
    match best.index {
        Some(idx) => {
            assert_eq!(best.score, b_score, "winner drifted from brute force");
            assert_eq!(idx, b_index);
            assert_eq!(best.report.total_cycles, b_cycles);
            assert_eq!(format!("{}", best.mapping), b_desc);
        }
        None => panic!("seeded uniform chain beat the whole joint space: {b_desc}"),
    }
    // Coverage accounting agrees with the brute-force walk (seeds on top).
    assert_eq!(out.evaluated - out.seeded, evaluated);
    assert_eq!(out.skipped, skipped);
    assert_eq!(evaluated + skipped, space.len());
}

#[test]
fn cora_gcn2_specialised_mapping_strictly_beats_best_uniform_preset() {
    let hw = AccelConfig::paper_default();
    let workload = GnnWorkload::gcn_layer(&DatasetSpec::cora().generate(3), 16);
    let model = GnnModel::gcn_2layer(7);
    let opts = ModelDseOptions { threads: 4, per_layer_k: 4, top_k: 12, ..Default::default() };
    let cache = DseCache::new();
    let out = explore_model(&model, &workload, &hw, &opts, &cache);

    let best = out.best().expect("winner");
    let uniform = out.uniform.as_ref().expect("uniform baseline");
    // The acceptance headline: per-layer specialisation beats the best single
    // Table V preset applied to every layer, strictly.
    assert!(
        best.report.total_cycles < uniform.total_cycles,
        "winner {} vs uniform {} ({})",
        best.report.total_cycles,
        uniform.total_cycles,
        uniform.preset
    );
    assert!(best.index.is_some(), "winner is a real member of the joint space");
    // Layer specialisation: the two layers' dataflows differ (F flips from
    // 1433 to 16 across the boundary, so the best patterns do too).
    let dfs = &best.mapping.layer_dataflows;
    assert_eq!(dfs.len(), 2);
    assert_ne!(dfs[0], dfs[1], "{}", best.mapping);
    // And the ranked report contains a *pipelined* specialised mapping that
    // also strictly beats the uniform preset (on Cora it ties the optimum:
    // the tiny second layer pipelines at zero cost).
    let pipelined_winner = out
        .ranked
        .iter()
        .find(|r| r.mapping.is_pipelined())
        .expect("a pipelined mapping ranks");
    assert!(
        pipelined_winner.report.total_cycles < uniform.total_cycles,
        "pipelined {} vs uniform {}",
        pipelined_winner.report.total_cycles,
        uniform.total_cycles
    );
}
