//! Model-level DSE acceptance (ISSUE 3): the streaming parallel joint search
//! matches a brute-force enumeration of its space, and per-layer-specialised
//! (+pipelined) mappings strictly beat the best uniform Table V preset on the
//! Cora GCN-2 chain. ISSUE 5 adds the attention scenario: the GAT joint
//! search (three phases per layer, SDDMM included) beats every uniform
//! preset, stays thread-count-invariant, and its factored per-layer engine is
//! bit-identical to the brute-force reference arm.

use omega_gnn::core::dse::model::{
    build_space, evaluate_mapping, explore_model, ModelDseOptions, ModelExploreOutcome,
};
use omega_gnn::core::models::{to_chain, uniform_layer_dataflows, GnnModel};
use omega_gnn::core::multiphase::{evaluate_chain, Link};
use omega_gnn::prelude::*;

fn small_opts() -> ModelDseOptions {
    ModelDseOptions {
        threads: 2,
        top_k: 3,
        per_layer_k: 3,
        pel_rungs: 3, // the ISSUE's "small exhaustive case" ladder
        split_fractions: vec![0.25, 0.5, 0.75],
        ..Default::default()
    }
}

#[test]
fn model_winner_matches_brute_force_enumeration_on_mutag() {
    let hw = AccelConfig::paper_default();
    let workload = GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 16);
    let model = GnnModel::gcn_2layer(7);
    let opts = small_opts();
    let cache = DseCache::new();

    let out = explore_model(&model, &workload, &hw, &opts, &cache);
    let best = out.best().expect("non-empty space");

    // Brute force: walk the identical joint space sequentially and keep the
    // minimum by (score, index) — exactly the search's deterministic order.
    let space = build_space(&model, &workload, &hw, &opts, &cache);
    assert_eq!(space.len(), out.space);
    let mut brute: Option<(f64, usize, u64, String)> = None;
    let mut evaluated = 0;
    let mut skipped = 0;
    for i in 0..space.len() {
        let mapping = space.mapping(i);
        match evaluate_mapping(&model, &workload, &mapping, &hw, opts.objective) {
            Ok((score, report)) => {
                evaluated += 1;
                if brute.as_ref().is_none_or(|b| score < b.0) {
                    brute = Some((score, i, report.total_cycles, format!("{mapping}")));
                }
            }
            Err(_) => skipped += 1,
        }
    }
    let (b_score, b_index, b_cycles, b_desc) = brute.expect("at least one feasible mapping");

    // The parallel streaming search found the same winner, bit for bit —
    // unless a uniform-preset seed won, which the enumerated space must then
    // have tied (seeds can only improve the result).
    assert!(best.score <= b_score);
    match best.index {
        Some(idx) => {
            assert_eq!(best.score, b_score, "winner drifted from brute force");
            assert_eq!(idx, b_index);
            assert_eq!(best.report.total_cycles, b_cycles);
            assert_eq!(format!("{}", best.mapping), b_desc);
        }
        None => panic!("seeded uniform chain beat the whole joint space: {b_desc}"),
    }
    // Coverage accounting agrees with the brute-force walk (seeds on top).
    assert_eq!(out.evaluated - out.seeded, evaluated);
    assert_eq!(out.skipped, skipped);
    assert_eq!(evaluated + skipped, space.len());
}

/// The deterministic identity of a ranked model outcome, down to score bits.
fn ranked_key(o: &ModelExploreOutcome) -> Vec<(String, u64, u64, Option<usize>)> {
    o.ranked
        .iter()
        .map(|r| {
            (format!("{}", r.mapping), r.score.to_bits(), r.report.total_cycles, r.index)
        })
        .collect()
}

#[test]
fn gat_joint_winner_beats_every_uniform_preset_and_is_thread_invariant() {
    let hw = AccelConfig::paper_default();
    let workload = GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 16);
    let model = GnnModel::gat_2layer(8, 7);
    let opts = small_opts();
    let cache = DseCache::new();
    let out = explore_model(&model, &workload, &hw, &opts, &cache);
    let best = out.best().expect("non-empty GAT space");
    assert!(out.phase_cache_hits > 0, "per-layer GAT searches must share phase sims");

    // The winner beats (never loses to) EVERY uniform Table V preset chain,
    // not just the best one.
    let mut evaluated_presets = 0;
    for preset in Preset::all() {
        let Ok(dfs) = uniform_layer_dataflows(&model, &workload, &preset, &hw) else {
            continue;
        };
        let chain = to_chain(&model, &workload, &dfs, &[Link::Sequential], &hw)
            .expect("uniform GAT chain lowers");
        let r = evaluate_chain(&chain, &hw).expect("uniform GAT chain evaluates");
        evaluated_presets += 1;
        assert!(
            best.report.total_cycles <= r.total_cycles,
            "{}: uniform {} beats joint winner {}",
            preset.name,
            r.total_cycles,
            best.report.total_cycles
        );
        // Every GAT chain carries the SDDMM stage per layer.
        assert_eq!(r.stages.len(), 6, "{}", preset.name);
    }
    assert_eq!(evaluated_presets, 9, "all Table V presets are AC and SDDMM-legal");

    // Thread-count invariance, down to score bits.
    let two = explore_model(
        &model,
        &workload,
        &hw,
        &ModelDseOptions { threads: 1, ..small_opts() },
        &DseCache::new(),
    );
    let eight = explore_model(
        &model,
        &workload,
        &hw,
        &ModelDseOptions { threads: 8, chunk: 3, ..small_opts() },
        &DseCache::new(),
    );
    assert_eq!(ranked_key(&two), ranked_key(&eight));
    assert_eq!(ranked_key(&out), ranked_key(&two));
}

#[test]
fn gat_factored_search_is_bit_identical_to_reference_arm() {
    // The acceptance criterion: the factored path (phase cache + pruning in
    // the per-layer searches) and the `--no-prune --no-phase-cache` reference
    // produce bit-identical ranked GAT outcomes.
    let hw = AccelConfig::paper_default();
    let workload = GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 16);
    let model = GnnModel::gat_2layer(8, 7);
    let fast = explore_model(&model, &workload, &hw, &small_opts(), &DseCache::new());
    let reference = explore_model(
        &model,
        &workload,
        &hw,
        &ModelDseOptions { prune: false, phase_cache: false, ..small_opts() },
        &DseCache::new(),
    );
    assert_eq!(reference.phase_sims, 0);
    assert_eq!(reference.phase_cache_hits, 0);
    assert!(fast.phase_sims > 0);
    assert_eq!(ranked_key(&fast), ranked_key(&reference));
}

#[test]
fn cora_gcn2_specialised_mapping_strictly_beats_best_uniform_preset() {
    let hw = AccelConfig::paper_default();
    let workload = GnnWorkload::gcn_layer(&DatasetSpec::cora().generate(3), 16);
    let model = GnnModel::gcn_2layer(7);
    let opts = ModelDseOptions { threads: 4, per_layer_k: 4, top_k: 12, ..Default::default() };
    let cache = DseCache::new();
    let out = explore_model(&model, &workload, &hw, &opts, &cache);

    let best = out.best().expect("winner");
    let uniform = out.uniform.as_ref().expect("uniform baseline");
    // The acceptance headline: per-layer specialisation beats the best single
    // Table V preset applied to every layer, strictly.
    assert!(
        best.report.total_cycles < uniform.total_cycles,
        "winner {} vs uniform {} ({})",
        best.report.total_cycles,
        uniform.total_cycles,
        uniform.preset
    );
    assert!(best.index.is_some(), "winner is a real member of the joint space");
    // Layer specialisation: the two layers' dataflows differ (F flips from
    // 1433 to 16 across the boundary, so the best patterns do too).
    let dfs = &best.mapping.layer_dataflows;
    assert_eq!(dfs.len(), 2);
    assert_ne!(dfs[0], dfs[1], "{}", best.mapping);
    // And the ranked report contains a *pipelined* specialised mapping that
    // also strictly beats the uniform preset (on Cora it ties the optimum:
    // the tiny second layer pipelines at zero cost).
    let pipelined_winner = out
        .ranked
        .iter()
        .find(|r| r.mapping.is_pipelined())
        .expect("a pipelined mapping ranks");
    assert!(
        pipelined_winner.report.total_cycles < uniform.total_cycles,
        "pipelined {} vs uniform {}",
        pipelined_winner.report.total_cycles,
        uniform.total_cycles
    );
}
