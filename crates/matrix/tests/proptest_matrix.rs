//! Property-based tests for the matrix substrate.

use proptest::prelude::*;

use omega_matrix::ops::{gemm, gemm_parallel, spmm, spmm_parallel};
use omega_matrix::{CooMatrix, CsrMatrix, DenseMatrix, Elem};

/// Strategy: a small dense matrix with integer-valued entries so that float
/// accumulation is exact and results can be compared with `==` across
/// different summation orders.
fn dense_mat(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(-4i8..=4, rows * cols)
        .prop_map(move |v| {
            DenseMatrix::from_vec(rows, cols, v.into_iter().map(|x| x as Elem).collect()).unwrap()
        })
}

/// Strategy: a sparse matrix as a boolean mask + values.
fn sparse_mat(rows: usize, cols: usize) -> impl Strategy<Value = CsrMatrix> {
    proptest::collection::vec((0..rows, 0..cols, 1i8..=3), 0..(rows * cols).max(1)).prop_map(
        move |triplets| {
            let mut coo = CooMatrix::new(rows, cols);
            for (r, c, v) in triplets {
                coo.push(r, c, v as Elem).unwrap();
            }
            coo.to_csr()
        },
    )
}

proptest! {
    #[test]
    fn csr_round_trip_preserves_dense((rows, cols) in (1usize..12, 1usize..12), seed in 0u8..8) {
        let mut coo = CooMatrix::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if (i * 7 + j * 3 + seed as usize).is_multiple_of(4) {
                    coo.push(i, j, (i + j) as Elem + 1.0).unwrap();
                }
            }
        }
        let csr = coo.to_csr();
        prop_assert_eq!(csr.to_dense(), coo.to_dense());
        // Structural invariants.
        prop_assert!(csr.row_ptr().windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*csr.row_ptr().last().unwrap() as usize, csr.nnz());
        for r in 0..rows {
            let rc = csr.row_cols(r);
            prop_assert!(rc.windows(2).all(|w| w[0] < w[1]), "row columns sorted & unique");
        }
    }

    #[test]
    fn transpose_involution(a in sparse_mat(9, 7)) {
        prop_assert_eq!(a.transpose().transpose().to_dense(), a.to_dense());
        prop_assert_eq!(a.transpose().nnz(), a.nnz());
    }

    #[test]
    fn gemm_associates_with_identity(a in dense_mat(5, 4)) {
        let i = DenseMatrix::identity(4);
        prop_assert_eq!(gemm(&a, &i).unwrap(), a);
    }

    #[test]
    fn gemm_parallel_matches_sequential(a in dense_mat(7, 5), b in dense_mat(5, 6), threads in 1usize..6) {
        let seq = gemm(&a, &b).unwrap();
        prop_assert_eq!(gemm_parallel(&a, &b, threads).unwrap(), seq);
    }

    #[test]
    fn spmm_matches_densified_gemm(a in sparse_mat(8, 6), b in dense_mat(6, 5)) {
        let via_spmm = spmm(&a, &b).unwrap();
        let via_gemm = gemm(&a.to_dense(), &b).unwrap();
        prop_assert_eq!(via_spmm, via_gemm);
    }

    #[test]
    fn spmm_parallel_matches_sequential(a in sparse_mat(10, 6), b in dense_mat(6, 4), threads in 1usize..6) {
        let seq = spmm(&a, &b).unwrap();
        prop_assert_eq!(spmm_parallel(&a, &b, threads).unwrap(), seq);
    }

    #[test]
    fn gemm_distributes_over_matrix_sum(a in dense_mat(4, 3), b in dense_mat(3, 4), c in dense_mat(3, 4)) {
        // (A·B) + (A·C) == A·(B + C) — exact for integer-valued entries.
        let bc = DenseMatrix::from_fn(3, 4, |i, j| b.get(i, j) + c.get(i, j));
        let lhs_b = gemm(&a, &b).unwrap();
        let lhs_c = gemm(&a, &c).unwrap();
        let sum = DenseMatrix::from_fn(4, 4, |i, j| lhs_b.get(i, j) + lhs_c.get(i, j));
        prop_assert_eq!(gemm(&a, &bc).unwrap(), sum);
    }

    #[test]
    fn sparsity_bounds(a in sparse_mat(6, 6)) {
        let s = a.sparsity();
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!(a.max_degree() <= a.cols());
        let degs = a.degrees();
        prop_assert_eq!(degs.iter().sum::<usize>(), a.nnz());
    }
}
