//! Compressed Sparse Row matrix — the adjacency representation the paper assumes.

use crate::{DenseMatrix, Elem, MatrixError, Result};

/// A sparse matrix in Compressed Sparse Row format.
///
/// Matches the paper's Fig. 3b: `row_ptr` is the "Vertex-array" (length `rows + 1`)
/// and `col_idx` is the "Edge-array" (length `nnz`), so the neighbours of a vertex
/// are stored back-to-back. Values are kept separately; for an unweighted adjacency
/// matrix they are all `1.0` (GCN-style normalisation produces other weights).
///
/// Indices are `u32` (graphs in Table IV have ≤ ~14k batched vertices; `u32` halves
/// the index footprint, which matters because the simulator charges buffer energy
/// per word).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<Elem>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw arrays, validating the structural invariants.
    ///
    /// # Errors
    /// * [`MatrixError::MalformedRowPtr`] — wrong `row_ptr` length, non-zero start,
    ///   non-monotone pointers, or final pointer not equal to `col_idx.len()`.
    /// * [`MatrixError::BadBufferLen`] — `values.len() != col_idx.len()`.
    /// * [`MatrixError::IndexOutOfBounds`] — any column index `>= cols`.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        values: Vec<Elem>,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1 {
            return Err(MatrixError::MalformedRowPtr { detail: "row_ptr length must be rows + 1" });
        }
        if row_ptr.first() != Some(&0) {
            return Err(MatrixError::MalformedRowPtr { detail: "row_ptr must start at 0" });
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(MatrixError::MalformedRowPtr { detail: "row_ptr must be non-decreasing" });
        }
        if *row_ptr.last().expect("non-empty by construction") as usize != col_idx.len() {
            return Err(MatrixError::MalformedRowPtr { detail: "row_ptr must end at nnz" });
        }
        if values.len() != col_idx.len() {
            return Err(MatrixError::BadBufferLen { expected: col_idx.len(), actual: values.len() });
        }
        if let Some(&bad) = col_idx.iter().find(|&&c| c as usize >= cols) {
            return Err(MatrixError::IndexOutOfBounds { what: "column", index: bad as usize, bound: cols });
        }
        Ok(CsrMatrix { rows, cols, row_ptr, col_idx, values })
    }

    /// An empty (all-zero) `rows × cols` CSR matrix.
    pub fn empty(rows: usize, cols: usize) -> Self {
        CsrMatrix { rows, cols, row_ptr: vec![0; rows + 1], col_idx: Vec::new(), values: Vec::new() }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Number of non-zeros in row `r` — the vertex degree for an adjacency matrix
    /// (the paper's `N` for that vertex).
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        (self.row_ptr[r + 1] - self.row_ptr[r]) as usize
    }

    /// Column indices of row `r` (the neighbour list).
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize]
    }

    /// Values of row `r`.
    #[inline]
    pub fn row_vals(&self, r: usize) -> &[Elem] {
        &self.values[self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize]
    }

    /// Iterator over `(col, value)` pairs of row `r`.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, Elem)> + '_ {
        self.row_cols(r).iter().zip(self.row_vals(r)).map(|(&c, &v)| (c as usize, v))
    }

    /// The row-pointer ("vertex") array, length `rows + 1`.
    #[inline]
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// The column-index ("edge") array, length `nnz`.
    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The values array, length `nnz`.
    #[inline]
    pub fn values(&self) -> &[Elem] {
        &self.values
    }

    /// Fraction of zero entries, in `[0, 1]`. Graphs of interest exceed 0.99
    /// (Section II-A).
    pub fn sparsity(&self) -> f64 {
        let total = self.rows as f64 * self.cols as f64;
        if total == 0.0 {
            return 1.0;
        }
        1.0 - self.nnz() as f64 / total
    }

    /// Per-row non-zero counts (degree vector).
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.rows).map(|r| self.row_nnz(r)).collect()
    }

    /// Maximum row degree — the "evil row" the paper blames for SPhighV's runtime
    /// on HF datasets (Section V-B).
    pub fn max_degree(&self) -> usize {
        (0..self.rows).map(|r| self.row_nnz(r)).max().unwrap_or(0)
    }

    /// Mean row degree.
    pub fn mean_degree(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        self.nnz() as f64 / self.rows as f64
    }

    /// Materialises the matrix densely (test/debug helper).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                *m.get_mut(r, c) += v;
            }
        }
        m
    }

    /// Transposed copy (CSR of the transpose), used for CA phase-order workloads
    /// where Aggregation consumes Combination output.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0u32; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cursor = counts.clone();
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                let slot = cursor[c] as usize;
                col_idx[slot] = r as u32;
                values[slot] = v;
                cursor[c] += 1;
            }
        }
        CsrMatrix { rows: self.cols, cols: self.rows, row_ptr: counts, col_idx, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CsrMatrix {
        // Fig. 3 of the paper: 5 vertices, 11 edges (with self loops).
        // Adjacency rows: [0,1], [1,2], [1,2,4], [0,3], [0,4]
        CsrMatrix::from_raw_parts(
            5,
            5,
            vec![0, 2, 4, 7, 9, 11],
            vec![0, 1, 1, 2, 1, 2, 4, 0, 3, 0, 4],
            vec![1.0; 11],
        )
        .unwrap()
    }

    #[test]
    fn paper_example_structure() {
        let a = example();
        assert_eq!(a.nnz(), 11);
        assert_eq!(a.row_cols(2), &[1, 2, 4]);
        assert_eq!(a.row_nnz(2), 3);
        assert_eq!(a.max_degree(), 3);
        assert!((a.mean_degree() - 2.2).abs() < 1e-9);
        assert_eq!(a.degrees(), vec![2, 2, 3, 2, 2]);
        assert!((a.sparsity() - (1.0 - 11.0 / 25.0)).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_malformed_inputs() {
        // Wrong row_ptr length.
        assert!(matches!(
            CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]),
            Err(MatrixError::MalformedRowPtr { .. })
        ));
        // Does not start at zero.
        assert!(matches!(
            CsrMatrix::from_raw_parts(1, 2, vec![1, 1], vec![], vec![]),
            Err(MatrixError::MalformedRowPtr { .. })
        ));
        // Decreasing.
        assert!(matches!(
            CsrMatrix::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]),
            Err(MatrixError::MalformedRowPtr { .. })
        ));
        // Last pointer != nnz.
        assert!(matches!(
            CsrMatrix::from_raw_parts(1, 2, vec![0, 2], vec![0], vec![1.0]),
            Err(MatrixError::MalformedRowPtr { .. })
        ));
        // Values length mismatch.
        assert!(matches!(
            CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![0], vec![]),
            Err(MatrixError::BadBufferLen { .. })
        ));
        // Column out of range.
        assert!(matches!(
            CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![5], vec![1.0]),
            Err(MatrixError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::empty(3, 7);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.shape(), (3, 7));
        assert_eq!(m.sparsity(), 1.0);
        assert_eq!(m.max_degree(), 0);
        assert_eq!(m.mean_degree(), 0.0);
    }

    #[test]
    fn to_dense_round_trip() {
        let a = example();
        let d = a.to_dense();
        assert_eq!(d.get(2, 4), 1.0);
        assert_eq!(d.get(0, 4), 0.0);
        // Row sums equal degrees for an unweighted matrix.
        for r in 0..5 {
            let sum: f32 = d.row(r).iter().sum();
            assert_eq!(sum as usize, a.row_nnz(r));
        }
    }

    #[test]
    fn transpose_is_involutive_and_correct() {
        let a = example();
        let t = a.transpose();
        assert_eq!(t.shape(), (5, 5));
        assert_eq!(t.nnz(), a.nnz());
        assert_eq!(t.to_dense(), a.to_dense().transpose());
        assert_eq!(t.transpose().to_dense(), a.to_dense());
    }

    #[test]
    fn row_iter_matches_slices() {
        let a = example();
        let pairs: Vec<_> = a.row_iter(3).collect();
        assert_eq!(pairs, vec![(0, 1.0), (3, 1.0)]);
    }
}
