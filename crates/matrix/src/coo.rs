//! Coordinate-format (triplet) sparse matrix builder.

use crate::{CsrMatrix, DenseMatrix, Elem, MatrixError, Result};

/// A sparse matrix under construction, stored as `(row, col, value)` triplets.
///
/// COO is the natural format for *building* sparse matrices (graph edge lists arrive
/// in arbitrary order); the engines consume the compiled [`CsrMatrix`] form, which is
/// what the paper assumes for the adjacency matrix (Section II-A, Fig. 3b).
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, Elem)>,
}

impl CooMatrix {
    /// Creates an empty `rows × cols` COO matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix { rows, cols, entries: Vec::new() }
    }

    /// Creates an empty COO matrix with pre-reserved capacity for `nnz` entries.
    pub fn with_capacity(rows: usize, cols: usize, nnz: usize) -> Self {
        CooMatrix { rows, cols, entries: Vec::with_capacity(nnz) }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triplets (duplicates not yet merged).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Appends a triplet.
    ///
    /// # Errors
    /// Returns [`MatrixError::IndexOutOfBounds`] when `row`/`col` exceed the shape.
    pub fn push(&mut self, row: usize, col: usize, value: Elem) -> Result<()> {
        if row >= self.rows {
            return Err(MatrixError::IndexOutOfBounds { what: "row", index: row, bound: self.rows });
        }
        if col >= self.cols {
            return Err(MatrixError::IndexOutOfBounds { what: "column", index: col, bound: self.cols });
        }
        self.entries.push((row as u32, col as u32, value));
        Ok(())
    }

    /// Iterates over the stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Elem)> + '_ {
        self.entries.iter().map(|&(r, c, v)| (r as usize, c as usize, v))
    }

    /// Compiles the triplets to CSR, summing duplicate coordinates.
    ///
    /// Duplicate summing matters for batched graphs where an edge may be recorded in
    /// both directions plus a self loop.
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row: O(nnz + rows), no comparison sort needed.
        let mut row_counts = vec![0u32; self.rows + 1];
        for &(r, _, _) in &self.entries {
            row_counts[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut cols: Vec<u32> = vec![0; self.entries.len()];
        let mut vals: Vec<Elem> = vec![0.0; self.entries.len()];
        let mut cursor = row_counts.clone();
        for &(r, c, v) in &self.entries {
            let slot = cursor[r as usize] as usize;
            cols[slot] = c;
            vals[slot] = v;
            cursor[r as usize] += 1;
        }
        // Sort within each row and merge duplicates.
        let mut out_ptr: Vec<u32> = Vec::with_capacity(self.rows + 1);
        let mut out_cols: Vec<u32> = Vec::with_capacity(self.entries.len());
        let mut out_vals: Vec<Elem> = Vec::with_capacity(self.entries.len());
        out_ptr.push(0);
        let mut scratch: Vec<(u32, Elem)> = Vec::new();
        for r in 0..self.rows {
            let (lo, hi) = (row_counts[r] as usize, row_counts[r + 1] as usize);
            scratch.clear();
            scratch.extend(cols[lo..hi].iter().copied().zip(vals[lo..hi].iter().copied()));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut v) = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                out_cols.push(c);
                out_vals.push(v);
                i = j;
            }
            out_ptr.push(out_cols.len() as u32);
        }
        CsrMatrix::from_raw_parts(self.rows, self.cols, out_ptr, out_cols, out_vals)
            .expect("COO compilation produces structurally valid CSR")
    }

    /// Materialises the triplets as a dense matrix (duplicates summed).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.rows, self.cols);
        for &(r, c, v) in &self.entries {
            *m.get_mut(r as usize, c as usize) += v;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_bounds() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(0, 0, 1.0).is_ok());
        assert!(matches!(coo.push(2, 0, 1.0), Err(MatrixError::IndexOutOfBounds { what: "row", .. })));
        assert!(matches!(coo.push(0, 5, 1.0), Err(MatrixError::IndexOutOfBounds { what: "column", .. })));
        assert_eq!(coo.nnz(), 1);
    }

    #[test]
    fn to_csr_sorts_rows_and_columns() {
        let mut coo = CooMatrix::with_capacity(3, 3, 4);
        coo.push(2, 0, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(0, 1, 3.0).unwrap();
        coo.push(1, 1, 4.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.row_cols(0), &[1, 2]);
        assert_eq!(csr.row_vals(0), &[3.0, 2.0]);
        assert_eq!(csr.row_cols(2), &[0]);
    }

    #[test]
    fn to_csr_merges_duplicates() {
        let mut coo = CooMatrix::new(1, 2);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(0, 1, 2.5).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.row_vals(0), &[3.5]);
    }

    #[test]
    fn to_dense_matches_to_csr() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(1, 3, 2.0).unwrap();
        coo.push(1, 3, 1.0).unwrap();
        coo.push(2, 0, -1.0).unwrap();
        let dense = coo.to_dense();
        assert_eq!(dense.get(1, 3), 3.0);
        assert_eq!(dense.get(2, 0), -1.0);
        assert_eq!(coo.to_csr().to_dense(), dense);
    }

    #[test]
    fn empty_rows_are_preserved() {
        let coo = CooMatrix::new(4, 4);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
        for r in 0..4 {
            assert!(csr.row_cols(r).is_empty());
        }
    }

    #[test]
    fn iter_yields_pushed_triplets() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(1, 0, 5.0).unwrap();
        let items: Vec<_> = coo.iter().collect();
        assert_eq!(items, vec![(1, 0, 5.0)]);
    }
}
