//! Reference kernels: dense GEMM and CSR SpMM, sequential and parallel.
//!
//! These are the functional ground truth for the accelerator engines in
//! `omega-accel`: whichever loop order and tiling a dataflow prescribes, the engine's
//! functional output must equal these kernels' output (up to float associativity).
//!
//! Parallel variants use crossbeam scoped threads over disjoint row blocks — the
//! "commodity CPU" baseline GNN accelerators are motivated against (Section I).

use crossbeam::thread;

use crate::{CsrMatrix, DenseMatrix, Elem, MatrixError, Result};

/// Computes `C = A · B` for dense `A` and `B`.
///
/// # Errors
/// [`MatrixError::DimMismatch`] when `A.cols() != B.rows()`.
pub fn gemm(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.cols() != b.rows() {
        return Err(MatrixError::DimMismatch { op: "gemm", lhs: a.shape(), rhs: b.shape() });
    }
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    gemm_block(a, b, c.as_mut_slice(), 0, a.rows());
    Ok(c)
}

/// Computes `C = A · B` where `A` is sparse (CSR) and `B` dense — the paper's
/// Aggregation phase (`H = A · X0`).
///
/// # Errors
/// [`MatrixError::DimMismatch`] when `A.cols() != B.rows()`.
pub fn spmm(a: &CsrMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    if a.cols() != b.rows() {
        return Err(MatrixError::DimMismatch { op: "spmm", lhs: a.shape(), rhs: b.shape() });
    }
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    spmm_block(a, b, c.as_mut_slice(), 0, a.rows());
    Ok(c)
}

/// Parallel `C = A · B` over row blocks using `threads` workers.
///
/// Produces bit-identical results to [`gemm`] (each output row is computed by exactly
/// one worker in the same accumulation order).
///
/// # Errors
/// [`MatrixError::DimMismatch`] when `A.cols() != B.rows()`.
pub fn gemm_parallel(a: &DenseMatrix, b: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
    if a.cols() != b.rows() {
        return Err(MatrixError::DimMismatch { op: "gemm_parallel", lhs: a.shape(), rhs: b.shape() });
    }
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    let rows_per = rows_per_worker(a.rows(), threads);
    let cols = b.cols();
    thread::scope(|s| {
        for (start, chunk) in c.par_row_chunks_mut(rows_per) {
            let rows_here = chunk.len() / cols.max(1);
            s.spawn(move |_| gemm_block(a, b, chunk, start, rows_here));
        }
    })
    .expect("worker threads do not panic");
    Ok(c)
}

/// Parallel `C = A · B` (CSR × dense) over row blocks using `threads` workers.
///
/// # Errors
/// [`MatrixError::DimMismatch`] when `A.cols() != B.rows()`.
pub fn spmm_parallel(a: &CsrMatrix, b: &DenseMatrix, threads: usize) -> Result<DenseMatrix> {
    if a.cols() != b.rows() {
        return Err(MatrixError::DimMismatch { op: "spmm_parallel", lhs: a.shape(), rhs: b.shape() });
    }
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    let rows_per = rows_per_worker(a.rows(), threads);
    let cols = b.cols();
    thread::scope(|s| {
        for (start, chunk) in c.par_row_chunks_mut(rows_per) {
            let rows_here = chunk.len() / cols.max(1);
            s.spawn(move |_| spmm_block(a, b, chunk, start, rows_here));
        }
    })
    .expect("worker threads do not panic");
    Ok(c)
}

/// GEMM over rows `[row0, row0 + nrows)` of `A`, writing into `out` (row-major,
/// `nrows × B.cols()`).
fn gemm_block(a: &DenseMatrix, b: &DenseMatrix, out: &mut [Elem], row0: usize, nrows: usize) {
    let n = b.cols();
    for (local, i) in (row0..row0 + nrows).enumerate() {
        let arow = a.row(i);
        let crow = &mut out[local * n..(local + 1) * n];
        // ikj order: stream B rows, accumulate into the output row — good cache
        // behaviour and a fixed accumulation order shared with the parallel variant.
        for (k, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = b.row(k);
            for (c, &bkj) in crow.iter_mut().zip(brow) {
                *c += aik * bkj;
            }
        }
    }
}

/// SpMM over rows `[row0, row0 + nrows)` of CSR `A`, writing into `out`.
fn spmm_block(a: &CsrMatrix, b: &DenseMatrix, out: &mut [Elem], row0: usize, nrows: usize) {
    let n = b.cols();
    for (local, i) in (row0..row0 + nrows).enumerate() {
        let crow = &mut out[local * n..(local + 1) * n];
        for (col, v) in a.row_iter(i) {
            let brow = b.row(col);
            for (c, &bkj) in crow.iter_mut().zip(brow) {
                *c += v * bkj;
            }
        }
    }
}

fn rows_per_worker(rows: usize, threads: usize) -> usize {
    rows.div_ceil(threads.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        // Small deterministic integer-valued matrices: float accumulation is exact,
        // so sequential/parallel/dataflow results can be compared with `==`.
        DenseMatrix::from_fn(rows, cols, |i, j| {
            (((i as u64 * 31 + j as u64 * 17 + seed) % 7) as Elem) - 3.0
        })
    }

    fn sparse(rows: usize, cols: usize, seed: u64) -> CsrMatrix {
        let mut coo = CooMatrix::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if (i as u64 * 13 + j as u64 * 7 + seed).is_multiple_of(5) {
                    coo.push(i, j, (((i + j + seed as usize) % 3) as Elem) + 1.0).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn gemm_matches_hand_example() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DenseMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = gemm(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemm_identity_is_noop() {
        let a = dense(5, 5, 3);
        let c = gemm(&a, &DenseMatrix::identity(5)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn gemm_rejects_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(4, 2);
        assert!(matches!(gemm(&a, &b), Err(MatrixError::DimMismatch { .. })));
        assert!(matches!(gemm_parallel(&a, &b, 2), Err(MatrixError::DimMismatch { .. })));
    }

    #[test]
    fn spmm_matches_dense_gemm() {
        let a = sparse(6, 5, 1);
        let b = dense(5, 4, 2);
        let via_spmm = spmm(&a, &b).unwrap();
        let via_gemm = gemm(&a.to_dense(), &b).unwrap();
        assert_eq!(via_spmm, via_gemm);
    }

    #[test]
    fn spmm_rejects_mismatch() {
        let a = CsrMatrix::empty(2, 3);
        let b = DenseMatrix::zeros(4, 2);
        assert!(matches!(spmm(&a, &b), Err(MatrixError::DimMismatch { .. })));
        assert!(matches!(spmm_parallel(&a, &b, 2), Err(MatrixError::DimMismatch { .. })));
    }

    #[test]
    fn parallel_gemm_equals_sequential() {
        let a = dense(17, 9, 4);
        let b = dense(9, 13, 5);
        let seq = gemm(&a, &b).unwrap();
        for threads in [1, 2, 3, 8, 32] {
            assert_eq!(gemm_parallel(&a, &b, threads).unwrap(), seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_spmm_equals_sequential() {
        let a = sparse(23, 11, 9);
        let b = dense(11, 6, 7);
        let seq = spmm(&a, &b).unwrap();
        for threads in [1, 2, 5, 16] {
            assert_eq!(spmm_parallel(&a, &b, threads).unwrap(), seq, "threads={threads}");
        }
    }

    #[test]
    fn empty_operands_are_handled() {
        let a = DenseMatrix::zeros(0, 3);
        let b = DenseMatrix::zeros(3, 2);
        assert_eq!(gemm(&a, &b).unwrap().shape(), (0, 2));
        let sa = CsrMatrix::empty(0, 3);
        assert_eq!(spmm(&sa, &b).unwrap().shape(), (0, 2));
        assert_eq!(gemm_parallel(&a, &b, 4).unwrap().shape(), (0, 2));
    }

    #[test]
    fn zero_width_output() {
        let a = dense(3, 2, 0);
        let b = DenseMatrix::zeros(2, 0);
        assert_eq!(gemm(&a, &b).unwrap().shape(), (3, 0));
        assert_eq!(gemm_parallel(&a, &b, 2).unwrap().shape(), (3, 0));
    }
}
