//! Error type shared by all matrix constructors and kernels.

use std::fmt;

/// Convenience alias for `std::result::Result<T, MatrixError>`.
pub type Result<T> = std::result::Result<T, MatrixError>;

/// Errors produced by matrix constructors and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Two operands had incompatible shapes for the requested operation.
    DimMismatch {
        /// Operation that was attempted (e.g. `"gemm"`).
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// A buffer used to build a matrix had the wrong length for its shape.
    BadBufferLen {
        /// Expected element count (`rows * cols`).
        expected: usize,
        /// Actual element count supplied.
        actual: usize,
    },
    /// An index (row, column, or pointer) was out of bounds.
    IndexOutOfBounds {
        /// Description of the offending index.
        what: &'static str,
        /// The index value.
        index: usize,
        /// The exclusive bound it must stay under.
        bound: usize,
    },
    /// A CSR row-pointer array was malformed (wrong length or not monotone).
    MalformedRowPtr {
        /// Human-readable explanation.
        detail: &'static str,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: dimension mismatch {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::BadBufferLen { expected, actual } => {
                write!(f, "buffer length {actual} does not match shape ({expected} expected)")
            }
            MatrixError::IndexOutOfBounds { what, index, bound } => {
                write!(f, "{what} index {index} out of bounds (< {bound} required)")
            }
            MatrixError::MalformedRowPtr { detail } => write!(f, "malformed CSR row pointers: {detail}"),
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MatrixError::DimMismatch { op: "gemm", lhs: (2, 3), rhs: (4, 5) };
        assert!(e.to_string().contains("gemm"));
        assert!(e.to_string().contains("2x3"));

        let e = MatrixError::BadBufferLen { expected: 6, actual: 5 };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('6'));

        let e = MatrixError::IndexOutOfBounds { what: "column", index: 9, bound: 4 };
        assert!(e.to_string().contains("column"));

        let e = MatrixError::MalformedRowPtr { detail: "not monotone" };
        assert!(e.to_string().contains("monotone"));
    }
}
