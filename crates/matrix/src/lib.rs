//! Dense and sparse matrix substrate for the OMEGA framework.
//!
//! GNN inference is dominated by two matrix kernels (paper, Section II-A):
//!
//! * **Aggregation** — `H = A · X0`, an SpMM where `A` is the (extremely sparse)
//!   graph adjacency matrix in CSR form and `X0` is the dense feature matrix.
//! * **Combination** — `X1 = H · W`, a dense GEMM with the layer weights `W`.
//!
//! This crate provides the data structures for both operands ([`DenseMatrix`],
//! [`CsrMatrix`], [`CooMatrix`]) and *reference* kernels ([`ops`]) that act as
//! functional ground truth for the accelerator engines in `omega-accel`: whatever
//! dataflow the simulator walks, its functional output must match these kernels.
//!
//! The kernels come in sequential and parallel (crossbeam scoped threads) flavours;
//! the parallel ones exist both to keep large-workload tests fast and as the kind of
//! CPU baseline the paper contrasts spatial accelerators against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coo;
mod csr;
mod dense;
mod error;
pub mod ops;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::{MatrixError, Result};

/// Scalar element type used throughout the framework.
///
/// GNN inference accelerators in the paper operate on single-precision floats;
/// keeping this as an alias makes the choice explicit and greppable.
pub type Elem = f32;
