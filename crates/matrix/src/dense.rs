//! Row-major dense matrix.

use crate::{Elem, MatrixError, Result};

/// A row-major dense matrix of [`Elem`] values.
///
/// This is the representation of the feature matrix `X0`, the intermediate matrix
/// `H`, the weight matrix `W`, and the output `X1` in the paper's notation (Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Elem>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Errors
    /// Returns [`MatrixError::BadBufferLen`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Elem>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::BadBufferLen { expected: rows * cols, actual: data.len() });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Creates a matrix whose entry `(i, j)` is `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Elem) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements (`rows * cols`).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(i, j)`; panics when out of bounds (debug-friendly indexing).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Elem {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        self.data[i * self.cols + j]
    }

    /// Mutable element access at `(i, j)`.
    #[inline]
    pub fn get_mut(&mut self, i: usize, j: usize) -> &mut Elem {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &mut self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)` to `v`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: Elem) {
        *self.get_mut(i, j) = v;
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Elem] {
        debug_assert!(i < self.rows, "row {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [Elem] {
        debug_assert!(i < self.rows, "row {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[Elem] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Elem] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<Elem> {
        self.data
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> DenseMatrix {
        DenseMatrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Splits the matrix rows into contiguous non-overlapping mutable chunks of
    /// `rows_per_chunk` rows each (the last chunk may be shorter). Used by the
    /// parallel kernels to hand each worker an exclusive output region.
    pub fn par_row_chunks_mut(&mut self, rows_per_chunk: usize) -> impl Iterator<Item = (usize, &mut [Elem])> {
        let cols = self.cols;
        // `.max(1)` keeps `chunks_mut` legal for zero-width matrices (empty buffer →
        // the iterator simply yields nothing).
        self.data
            .chunks_mut((rows_per_chunk.max(1) * cols).max(1))
            .enumerate()
            .map(move |(k, chunk)| (k * rows_per_chunk.max(1), chunk))
    }

    /// Maximum absolute difference against `other`.
    ///
    /// # Errors
    /// Returns [`MatrixError::DimMismatch`] if shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> Result<Elem> {
        if self.shape() != other.shape() {
            return Err(MatrixError::DimMismatch { op: "max_abs_diff", lhs: self.shape(), rhs: other.shape() });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, Elem::max))
    }

    /// `true` when every element differs from `other` by at most
    /// `atol + rtol * |other|` (NumPy-style allclose).
    pub fn allclose(&self, other: &DenseMatrix, rtol: Elem, atol: Elem) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= atol + rtol * b.abs())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> Elem {
        self.data.iter().map(|v| v * v).sum::<Elem>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_content() {
        let m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert!(!m.is_empty());
        assert!(DenseMatrix::zeros(0, 5).is_empty());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = DenseMatrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert_eq!(err, MatrixError::BadBufferLen { expected: 4, actual: 3 });
    }

    #[test]
    fn indexing_round_trips() {
        let mut m = DenseMatrix::zeros(2, 3);
        m.set(1, 2, 7.5);
        assert_eq!(m.get(1, 2), 7.5);
        assert_eq!(m.row(1), &[0.0, 0.0, 7.5]);
        m.row_mut(0)[1] = -1.0;
        assert_eq!(m.get(0, 1), -1.0);
    }

    #[test]
    fn identity_and_transpose() {
        let i3 = DenseMatrix::identity(3);
        assert_eq!(i3.get(0, 0), 1.0);
        assert_eq!(i3.get(0, 1), 0.0);
        assert_eq!(i3.transpose(), i3);

        let m = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn from_fn_fills_row_major() {
        let m = DenseMatrix::from_fn(2, 2, |i, j| (i * 10 + j) as Elem);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn allclose_and_max_abs_diff() {
        let a = DenseMatrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.0);
        assert!(a.allclose(&b, 0.0, 0.0));
        b.set(0, 2, 3.001);
        assert!((a.max_abs_diff(&b).unwrap() - 0.001).abs() < 1e-6);
        assert!(a.allclose(&b, 1e-2, 0.0));
        assert!(!a.allclose(&b, 1e-6, 1e-6));

        let c = DenseMatrix::zeros(2, 2);
        assert!(a.max_abs_diff(&c).is_err());
        assert!(!a.allclose(&c, 1.0, 1.0));
    }

    #[test]
    fn par_row_chunks_cover_all_rows() {
        let mut m = DenseMatrix::from_fn(5, 2, |i, _| i as Elem);
        let mut seen = vec![];
        for (start, chunk) in m.par_row_chunks_mut(2) {
            for r in 0..chunk.len() / 2 {
                seen.push(start + r);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn frobenius_norm_matches_hand_computation() {
        let m = DenseMatrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }
}
