//! Hardware configuration of the simulated spatial accelerator.

use serde::{Deserialize, Serialize};

/// Parameters of the templated flexible spatial accelerator (Fig. 1).
///
/// Defaults follow the paper's evaluation setup (Section V-A3): 512 PEs, a 64 B
/// banked register file per PE, and distribution/reduction bandwidth "sufficient
/// to ensure that the data is received from (or sent to) all the PEs without any
/// stalls" — i.e. one element per PE per cycle. The bandwidth case study
/// (Fig. 16) lowers [`AccelConfig::dist_bandwidth`] / [`AccelConfig::red_bandwidth`].
#[derive(Debug, Clone, Copy, PartialEq, Deserialize, Serialize)]
pub struct AccelConfig {
    /// Number of processing elements.
    pub num_pes: usize,
    /// Register-file bytes per PE (64 B default).
    pub rf_bytes_per_pe: usize,
    /// Bytes per data word (4 for `f32`).
    pub word_bytes: usize,
    /// Global-buffer capacity in bytes. The paper sizes it so the evaluation
    /// batches fit on chip ("there is sufficient on-chip buffering for a batch
    /// of graph classification datasets and for node classification datasets",
    /// Section V-A2); shrink it to expose Seq's Fig. 6 DRAM cliff.
    pub gb_bytes: usize,
    /// Global-buffer bank size in bytes (1 MB in the paper's energy model).
    pub gb_bank_bytes: usize,
    /// Elements per cycle the distribution network can deliver from the global
    /// buffer to the PEs.
    pub dist_bandwidth: usize,
    /// Elements per cycle the reduction/collection network can drain from the PEs
    /// to the global buffer.
    pub red_bandwidth: usize,
    /// Pipeline latency of the distribution network in cycles (single-cycle in
    /// MAERI, Section V-A1).
    pub dist_latency: u64,
    /// Adder-tree latency per level, used as a per-pass pipeline-fill cost when
    /// reduction is spatial.
    pub tree_latency_per_level: u64,
    /// Cost-model ablation knobs (all defaults reproduce the paper's behaviour;
    /// the `ablation` bench flips them one at a time).
    pub knobs: ModelKnobs,
}

/// Ablation switches for the modelling decisions DESIGN.md §3 calls out.
///
/// Defaults are the calibrated model; flipping a knob quantifies how much that
/// decision contributes to the reproduced shapes (see the `ablation` artifact
/// of the `repro` binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Deserialize, Serialize)]
pub struct ModelKnobs {
    /// Live partial sums are shared across the `T_red` PEs of a spatial
    /// reduction group (on = paper behaviour: SP1/SP2 fit, SPhighV spills).
    pub psum_group_sharing: bool,
    /// Only the RF-overflow fraction of live psums spills (on); off spills the
    /// whole working set on any overflow.
    pub fractional_spill: bool,
    /// Charge NoC pipeline-fill (tree depth + distribution latency) per pass
    /// instead of once per phase (off = paper behaviour: the NoCs stream).
    pub per_pass_fill: bool,
    /// Enforce [`AccelConfig::rf_bytes_per_pe`] / [`AccelConfig::gb_bytes`] as
    /// real budgets: working sets that overflow them trigger costed spill
    /// passes (extra NoC/GB traffic through the counters) instead of being
    /// silently free. Off = paper behaviour ("sufficient on-chip buffering",
    /// Section V-A2): peaks are still *reported* in
    /// [`crate::PhaseStats::rf_peak_bytes`] / [`crate::PhaseStats::gb_peak_bytes`],
    /// but nothing spills on their account.
    pub enforce_capacity: bool,
    /// Route every phase simulation through the per-edge reference walk
    /// (`EngineOptions::reference_walk`) instead of the summary-driven
    /// O(degree classes + tile boundaries) walk. Off = identical results,
    /// orders of magnitude faster on large graphs; on = the differential
    /// oracle, O(nnz) per simulation.
    pub reference_walk: bool,
}

impl Default for ModelKnobs {
    fn default() -> Self {
        ModelKnobs {
            psum_group_sharing: true,
            fractional_spill: true,
            per_pass_fill: false,
            enforce_capacity: false,
            reference_walk: false,
        }
    }
}

impl AccelConfig {
    /// The paper's evaluation configuration: 512 PEs, 64 B RFs, stall-free NoCs.
    pub fn paper_default() -> Self {
        AccelConfig {
            num_pes: 512,
            rf_bytes_per_pe: 64,
            word_bytes: 4,
            gb_bytes: 64 << 20,
            gb_bank_bytes: 1 << 20,
            dist_bandwidth: 512,
            red_bandwidth: 512,
            dist_latency: 1,
            tree_latency_per_level: 1,
            knobs: ModelKnobs::default(),
        }
    }

    /// Same configuration scaled to a different PE count (Fig. 15 uses 2048);
    /// bandwidth scales with the PE count to stay "sufficient".
    pub fn with_pes(mut self, num_pes: usize) -> Self {
        self.num_pes = num_pes;
        self.dist_bandwidth = num_pes;
        self.red_bandwidth = num_pes;
        self
    }

    /// Same configuration with both NoC bandwidths set to `elems_per_cycle`
    /// (Fig. 16's "number of elements that can be sent to or received from global
    /// buffer in parallel").
    pub fn with_bandwidth(mut self, elems_per_cycle: usize) -> Self {
        self.dist_bandwidth = elems_per_cycle.max(1);
        self.red_bandwidth = elems_per_cycle.max(1);
        self
    }

    /// Register-file capacity per PE in words.
    pub fn rf_words(&self) -> usize {
        self.rf_bytes_per_pe / self.word_bytes
    }

    /// Full-machine bandwidth share (used by Seq/SP where one phase owns the
    /// whole accelerator at a time).
    pub fn full_bandwidth(&self) -> BandwidthShare {
        BandwidthShare { dist: self.dist_bandwidth, red: self.red_bandwidth }
    }

    /// The two complementary NoC shares of a producer/consumer PE partition
    /// (the paper's PP strategy applied between any two pipelined stages, not
    /// just the Agg/Cmb pair): each side receives its proportional
    /// [`Self::bandwidth_fraction`]. When the allocations fit the machine
    /// (`producer_pes + consumer_pes <= num_pes`) the shares never
    /// oversubscribe the NoC beyond the per-side minimum of one element/cycle.
    pub fn partition_bandwidth(
        &self,
        producer_pes: usize,
        consumer_pes: usize,
    ) -> (BandwidthShare, BandwidthShare) {
        (self.bandwidth_fraction(producer_pes), self.bandwidth_fraction(consumer_pes))
    }

    /// Bandwidth share proportional to a PE allocation fraction — PP splits the
    /// NoC between the two concurrently-running phases ("the bandwidth is shared
    /// between the two phases", Section V-C3).
    pub fn bandwidth_fraction(&self, pes_allocated: usize) -> BandwidthShare {
        let frac = |total: usize| -> usize {
            if self.num_pes == 0 {
                return 1;
            }
            ((total * pes_allocated) / self.num_pes).max(1)
        };
        BandwidthShare { dist: frac(self.dist_bandwidth), red: frac(self.red_bandwidth) }
    }
}

/// The NoC bandwidth available to one phase during its execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct BandwidthShare {
    /// Distribution elements per cycle.
    pub dist: usize,
    /// Reduction/collection elements per cycle.
    pub red: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = AccelConfig::paper_default();
        assert_eq!(c.num_pes, 512);
        assert_eq!(c.rf_words(), 16);
        assert_eq!(c.dist_bandwidth, 512);
        assert_eq!(c.gb_bank_bytes, 1 << 20);
    }

    #[test]
    fn with_pes_scales_bandwidth() {
        let c = AccelConfig::paper_default().with_pes(2048);
        assert_eq!(c.num_pes, 2048);
        assert_eq!(c.dist_bandwidth, 2048);
        assert_eq!(c.red_bandwidth, 2048);
    }

    #[test]
    fn with_bandwidth_clamps_to_one() {
        let c = AccelConfig::paper_default().with_bandwidth(0);
        assert_eq!(c.dist_bandwidth, 1);
    }

    #[test]
    fn partition_bandwidth_is_complementary_and_never_oversubscribes() {
        let c = AccelConfig::paper_default();
        let (p, q) = c.partition_bandwidth(384, 128);
        assert_eq!((p.dist, q.dist), (384, 128));
        assert_eq!((p.red, q.red), (384, 128));
        // Any fitting partition stays within the machine NoC.
        for prod in [1usize, 7, 100, 256, 511] {
            let (p, q) = c.partition_bandwidth(prod, c.num_pes - prod);
            assert!(p.dist + q.dist <= c.dist_bandwidth.max(2));
            assert!(p.dist >= 1 && q.dist >= 1);
        }
    }

    #[test]
    fn bandwidth_fraction_is_proportional() {
        let c = AccelConfig::paper_default();
        let half = c.bandwidth_fraction(256);
        assert_eq!(half.dist, 256);
        assert_eq!(half.red, 256);
        let quarter = c.bandwidth_fraction(128);
        assert_eq!(quarter.dist, 128);
        // Never zero even for tiny allocations.
        assert_eq!(c.bandwidth_fraction(0).dist, 1);
    }
}
