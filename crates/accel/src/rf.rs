//! Register-file occupancy: deciding when partial sums fit or spill.

use serde::Serialize;

/// Per-PE register-file budget accounting.
///
/// The 64 B RF (16 words) must hold, simultaneously: any *stationary* operand
/// elements pinned for reuse, a small double-buffer for the streaming operands,
/// and the live partial sums of the current accumulation round. When the live
/// psums do not fit, they spill to the global buffer and every revisit costs a
/// GB write + read — the overhead the paper calls out for `SPhighV`
/// ("a huge energy value due to the overhead of writing and reading partial
/// sums", Section V-D).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RfBudget {
    /// Total words per PE.
    pub words: usize,
    /// Words pinned by stationary operands.
    pub stationary_words: usize,
    /// Words reserved to double-buffer streaming operands.
    pub stream_buffer_words: usize,
}

impl RfBudget {
    /// Budget for a PE with `words` capacity holding `stationary_words` pinned
    /// elements. Two words are reserved for streaming double-buffering.
    pub fn new(words: usize, stationary_words: usize) -> Self {
        RfBudget { words, stationary_words, stream_buffer_words: 2 }
    }

    /// Words left for live partial sums.
    pub fn psum_capacity(&self) -> usize {
        self.words
            .saturating_sub(self.stationary_words)
            .saturating_sub(self.stream_buffer_words)
    }

    /// `true` when `live_psums_per_pe` partial sums fit in the RF and accumulate
    /// locally; `false` means they spill to the global buffer.
    pub fn psums_fit(&self, live_psums_per_pe: usize) -> bool {
        live_psums_per_pe <= self.psum_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_subtracts_reservations() {
        let b = RfBudget::new(16, 1);
        assert_eq!(b.psum_capacity(), 13);
        assert!(b.psums_fit(13));
        assert!(!b.psums_fit(14));
    }

    #[test]
    fn saturates_when_overcommitted() {
        let b = RfBudget::new(4, 10);
        assert_eq!(b.psum_capacity(), 0);
        assert!(b.psums_fit(0));
        assert!(!b.psums_fit(1));
    }

    #[test]
    fn sp_high_v_example() {
        // SPhighV on an HF dataset: stationary intermediate element (1 word) +
        // stream buffer, G = 16 live psums per PE → 16 > 13 → spill.
        let b = RfBudget::new(16, 1);
        assert!(!b.psums_fit(16));
        // SP1 with T_F = 64 spreads the same psums across 64 PEs → 1 per PE → fits.
        assert!(b.psums_fit(1));
    }
}
