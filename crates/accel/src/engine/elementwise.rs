//! The elementwise phase leaf: streaming activations and LayerNorm.
//!
//! GNN layers usually end with a cheap per-element epilogue — a ReLU/ELU
//! activation, or a row-wise LayerNorm (GCNII/GraphGym-style stacks). These
//! phases do no reduction across tiles and touch each element O(1) times, so
//! they are **pure streaming** work: bandwidth-bound on anything but the
//! smallest matrices, and interesting to the DSE only for how they share the
//! NoC and whether their operand stays resident between phases.
//!
//! The leaf walks vertex tiles of the `rows × width` operand. Each tile's
//! elements stream through the PEs in `ceil(width / T_W)` tile-synchronized
//! steps (`T_W` is the width-dimension tile: `F` for an Aggregation-shaped
//! tiling, `G` for a Combination-shaped one). Ops differ only in sweep count:
//!
//! * [`ElementwiseOp::Activation`] — one sweep per tile: read, apply, write
//!   back;
//! * [`ElementwiseOp::LayerNorm`] — two sweeps per tile: a read-only
//!   statistics sweep (mean/variance per row), then a normalise + write-back
//!   sweep. A vertex tile always spans the full row width, so the statistics
//!   never cross tiles.
//!
//! Per-element ALU applications are counted in the `macs` bucket (one op per
//! element per sweep), which keeps `compute_utilisation` meaningful. The loop
//! order within the tiling is irrelevant — there is no reduction dimension —
//! so `omega_dataflow::validate_elementwise` admits every order.
//!
//! This file is the worked example of the "adding a phase kind" recipe in
//! [`super::core`]: the whole engine is one leaf struct, two pass shapes, and
//! a dispatch-free walk.

use omega_dataflow::{Dim, IntraTiling, Phase};

use serde::{Deserialize, Serialize};

use super::core::{actual_tile, loop_classes, run_phase, Footprint, PhaseEngine, PhaseWalk};
use super::{ChunkSide, EngineOptions, OperandClasses};
use crate::{AccelConfig, PhaseStats};

/// The elementwise operation a phase applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Deserialize, Serialize)]
pub enum ElementwiseOp {
    /// Pointwise activation (ReLU/ELU/…): one read-modify-write sweep.
    Activation,
    /// Row-wise LayerNorm: a statistics sweep plus a normalise sweep.
    LayerNorm,
}

impl ElementwiseOp {
    /// Streaming sweeps over the operand this op needs.
    pub fn sweeps(self) -> u64 {
        match self {
            ElementwiseOp::Activation => 1,
            ElementwiseOp::LayerNorm => 2,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ElementwiseOp::Activation => "act",
            ElementwiseOp::LayerNorm => "norm",
        }
    }
}

impl std::fmt::Display for ElementwiseOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The workload of an elementwise phase: the operand shape and the op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementwiseWorkload {
    /// Rows of the operand matrix (vertices).
    pub rows: usize,
    /// Columns of the operand matrix (feature/output width).
    pub width: usize,
    /// The operation applied.
    pub op: ElementwiseOp,
}

impl ElementwiseWorkload {
    /// Total elements touched per sweep.
    pub fn elems(&self) -> u64 {
        self.rows as u64 * self.width as u64
    }
}

/// Simulates an elementwise/normalization phase under a concrete tiling.
///
/// Accepts either phase's tiling shape: the vertex tile is `T_V`, the width
/// tile is `T_F` (Aggregation) or `T_G` (Combination) — whichever matrix the
/// phase post-processes. Any loop order is legal.
pub fn simulate_elementwise(
    wl: &ElementwiseWorkload,
    tiling: &IntraTiling,
    cfg: &AccelConfig,
    classes: &OperandClasses,
    opts: &EngineOptions,
) -> PhaseStats {
    simulate_elementwise_inner(wl, tiling, cfg, classes, opts, false)
}

/// Shared body of the batched leaf and the naive per-tile reference walk
/// (`naive = true` visits every vertex tile with multiplicity 1; the property
/// tests assert the two are bit-identical).
fn simulate_elementwise_inner(
    wl: &ElementwiseWorkload,
    tiling: &IntraTiling,
    cfg: &AccelConfig,
    classes: &OperandClasses,
    opts: &EngineOptions,
    naive: bool,
) -> PhaseStats {
    let leaf = ElementwiseLeaf::new(wl, tiling, naive);
    run_phase(&leaf, cfg, classes, opts)
}

/// The elementwise leaf: a streaming sweep (or two) per vertex tile.
struct ElementwiseLeaf<'a> {
    wl: &'a ElementwiseWorkload,
    tiling: &'a IntraTiling,
    tv: usize,
    tw: usize,
    n_v: usize,
    naive: bool,
}

impl<'a> ElementwiseLeaf<'a> {
    fn new(wl: &'a ElementwiseWorkload, tiling: &'a IntraTiling, naive: bool) -> Self {
        if wl.rows == 0 || wl.width == 0 {
            // Degenerate: `run_phase` short-circuits before reading these.
            return ElementwiseLeaf { wl, tiling, tv: 1, tw: 1, n_v: 0, naive };
        }
        let wdim = match tiling.phase() {
            Phase::Aggregation => Dim::F,
            Phase::Combination => Dim::G,
        };
        let tv = tiling.tile_of(Dim::V).min(wl.rows);
        let tw = tiling.tile_of(wdim).min(wl.width);
        let n_v = wl.rows.div_ceil(tv);
        ElementwiseLeaf { wl, tiling, tv, tw, n_v, naive }
    }

    /// One streaming sweep over `m` identical vertex tiles of `av` rows:
    /// `ceil(width / T_W)` tile-synchronized steps read every element, apply
    /// one ALU op, and (when `write_back`) write the result. The read-only
    /// LayerNorm statistics sweep consumes its elements; the write-back sweep
    /// produces them.
    fn sweep(&self, w: &mut PhaseWalk, av: u64, write_back: bool, m: u64) {
        let elems = av * self.wl.width as u64;
        let steps = (self.wl.width.div_ceil(self.tw)) as u64;
        w.macs += elems * m;
        // Load into the RFs, then one read (and one write) per ALU application.
        w.counters.rf_writes += elems * m;
        w.counters.rf_reads += elems * m;
        let mut gb_reads = 0;
        if !w.opts.input_resident {
            w.counters.read(w.classes.a_input, elems * m);
            gb_reads = elems;
        }
        let mut gb_writes = 0;
        let mut produced = 0;
        if write_back {
            w.counters.rf_writes += elems * m;
            produced = elems;
            if !w.opts.output_stays_local {
                w.counters.write(w.classes.output, elems * m);
                gb_writes = elems;
            }
        }
        let consumed = if write_back && self.wl.op.sweeps() > 1 { 0 } else { elems };
        w.run_pass(steps.max(1), gb_reads, gb_writes, 0, produced, consumed, m);
    }

    /// All sweeps of one vertex-tile class (`m` identical tiles).
    fn visit_tile(&self, w: &mut PhaseWalk, iv: usize, m: u64) {
        let av = actual_tile(self.wl.rows, self.tv, iv) as u64;
        if self.wl.op.sweeps() > 1 {
            self.sweep(w, av, false, m); // statistics: read-only
        }
        self.sweep(w, av, true, m); // apply + write-back
    }
}

impl PhaseEngine for ElementwiseLeaf<'_> {
    fn is_empty(&self) -> bool {
        self.wl.rows == 0 || self.wl.width == 0
    }

    fn reduction_lanes(&self) -> usize {
        1 // no cross-PE reduction tree
    }

    fn pe_footprint(&self) -> usize {
        self.tiling.pe_footprint()
    }

    fn chunk_total(&self, side: ChunkSide) -> u64 {
        match side {
            ChunkSide::Produce => self.wl.elems(),
            ChunkSide::Consume => self.wl.elems(),
        }
    }

    fn footprint(&self, opts: &EngineOptions) -> Footprint {
        if self.is_empty() {
            return Footprint::default();
        }
        // The phase streams in place over one matrix: the GB stages one tile
        // per sweep unless both residency flags keep the operand local, and a
        // resident operand pins the whole matrix in the RFs.
        let tile = self.tv as u64 * self.tw as u64;
        let gb = if opts.input_resident && opts.output_stays_local { 0 } else { tile };
        let pins = if opts.input_resident || opts.output_stays_local { self.wl.elems() } else { 0 };
        // No cross-pass partial sums: one accumulator word stands in for the
        // live set (the LayerNorm statistics registers).
        Footprint::new(1, pins, self.pe_footprint(), gb)
    }

    fn walk(&self, w: &mut PhaseWalk) {
        // Vertex tiles are uniform except the remainder tile, so the engine
        // walk batches them via `loop_classes`. With chunk timestamps the
        // multi-sweep passes of distinct tiles interleave in true order, so
        // the walk goes per index (the naive reference always does).
        if self.naive || w.has_chunks() {
            for iv in 0..self.n_v {
                self.visit_tile(w, iv, 1);
            }
        } else {
            for &(iv, m) in &loop_classes(self.n_v) {
                self.visit_tile(w, iv, m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ChunkSpec, OperandClasses};
    use crate::{BandwidthShare, OperandClass};
    use omega_dataflow::LoopOrder;
    use proptest::prelude::*;

    fn tiling(phase: Phase, order_idx: usize, tiles: [usize; 3]) -> IntraTiling {
        IntraTiling::new(phase, LoopOrder::all(phase)[order_idx % 6], tiles)
    }

    fn run(wl: &ElementwiseWorkload, t: &IntraTiling, opts: &EngineOptions) -> PhaseStats {
        let cfg = AccelConfig::paper_default();
        simulate_elementwise(wl, t, &cfg, &OperandClasses::elementwise_on(OperandClass::Output), opts)
    }

    fn plain() -> EngineOptions {
        EngineOptions::plain(AccelConfig::paper_default().full_bandwidth())
    }

    #[test]
    fn activation_touches_each_element_once() {
        let wl = ElementwiseWorkload { rows: 10, width: 8, op: ElementwiseOp::Activation };
        let s = run(&wl, &tiling(Phase::Combination, 0, [4, 1, 4]), &plain());
        assert_eq!(s.macs, 80);
        assert_eq!(s.counters.gb_reads[OperandClass::Output.idx()], 80);
        assert_eq!(s.counters.gb_writes[OperandClass::Output.idx()], 80);
        assert!(s.cycles > 0);
    }

    #[test]
    fn layernorm_costs_two_sweeps() {
        let wl = ElementwiseWorkload { rows: 10, width: 8, op: ElementwiseOp::Activation };
        let norm = ElementwiseWorkload { op: ElementwiseOp::LayerNorm, ..wl };
        let t = tiling(Phase::Combination, 0, [4, 1, 4]);
        let act = run(&wl, &t, &plain());
        let ln = run(&norm, &t, &plain());
        assert_eq!(ln.macs, 2 * act.macs);
        // Statistics sweep re-reads but never writes.
        assert_eq!(ln.counters.gb_reads[OperandClass::Output.idx()], 160);
        assert_eq!(ln.counters.gb_writes[OperandClass::Output.idx()], 80);
        assert!(ln.cycles > act.cycles);
    }

    #[test]
    fn aggregation_shaped_tilings_use_the_f_tile() {
        let wl = ElementwiseWorkload { rows: 16, width: 32, op: ElementwiseOp::Activation };
        let narrow = run(&wl, &tiling(Phase::Aggregation, 0, [4, 1, 1]), &plain());
        let wide = run(&wl, &tiling(Phase::Aggregation, 0, [4, 16, 1]), &plain());
        assert!(wide.cycles < narrow.cycles);
        assert_eq!(wide.macs, narrow.macs);
    }

    #[test]
    fn resident_flags_suppress_all_traffic() {
        let wl = ElementwiseWorkload { rows: 12, width: 6, op: ElementwiseOp::LayerNorm };
        let mut opts = plain();
        opts.input_resident = true;
        opts.output_stays_local = true;
        let s = run(&wl, &tiling(Phase::Combination, 0, [4, 1, 2]), &opts);
        assert_eq!(s.counters.total_gb_reads(), 0);
        assert_eq!(s.counters.total_gb_writes(), 0);
        assert!(s.cycles > 0);
    }

    #[test]
    fn empty_workloads_are_free() {
        let t = tiling(Phase::Combination, 0, [4, 1, 2]);
        for wl in [
            ElementwiseWorkload { rows: 0, width: 6, op: ElementwiseOp::Activation },
            ElementwiseWorkload { rows: 6, width: 0, op: ElementwiseOp::LayerNorm },
        ] {
            let s = run(&wl, &t, &plain());
            assert_eq!(s.cycles, 0);
            assert_eq!(s.counters.total_gb_reads(), 0);
        }
    }

    #[test]
    fn chunk_marks_cover_the_operand() {
        let wl = ElementwiseWorkload { rows: 20, width: 8, op: ElementwiseOp::LayerNorm };
        for side in [ChunkSide::Produce, ChunkSide::Consume] {
            let mut opts = plain();
            opts.chunk = Some(ChunkSpec { side, pel: 48 });
            let s = run(&wl, &tiling(Phase::Combination, 0, [4, 1, 4]), &opts);
            assert_eq!(s.chunk_marks.len(), 160u64.div_ceil(48) as usize, "{side:?}");
            assert_eq!(*s.chunk_marks.last().unwrap(), s.cycles);
            assert!(s.chunk_marks.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Satellite acceptance: the batched walk is bit-identical to the
        /// naive per-tile reference across shapes, ops, tilings, both phase
        /// shapes, and all chunking modes.
        #[test]
        fn batched_walk_matches_naive_reference(
            rows in 0usize..40,
            width in 0usize..24,
            op_is_norm in proptest::bool::ANY,
            phase_is_cmb in proptest::bool::ANY,
            order_idx in 0usize..6,
            tv in 1usize..8, tm in 1usize..8, tw in 1usize..8,
            chunk_mode in 0usize..3,
            pel in 1u64..64,
            bw in 1usize..64,
        ) {
            let op = if op_is_norm { ElementwiseOp::LayerNorm } else { ElementwiseOp::Activation };
            let phase = if phase_is_cmb { Phase::Combination } else { Phase::Aggregation };
            let wl = ElementwiseWorkload { rows, width, op };
            // Tile positions are positional in the order; spread the three
            // draws across them so V and the width dim both vary.
            let t = tiling(phase, order_idx, [tv, tm, tw]);
            let cfg = AccelConfig::paper_default();
            let mut opts = EngineOptions::plain(BandwidthShare { dist: bw, red: bw });
            opts.chunk = match chunk_mode {
                0 => None,
                1 => Some(ChunkSpec { side: ChunkSide::Produce, pel }),
                _ => Some(ChunkSpec { side: ChunkSide::Consume, pel }),
            };
            let classes = OperandClasses::elementwise_on(OperandClass::Output);
            let fast = simulate_elementwise(&wl, &t, &cfg, &classes, &opts);
            let slow = simulate_elementwise_inner(&wl, &t, &cfg, &classes, &opts, true);
            prop_assert_eq!(fast.cycles, slow.cycles);
            prop_assert_eq!(fast.stall_cycles, slow.stall_cycles);
            prop_assert_eq!(fast.macs, slow.macs);
            prop_assert_eq!(fast.counters, slow.counters);
            prop_assert_eq!(fast.chunk_marks, slow.chunk_marks);
        }

        /// Element count, not tiling, fixes the ALU work.
        #[test]
        fn alu_work_is_tiling_invariant(
            rows in 1usize..40, width in 1usize..24,
            order_idx in 0usize..6,
            tv in 1usize..8, tw in 1usize..8,
        ) {
            let wl = ElementwiseWorkload { rows, width, op: ElementwiseOp::Activation };
            let s = run(&wl, &tiling(Phase::Combination, order_idx, [tv, 1, tw]), &plain());
            prop_assert_eq!(s.macs, (rows * width) as u64);
        }
    }
}
