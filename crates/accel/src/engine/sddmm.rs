//! The SDDMM phase leaf: adjacency-masked attention scoring (GAT).
//!
//! An attention GNN's score computation is a **sampled dense-dense matrix
//! multiply**: `S = A ⊙ (Q · Kᵀ)` — one dot product per stored adjacency
//! non-zero, where both dot operands come from the (transformed) feature
//! matrix. Its sparsity structure is exactly the graph, which is why VersaGNN
//! and Dynasparse argue it deserves its own dataflow treatment: the loop nest
//! shares the Aggregation dimension set `[V, N, F]`, but the **reduction
//! dimension is `F`** (the dot-product length), not `N`.
//!
//! The leaf mirrors the SpMM leaf's structure: passes over vertex tiles,
//! neighbour slices, and `F`-slices, with rows inside a spatial vertex tile
//! **tile-synchronized** (the evil-row pathology applies to scoring too),
//! degree-class batching for single-row tiles, and the same closed-form
//! per-pass accounting. Differences from SpMM:
//!
//! * per edge and per head, `ceil(dot_width / T_F)` spatial-reduction steps
//!   produce **one scalar score**, so the phase output is adjacency-shaped
//!   (`heads × nnz` elements, the [`crate::OperandClass::EdgeScore`] bucket);
//! * when `F` is not innermost, the **partial scores** of in-flight edges are
//!   the live psums — they spill exactly like the other engines' partial sums;
//! * heads iterate back-to-back at fixed tile indices, so a workload with `h`
//!   heads runs each pass with multiplicity `h` (the total MAC count
//!   `heads · nnz · dot_width` is invariant in `heads` when the feature width
//!   splits across heads, but the score count `heads · nnz` is not);
//! * after the last score completes, an **edge-wise softmax pass** normalises
//!   the scores per row: two streaming sweeps over the score array (max +
//!   exp-sum, then normalise + write-back), costed against compute throughput
//!   and the NoC floors like any other pass (the leaf's `epilogue`). With
//!   `output_stays_local` the scores never leave the RFs and the sweeps are
//!   compute-only.
//!
//! Loop-order support: the three orders that keep `V` before `N` (`VFN`,
//! `VNF`, `FVN`). Orders that put `N` before `V` interleave every row's score
//! production across the whole phase, which the row-wise softmax cannot
//! stream — `omega_dataflow::validate_sddmm` rejects them before the engine
//! is reached (the engine itself panics on them).

use omega_dataflow::{Dim, IntraTiling, Phase};

use super::core::{
    actual_tile, bandwidth_sweep, loop_classes, run_phase, DegreeSummary, Footprint, PhaseEngine,
    PhaseWalk, PreparedSpmm, SpillModel, TileClass,
};
use super::{ChunkSide, EngineOptions, OperandClasses};
use crate::{AccelConfig, OperandClass, PhaseStats};

/// The workload of an SDDMM scoring phase: the adjacency degree structure,
/// the per-head dot-product length, and the head count.
#[derive(Debug, Clone)]
pub struct SddmmWorkload<'a> {
    /// Stored non-zeros per adjacency row (incl. self loops).
    pub degrees: &'a [usize],
    /// Per-head dot-product length (`F / heads` when the feature width splits
    /// across heads, GAT-style).
    pub dot_width: usize,
    /// Attention heads (clamped to ≥ 1): each edge produces one score per head.
    pub heads: usize,
}

impl SddmmWorkload<'_> {
    /// Total stored non-zeros.
    pub fn nnz(&self) -> u64 {
        self.degrees.iter().map(|&d| d as u64).sum()
    }

    /// Scores the phase produces (`heads × nnz`).
    pub fn scores(&self) -> u64 {
        self.heads.max(1) as u64 * self.nnz()
    }
}

/// Simulates the SDDMM scoring phase (plus its softmax pass) under a concrete
/// tiling.
///
/// The tiling is over the Aggregation dimension set (`V`/`F`/`N`), with `F`
/// acting as the reduction: `T_F` PEs form the dot-product reduction group,
/// `T_N` parallelises a row's edges, `T_V` parallelises rows
/// (tile-synchronized).
///
/// # Panics
/// Panics if the tiling is not an Aggregation tiling or its loop order puts
/// `N` before `V` (see `omega_dataflow::validate_sddmm`).
pub fn simulate_sddmm(
    wl: &SddmmWorkload<'_>,
    tiling: &IntraTiling,
    cfg: &AccelConfig,
    classes: &OperandClasses,
    opts: &EngineOptions,
) -> PhaseStats {
    simulate_sddmm_prepared(
        &PreparedSpmm::new(wl.degrees),
        wl.dot_width,
        wl.heads,
        tiling,
        cfg,
        classes,
        opts,
    )
}

/// [`simulate_sddmm`] over pre-hoisted degree structures ([`PreparedSpmm`] —
/// the SDDMM and SpMM phases of one workload share the same adjacency, so the
/// DSE prepares it once). Bit-identical to the plain entry point.
#[allow(clippy::too_many_arguments)]
pub fn simulate_sddmm_prepared(
    prep: &PreparedSpmm<'_>,
    dot_width: usize,
    heads: usize,
    tiling: &IntraTiling,
    cfg: &AccelConfig,
    classes: &OperandClasses,
    opts: &EngineOptions,
) -> PhaseStats {
    simulate_sddmm_inner(prep, dot_width, heads, tiling, cfg, classes, opts, false)
}

/// Shared body of the batched leaf and the naive per-pass reference walk
/// (`naive = true` visits every index and head with multiplicity 1; the tests
/// assert the two are bit-identical).
#[allow(clippy::too_many_arguments)]
fn simulate_sddmm_inner(
    prep: &PreparedSpmm<'_>,
    dot_width: usize,
    heads: usize,
    tiling: &IntraTiling,
    cfg: &AccelConfig,
    classes: &OperandClasses,
    opts: &EngineOptions,
    naive: bool,
) -> PhaseStats {
    assert_eq!(tiling.phase(), Phase::Aggregation, "SDDMM engine needs a V/F/N tiling");
    let order = tiling.order();
    let pos_v = order.position(Dim::V).expect("V is an SDDMM dim");
    let pos_n = order.position(Dim::N).expect("N is an SDDMM dim");
    assert!(
        pos_v < pos_n,
        "SDDMM loop order {order} puts N before V; gate with omega_dataflow::validate_sddmm"
    );
    // `EngineOptions::reference_walk` routes through the same per-pass oracle
    // the tests' `naive` flag does.
    let leaf = SddmmLeaf::new(prep, dot_width, heads, tiling, cfg, naive || opts.reference_walk);
    run_phase(&leaf, cfg, classes, opts)
}

/// The static shape of one walk, shared by the batched leaf and the naive
/// per-pass reference walker of the tests.
#[derive(Clone, Copy)]
struct WalkShape {
    v: usize,
    d: usize,
    tv: usize,
    tf: usize,
    tn: usize,
    n_v: usize,
    n_f: usize,
    h: u64,
    pos_v: usize,
    pos_f: usize,
}

/// The SDDMM leaf: dot-product scoring over the adjacency structure, with the
/// row-wise softmax as the epilogue.
struct SddmmLeaf<'a> {
    prep: &'a PreparedSpmm<'a>,
    shape: WalkShape,
    tiling: &'a IntraTiling,
    spill: SpillModel,
    naive: bool,
    scores_total: u64,
}

impl<'a> SddmmLeaf<'a> {
    fn new(
        prep: &'a PreparedSpmm<'a>,
        dot_width: usize,
        heads: usize,
        tiling: &'a IntraTiling,
        cfg: &AccelConfig,
        naive: bool,
    ) -> Self {
        let order = tiling.order();
        let pos_v = order.position(Dim::V).expect("V is an SDDMM dim");
        let pos_f = order.position(Dim::F).expect("F is an SDDMM dim");
        let v = prep.degrees().len();
        let d = dot_width;
        let h = heads.max(1) as u64;
        let scores_total = h * prep.nnz();
        if v == 0 || d == 0 || prep.nnz() == 0 {
            // Degenerate: `run_phase` short-circuits before reading these.
            let shape =
                WalkShape { v, d, tv: 1, tf: 1, tn: 1, n_v: 0, n_f: 0, h, pos_v, pos_f };
            let spill = SpillModel::new(cfg, 1, 1, false);
            return SddmmLeaf { prep, shape, tiling, spill, naive, scores_total };
        }
        let max_deg = prep.max_degree();
        let tv = tiling.tile_of(Dim::V).min(v);
        let tf = tiling.tile_of(Dim::F).min(d);
        let tn = tiling.tile_of(Dim::N).min(max_deg.max(1));
        let n_v = v.div_ceil(tv);
        let n_f = d.div_ceil(tf);
        let n_n_global = (max_deg as u64).div_ceil(tn as u64).max(1);
        // Partial-score placement: with F innermost each edge's dot completes
        // in-pass (MAC-register accumulation). With F further out, every
        // (edge, head) in the loops inner to F keeps a live partial score,
        // shared across the T_F PEs of each dot-product reduction group. A
        // single F-slice completes every dot in-pass regardless of the loop
        // order, so only multi-slice reductions can spill partial scores.
        let revisits: u64 = [(Dim::V, n_v as u64), (Dim::N, n_n_global)]
            .iter()
            .filter(|&&(dim, _)| order.position(dim).expect("dim present") > pos_f)
            .map(|&(_, n)| n)
            .product();
        let spill = SpillModel::new(cfg, h * revisits, tf, pos_f < 2 && n_f > 1);
        let shape = WalkShape { v, d, tv, tf, tn, n_v, n_f, h, pos_v, pos_f };
        SddmmLeaf { prep, shape, tiling, spill, naive, scores_total }
    }

    /// Charges the feature and adjacency-structure traffic of a pass visiting
    /// `edge_visits` edges over `width` dot-product columns of `rows` rows,
    /// for `m` identical passes. The stationary Q row slices preload serially
    /// (`q_preload` false suppresses them — VNF keeps the row pinned across
    /// its neighbour slices). Returns per-pass `(gb_stream_reads, preload)`.
    fn charge_inputs(
        &self,
        w: &mut PhaseWalk,
        edge_visits: u64,
        width: u64,
        rows: u64,
        q_preload: bool,
        m: u64,
    ) -> (u64, u64) {
        let k_elems = edge_visits * width; // gathered neighbour slices (streamed)
        let q_elems = if q_preload { rows * width } else { 0 }; // pinned row slices
        let structure = edge_visits + rows; // column indices + row pointers
        w.counters.read(OperandClass::Adjacency, structure * m);
        let mut gb = structure;
        let mut preload = 0;
        if !w.opts.input_resident {
            w.counters.read(w.classes.a_input, (k_elems + q_elems) * m);
            gb += k_elems;
            preload = q_elems;
        }
        // Multicast: each Q element fans out across the T_N edge lanes; K
        // elements land in exactly one reduction group each.
        w.counters.rf_writes += (k_elems + q_elems * self.shape.tn as u64) * m;
        (gb, preload)
    }

    /// `m` identical passes at a fixed `F`-slice (the `VFN`/`FVN` row-major
    /// walks): `steps` tile-synchronized compute steps cover `edge_visits`
    /// edges × `af` dot columns; partial scores carry across the `n_f`
    /// F-slices (accumulating in the RFs or spilling).
    #[allow(clippy::too_many_arguments)]
    fn scoring_pass(
        &self,
        w: &mut PhaseWalk,
        steps: u64,
        edge_visits: u64,
        rows: u64,
        af: u64,
        red_idx: u64,
        q_preload: bool,
        m: u64,
    ) {
        let n_f = self.shape.n_f as u64;
        let macs = edge_visits * af;
        w.macs += macs * m;
        w.counters.rf_reads += 2 * macs * m;
        let mut gb_writes = 0;
        if self.spill.spill {
            w.spilled = true;
            let spilled = self.spill.scale(edge_visits);
            if red_idx > 0 {
                w.counters.read(OperandClass::Psum, spilled * m);
            }
            if red_idx < n_f - 1 {
                w.counters.write(OperandClass::Psum, spilled * m);
                gb_writes += spilled;
            }
        } else {
            let updates = macs.div_ceil(self.shape.tf as u64);
            w.counters.rf_reads += updates * m;
            w.counters.rf_writes += updates * m;
        }
        let mut produced = 0;
        if red_idx == n_f - 1 {
            produced = edge_visits; // one score per edge completes
            if w.opts.output_stays_local {
                w.counters.rf_writes += produced * m;
            } else {
                w.counters.write(w.classes.output, produced * m);
                gb_writes += produced;
            }
        }
        let (mut gb_reads, preload) = self.charge_inputs(w, edge_visits, af, rows, q_preload, m);
        if self.spill.spill && red_idx > 0 {
            gb_reads += self.spill.scale(edge_visits);
        }
        w.run_pass(steps.max(1), gb_reads, gb_writes, preload, produced, macs, m);
    }

    /// `m` identical `VNF` passes: one neighbour slice of one v-tile, the full
    /// dot streaming innermost — each visited edge's score completes in-pass.
    fn streaming_pass(&self, w: &mut PhaseWalk, edge_visits: u64, rows: u64, first_slice: bool, m: u64) {
        let width = self.shape.d as u64;
        let macs = edge_visits * width;
        w.macs += macs * m;
        w.counters.rf_reads += 2 * macs * m;
        let updates = macs.div_ceil(self.shape.tf as u64);
        w.counters.rf_reads += updates * m;
        w.counters.rf_writes += updates * m;
        let produced = edge_visits;
        let mut gb_writes = 0;
        if w.opts.output_stays_local {
            w.counters.rf_writes += produced * m;
        } else {
            w.counters.write(w.classes.output, produced * m);
            gb_writes += produced;
        }
        let (gb_reads, preload) = self.charge_inputs(w, edge_visits, width, rows, first_slice, m);
        let steps = self.shape.n_f as u64; // F-slices stream innermost per edge group
        w.run_pass(steps.max(1), gb_reads, gb_writes, preload, produced, macs, m);
    }

    /// The full neighbour-slice walk of one single-row `VNF` vertex (`m` rows
    /// of identical degree batched together; `reps` unbatched head repetitions
    /// per slice for the reference walk).
    fn vnf_vertex(&self, w: &mut PhaseWalk, deg: usize, m: u64, reps: u64) {
        let tn = self.shape.tn;
        let n_red = (deg as u64).div_ceil(tn as u64).max(1) as usize;
        for in_ in 0..n_red {
            let lo = in_ * tn;
            let hi = lo + tn;
            let active = (deg.min(hi) - deg.min(lo)) as u64;
            for _ in 0..reps {
                self.streaming_pass(w, active, 1, in_ == 0, m);
            }
        }
    }

    /// The neighbour-slice walk of one `VNF` vertex-tile class (`m` folds the
    /// head count and any class multiplicity).
    fn vnf_tile_class(&self, w: &mut PhaseWalk, c: &TileClass, m: u64) {
        let tn = self.shape.tn;
        let summary = c.summary();
        let n_red = (c.max as u64).div_ceil(tn as u64).max(1) as usize;
        for in_ in 0..n_red {
            let active = summary.active(in_ * tn, (in_ + 1) * tn);
            self.streaming_pass(w, active, c.rows, in_ == 0, m);
        }
    }

    /// Degree sum, tile-synchronized step count, and rows of one vertex tile —
    /// the reference walk's per-tile scan (the summary walk reads the same
    /// facts from the tile's class in O(1)).
    fn tile_scan(&self, iv: usize) -> (u64, u64, u64) {
        let s = self.shape;
        let lo = iv * s.tv;
        let hi = ((iv + 1) * s.tv).min(s.v);
        crate::telemetry::count_prepare((hi - lo) as u64);
        let mut sum = 0u64;
        let mut mx = 0usize;
        for &deg in &self.prep.degrees()[lo..hi] {
            sum += deg as u64;
            mx = mx.max(deg);
        }
        (sum, (mx as u64).div_ceil(s.tn as u64), (hi - lo) as u64)
    }
}

impl PhaseEngine for SddmmLeaf<'_> {
    fn is_empty(&self) -> bool {
        self.shape.v == 0 || self.shape.d == 0 || self.prep.nnz() == 0
    }

    fn reduction_lanes(&self) -> usize {
        // The dot-product reduction tree spans the T_F lanes.
        self.shape.tf
    }

    fn pe_footprint(&self) -> usize {
        self.tiling.pe_footprint()
    }

    fn chunk_total(&self, side: ChunkSide) -> u64 {
        match side {
            ChunkSide::Produce => self.scores_total,
            ChunkSide::Consume => self.scores_total * self.shape.d as u64,
        }
    }

    fn footprint(&self, opts: &EngineOptions) -> Footprint {
        if self.is_empty() {
            return Footprint::default();
        }
        let s = self.shape;
        let (tv, tf, tn) = (s.tv as u64, s.tf as u64, s.tn as u64);
        // GB stages one pass's slices: the CSR structure of the vertex tile,
        // the pinned Q row slices plus the gathered K slices, and the score
        // tile — each unless a residency flag keeps it local.
        let mut gb = tv * (1 + tn);
        if !opts.input_resident {
            gb += tv * tf + tv * tn * tf;
        }
        if !opts.output_stays_local {
            gb += tv * tn;
        }
        // Residency pins: both dot operands come from the full feature matrix
        // (`d` columns per head over every row); local scores pin the whole
        // adjacency-shaped score array until the softmax drains it.
        let mut pins = 0u64;
        if opts.input_resident {
            pins += s.v as u64 * s.d as u64 * s.h;
        }
        if opts.output_stays_local {
            pins += self.scores_total;
        }
        Footprint::new(self.spill.live(), pins, self.pe_footprint(), gb)
    }

    /// Dispatches the supported loop orders. `naive` forces the unbatched
    /// per-pass reference walk (every index and head visited with
    /// multiplicity one) — the engine path collapses uniform passes via
    /// `loop_classes`, degree classes, and the head multiplicity, and the
    /// tests assert both walks are bit-identical.
    fn walk(&self, w: &mut PhaseWalk) {
        let s = self.shape;
        let degrees = self.prep.degrees();
        let tn = s.tn as u64;
        // Heads iterate back-to-back at fixed (tile, slice) indices: the leaf
        // folds them into the pass multiplicity, the reference walk repeats the
        // pass `h` times.
        let (m_h, reps_h) = if self.naive { (1, s.h) } else { (s.h, 1) };
        match (s.pos_v, s.pos_f) {
            (0, 1) => {
                // VFN: per v-tile, F-slices in the middle, neighbours
                // innermost. The F loop is batched per `loop_classes` — at a
                // fixed v-tile its passes are consecutive in true iteration
                // order, so the batching is chunk-exact; the summary walk
                // additionally folds identical vertex tiles into their class.
                if self.naive {
                    for iv in 0..s.n_v {
                        let (sum, steps, avv) = self.tile_scan(iv);
                        for if_ in 0..s.n_f {
                            let af = actual_tile(s.d, s.tf, if_) as u64;
                            for _ in 0..reps_h {
                                self.scoring_pass(w, steps, sum, avv, af, if_ as u64, true, m_h);
                            }
                        }
                    }
                } else {
                    let f_walk = loop_classes(s.n_f);
                    let ws = self.prep.summary(s.tv);
                    if !w.has_chunks() {
                        for c in ws.classes() {
                            w.class_replays += c.mult - 1;
                            let steps = (c.max as u64).div_ceil(tn);
                            for &(if_, mf) in &f_walk {
                                let af = actual_tile(s.d, s.tf, if_) as u64;
                                self.scoring_pass(
                                    w, steps, c.sum, c.rows, af, if_ as u64, true,
                                    mf * s.h * c.mult,
                                );
                            }
                        }
                    } else {
                        for iv in 0..ws.num_tiles() {
                            let c = ws.class_of(iv);
                            let steps = (c.max as u64).div_ceil(tn);
                            for &(if_, mf) in &f_walk {
                                let af = actual_tile(s.d, s.tf, if_) as u64;
                                self.scoring_pass(
                                    w, steps, c.sum, c.rows, af, if_ as u64, true, mf * s.h,
                                );
                            }
                        }
                    }
                }
            }
            (1, 0) => {
                // FVN: F-slices outermost, v-tiles in the middle, neighbours
                // innermost — the same passes as VFN in f-major order. Batching
                // the middle F-class would lump passes that interleave with
                // other v-tiles in true order, so with chunk timestamps the F
                // loop walks per index.
                if self.naive {
                    for if_ in 0..s.n_f {
                        let af = actual_tile(s.d, s.tf, if_) as u64;
                        for iv in 0..s.n_v {
                            let (sum, steps, avv) = self.tile_scan(iv);
                            for _ in 0..reps_h {
                                self.scoring_pass(w, steps, sum, avv, af, if_ as u64, true, m_h);
                            }
                        }
                    }
                } else {
                    let ws = self.prep.summary(s.tv);
                    if !w.has_chunks() {
                        for &(if_, mf) in &loop_classes(s.n_f) {
                            let af = actual_tile(s.d, s.tf, if_) as u64;
                            for c in ws.classes() {
                                w.class_replays += c.mult - 1;
                                let steps = (c.max as u64).div_ceil(tn);
                                self.scoring_pass(
                                    w, steps, c.sum, c.rows, af, if_ as u64, true,
                                    mf * s.h * c.mult,
                                );
                            }
                        }
                    } else {
                        for if_ in 0..s.n_f {
                            let af = actual_tile(s.d, s.tf, if_) as u64;
                            for iv in 0..ws.num_tiles() {
                                let c = ws.class_of(iv);
                                let steps = (c.max as u64).div_ceil(tn);
                                self.scoring_pass(
                                    w, steps, c.sum, c.rows, af, if_ as u64, true, s.h,
                                );
                            }
                        }
                    }
                }
            }
            (0, 2) => {
                // VNF: per v-tile, neighbour slices in the middle, the
                // dot-product F loop innermost — scores complete in-pass.
                if s.tv == 1 && !w.has_chunks() && !self.naive {
                    // Single-row tiles of equal degree make identical pass
                    // sequences — batch by degree class (order-insensitive
                    // without chunk timestamps).
                    for &(deg, m) in self.prep.classes() {
                        w.class_replays += m - 1;
                        self.vnf_vertex(w, deg, m * s.h, 1);
                    }
                } else if s.tv == 1 {
                    for &deg in degrees {
                        self.vnf_vertex(w, deg, m_h, reps_h);
                    }
                } else if self.naive {
                    for iv in 0..s.n_v {
                        let lo = iv * s.tv;
                        let hi = ((iv + 1) * s.tv).min(s.v);
                        let summary = DegreeSummary::new(degrees[lo..hi].iter().copied());
                        let avv = (hi - lo) as u64;
                        let n_red = (summary.max() as u64).div_ceil(tn).max(1) as usize;
                        for in_ in 0..n_red {
                            let active = summary.active(in_ * s.tn, (in_ + 1) * s.tn);
                            for _ in 0..reps_h {
                                self.streaming_pass(w, active, avv, in_ == 0, m_h);
                            }
                        }
                    }
                } else {
                    let ws = self.prep.summary(s.tv);
                    if !w.has_chunks() {
                        for c in ws.classes() {
                            w.class_replays += c.mult - 1;
                            self.vnf_tile_class(w, c, s.h * c.mult);
                        }
                    } else {
                        for iv in 0..ws.num_tiles() {
                            self.vnf_tile_class(w, ws.class_of(iv), s.h);
                        }
                    }
                }
            }
            _ => unreachable!("validate_sddmm admits only the V-before-N orders (VFN, VNF, FVN)"),
        }
    }

    /// The edge-wise softmax: two streaming sweeps over the score array
    /// (row max + exp-sum, then normalise + write-back), each bounded by
    /// compute throughput (one score per PE per cycle) and the NoC floors.
    /// Returns the sweep cycles; traffic lands in the output class.
    fn epilogue(&self, w: &mut PhaseWalk) -> u64 {
        let scores = self.scores_total;
        if scores == 0 {
            return 0;
        }
        let footprint = self.tiling.pe_footprint() as u64;
        let compute = scores.div_ceil(footprint.max(1));
        let gb = if w.opts.output_stays_local { 0 } else { scores };
        // Sweep 1 re-reads the scores (no write-back yet); sweep 2 reads and
        // writes the normalised copy.
        let (sweep1, stall1) = bandwidth_sweep(compute, gb, 0, w.opts.bandwidth);
        let (sweep2, stall2) = bandwidth_sweep(compute, gb, gb, w.opts.bandwidth);
        w.stall_cycles += stall1 + stall2;
        if w.opts.output_stays_local {
            w.counters.rf_reads += 2 * scores;
            w.counters.rf_writes += scores;
        } else {
            w.counters.read(w.classes.output, 2 * scores);
            w.counters.write(w.classes.output, scores);
            w.counters.rf_reads += 2 * scores;
            w.counters.rf_writes += scores;
        }
        sweep1 + sweep2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ChunkSpec;
    use crate::BandwidthShare;
    use omega_dataflow::LoopOrder;

    fn tiling(order: &str, tiles: [usize; 3]) -> IntraTiling {
        let d: Vec<Dim> = order.chars().map(|c| Dim::from_letter(c).unwrap()).collect();
        IntraTiling::new(
            Phase::Aggregation,
            LoopOrder::new(Phase::Aggregation, [d[0], d[1], d[2]]).unwrap(),
            tiles,
        )
    }

    fn run(degrees: &[usize], d: usize, h: usize, t: &IntraTiling) -> PhaseStats {
        let cfg = AccelConfig::paper_default();
        let wl = SddmmWorkload { degrees, dot_width: d, heads: h };
        simulate_sddmm(&wl, t, &cfg, &OperandClasses::sddmm(), &EngineOptions::plain(cfg.full_bandwidth()))
    }

    /// The reference walk: every index and head visited pass by pass,
    /// multiplicity 1 — no `loop_classes`, no degree-class batching, no head
    /// batching.
    fn run_naive(
        degrees: &[usize],
        d: usize,
        h: usize,
        t: &IntraTiling,
        cfg: &AccelConfig,
        opts: &EngineOptions,
    ) -> PhaseStats {
        simulate_sddmm_inner(
            &PreparedSpmm::new(degrees),
            d,
            h,
            t,
            cfg,
            &OperandClasses::sddmm(),
            opts,
            true,
        )
    }

    const SUPPORTED_ORDERS: [&str; 3] = ["VFN", "VNF", "FVN"];

    fn stats_eq(a: &PhaseStats, b: &PhaseStats, ctx: &str) {
        assert_eq!(a.cycles, b.cycles, "{ctx}: cycles");
        assert_eq!(a.stall_cycles, b.stall_cycles, "{ctx}: stalls");
        assert_eq!(a.macs, b.macs, "{ctx}: macs");
        assert_eq!(a.counters, b.counters, "{ctx}: counters");
        assert_eq!(a.chunk_marks, b.chunk_marks, "{ctx}: chunk marks");
        assert_eq!(a.psum_spilled, b.psum_spilled, "{ctx}: spill flag");
    }

    #[test]
    fn batched_walk_is_bit_identical_to_naive_reference() {
        // The satellite acceptance: every supported loop order, a spread of
        // tilings (incl. remainder tiles and spill-inducing shapes), and both
        // chunked paths, engine vs unbatched reference.
        let cfg = AccelConfig::paper_default();
        let degree_sets: [&[usize]; 3] =
            [&[3, 1, 5, 0, 2], &[7, 7, 7, 7, 7, 7, 7, 7], &[1, 64, 2, 2, 3, 9, 1, 1, 30]];
        for degrees in degree_sets {
            for order in SUPPORTED_ORDERS {
                for tiles in [[1, 1, 1], [2, 4, 2], [4, 2, 1], [3, 3, 3], [1, 2, 4]] {
                    for (d, h) in [(16, 1), (13, 4), (8, 3)] {
                        let t = tiling(order, tiles);
                        let wl = SddmmWorkload { degrees, dot_width: d, heads: h };
                        let base_opts = EngineOptions::plain(cfg.full_bandwidth());
                        let chunked = {
                            let mut o = base_opts;
                            o.chunk = Some(ChunkSpec { side: ChunkSide::Produce, pel: 7 });
                            o
                        };
                        let consuming = {
                            let mut o = base_opts;
                            o.chunk = Some(ChunkSpec { side: ChunkSide::Consume, pel: 33 });
                            o
                        };
                        for opts in [base_opts, chunked, consuming] {
                            let fast =
                                simulate_sddmm(&wl, &t, &cfg, &OperandClasses::sddmm(), &opts);
                            let slow = run_naive(degrees, d, h, &t, &cfg, &opts);
                            stats_eq(
                                &fast,
                                &slow,
                                &format!("{order} {tiles:?} d={d} h={h} chunk={:?}", opts.chunk),
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn mac_count_is_invariant_across_orders_and_heads() {
        let degrees = [3usize, 1, 5, 0, 2];
        let nnz: u64 = 11;
        for order in SUPPORTED_ORDERS {
            for (d, h) in [(16, 1), (4, 4), (8, 2)] {
                let s = run(&degrees, d, h, &tiling(order, [2, 2, 2]));
                assert_eq!(s.macs, nnz * (d * h) as u64, "{order} d={d} h={h}");
                assert!(s.cycles > 0);
            }
        }
    }

    #[test]
    fn scores_written_once_per_edge_per_head() {
        let degrees = [2usize, 3, 1, 4];
        for order in SUPPORTED_ORDERS {
            let s = run(&degrees, 8, 3, &tiling(order, [2, 4, 1]));
            // Scoring writes h·nnz once; the softmax writes the normalised
            // copy once more.
            assert_eq!(
                s.counters.gb_writes[OperandClass::EdgeScore.idx()],
                2 * 3 * 10,
                "{order}"
            );
        }
    }

    #[test]
    fn softmax_reads_scores_twice() {
        let degrees = [2usize, 3, 1, 4];
        let s = run(&degrees, 8, 2, &tiling("VFN", [2, 4, 1]));
        assert_eq!(s.counters.gb_reads[OperandClass::EdgeScore.idx()], 2 * 2 * 10);
    }

    #[test]
    fn evil_row_dominates_tile_synchronized_scoring() {
        let mut degrees = vec![2usize; 63];
        degrees.push(200);
        let wide = run(&degrees, 16, 1, &tiling("VFN", [64, 8, 1]));
        let narrow = run(&degrees, 16, 1, &tiling("VFN", [8, 8, 1]));
        assert!(narrow.compute_utilisation() > wide.compute_utilisation());
    }

    #[test]
    fn spatial_reduction_lanes_cut_dot_cycles() {
        // T_F spatial lanes shorten every edge's dot product.
        let degrees = vec![8usize; 32];
        let temporal = run(&degrees, 64, 1, &tiling("VNF", [8, 1, 4]));
        let spatial = run(&degrees, 64, 1, &tiling("VNF", [8, 16, 4]));
        assert!(spatial.cycles * 4 < temporal.cycles, "{} vs {}", spatial.cycles, temporal.cycles);
    }

    #[test]
    fn partial_scores_spill_when_f_sliced_and_edges_overflow_rf() {
        // VFN with many F-slices: every edge of a dense row keeps a live
        // partial score across slices → spills past the 13-word RF.
        let degrees = vec![64usize; 16];
        let s = run(&degrees, 64, 2, &tiling("VFN", [4, 1, 1]));
        assert!(s.psum_spilled);
        assert!(s.counters.gb_of(OperandClass::Psum) > 0);
        // F innermost streams the whole dot per edge: nothing persists.
        let vnf = run(&degrees, 64, 2, &tiling("VNF", [4, 1, 1]));
        assert!(!vnf.psum_spilled);
        assert_eq!(vnf.counters.gb_of(OperandClass::Psum), 0);
    }

    #[test]
    fn output_stays_local_suppresses_score_traffic() {
        let degrees = [2usize, 3, 1, 4];
        let t = tiling("VFN", [2, 4, 1]);
        let cfg = AccelConfig::paper_default();
        let wl = SddmmWorkload { degrees: &degrees, dot_width: 8, heads: 2 };
        let mut opts = EngineOptions::plain(cfg.full_bandwidth());
        opts.output_stays_local = true;
        let s = simulate_sddmm(&wl, &t, &cfg, &OperandClasses::sddmm(), &opts);
        assert_eq!(s.counters.gb_of(OperandClass::EdgeScore), 0);
        assert_eq!(s.counters.total_gb_writes(), 0);
    }

    #[test]
    fn produce_chunks_cover_all_scores() {
        let degrees = vec![3usize; 16];
        let t = tiling("VFN", [4, 8, 1]);
        let cfg = AccelConfig::paper_default();
        let wl = SddmmWorkload { degrees: &degrees, dot_width: 8, heads: 2 };
        let mut opts = EngineOptions::plain(cfg.full_bandwidth());
        opts.chunk = Some(ChunkSpec { side: ChunkSide::Produce, pel: 12 });
        let s = simulate_sddmm(&wl, &t, &cfg, &OperandClasses::sddmm(), &opts);
        assert_eq!(s.chunk_marks.len(), (2 * 48u64).div_ceil(12) as usize);
        assert_eq!(*s.chunk_marks.last().unwrap(), s.cycles);
        assert!(s.chunk_marks.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bandwidth_throttling_stalls_scoring() {
        let degrees = vec![32usize; 64];
        let t = tiling("VFN", [8, 16, 1]);
        let cfg = AccelConfig::paper_default();
        let wl = SddmmWorkload { degrees: &degrees, dot_width: 32, heads: 4 };
        let fast = simulate_sddmm(&wl, &t, &cfg, &OperandClasses::sddmm(),
            &EngineOptions::plain(BandwidthShare { dist: 512, red: 512 }));
        let slow = simulate_sddmm(&wl, &t, &cfg, &OperandClasses::sddmm(),
            &EngineOptions::plain(BandwidthShare { dist: 16, red: 16 }));
        assert!(slow.cycles > fast.cycles);
        assert!(slow.stall_cycles > fast.stall_cycles);
    }

    #[test]
    fn empty_workloads_are_free() {
        assert_eq!(run(&[], 8, 2, &tiling("VFN", [2, 4, 1])).cycles, 0);
        assert_eq!(run(&[0, 0], 8, 2, &tiling("VFN", [2, 4, 1])).cycles, 0);
        assert_eq!(run(&[3, 2], 0, 2, &tiling("VFN", [2, 4, 1])).cycles, 0);
    }

    #[test]
    #[should_panic(expected = "N before V")]
    fn n_outermost_orders_panic() {
        run(&[2, 2], 8, 1, &tiling("NVF", [2, 2, 2]));
    }

    #[test]
    #[should_panic(expected = "N before V")]
    fn fnv_order_panics() {
        run(&[2, 2], 8, 1, &tiling("FNV", [2, 2, 2]));
    }
}
