//! The SDDMM phase engine: adjacency-masked attention scoring (GAT).
//!
//! An attention GNN's score computation is a **sampled dense-dense matrix
//! multiply**: `S = A ⊙ (Q · Kᵀ)` — one dot product per stored adjacency
//! non-zero, where both dot operands come from the (transformed) feature
//! matrix. Its sparsity structure is exactly the graph, which is why VersaGNN
//! and Dynasparse argue it deserves its own dataflow treatment: the loop nest
//! shares the Aggregation dimension set `[V, N, F]`, but the **reduction
//! dimension is `F`** (the dot-product length), not `N`.
//!
//! The engine mirrors the SpMM engine's structure: passes over vertex tiles,
//! neighbour slices, and `F`-slices, with rows inside a spatial vertex tile
//! **tile-synchronized** (the evil-row pathology applies to scoring too),
//! degree-class batching for single-row tiles, and the same closed-form
//! per-pass accounting. Differences from SpMM:
//!
//! * per edge and per head, `ceil(dot_width / T_F)` spatial-reduction steps
//!   produce **one scalar score**, so the phase output is adjacency-shaped
//!   (`heads × nnz` elements, the [`crate::OperandClass::EdgeScore`] bucket);
//! * when `F` is not innermost, the **partial scores** of in-flight edges are
//!   the live psums — they spill exactly like the other engines' partial sums;
//! * heads iterate back-to-back at fixed tile indices, so a workload with `h`
//!   heads runs each pass with multiplicity `h` (the total MAC count
//!   `heads · nnz · dot_width` is invariant in `heads` when the feature width
//!   splits across heads, but the score count `heads · nnz` is not);
//! * after the last score completes, an **edge-wise softmax pass** normalises
//!   the scores per row: two streaming sweeps over the score array (max +
//!   exp-sum, then normalise + write-back), costed against compute throughput
//!   and the NoC floors like any other pass. With `output_stays_local` the
//!   scores never leave the RFs and the sweeps are compute-only.
//!
//! Loop-order support: the three orders that keep `V` before `N` (`VFN`,
//! `VNF`, `FVN`). Orders that put `N` before `V` interleave every row's score
//! production across the whole phase, which the row-wise softmax cannot
//! stream — `omega_dataflow::validate_sddmm` rejects them before the engine
//! is reached (the engine itself panics on them).

use omega_dataflow::{Dim, IntraTiling, Phase};

use super::{
    actual_tile, loop_classes, pass_timing, ChunkSide, ChunkTracker, EngineOptions, OperandClasses,
    PreparedSpmm,
};
use crate::{AccelConfig, AccessCounters, OperandClass, PhaseStats, RfBudget};

use super::spmm::DegreeSummary;

/// The workload of an SDDMM scoring phase: the adjacency degree structure,
/// the per-head dot-product length, and the head count.
#[derive(Debug, Clone)]
pub struct SddmmWorkload<'a> {
    /// Stored non-zeros per adjacency row (incl. self loops).
    pub degrees: &'a [usize],
    /// Per-head dot-product length (`F / heads` when the feature width splits
    /// across heads, GAT-style).
    pub dot_width: usize,
    /// Attention heads (clamped to ≥ 1): each edge produces one score per head.
    pub heads: usize,
}

impl SddmmWorkload<'_> {
    /// Total stored non-zeros.
    pub fn nnz(&self) -> u64 {
        self.degrees.iter().map(|&d| d as u64).sum()
    }

    /// Scores the phase produces (`heads × nnz`).
    pub fn scores(&self) -> u64 {
        self.heads.max(1) as u64 * self.nnz()
    }
}

/// Simulates the SDDMM scoring phase (plus its softmax pass) under a concrete
/// tiling.
///
/// The tiling is over the Aggregation dimension set (`V`/`F`/`N`), with `F`
/// acting as the reduction: `T_F` PEs form the dot-product reduction group,
/// `T_N` parallelises a row's edges, `T_V` parallelises rows
/// (tile-synchronized).
///
/// # Panics
/// Panics if the tiling is not an Aggregation tiling or its loop order puts
/// `N` before `V` (see `omega_dataflow::validate_sddmm`).
pub fn simulate_sddmm(
    wl: &SddmmWorkload<'_>,
    tiling: &IntraTiling,
    cfg: &AccelConfig,
    classes: &OperandClasses,
    opts: &EngineOptions,
) -> PhaseStats {
    simulate_sddmm_prepared(
        &PreparedSpmm::new(wl.degrees),
        wl.dot_width,
        wl.heads,
        tiling,
        cfg,
        classes,
        opts,
    )
}

/// [`simulate_sddmm`] over pre-hoisted degree structures ([`PreparedSpmm`] —
/// the SDDMM and SpMM phases of one workload share the same adjacency, so the
/// DSE prepares it once). Bit-identical to the plain entry point.
#[allow(clippy::too_many_arguments)]
pub fn simulate_sddmm_prepared(
    prep: &PreparedSpmm<'_>,
    dot_width: usize,
    heads: usize,
    tiling: &IntraTiling,
    cfg: &AccelConfig,
    classes: &OperandClasses,
    opts: &EngineOptions,
) -> PhaseStats {
    simulate_sddmm_inner(prep, dot_width, heads, tiling, cfg, classes, opts, false)
}

/// Shared body of the batched engine and the naive per-pass reference walk
/// (`naive = true` visits every index and head with multiplicity 1; the tests
/// assert the two are bit-identical).
#[allow(clippy::too_many_arguments)]
fn simulate_sddmm_inner(
    prep: &PreparedSpmm<'_>,
    dot_width: usize,
    heads: usize,
    tiling: &IntraTiling,
    cfg: &AccelConfig,
    classes: &OperandClasses,
    opts: &EngineOptions,
    naive: bool,
) -> PhaseStats {
    assert_eq!(tiling.phase(), Phase::Aggregation, "SDDMM engine needs a V/F/N tiling");
    let order = tiling.order();
    let pos_v = order.position(Dim::V).expect("V is an SDDMM dim");
    let pos_f = order.position(Dim::F).expect("F is an SDDMM dim");
    let pos_n = order.position(Dim::N).expect("N is an SDDMM dim");
    assert!(
        pos_v < pos_n,
        "SDDMM loop order {order} puts N before V; gate with omega_dataflow::validate_sddmm"
    );

    let degrees = prep.degrees();
    let v = degrees.len();
    let d = dot_width;
    let h = heads.max(1) as u64;
    let counters = AccessCounters::default();
    if v == 0 || d == 0 || prep.nnz() == 0 {
        return PhaseStats {
            cycles: 0,
            stall_cycles: 0,
            macs: 0,
            counters,
            pe_footprint: tiling.pe_footprint(),
            chunk_marks: Vec::new(),
            psum_spilled: false,
        };
    }

    let max_deg = prep.max_degree();
    let tv = tiling.tile_of(Dim::V).min(v);
    let tf = tiling.tile_of(Dim::F).min(d);
    let tn = tiling.tile_of(Dim::N).min(max_deg.max(1));
    let n_v = v.div_ceil(tv);
    let n_f = d.div_ceil(tf);
    let n_n_global = (max_deg as u64).div_ceil(tn as u64).max(1);

    // Partial-score placement: with F innermost each edge's dot completes
    // in-pass (MAC-register accumulation). With F further out, every (edge,
    // head) in the loops inner to F keeps a live partial score, shared across
    // the T_F PEs of each dot-product reduction group.
    let revisits: u64 = [(Dim::V, n_v as u64), (Dim::N, n_n_global)]
        .iter()
        .filter(|&&(dim, _)| order.position(dim).expect("dim present") > pos_f)
        .map(|&(_, n)| n)
        .product();
    let share = if cfg.knobs.psum_group_sharing { tf.max(1) as u64 } else { 1 };
    let live_psums_per_pe = (h * revisits).div_ceil(share);
    let rf = RfBudget::new(cfg.rf_words(), 1);
    // A single F-slice completes every dot in-pass regardless of the loop
    // order, so only multi-slice reductions can spill partial scores.
    let spill = pos_f < 2 && n_f > 1 && !rf.psums_fit(live_psums_per_pe as usize);
    let spill_num = if cfg.knobs.fractional_spill {
        live_psums_per_pe.saturating_sub(rf.psum_capacity() as u64)
    } else {
        live_psums_per_pe
    };

    let scores_total = h * prep.nnz();
    let total_visits = scores_total * d as u64;
    let chunk_total = match opts.chunk.map(|c| c.side) {
        Some(ChunkSide::Produce) => scores_total,
        Some(ChunkSide::Consume) => total_visits,
        None => 0,
    };
    let chunks = ChunkTracker::new(opts.chunk.as_ref(), chunk_total);

    // The dot-product reduction tree spans the T_F lanes.
    let tree_overhead = if tf > 1 { crate::tree_latency(tf, cfg.tree_latency_per_level) } else { 0 };
    let (phase_fill, pass_fill) = if cfg.knobs.per_pass_fill {
        (0, tree_overhead + cfg.dist_latency)
    } else {
        (tree_overhead + cfg.dist_latency, 0)
    };

    let mut st = SddmmWalk {
        counters,
        cycles: 0,
        stall_cycles: 0,
        macs: 0,
        spilled: false,
        chunks,
        classes: *classes,
        opts: *opts,
        overhead: pass_fill,
        tf: tf as u64,
        tn: tn as u64,
        n_f: n_f as u64,
        dot_width: d as u64,
        spill_ratio: (spill_num, live_psums_per_pe.max(1)),
        spill,
    };

    walk_orders(&mut st, prep, WalkShape { v, d, tv, tf, tn, n_v, n_f, h, pos_v, pos_f }, naive);

    // Edge-wise softmax: normalise each row's scores once the last one exists.
    let softmax = st.softmax_pass(scores_total, tiling.pe_footprint() as u64);
    let cycles = if st.cycles > 0 { st.cycles + phase_fill + softmax } else { 0 };
    let chunk_marks = st.chunks.map(|t| t.finish(cycles)).unwrap_or_default();
    PhaseStats {
        cycles,
        stall_cycles: st.stall_cycles,
        macs: st.macs,
        counters: st.counters,
        pe_footprint: tiling.pe_footprint(),
        chunk_marks,
        psum_spilled: st.spilled,
    }
}

/// The static shape of one walk, shared by the batched engine and the naive
/// per-pass reference walker of the tests.
#[derive(Clone, Copy)]
struct WalkShape {
    v: usize,
    d: usize,
    tv: usize,
    tf: usize,
    tn: usize,
    n_v: usize,
    n_f: usize,
    h: u64,
    pos_v: usize,
    pos_f: usize,
}

/// Dispatches the four supported loop orders. `naive` forces the unbatched
/// per-pass reference walk (every index and head visited with multiplicity 1)
/// — the engine path collapses uniform passes via `loop_classes`, degree
/// classes, and the head multiplicity, and the tests assert both walks are
/// bit-identical.
fn walk_orders(st: &mut SddmmWalk, prep: &PreparedSpmm<'_>, s: WalkShape, naive: bool) {
    let degrees = prep.degrees();
    let tn = st.tn;
    // Degree sum and max of one vertex tile — the only facts a row-major
    // scoring pass needs (tile synchronization keys off the max).
    let tile_scan = move |iv: usize| -> (u64, u64, u64) {
        let lo = iv * s.tv;
        let hi = ((iv + 1) * s.tv).min(s.v);
        let mut sum = 0u64;
        let mut mx = 0usize;
        for &deg in &degrees[lo..hi] {
            sum += deg as u64;
            mx = mx.max(deg);
        }
        (sum, (mx as u64).div_ceil(tn), (hi - lo) as u64)
    };
    // Heads iterate back-to-back at fixed (tile, slice) indices: the engine
    // folds them into the pass multiplicity, the reference walk repeats the
    // pass `h` times.
    let (m_h, reps_h) = if naive { (1, s.h) } else { (s.h, 1) };
    match (s.pos_v, s.pos_f) {
        (0, 1) => {
            // VFN: per v-tile, F-slices in the middle, neighbours innermost.
            // The F loop is batched per `loop_classes` — at a fixed v-tile its
            // passes are consecutive in true iteration order, so the batching
            // is chunk-exact.
            let f_walk: Vec<(usize, u64)> = if naive {
                (0..s.n_f).map(|i| (i, 1)).collect()
            } else {
                loop_classes(s.n_f)
            };
            for iv in 0..s.n_v {
                let (sum, steps, avv) = tile_scan(iv);
                for &(if_, mf) in &f_walk {
                    let af = actual_tile(s.d, s.tf, if_) as u64;
                    for _ in 0..reps_h {
                        st.scoring_pass(steps, sum, avv, af, if_ as u64, true, mf * m_h);
                    }
                }
            }
        }
        (1, 0) => {
            // FVN: F-slices outermost, v-tiles in the middle, neighbours
            // innermost — the same passes as VFN in f-major order. Batching
            // the middle F-class would lump passes that interleave with other
            // v-tiles in true order, so with chunk timestamps the F loop
            // walks per index.
            let f_walk: Vec<(usize, u64)> = if naive || st.chunks.is_some() {
                (0..s.n_f).map(|i| (i, 1)).collect()
            } else {
                loop_classes(s.n_f)
            };
            for &(if_, mf) in &f_walk {
                let af = actual_tile(s.d, s.tf, if_) as u64;
                for iv in 0..s.n_v {
                    let (sum, steps, avv) = tile_scan(iv);
                    for _ in 0..reps_h {
                        st.scoring_pass(steps, sum, avv, af, if_ as u64, true, mf * m_h);
                    }
                }
            }
        }
        (0, 2) => {
            // VNF: per v-tile, neighbour slices in the middle, the dot-product
            // F loop innermost — scores complete in-pass.
            if s.tv == 1 && st.chunks.is_none() && !naive {
                // Single-row tiles of equal degree make identical pass
                // sequences — batch by degree class (order-insensitive
                // without chunk timestamps).
                for &(deg, m) in prep.classes() {
                    st.vnf_vertex(deg, s, m * s.h, 1);
                }
            } else if s.tv == 1 {
                for &deg in degrees {
                    st.vnf_vertex(deg, s, m_h, reps_h);
                }
            } else {
                for iv in 0..s.n_v {
                    let lo = iv * s.tv;
                    let hi = ((iv + 1) * s.tv).min(s.v);
                    let summary = DegreeSummary::new(degrees[lo..hi].iter().copied());
                    let avv = (hi - lo) as u64;
                    let n_red = (summary.max() as u64).div_ceil(st.tn).max(1) as usize;
                    for in_ in 0..n_red {
                        let active = summary.active(in_ * s.tn, (in_ + 1) * s.tn);
                        for _ in 0..reps_h {
                            st.streaming_pass(active, avv, in_ == 0, m_h);
                        }
                    }
                }
            }
        }
        _ => unreachable!("validate_sddmm admits only the V-before-N orders (VFN, VNF, FVN)"),
    }
}

/// Mutable walk state shared by the pass helpers.
struct SddmmWalk {
    counters: AccessCounters,
    cycles: u64,
    stall_cycles: u64,
    macs: u64,
    spilled: bool,
    chunks: Option<ChunkTracker>,
    classes: OperandClasses,
    opts: EngineOptions,
    overhead: u64,
    tf: u64,
    tn: u64,
    n_f: u64,
    dot_width: u64,
    /// Numerator/denominator of the partial-score overflow fraction.
    spill_ratio: (u64, u64),
    spill: bool,
}

impl SddmmWalk {
    /// Charges the feature and adjacency-structure traffic of a pass visiting
    /// `edge_visits` edges over `width` dot-product columns of `rows` rows,
    /// for `m` identical passes. The stationary Q row slices preload serially
    /// (`q_preload` false suppresses them — VNF keeps the row pinned across
    /// its neighbour slices). Returns per-pass `(gb_stream_reads, preload)`.
    fn charge_inputs(
        &mut self,
        edge_visits: u64,
        width: u64,
        rows: u64,
        q_preload: bool,
        m: u64,
    ) -> (u64, u64) {
        let k_elems = edge_visits * width; // gathered neighbour slices (streamed)
        let q_elems = if q_preload { rows * width } else { 0 }; // pinned row slices
        let structure = edge_visits + rows; // column indices + row pointers
        self.counters.read(OperandClass::Adjacency, structure * m);
        let mut gb = structure;
        let mut preload = 0;
        if !self.opts.input_resident {
            self.counters.read(self.classes.a_input, (k_elems + q_elems) * m);
            gb += k_elems;
            preload = q_elems;
        }
        // Multicast: each Q element fans out across the T_N edge lanes; K
        // elements land in exactly one reduction group each.
        self.counters.rf_writes += (k_elems + q_elems * self.tn) * m;
        (gb, preload)
    }

    /// `m` identical passes at a fixed `F`-slice (the `VFN`/`FVN` row-major
    /// walks): `steps` tile-synchronized compute steps cover `edge_visits`
    /// edges × `af` dot columns; partial scores carry across the `n_f`
    /// F-slices (accumulating in the RFs or spilling).
    #[allow(clippy::too_many_arguments)]
    fn scoring_pass(
        &mut self,
        steps: u64,
        edge_visits: u64,
        rows: u64,
        af: u64,
        red_idx: u64,
        q_preload: bool,
        m: u64,
    ) {
        let macs = edge_visits * af;
        self.macs += macs * m;
        self.counters.rf_reads += 2 * macs * m;
        let mut gb_writes = 0;
        if self.spill {
            self.spilled = true;
            let spilled = edge_visits * self.spill_ratio.0 / self.spill_ratio.1;
            if red_idx > 0 {
                self.counters.read(OperandClass::Psum, spilled * m);
            }
            if red_idx < self.n_f - 1 {
                self.counters.write(OperandClass::Psum, spilled * m);
                gb_writes += spilled;
            }
        } else {
            let updates = macs.div_ceil(self.tf);
            self.counters.rf_reads += updates * m;
            self.counters.rf_writes += updates * m;
        }
        let mut produced = 0;
        if red_idx == self.n_f - 1 {
            produced = edge_visits; // one score per edge completes
            if self.opts.output_stays_local {
                self.counters.rf_writes += produced * m;
            } else {
                self.counters.write(self.classes.output, produced * m);
                gb_writes += produced;
            }
        }
        let (mut gb_reads, preload) = self.charge_inputs(edge_visits, af, rows, q_preload, m);
        if self.spill && red_idx > 0 {
            gb_reads += edge_visits * self.spill_ratio.0 / self.spill_ratio.1;
        }
        let (pass, stall) =
            pass_timing(steps.max(1), gb_reads, gb_writes, preload, self.opts.bandwidth, self.overhead);
        let start = self.cycles;
        self.cycles += pass * m;
        self.stall_cycles += stall * m;
        self.advance_chunks(m, produced, macs, pass, start);
    }

    /// `m` identical `VNF` passes: one neighbour slice of one v-tile, the full
    /// dot streaming innermost — each visited edge's score completes in-pass.
    fn streaming_pass(&mut self, edge_visits: u64, rows: u64, first_slice: bool, m: u64) {
        let width = self.dot_width;
        let macs = edge_visits * width;
        self.macs += macs * m;
        self.counters.rf_reads += 2 * macs * m;
        let updates = macs.div_ceil(self.tf);
        self.counters.rf_reads += updates * m;
        self.counters.rf_writes += updates * m;
        let produced = edge_visits;
        let mut gb_writes = 0;
        if self.opts.output_stays_local {
            self.counters.rf_writes += produced * m;
        } else {
            self.counters.write(self.classes.output, produced * m);
            gb_writes += produced;
        }
        let (gb_reads, preload) = self.charge_inputs(edge_visits, width, rows, first_slice, m);
        let steps = self.n_f; // F-slices stream innermost per edge group
        let (pass, stall) =
            pass_timing(steps.max(1), gb_reads, gb_writes, preload, self.opts.bandwidth, self.overhead);
        let start = self.cycles;
        self.cycles += pass * m;
        self.stall_cycles += stall * m;
        self.advance_chunks(m, produced, macs, pass, start);
    }

    /// The full neighbour-slice walk of one single-row `VNF` vertex (`m` rows
    /// of identical degree batched together; `reps` unbatched head repetitions
    /// per slice for the reference walk).
    fn vnf_vertex(&mut self, deg: usize, s: WalkShape, m: u64, reps: u64) {
        let n_red = (deg as u64).div_ceil(self.tn).max(1) as usize;
        for in_ in 0..n_red {
            let lo = in_ * s.tn;
            let hi = lo + s.tn;
            let active = (deg.min(hi) - deg.min(lo)) as u64;
            for _ in 0..reps {
                self.streaming_pass(active, 1, in_ == 0, m);
            }
        }
    }

    /// The edge-wise softmax: two streaming sweeps over the `scores` array
    /// (row max + exp-sum, then normalise + write-back), each bounded by
    /// compute throughput (one score per PE per cycle) and the NoC floors.
    /// Returns the sweep cycles; traffic lands in the output class.
    fn softmax_pass(&mut self, scores: u64, footprint: u64) -> u64 {
        if scores == 0 {
            return 0;
        }
        let compute = scores.div_ceil(footprint.max(1));
        let gb = if self.opts.output_stays_local { 0 } else { scores };
        let dist = crate::noc::distribution_cycles(gb, self.opts.bandwidth.dist);
        let coll = crate::noc::collection_cycles(gb, self.opts.bandwidth.red);
        let sweep1 = compute.max(dist);
        let sweep2 = compute.max(dist).max(coll);
        self.stall_cycles += (sweep1 - compute.min(sweep1)) + (sweep2 - compute.min(sweep2));
        if self.opts.output_stays_local {
            self.counters.rf_reads += 2 * scores;
            self.counters.rf_writes += scores;
        } else {
            self.counters.read(self.classes.output, 2 * scores);
            self.counters.write(self.classes.output, scores);
            self.counters.rf_reads += 2 * scores;
            self.counters.rf_writes += scores;
        }
        sweep1 + sweep2
    }

    fn advance_chunks(&mut self, m: u64, produced_each: u64, visits_each: u64, pass_cycles: u64, start: u64) {
        let Some(t) = self.chunks.as_mut() else { return };
        match self.opts.chunk.expect("tracker implies spec").side {
            ChunkSide::Produce => {
                if produced_each > 0 {
                    t.advance_repeat(m, produced_each, pass_cycles, start);
                }
            }
            ChunkSide::Consume => t.advance_repeat(m, visits_each, pass_cycles, start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ChunkSpec;
    use crate::BandwidthShare;
    use omega_dataflow::LoopOrder;

    fn tiling(order: &str, tiles: [usize; 3]) -> IntraTiling {
        let d: Vec<Dim> = order.chars().map(|c| Dim::from_letter(c).unwrap()).collect();
        IntraTiling::new(
            Phase::Aggregation,
            LoopOrder::new(Phase::Aggregation, [d[0], d[1], d[2]]).unwrap(),
            tiles,
        )
    }

    fn run(degrees: &[usize], d: usize, h: usize, t: &IntraTiling) -> PhaseStats {
        let cfg = AccelConfig::paper_default();
        let wl = SddmmWorkload { degrees, dot_width: d, heads: h };
        simulate_sddmm(&wl, t, &cfg, &OperandClasses::sddmm(), &EngineOptions::plain(cfg.full_bandwidth()))
    }

    /// The reference walk: every index and head visited pass by pass,
    /// multiplicity 1 — no `loop_classes`, no degree-class batching, no head
    /// batching.
    fn run_naive(
        degrees: &[usize],
        d: usize,
        h: usize,
        t: &IntraTiling,
        cfg: &AccelConfig,
        opts: &EngineOptions,
    ) -> PhaseStats {
        simulate_sddmm_inner(
            &PreparedSpmm::new(degrees),
            d,
            h,
            t,
            cfg,
            &OperandClasses::sddmm(),
            opts,
            true,
        )
    }

    const SUPPORTED_ORDERS: [&str; 3] = ["VFN", "VNF", "FVN"];

    fn stats_eq(a: &PhaseStats, b: &PhaseStats, ctx: &str) {
        assert_eq!(a.cycles, b.cycles, "{ctx}: cycles");
        assert_eq!(a.stall_cycles, b.stall_cycles, "{ctx}: stalls");
        assert_eq!(a.macs, b.macs, "{ctx}: macs");
        assert_eq!(a.counters, b.counters, "{ctx}: counters");
        assert_eq!(a.chunk_marks, b.chunk_marks, "{ctx}: chunk marks");
        assert_eq!(a.psum_spilled, b.psum_spilled, "{ctx}: spill flag");
    }

    #[test]
    fn batched_walk_is_bit_identical_to_naive_reference() {
        // The satellite acceptance: every supported loop order, a spread of
        // tilings (incl. remainder tiles and spill-inducing shapes), and both
        // chunked paths, engine vs unbatched reference.
        let cfg = AccelConfig::paper_default();
        let degree_sets: [&[usize]; 3] =
            [&[3, 1, 5, 0, 2], &[7, 7, 7, 7, 7, 7, 7, 7], &[1, 64, 2, 2, 3, 9, 1, 1, 30]];
        for degrees in degree_sets {
            for order in SUPPORTED_ORDERS {
                for tiles in [[1, 1, 1], [2, 4, 2], [4, 2, 1], [3, 3, 3], [1, 2, 4]] {
                    for (d, h) in [(16, 1), (13, 4), (8, 3)] {
                        let t = tiling(order, tiles);
                        let wl = SddmmWorkload { degrees, dot_width: d, heads: h };
                        let base_opts = EngineOptions::plain(cfg.full_bandwidth());
                        let chunked = {
                            let mut o = base_opts;
                            o.chunk = Some(ChunkSpec { side: ChunkSide::Produce, pel: 7 });
                            o
                        };
                        let consuming = {
                            let mut o = base_opts;
                            o.chunk = Some(ChunkSpec { side: ChunkSide::Consume, pel: 33 });
                            o
                        };
                        for opts in [base_opts, chunked, consuming] {
                            let fast =
                                simulate_sddmm(&wl, &t, &cfg, &OperandClasses::sddmm(), &opts);
                            let slow = run_naive(degrees, d, h, &t, &cfg, &opts);
                            stats_eq(
                                &fast,
                                &slow,
                                &format!("{order} {tiles:?} d={d} h={h} chunk={:?}", opts.chunk),
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn mac_count_is_invariant_across_orders_and_heads() {
        let degrees = [3usize, 1, 5, 0, 2];
        let nnz: u64 = 11;
        for order in SUPPORTED_ORDERS {
            for (d, h) in [(16, 1), (4, 4), (8, 2)] {
                let s = run(&degrees, d, h, &tiling(order, [2, 2, 2]));
                assert_eq!(s.macs, nnz * (d * h) as u64, "{order} d={d} h={h}");
                assert!(s.cycles > 0);
            }
        }
    }

    #[test]
    fn scores_written_once_per_edge_per_head() {
        let degrees = [2usize, 3, 1, 4];
        for order in SUPPORTED_ORDERS {
            let s = run(&degrees, 8, 3, &tiling(order, [2, 4, 1]));
            // Scoring writes h·nnz once; the softmax writes the normalised
            // copy once more.
            assert_eq!(
                s.counters.gb_writes[OperandClass::EdgeScore.idx()],
                2 * 3 * 10,
                "{order}"
            );
        }
    }

    #[test]
    fn softmax_reads_scores_twice() {
        let degrees = [2usize, 3, 1, 4];
        let s = run(&degrees, 8, 2, &tiling("VFN", [2, 4, 1]));
        assert_eq!(s.counters.gb_reads[OperandClass::EdgeScore.idx()], 2 * 2 * 10);
    }

    #[test]
    fn evil_row_dominates_tile_synchronized_scoring() {
        let mut degrees = vec![2usize; 63];
        degrees.push(200);
        let wide = run(&degrees, 16, 1, &tiling("VFN", [64, 8, 1]));
        let narrow = run(&degrees, 16, 1, &tiling("VFN", [8, 8, 1]));
        assert!(narrow.compute_utilisation() > wide.compute_utilisation());
    }

    #[test]
    fn spatial_reduction_lanes_cut_dot_cycles() {
        // T_F spatial lanes shorten every edge's dot product.
        let degrees = vec![8usize; 32];
        let temporal = run(&degrees, 64, 1, &tiling("VNF", [8, 1, 4]));
        let spatial = run(&degrees, 64, 1, &tiling("VNF", [8, 16, 4]));
        assert!(spatial.cycles * 4 < temporal.cycles, "{} vs {}", spatial.cycles, temporal.cycles);
    }

    #[test]
    fn partial_scores_spill_when_f_sliced_and_edges_overflow_rf() {
        // VFN with many F-slices: every edge of a dense row keeps a live
        // partial score across slices → spills past the 13-word RF.
        let degrees = vec![64usize; 16];
        let s = run(&degrees, 64, 2, &tiling("VFN", [4, 1, 1]));
        assert!(s.psum_spilled);
        assert!(s.counters.gb_of(OperandClass::Psum) > 0);
        // F innermost streams the whole dot per edge: nothing persists.
        let vnf = run(&degrees, 64, 2, &tiling("VNF", [4, 1, 1]));
        assert!(!vnf.psum_spilled);
        assert_eq!(vnf.counters.gb_of(OperandClass::Psum), 0);
    }

    #[test]
    fn output_stays_local_suppresses_score_traffic() {
        let degrees = [2usize, 3, 1, 4];
        let t = tiling("VFN", [2, 4, 1]);
        let cfg = AccelConfig::paper_default();
        let wl = SddmmWorkload { degrees: &degrees, dot_width: 8, heads: 2 };
        let mut opts = EngineOptions::plain(cfg.full_bandwidth());
        opts.output_stays_local = true;
        let s = simulate_sddmm(&wl, &t, &cfg, &OperandClasses::sddmm(), &opts);
        assert_eq!(s.counters.gb_of(OperandClass::EdgeScore), 0);
        assert_eq!(s.counters.total_gb_writes(), 0);
    }

    #[test]
    fn produce_chunks_cover_all_scores() {
        let degrees = vec![3usize; 16];
        let t = tiling("VFN", [4, 8, 1]);
        let cfg = AccelConfig::paper_default();
        let wl = SddmmWorkload { degrees: &degrees, dot_width: 8, heads: 2 };
        let mut opts = EngineOptions::plain(cfg.full_bandwidth());
        opts.chunk = Some(ChunkSpec { side: ChunkSide::Produce, pel: 12 });
        let s = simulate_sddmm(&wl, &t, &cfg, &OperandClasses::sddmm(), &opts);
        assert_eq!(s.chunk_marks.len(), (2 * 48u64).div_ceil(12) as usize);
        assert_eq!(*s.chunk_marks.last().unwrap(), s.cycles);
        assert!(s.chunk_marks.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bandwidth_throttling_stalls_scoring() {
        let degrees = vec![32usize; 64];
        let t = tiling("VFN", [8, 16, 1]);
        let cfg = AccelConfig::paper_default();
        let wl = SddmmWorkload { degrees: &degrees, dot_width: 32, heads: 4 };
        let fast = simulate_sddmm(&wl, &t, &cfg, &OperandClasses::sddmm(),
            &EngineOptions::plain(BandwidthShare { dist: 512, red: 512 }));
        let slow = simulate_sddmm(&wl, &t, &cfg, &OperandClasses::sddmm(),
            &EngineOptions::plain(BandwidthShare { dist: 16, red: 16 }));
        assert!(slow.cycles > fast.cycles);
        assert!(slow.stall_cycles > fast.stall_cycles);
    }

    #[test]
    fn empty_workloads_are_free() {
        assert_eq!(run(&[], 8, 2, &tiling("VFN", [2, 4, 1])).cycles, 0);
        assert_eq!(run(&[0, 0], 8, 2, &tiling("VFN", [2, 4, 1])).cycles, 0);
        assert_eq!(run(&[3, 2], 0, 2, &tiling("VFN", [2, 4, 1])).cycles, 0);
    }

    #[test]
    #[should_panic(expected = "N before V")]
    fn n_outermost_orders_panic() {
        run(&[2, 2], 8, 1, &tiling("NVF", [2, 2, 2]));
    }

    #[test]
    #[should_panic(expected = "N before V")]
    fn fnv_order_panics() {
        run(&[2, 2], 8, 1, &tiling("FNV", [2, 2, 2]));
    }
}
