//! The sparse-SpMM phase leaf (Aggregation over a CSR adjacency).

use omega_dataflow::{Dim, IntraTiling, Phase};

use super::core::{
    actual_tile, run_phase, DegreeSummary, Footprint, PhaseEngine, PhaseWalk, PreparedSpmm,
    SpillModel, TileClass,
};
use super::{ChunkSide, EngineOptions, OperandClasses};
use crate::{AccelConfig, OperandClass, PhaseStats};

/// The sparse workload of an Aggregation phase: the per-row stored non-zero
/// counts of the CSR adjacency (degrees, including self loops) and the width of
/// the dense operand streamed per neighbour (`F` in AC, `G` in CA).
#[derive(Debug, Clone)]
pub struct SpmmWorkload<'a> {
    /// Stored non-zeros per adjacency row.
    pub degrees: &'a [usize],
    /// Dense feature width.
    pub feature_width: usize,
}

impl SpmmWorkload<'_> {
    /// Total stored non-zeros.
    pub fn nnz(&self) -> u64 {
        self.degrees.iter().map(|&d| d as u64).sum()
    }

    /// Maximum row degree.
    pub fn max_degree(&self) -> usize {
        self.degrees.iter().copied().max().unwrap_or(0)
    }
}

/// Simulates the Aggregation phase under a concrete tiling.
///
/// Loop-order support (see `DESIGN.md` §3): the row-major orders `VFN`, `FVN`,
/// `VNF` — used by every Table V preset and every AC pipelined dataflow — are
/// modelled exactly; `FNV` (column granularity) uses a degree-histogram model of
/// slice activity; the `N`-outermost orders (`NVF`, `NFV`, legal only under Seq
/// for AC) use the same histogram model with partial sums conservatively spilled
/// per slice.
///
/// Vertex tiles are **tile-synchronized**: a spatial tile of `T_V` rows advances
/// at `ceil(max_degree_in_tile / T_N)` steps, which is what makes a single dense
/// "evil row" dominate runtime when `T_V` is very large (Section V-B1).
pub fn simulate_spmm(
    wl: &SpmmWorkload<'_>,
    tiling: &IntraTiling,
    cfg: &AccelConfig,
    classes: &OperandClasses,
    opts: &EngineOptions,
) -> PhaseStats {
    simulate_spmm_prepared(&PreparedSpmm::new(wl.degrees), wl.feature_width, tiling, cfg, classes, opts)
}

/// [`simulate_spmm`] over pre-hoisted degree structures — bit-identical to the
/// plain entry point, but amortises the degree sorting across many calls.
pub fn simulate_spmm_prepared(
    prep: &PreparedSpmm<'_>,
    feature_width: usize,
    tiling: &IntraTiling,
    cfg: &AccelConfig,
    classes: &OperandClasses,
    opts: &EngineOptions,
) -> PhaseStats {
    assert_eq!(tiling.phase(), Phase::Aggregation, "SpMM engine needs an Aggregation tiling");
    let leaf = SpmmLeaf::new(prep, feature_width, tiling, cfg);
    run_phase(&leaf, cfg, classes, opts)
}

/// The SpMM leaf: row-major orders walked exactly, column-granularity and
/// `N`-outermost orders through the degree-histogram model.
struct SpmmLeaf<'a> {
    prep: &'a PreparedSpmm<'a>,
    f: usize,
    tiling: &'a IntraTiling,
    tv: usize,
    tf: usize,
    tn: usize,
    n_v: usize,
    n_f: usize,
    pos_v: usize,
    pos_n: usize,
    spill: SpillModel,
}

impl<'a> SpmmLeaf<'a> {
    fn new(prep: &'a PreparedSpmm<'a>, f: usize, tiling: &'a IntraTiling, cfg: &AccelConfig) -> Self {
        let v = prep.degrees().len();
        let order = tiling.order();
        let pos_n = order.position(Dim::N).expect("N is an Aggregation dim");
        let pos_v = order.position(Dim::V).expect("V is an Aggregation dim");
        if v == 0 || f == 0 || prep.nnz() == 0 {
            // Degenerate: `run_phase` short-circuits before reading these.
            let spill = SpillModel::new(cfg, 1, 1, false);
            return SpmmLeaf { prep, f, tiling, tv: 1, tf: 1, tn: 1, n_v: 0, n_f: 0, pos_v, pos_n, spill };
        }
        let max_deg = prep.max_degree();
        let tv = tiling.tile_of(Dim::V).min(v);
        let tf = tiling.tile_of(Dim::F).min(f);
        let tn = tiling.tile_of(Dim::N).min(max_deg.max(1));
        let n_v = v.div_ceil(tv);
        let n_f = f.div_ceil(tf);
        // Partial-sum placement: with N innermost, the output tile accumulates
        // in the PE MAC registers. With N in the middle, each PE revisits its F
        // (or V) slice once per neighbour slice → live psums per PE = temporal
        // revisits of the dims inner to N, shared across the T_N PEs of each
        // spatial reduction group. With N outermost, everything stays live.
        let revisits: u64 = [Dim::V, Dim::F]
            .iter()
            .filter(|&&d| order.position(d).expect("dim present") > pos_n)
            .map(|&d| match d {
                Dim::V => n_v as u64,
                _ => n_f as u64,
            })
            .product();
        let spill = SpillModel::new(cfg, revisits, tn, pos_n < 2);
        SpmmLeaf { prep, f, tiling, tv, tf, tn, n_v, n_f, pos_v, pos_n, spill }
    }

    /// Charges the dense-input and adjacency traffic common to every pass that
    /// visits `edge_visits` edges over `width` feature columns of `rows` rows,
    /// for `m` identical passes. Returns the *per-pass* GB reads (for timing).
    fn charge_inputs(&self, w: &mut PhaseWalk, edge_visits: u64, width: u64, rows: u64, m: u64) -> u64 {
        let feat = edge_visits * width;
        // CSR structure (column indices + row pointers) is always Adjacency
        // traffic; the per-edge *values* land in the `b_input` class (plain
        // adjacency values, or attention scores for a GAT aggregation) and can
        // be RF-resident when the SDDMM producer kept them local.
        let structure = edge_visits + rows;
        w.counters.read(OperandClass::Adjacency, structure * m);
        let mut gb = structure;
        if !w.opts.scores_resident {
            w.counters.read(w.classes.b_input, edge_visits * m);
            gb += edge_visits;
        }
        if w.opts.input_resident {
            // CA SP-Optimized: the intermediate rows are already local.
        } else {
            w.counters.read(w.classes.a_input, feat * m);
            gb += feat;
        }
        // Multicast: each adjacency value fans out across the spatial F lanes;
        // features land in exactly one PE each.
        w.counters.rf_writes += (feat + edge_visits * self.tf as u64) * m;
        gb
    }

    /// `m` identical passes with `N` innermost (VFN / FVN): reduction completes
    /// in-pass.
    fn reduction_innermost_pass(
        &self,
        w: &mut PhaseWalk,
        steps: u64,
        edge_visits: u64,
        rows: u64,
        width: u64,
        m: u64,
    ) {
        let macs = edge_visits * width;
        w.macs += macs * m;
        w.counters.rf_reads += 2 * macs * m;
        let updates = macs.div_ceil(self.tn as u64);
        w.counters.rf_reads += updates * m;
        w.counters.rf_writes += updates * m;
        let mut gb_writes = 0;
        let out = rows * width;
        if w.opts.output_stays_local {
            w.counters.rf_writes += out * m;
        } else {
            w.counters.write(w.classes.output, out * m);
            gb_writes = out;
        }
        let gb_reads = self.charge_inputs(w, edge_visits, width, rows, m);
        w.run_pass(steps.max(1), gb_reads, gb_writes, 0, out, macs, m);
    }

    /// `m` identical passes with `N` in the middle (VNF): one neighbour slice,
    /// F innermost.
    #[allow(clippy::too_many_arguments)]
    fn reduction_middle_pass(
        &self,
        w: &mut PhaseWalk,
        steps: u64,
        macs: u64,
        rows: u64,
        width: u64,
        red_idx: u64,
        n_red: u64,
        edge_visits: u64,
        m: u64,
    ) {
        w.macs += macs * m;
        w.counters.rf_reads += 2 * macs * m;
        let touched = rows * width;
        let spilled = self.spill.scale(touched);
        let mut gb_writes = 0;
        if self.spill.spill {
            w.spilled = true;
            if red_idx > 0 {
                w.counters.read(OperandClass::Psum, spilled * m);
            }
            if red_idx < n_red - 1 {
                w.counters.write(OperandClass::Psum, spilled * m);
                gb_writes += spilled;
            }
        } else {
            let updates = macs.div_ceil(self.tn as u64);
            w.counters.rf_reads += updates * m;
            w.counters.rf_writes += updates * m;
        }
        let mut produced = 0;
        if red_idx == n_red - 1 {
            if w.opts.output_stays_local {
                w.counters.rf_writes += touched * m;
            } else {
                w.counters.write(w.classes.output, touched * m);
                gb_writes += touched;
            }
            produced = touched;
        }
        let mut gb_reads = self.charge_inputs(w, edge_visits, width, rows, m);
        if self.spill.spill && red_idx > 0 {
            gb_reads += spilled;
        }
        w.run_pass(steps.max(1), gb_reads, gb_writes, 0, produced, macs, m);
    }

    /// F-tile classes: the full tiles then the remainder, in iteration order,
    /// so the inner `F` loop of every order collapses to ≤ 2 batched passes.
    fn f_classes(&self) -> Vec<(u64, u64)> {
        let (f, tf, n_f) = (self.f, self.tf, self.n_f);
        let af_last = (f - (n_f - 1) * tf) as u64;
        if af_last == tf as u64 {
            vec![(tf as u64, n_f as u64)]
        } else {
            vec![(tf as u64, (n_f - 1) as u64), (af_last, 1)]
        }
    }

    /// The neighbour-slice walk of one vertex-tile class under VNF (`m`
    /// identical tiles batched together).
    fn vnf_tile(&self, w: &mut PhaseWalk, c: &TileClass, m: u64) {
        let tn = self.tn;
        let summary = c.summary();
        let n_red = (c.max as u64).div_ceil(tn as u64).max(1) as usize;
        for in_ in 0..n_red {
            let lo = in_ * tn;
            let hi = lo + tn;
            let active = summary.active(lo, hi);
            self.reduction_middle_pass(
                w,
                self.n_f as u64,
                active * self.f as u64,
                c.rows,
                self.f as u64,
                in_ as u64,
                n_red as u64,
                active,
                m,
            );
        }
    }

    /// The full slice walk of one single-row vertex tile under VNF (`m` rows of
    /// identical degree `d` batched together).
    fn vnf_vertex(&self, w: &mut PhaseWalk, d: usize, m: u64) {
        let n_red = (d as u64).div_ceil(self.tn as u64).max(1) as usize;
        for in_ in 0..n_red {
            let lo = in_ * self.tn;
            let hi = lo + self.tn;
            let active = (d.min(hi) - d.min(lo)) as u64;
            self.reduction_middle_pass(
                w,
                self.n_f as u64,
                active * self.f as u64,
                1,
                self.f as u64,
                in_ as u64,
                n_red as u64,
                active,
                m,
            );
        }
    }

    /// `m` identical histogram-modelled passes (FNV / NVF / NFV): one global
    /// neighbour slice.
    #[allow(clippy::too_many_arguments)]
    fn histogram_pass(
        &self,
        w: &mut PhaseWalk,
        steps: u64,
        edge_visits: u64,
        width: u64,
        rows_active: u64,
        rows_finishing: u64,
        red_idx: u64,
        m: u64,
    ) {
        let macs = edge_visits * width;
        w.macs += macs * m;
        w.counters.rf_reads += 2 * macs * m;
        let mut gb_writes = 0;
        if self.spill.spill {
            w.spilled = true;
            let live = self.spill.scale(rows_active.saturating_sub(rows_finishing) * width);
            if red_idx > 0 {
                w.counters.read(OperandClass::Psum, self.spill.scale(rows_active * width) * m);
            }
            if live > 0 {
                w.counters.write(OperandClass::Psum, live * m);
                gb_writes += live;
            }
        } else {
            let updates = macs.div_ceil(self.tn as u64);
            w.counters.rf_reads += updates * m;
            w.counters.rf_writes += updates * m;
        }
        let out = rows_finishing * width;
        if out > 0 {
            if w.opts.output_stays_local {
                w.counters.rf_writes += out * m;
            } else {
                w.counters.write(w.classes.output, out * m);
                gb_writes += out;
            }
        }
        let mut gb_reads = self.charge_inputs(w, edge_visits, width, rows_active, m);
        if self.spill.spill && red_idx > 0 {
            gb_reads += self.spill.scale(rows_active * width);
        }
        w.run_pass(steps.max(1), gb_reads, gb_writes, 0, out, macs, m);
    }
}

impl PhaseEngine for SpmmLeaf<'_> {
    fn is_empty(&self) -> bool {
        self.prep.degrees().is_empty() || self.f == 0 || self.prep.nnz() == 0
    }

    fn reduction_lanes(&self) -> usize {
        self.tn
    }

    fn pe_footprint(&self) -> usize {
        self.tiling.pe_footprint()
    }

    fn chunk_total(&self, side: ChunkSide) -> u64 {
        match side {
            ChunkSide::Produce => (self.prep.degrees().len() as u64) * (self.f as u64),
            ChunkSide::Consume => self.prep.nnz() * self.f as u64,
        }
    }

    fn footprint(&self, opts: &EngineOptions) -> Footprint {
        if self.is_empty() {
            return Footprint::default();
        }
        let v = self.prep.degrees().len() as u64;
        let f = self.f as u64;
        let (tv, tf, tn) = (self.tv as u64, self.tf as u64, self.tn as u64);
        // GB stages one pass's slices: the CSR structure of the vertex tile
        // (row pointers + a neighbour-index slice per row), the gathered
        // neighbour rows feeding the spatial tile, the per-edge values, and
        // the output tile — each unless a residency flag keeps it local.
        let mut gb = tv * (1 + tn);
        if !opts.input_resident {
            gb += tv * tn * tf;
        }
        if !opts.scores_resident {
            gb += tv * tn;
        }
        if !opts.output_stays_local {
            gb += tv * tf;
        }
        // Residency pins: gathers address arbitrary rows, so `input_resident`
        // pins the whole dense operand; `scores_resident` pins every per-edge
        // value; `output_stays_local` pins the full output matrix.
        let mut pins = 0u64;
        if opts.input_resident {
            pins += v * f;
        }
        if opts.scores_resident {
            pins += self.prep.nnz();
        }
        if opts.output_stays_local {
            pins += v * f;
        }
        Footprint::new(self.spill.live(), pins, self.pe_footprint(), gb)
    }

    /// Dispatches between the summary-driven walk (the default) and the
    /// per-edge reference walk (`EngineOptions::reference_walk`) — the
    /// differential suite (`crates/accel/tests/summary_identity.rs`) asserts
    /// the two are bit-identical on every supported combination.
    fn walk(&self, w: &mut PhaseWalk) {
        if w.opts.reference_walk {
            self.walk_reference(w)
        } else {
            self.walk_summary(w)
        }
    }
}

impl SpmmLeaf<'_> {
    /// The per-edge reference walk: every vertex tile scanned afresh, every
    /// F-tile and neighbour slice visited with multiplicity 1. O(nnz) per
    /// simulation — kept compiled as the differential-testing oracle.
    fn walk_reference(&self, w: &mut PhaseWalk) {
        let degrees = self.prep.degrees();
        let v = degrees.len();
        let f = self.f;
        let (tv, tf, tn) = (self.tv, self.tf, self.tn);
        let (n_v, n_f) = (self.n_v, self.n_f);
        // Per-vertex-tile degree summary, built afresh per tile (the summary
        // walk replays the cached per-class structure instead).
        let tile_summary = |iv: usize| -> DegreeSummary {
            let lo = iv * tv;
            let hi = ((iv + 1) * tv).min(v);
            DegreeSummary::new(degrees[lo..hi].iter().copied())
        };

        match (self.pos_v, self.pos_n) {
            (0, 2) | (1, 2) => {
                // VFN / FVN: per (v-tile × f-tile) pass; reduction innermost.
                for iv in 0..n_v {
                    let lo = iv * tv;
                    let hi = ((iv + 1) * tv).min(v);
                    crate::telemetry::count_prepare((hi - lo) as u64);
                    let mut sum = 0u64;
                    let mut mx = 0usize;
                    for &d in &degrees[lo..hi] {
                        sum += d as u64;
                        mx = mx.max(d);
                    }
                    let avv = (hi - lo) as u64;
                    let steps = (mx as u64).div_ceil(tn as u64);
                    for if_ in 0..n_f {
                        let af = actual_tile(f, tf, if_) as u64;
                        self.reduction_innermost_pass(w, steps, sum, avv, af, 1);
                    }
                }
            }
            (0, 1) => {
                // VNF: per v-tile, neighbour slices in the middle, F innermost.
                if tv == 1 {
                    for &d in degrees {
                        self.vnf_vertex(w, d, 1);
                    }
                } else {
                    for iv in 0..n_v {
                        let summary = tile_summary(iv);
                        let avv = actual_tile(v, tv, iv) as u64;
                        let n_red = (summary.max() as u64).div_ceil(tn as u64).max(1) as usize;
                        for in_ in 0..n_red {
                            let lo = in_ * tn;
                            let hi = lo + tn;
                            let active = summary.active(lo, hi);
                            self.reduction_middle_pass(
                                w,
                                n_f as u64,
                                active * f as u64,
                                avv,
                                f as u64,
                                in_ as u64,
                                n_red as u64,
                                active,
                                1,
                            );
                        }
                    }
                }
            }
            (2, 1) => {
                // FNV: per f-tile, global neighbour slices, vertices innermost
                // (histogram model — the global summary *is* the model here).
                let global = self.prep.global();
                let n_red = (global.max() as u64).div_ceil(tn as u64).max(1) as usize;
                for if_ in 0..n_f {
                    let af = actual_tile(f, tf, if_) as u64;
                    for in_ in 0..n_red {
                        let lo = in_ * tn;
                        let hi = lo + tn;
                        let active = global.active(lo, hi);
                        let rows_active = global.count_gt(lo);
                        let rows_finishing = rows_active - global.count_gt(hi.saturating_sub(1));
                        self.histogram_pass(
                            w,
                            rows_active.div_ceil(tv as u64).max(1),
                            active,
                            af,
                            rows_active,
                            rows_finishing,
                            in_ as u64,
                            1,
                        );
                    }
                }
            }
            (1, 0) => {
                // NVF: per neighbour slice, vertex tiles in the middle, F
                // innermost.
                let summaries: Vec<DegreeSummary> = (0..n_v).map(tile_summary).collect();
                let gmax = summaries.iter().map(|s| s.max()).max().unwrap_or(0);
                let n_red = (gmax as u64).div_ceil(tn as u64).max(1) as usize;
                for in_ in 0..n_red {
                    let lo = in_ * tn;
                    let hi = lo + tn;
                    for summary in &summaries {
                        let active = summary.active(lo, hi);
                        let rows_active = summary.count_gt(lo);
                        let rows_finishing = rows_active - summary.count_gt(hi.saturating_sub(1));
                        self.histogram_pass(
                            w,
                            n_f as u64,
                            active,
                            f as u64,
                            rows_active,
                            rows_finishing,
                            in_ as u64,
                            1,
                        );
                    }
                }
            }
            (2, 0) => {
                // NFV: per neighbour slice, feature tiles in the middle, V
                // innermost.
                let global = self.prep.global();
                let n_red = (global.max() as u64).div_ceil(tn as u64).max(1) as usize;
                for in_ in 0..n_red {
                    let lo = in_ * tn;
                    let hi = lo + tn;
                    let active = global.active(lo, hi);
                    let rows_active = global.count_gt(lo);
                    let rows_finishing = rows_active - global.count_gt(hi.saturating_sub(1));
                    for if_ in 0..n_f {
                        let af = actual_tile(f, tf, if_) as u64;
                        self.histogram_pass(
                            w,
                            rows_active.div_ceil(tv as u64).max(1),
                            active,
                            af,
                            rows_active,
                            rows_finishing,
                            in_ as u64,
                            1,
                        );
                    }
                }
            }
            _ => unreachable!("all (pos_v, pos_n) combinations covered"),
        }
    }

    /// The summary-driven walk: O(degree classes + tile boundaries) per
    /// simulation. Unchunked runs iterate [`TileClass`]es with the class
    /// multiplicity folded into the pass (`ChunkTracker::advance_repeat`
    /// semantics make the batching exact); chunked runs iterate tiles in true
    /// order but read each tile's `(sum, max, rows)` and slice summary from
    /// its class in O(1), so a tile row-block's timeline is computed once per
    /// (class, tile-shape) pair and replayed.
    fn walk_summary(&self, w: &mut PhaseWalk) {
        let degrees = self.prep.degrees();
        let f = self.f;
        let (tv, tf, tn) = (self.tv, self.tf, self.tn);
        let n_f = self.n_f;
        let f_classes = self.f_classes();

        match (self.pos_v, self.pos_n) {
            (0, 2) | (1, 2) => {
                // VFN / FVN: only (sum, max, rows) of each tile matter.
                let s = self.prep.summary(tv);
                if !w.has_chunks() {
                    for c in s.classes() {
                        w.class_replays += c.mult - 1;
                        let steps = (c.max as u64).div_ceil(tn as u64);
                        for &(af, m) in &f_classes {
                            self.reduction_innermost_pass(w, steps, c.sum, c.rows, af, m * c.mult);
                        }
                    }
                } else {
                    for iv in 0..s.num_tiles() {
                        let c = s.class_of(iv);
                        let steps = (c.max as u64).div_ceil(tn as u64);
                        for &(af, m) in &f_classes {
                            self.reduction_innermost_pass(w, steps, c.sum, c.rows, af, m);
                        }
                    }
                }
            }
            (0, 1) => {
                // VNF: per v-tile, neighbour slices in the middle, F innermost.
                if tv == 1 && !w.has_chunks() {
                    // Single-row tiles with identical degrees make identical
                    // pass sequences — batch by degree class (order-insensitive
                    // without chunk timestamps).
                    for &(d, m) in self.prep.classes() {
                        w.class_replays += m - 1;
                        self.vnf_vertex(w, d, m);
                    }
                } else if tv == 1 {
                    for &d in degrees {
                        self.vnf_vertex(w, d, 1);
                    }
                } else {
                    let s = self.prep.summary(tv);
                    if !w.has_chunks() {
                        for c in s.classes() {
                            w.class_replays += c.mult - 1;
                            self.vnf_tile(w, c, c.mult);
                        }
                    } else {
                        for iv in 0..s.num_tiles() {
                            self.vnf_tile(w, s.class_of(iv), 1);
                        }
                    }
                }
            }
            (2, 1) => {
                // FNV: column granularity — per f-tile, global neighbour
                // slices, vertices innermost (histogram model).
                let global = self.prep.global();
                let n_red = (global.max() as u64).div_ceil(tn as u64).max(1) as usize;
                if !w.has_chunks() {
                    // Hoist the slice walk out of the F loop: every f-tile
                    // repeats the same slice sequence (order-insensitive
                    // without chunks).
                    for in_ in 0..n_red {
                        let lo = in_ * tn;
                        let hi = lo + tn;
                        let active = global.active(lo, hi);
                        let rows_active = global.count_gt(lo);
                        let rows_finishing = rows_active - global.count_gt(hi.saturating_sub(1));
                        for &(af, m) in &f_classes {
                            self.histogram_pass(
                                w,
                                rows_active.div_ceil(tv as u64).max(1),
                                active,
                                af,
                                rows_active,
                                rows_finishing,
                                in_ as u64,
                                m,
                            );
                        }
                    }
                } else {
                    for if_ in 0..n_f {
                        let af = actual_tile(f, tf, if_) as u64;
                        for in_ in 0..n_red {
                            let lo = in_ * tn;
                            let hi = lo + tn;
                            let active = global.active(lo, hi);
                            let rows_active = global.count_gt(lo);
                            let rows_finishing =
                                rows_active - global.count_gt(hi.saturating_sub(1));
                            self.histogram_pass(
                                w,
                                rows_active.div_ceil(tv as u64).max(1),
                                active,
                                af,
                                rows_active,
                                rows_finishing,
                                in_ as u64,
                                1,
                            );
                        }
                    }
                }
            }
            (1, 0) => {
                // NVF: per neighbour slice, vertex tiles in the middle (each
                // contributing its own active edges for the slice), F innermost.
                //
                // A tile is *dead* in slice `in_` once its max degree is ≤ the
                // slice base: its pass carries no edges, rows, or output —
                // just the pipeline-bubble timing, identical for every dead
                // tile, and every pass cost is linear in the multiplicity. So
                // the dead tiles of each slice batch into one pass, keeping
                // this arm O(Σ_classes ceil(max/T_N) + slices) instead of
                // O(classes × slices) — a power-law hub otherwise drives the
                // slice count into the thousands while almost every tile dies
                // within the first few.
                if tv == 1 && !w.has_chunks() {
                    let classes = self.prep.classes();
                    let gmax = classes.last().map_or(0, |&(d, _)| d);
                    let n_red = (gmax as u64).div_ceil(tn as u64).max(1) as usize;
                    // Classes ascend by degree, so each slice's dead set is a
                    // prefix; prefix-sum the multiplicities once.
                    let mut rows_before = Vec::with_capacity(classes.len() + 1);
                    rows_before.push(0u64);
                    for &(_, m) in classes {
                        rows_before.push(rows_before.last().unwrap() + m);
                    }
                    for in_ in 0..n_red {
                        let lo = in_ * tn;
                        let hi = lo + tn;
                        let first_alive = classes.partition_point(|&(d, _)| d <= lo);
                        let dead = rows_before[first_alive];
                        if dead > 0 {
                            w.class_replays += dead - 1;
                            self.histogram_pass(w, n_f as u64, 0, f as u64, 0, 0, in_ as u64, dead);
                        }
                        for &(d, m) in &classes[first_alive..] {
                            let active = (d.min(hi) - d.min(lo)) as u64;
                            let rows_finishing = u64::from(d <= hi.saturating_sub(1));
                            w.class_replays += m - 1;
                            self.histogram_pass(
                                w,
                                n_f as u64,
                                active,
                                f as u64,
                                1,
                                rows_finishing,
                                in_ as u64,
                                m,
                            );
                        }
                    }
                } else if !w.has_chunks() {
                    let s = self.prep.summary(tv);
                    let classes = s.classes();
                    let gmax = classes.iter().map(|c| c.max).max().unwrap_or(0);
                    let n_red = (gmax as u64).div_ceil(tn as u64).max(1) as usize;
                    // Class ids sorted by max descending: each slice's alive
                    // set is a prefix, the dead suffix one batched pass.
                    // (Order-insensitive without chunk timestamps.)
                    let mut by_max: Vec<u32> = (0..classes.len() as u32).collect();
                    by_max.sort_unstable_by(|&a, &b| {
                        classes[b as usize].max.cmp(&classes[a as usize].max)
                    });
                    let mut dead_after = vec![0u64; by_max.len() + 1];
                    for i in (0..by_max.len()).rev() {
                        dead_after[i] = dead_after[i + 1] + classes[by_max[i] as usize].mult;
                    }
                    for in_ in 0..n_red {
                        let lo = in_ * tn;
                        let hi = lo + tn;
                        let alive = by_max.partition_point(|&id| classes[id as usize].max > lo);
                        for &id in &by_max[..alive] {
                            let c = &classes[id as usize];
                            let summary = c.summary();
                            let active = summary.active(lo, hi);
                            let rows_active = summary.count_gt(lo);
                            let rows_finishing =
                                rows_active - summary.count_gt(hi.saturating_sub(1));
                            w.class_replays += c.mult - 1;
                            self.histogram_pass(
                                w,
                                n_f as u64,
                                active,
                                f as u64,
                                rows_active,
                                rows_finishing,
                                in_ as u64,
                                c.mult,
                            );
                        }
                        let dead = dead_after[alive];
                        if dead > 0 {
                            w.class_replays += dead - 1;
                            self.histogram_pass(w, n_f as u64, 0, f as u64, 0, 0, in_ as u64, dead);
                        }
                    }
                } else {
                    // Chunk timestamps pin the true tile order, but runs of
                    // consecutive tiles with identical passes (same class, or
                    // both dead for this slice) still fold —
                    // `ChunkTracker::advance_repeat` keeps the marks exact —
                    // and the alive list shrinks as the slices deepen.
                    let s = self.prep.summary(tv);
                    let gmax = s.classes().iter().map(|c| c.max).max().unwrap_or(0);
                    let n_red = (gmax as u64).div_ceil(tn as u64).max(1) as usize;
                    let mut alive: Vec<u32> = (0..s.num_tiles() as u32).collect();
                    for in_ in 0..n_red {
                        let lo = in_ * tn;
                        let hi = lo + tn;
                        alive.retain(|&iv| s.class_of(iv as usize).max > lo);
                        let mut next = 0u32; // first tile not yet accounted for
                        let mut i = 0usize;
                        while i < alive.len() {
                            let iv = alive[i];
                            if iv > next {
                                let dead = (iv - next) as u64;
                                w.class_replays += dead - 1;
                                self.histogram_pass(
                                    w, n_f as u64, 0, f as u64, 0, 0, in_ as u64, dead,
                                );
                            }
                            let cid = s.class_id(iv as usize);
                            let mut run = 1u32;
                            while i + run as usize != alive.len()
                                && alive[i + run as usize] == iv + run
                                && s.class_id((iv + run) as usize) == cid
                            {
                                run += 1;
                            }
                            let summary = s.class_of(iv as usize).summary();
                            let active = summary.active(lo, hi);
                            let rows_active = summary.count_gt(lo);
                            let rows_finishing =
                                rows_active - summary.count_gt(hi.saturating_sub(1));
                            w.class_replays += u64::from(run) - 1;
                            self.histogram_pass(
                                w,
                                n_f as u64,
                                active,
                                f as u64,
                                rows_active,
                                rows_finishing,
                                in_ as u64,
                                u64::from(run),
                            );
                            next = iv + run;
                            i += run as usize;
                        }
                        let tail = s.num_tiles() as u32 - next;
                        if tail > 0 {
                            w.class_replays += u64::from(tail) - 1;
                            self.histogram_pass(
                                w, n_f as u64, 0, f as u64, 0, 0, in_ as u64, u64::from(tail),
                            );
                        }
                    }
                }
            }
            (2, 0) => {
                // NFV: per neighbour slice, feature tiles in the middle (each
                // revisiting the slice's active edges over its columns), V
                // innermost. The F loop is batched per class, preserving
                // iteration order.
                let global = self.prep.global();
                let n_red = (global.max() as u64).div_ceil(tn as u64).max(1) as usize;
                for in_ in 0..n_red {
                    let lo = in_ * tn;
                    let hi = lo + tn;
                    let active = global.active(lo, hi);
                    let rows_active = global.count_gt(lo);
                    let rows_finishing = rows_active - global.count_gt(hi.saturating_sub(1));
                    for &(af, m) in &f_classes {
                        self.histogram_pass(
                            w,
                            rows_active.div_ceil(tv as u64).max(1),
                            active,
                            af,
                            rows_active,
                            rows_finishing,
                            in_ as u64,
                            m,
                        );
                    }
                }
            }
            _ => unreachable!("all (pos_v, pos_n) combinations covered"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BandwidthShare;
    use omega_dataflow::LoopOrder;

    fn tiling(order: &str, tiles: [usize; 3]) -> IntraTiling {
        let d: Vec<Dim> = order.chars().map(|c| Dim::from_letter(c).unwrap()).collect();
        IntraTiling::new(
            Phase::Aggregation,
            LoopOrder::new(Phase::Aggregation, [d[0], d[1], d[2]]).unwrap(),
            tiles,
        )
    }

    fn run(degrees: &[usize], f: usize, t: &IntraTiling) -> PhaseStats {
        let cfg = AccelConfig::paper_default();
        let wl = SpmmWorkload { degrees, feature_width: f };
        simulate_spmm(&wl, t, &cfg, &OperandClasses::aggregation_ac(), &EngineOptions::plain(cfg.full_bandwidth()))
    }

    #[test]
    fn mac_count_equals_edge_visits_times_features() {
        let degrees = [3usize, 1, 5, 0, 2];
        let e: u64 = 11;
        for (order, tiles) in [("VFN", [2, 4, 1]), ("FVN", [2, 4, 1]), ("VNF", [2, 1, 4]), ("FNV", [2, 2, 4])] {
            let s = run(&degrees, 8, &tiling(order, tiles));
            assert_eq!(s.macs, e * 8, "{order}");
        }
    }

    #[test]
    fn evil_row_dominates_tile_synchronized_cycles() {
        // 63 rows of degree 2 plus one "evil" row of degree 200 in one big tile:
        // the tile advances at the evil row's pace.
        let mut degrees = vec![2usize; 63];
        degrees.push(200);
        let wide = run(&degrees, 16, &tiling("VFN", [64, 8, 1]));
        // Per (v,f) pass: 200 steps; 2 f-tiles → ≥ 400 compute cycles.
        assert!(wide.cycles >= 400, "cycles = {}", wide.cycles);
        // Splitting vertices into tiles of 8 isolates the evil row.
        let narrow = run(&degrees, 16, &tiling("VFN", [8, 8, 1]));
        // 7 tiles × 2 steps + 1 tile × 200 steps, × 2 f-tiles ≈ 428 ≥ but per-pass
        // overheads differ; the key property: narrow does *more total passes* yet
        // comparable cycles, and per-PE efficiency is better.
        assert!(narrow.compute_utilisation() > wide.compute_utilisation());
    }

    #[test]
    fn spatial_n_reduces_cycles_on_dense_graphs() {
        // Spending PE budget on N (spatial aggregation, Seq2/PP2/PP4 style) cuts
        // the per-row reduction steps ~T_N-fold on densely connected graphs.
        let degrees = vec![64usize; 32];
        let temporal = run(&degrees, 16, &tiling("VFN", [8, 8, 1]));
        let spatial = run(&degrees, 16, &tiling("VFN", [8, 8, 8]));
        assert!(
            spatial.cycles * 4 < temporal.cycles,
            "spatial {} vs temporal {}",
            spatial.cycles,
            temporal.cycles
        );
    }

    #[test]
    fn output_written_once_per_element() {
        let degrees = [2usize, 3, 1, 4];
        let s = run(&degrees, 8, &tiling("VFN", [2, 4, 1]));
        assert_eq!(s.counters.gb_writes[OperandClass::Intermediate.idx()], 4 * 8);
    }

    #[test]
    fn input_reads_scale_with_edges_and_features() {
        let degrees = [2usize, 3, 1, 4];
        let s = run(&degrees, 8, &tiling("VFN", [2, 4, 1]));
        assert_eq!(s.counters.gb_reads[OperandClass::Input.idx()], 10 * 8);
        // Adjacency traffic: 2 per edge visit per f-tile + row pointers.
        let adj = s.counters.gb_reads[OperandClass::Adjacency.idx()];
        assert!(adj >= 2 * 10 * 2, "adj = {adj}"); // 2 f-tiles re-walk the CSR
    }

    #[test]
    fn vnf_spills_when_f_revisits_overflow_rf() {
        // n_f = F/T_F = 64 revisits > 13 budget → spill.
        let degrees = vec![6usize; 16];
        let s = run(&degrees, 64, &tiling("VNF", [4, 1, 1]));
        assert!(s.psum_spilled);
        assert!(s.counters.gb_of(OperandClass::Psum) > 0);
    }

    #[test]
    fn vnf_no_spill_with_few_f_tiles() {
        let degrees = vec![6usize; 16];
        let s = run(&degrees, 64, &tiling("VNF", [4, 1, 16]));
        // n_f = 4 ≤ 13 → fits.
        assert!(!s.psum_spilled);
        assert_eq!(s.counters.gb_of(OperandClass::Psum), 0);
    }

    #[test]
    fn output_stays_local_suppresses_gb_writes() {
        let degrees = [2usize, 3, 1, 4];
        let t = tiling("VFN", [2, 4, 1]);
        let cfg = AccelConfig::paper_default();
        let wl = SpmmWorkload { degrees: &degrees, feature_width: 8 };
        let mut opts = EngineOptions::plain(cfg.full_bandwidth());
        opts.output_stays_local = true;
        let s = simulate_spmm(&wl, &t, &cfg, &OperandClasses::aggregation_ac(), &opts);
        assert_eq!(s.counters.total_gb_writes(), 0);
    }

    #[test]
    fn produce_chunks_align_with_rows() {
        let degrees = vec![3usize; 16];
        let t = tiling("VFN", [4, 8, 1]);
        let cfg = AccelConfig::paper_default();
        let wl = SpmmWorkload { degrees: &degrees, feature_width: 8 };
        let mut opts = EngineOptions::plain(cfg.full_bandwidth());
        opts.chunk = Some(crate::engine::ChunkSpec { side: ChunkSide::Produce, pel: 4 * 8 });
        let s = simulate_spmm(&wl, &t, &cfg, &OperandClasses::aggregation_ac(), &opts);
        assert_eq!(s.chunk_marks.len(), 4); // 16 rows / 4-row chunks
        assert_eq!(*s.chunk_marks.last().unwrap(), s.cycles);
        assert!(s.chunk_marks.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bandwidth_throttling_stalls_aggregation() {
        let degrees = vec![32usize; 64];
        let t = tiling("VFN", [8, 16, 1]);
        let cfg = AccelConfig::paper_default();
        let wl = SpmmWorkload { degrees: &degrees, feature_width: 32 };
        let fast = simulate_spmm(&wl, &t, &cfg, &OperandClasses::aggregation_ac(),
            &EngineOptions::plain(BandwidthShare { dist: 512, red: 512 }));
        let slow = simulate_spmm(&wl, &t, &cfg, &OperandClasses::aggregation_ac(),
            &EngineOptions::plain(BandwidthShare { dist: 32, red: 32 }));
        assert!(slow.cycles > fast.cycles);
        assert!(slow.stall_cycles > 0);
    }

    #[test]
    fn empty_graph_is_free() {
        let s = run(&[], 8, &tiling("VFN", [2, 4, 1]));
        assert_eq!(s.cycles, 0);
        let s = run(&[0, 0, 0], 8, &tiling("VFN", [2, 4, 1]));
        assert_eq!(s.cycles, 0);
    }

    #[test]
    fn n_outer_orders_produce_consistent_macs() {
        let degrees = [3usize, 1, 5, 0, 2];
        for order in ["NVF", "NFV"] {
            let s = run(&degrees, 8, &tiling(order, [2, 2, 2]));
            assert_eq!(s.macs, 11 * 8, "{order}");
            assert!(s.cycles > 0);
        }
    }
}
