//! The sparse-SpMM phase engine (Aggregation over a CSR adjacency).

use std::sync::OnceLock;

use omega_dataflow::{Dim, IntraTiling, Phase};

use super::{actual_tile, pass_timing, ChunkSide, ChunkTracker, EngineOptions, OperandClasses};
use crate::{AccelConfig, AccessCounters, OperandClass, PhaseStats, RfBudget};

/// The sparse workload of an Aggregation phase: the per-row stored non-zero
/// counts of the CSR adjacency (degrees, including self loops) and the width of
/// the dense operand streamed per neighbour (`F` in AC, `G` in CA).
#[derive(Debug, Clone)]
pub struct SpmmWorkload<'a> {
    /// Stored non-zeros per adjacency row.
    pub degrees: &'a [usize],
    /// Dense feature width.
    pub feature_width: usize,
}

impl SpmmWorkload<'_> {
    /// Total stored non-zeros.
    pub fn nnz(&self) -> u64 {
        self.degrees.iter().map(|&d| d as u64).sum()
    }

    /// Maximum row degree.
    pub fn max_degree(&self) -> usize {
        self.degrees.iter().copied().max().unwrap_or(0)
    }
}

/// Degree summary supporting O(log n) "edges active in neighbour slice `[lo, hi)`"
/// queries: `Σ_v min(deg_v, hi) − min(deg_v, lo)`. Shared with the SDDMM
/// engine, whose neighbour-slice walks are the same shape.
#[derive(Debug)]
pub(crate) struct DegreeSummary {
    sorted: Vec<u32>,
    prefix: Vec<u64>, // prefix[i] = sum of sorted[..i]
}

impl DegreeSummary {
    pub(crate) fn new(degrees: impl Iterator<Item = usize>) -> Self {
        let mut sorted: Vec<u32> = degrees.map(|d| d as u32).collect();
        sorted.sort_unstable();
        let mut prefix = Vec::with_capacity(sorted.len() + 1);
        prefix.push(0u64);
        for &d in &sorted {
            prefix.push(prefix.last().unwrap() + d as u64);
        }
        DegreeSummary { sorted, prefix }
    }

    /// Σ_v min(deg_v, x).
    fn sum_min(&self, x: usize) -> u64 {
        let idx = self.sorted.partition_point(|&d| (d as usize) < x);
        self.prefix[idx] + (self.sorted.len() - idx) as u64 * x as u64
    }

    /// Edge visits whose within-row index falls in `[lo, hi)`.
    pub(crate) fn active(&self, lo: usize, hi: usize) -> u64 {
        self.sum_min(hi) - self.sum_min(lo)
    }

    /// Rows with degree > k.
    pub(crate) fn count_gt(&self, k: usize) -> u64 {
        (self.sorted.len() - self.sorted.partition_point(|&d| d as usize <= k)) as u64
    }

    pub(crate) fn max(&self) -> usize {
        self.sorted.last().map_or(0, |&d| d as usize)
    }
}

/// Degree structures of one adjacency, hoisted out of [`simulate_spmm`] so a
/// caller evaluating thousands of tilings of the *same* workload (the DSE hot
/// path) pays the O(V log V) sorting once instead of per simulation.
///
/// The totals (`nnz`, `max_degree`) are computed eagerly; the sorted degree
/// classes and the global degree summary — needed only by some loop orders —
/// are built lazily on first use and shared across threads.
#[derive(Debug)]
pub struct PreparedSpmm<'a> {
    degrees: &'a [usize],
    nnz: u64,
    max_degree: usize,
    classes: OnceLock<Vec<(usize, u64)>>,
    global: OnceLock<DegreeSummary>,
}

impl<'a> PreparedSpmm<'a> {
    /// Prepares the degree structures for `degrees`.
    pub fn new(degrees: &'a [usize]) -> Self {
        let nnz = degrees.iter().map(|&d| d as u64).sum();
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        PreparedSpmm { degrees, nnz, max_degree, classes: OnceLock::new(), global: OnceLock::new() }
    }

    /// The stored non-zeros per row this preparation covers.
    pub fn degrees(&self) -> &'a [usize] {
        self.degrees
    }

    /// Total stored non-zeros.
    pub fn nnz(&self) -> u64 {
        self.nnz
    }

    /// Maximum row degree.
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    pub(crate) fn classes(&self) -> &[(usize, u64)] {
        self.classes.get_or_init(|| degree_classes(self.degrees))
    }

    pub(crate) fn global(&self) -> &DegreeSummary {
        self.global.get_or_init(|| DegreeSummary::new(self.degrees.iter().copied()))
    }
}

/// Simulates the Aggregation phase under a concrete tiling.
///
/// Loop-order support (see `DESIGN.md` §3): the row-major orders `VFN`, `FVN`,
/// `VNF` — used by every Table V preset and every AC pipelined dataflow — are
/// modelled exactly; `FNV` (column granularity) uses a degree-histogram model of
/// slice activity; the `N`-outermost orders (`NVF`, `NFV`, legal only under Seq
/// for AC) use the same histogram model with partial sums conservatively spilled
/// per slice.
///
/// Vertex tiles are **tile-synchronized**: a spatial tile of `T_V` rows advances
/// at `ceil(max_degree_in_tile / T_N)` steps, which is what makes a single dense
/// "evil row" dominate runtime when `T_V` is very large (Section V-B1).
pub fn simulate_spmm(
    wl: &SpmmWorkload<'_>,
    tiling: &IntraTiling,
    cfg: &AccelConfig,
    classes: &OperandClasses,
    opts: &EngineOptions,
) -> PhaseStats {
    simulate_spmm_prepared(&PreparedSpmm::new(wl.degrees), wl.feature_width, tiling, cfg, classes, opts)
}

/// [`simulate_spmm`] over pre-hoisted degree structures — bit-identical to the
/// plain entry point, but amortises the degree sorting across many calls.
pub fn simulate_spmm_prepared(
    prep: &PreparedSpmm<'_>,
    feature_width: usize,
    tiling: &IntraTiling,
    cfg: &AccelConfig,
    classes: &OperandClasses,
    opts: &EngineOptions,
) -> PhaseStats {
    assert_eq!(tiling.phase(), Phase::Aggregation, "SpMM engine needs an Aggregation tiling");
    let degrees = prep.degrees();
    let v = degrees.len();
    let f = feature_width;
    let counters = AccessCounters::default();
    if v == 0 || f == 0 || prep.nnz() == 0 {
        return PhaseStats {
            cycles: 0,
            stall_cycles: 0,
            macs: 0,
            counters,
            pe_footprint: tiling.pe_footprint(),
            chunk_marks: Vec::new(),
            psum_spilled: false,
        };
    }

    let max_deg = prep.max_degree();
    let tv = tiling.tile_of(Dim::V).min(v);
    let tf = tiling.tile_of(Dim::F).min(f);
    let tn = tiling.tile_of(Dim::N).min(max_deg.max(1));
    let n_v = v.div_ceil(tv);
    let n_f = f.div_ceil(tf);

    let order = tiling.order();
    let pos_n = order.position(Dim::N).expect("N is an Aggregation dim");
    let pos_v = order.position(Dim::V).expect("V is an Aggregation dim");

    // Partial-sum placement: with N innermost, the output tile accumulates in the
    // PE MAC registers. With N in the middle, each PE revisits its F (or V)
    // slice once per neighbour slice → live psums per PE = temporal revisits of
    // the dims inner to N. With N outermost, everything stays live.
    let revisits: u64 = [Dim::V, Dim::F]
        .iter()
        .filter(|&&d| order.position(d).expect("dim present") > pos_n)
        .map(|&d| match d {
            Dim::V => n_v as u64,
            _ => n_f as u64,
        })
        .product();
    // Live psums are shared across the T_N PEs of each spatial reduction group.
    let share = if cfg.knobs.psum_group_sharing { tn.max(1) as u64 } else { 1 };
    let live_psums_per_pe = revisits.div_ceil(share);
    let rf = RfBudget::new(cfg.rf_words(), 1);
    let spill = pos_n < 2 && !rf.psums_fit(live_psums_per_pe as usize);
    // Only the overflow fraction of the live psums spills to the GB
    // (ratio carried into the walk state below).
    let spill_num = if cfg.knobs.fractional_spill {
        live_psums_per_pe.saturating_sub(rf.psum_capacity() as u64)
    } else {
        live_psums_per_pe
    };

    let total_out = (v as u64) * (f as u64);
    let total_visits = prep.nnz() * f as u64;
    let chunk_total = match opts.chunk.map(|c| c.side) {
        Some(ChunkSide::Produce) => total_out,
        Some(ChunkSide::Consume) => total_visits,
        None => 0,
    };
    let chunks = ChunkTracker::new(opts.chunk.as_ref(), chunk_total);

    // Pipeline-fill overheads are paid once per phase (the NoCs stream across
    // passes), not per pass.
    let tree_overhead = if tn > 1 { crate::tree_latency(tn, cfg.tree_latency_per_level) } else { 0 };
    let (phase_fill, pass_fill) = if cfg.knobs.per_pass_fill {
        (0, tree_overhead + cfg.dist_latency)
    } else {
        (tree_overhead + cfg.dist_latency, 0)
    };

    let mut st = Walk {
        counters,
        cycles: 0,
        stall_cycles: 0,
        macs: 0,
        spilled: false,
        chunks,
        classes: *classes,
        opts: *opts,
        overhead: pass_fill,
        tn: tn as u64,
        tf: tf as u64,
        spill_ratio: (spill_num, live_psums_per_pe.max(1)),
    };

    // F-tile classes: the full tiles then the remainder, in iteration order, so
    // the inner `F` loop of every order collapses to ≤ 2 batched passes.
    let af_last = (f - (n_f - 1) * tf) as u64;
    let f_classes: Vec<(u64, u64)> = if af_last == tf as u64 {
        vec![(tf as u64, n_f as u64)]
    } else {
        vec![(tf as u64, (n_f - 1) as u64), (af_last, 1)]
    };
    // Per-vertex-tile degree summary, built only by the orders that slice the
    // neighbour dimension mid-nest.
    let tile_summary = |iv: usize| -> DegreeSummary {
        let lo = iv * tv;
        let hi = ((iv + 1) * tv).min(v);
        DegreeSummary::new(degrees[lo..hi].iter().copied())
    };

    match (pos_v, pos_n) {
        // --- exact row-major orders ---------------------------------------------
        (0, 2) | (1, 2) => {
            // VFN / FVN: passes over (v-tile × f-tile); reduction innermost.
            // Only the degree sum and max of each tile matter, so the tile walk
            // is a single scan and the F loop is batched per class.
            for iv in 0..n_v {
                let lo = iv * tv;
                let hi = ((iv + 1) * tv).min(v);
                let mut sum = 0u64;
                let mut mx = 0usize;
                for &d in &degrees[lo..hi] {
                    sum += d as u64;
                    mx = mx.max(d);
                }
                let avv = (hi - lo) as u64;
                let steps = (mx as u64).div_ceil(st.tn);
                for &(af, m) in &f_classes {
                    st.reduction_innermost_pass(steps, sum, avv, af, m);
                }
            }
        }
        (0, 1) => {
            // VNF: per v-tile, neighbour slices in the middle, F innermost.
            if tv == 1 && st.chunks.is_none() {
                // Single-row tiles with identical degrees make identical pass
                // sequences — batch by degree class (order-insensitive without
                // chunk timestamps).
                for &(d, m) in prep.classes() {
                    st.vnf_vertex(d, f, n_f, tn, spill, m);
                }
            } else if tv == 1 {
                for &d in degrees {
                    st.vnf_vertex(d, f, n_f, tn, spill, 1);
                }
            } else {
                for iv in 0..n_v {
                    let summary = tile_summary(iv);
                    let avv = actual_tile(v, tv, iv) as u64;
                    let n_red = (summary.max() as u64).div_ceil(st.tn).max(1) as usize;
                    for in_ in 0..n_red {
                        let lo = in_ * tn;
                        let hi = lo + tn;
                        let active = summary.active(lo, hi);
                        st.reduction_middle_pass(
                            n_f as u64,
                            active * f as u64,
                            avv,
                            f as u64,
                            in_ as u64,
                            n_red as u64,
                            active,
                            spill,
                            1,
                        );
                    }
                }
            }
        }
        (2, 1) => {
            // FNV: column granularity — per f-tile, global neighbour slices,
            // vertices innermost (histogram model).
            let global = prep.global();
            let n_red = (global.max() as u64).div_ceil(st.tn).max(1) as usize;
            if st.chunks.is_none() {
                // Hoist the slice walk out of the F loop: every f-tile repeats
                // the same slice sequence (order-insensitive without chunks).
                for in_ in 0..n_red {
                    let lo = in_ * tn;
                    let hi = lo + tn;
                    let active = global.active(lo, hi);
                    let rows_active = global.count_gt(lo);
                    let rows_finishing = rows_active - global.count_gt(hi.saturating_sub(1));
                    for &(af, m) in &f_classes {
                        st.histogram_pass(
                            rows_active.div_ceil(tv as u64).max(1),
                            active,
                            af,
                            rows_active,
                            rows_finishing,
                            in_ as u64,
                            spill,
                            m,
                        );
                    }
                }
            } else {
                for if_ in 0..n_f {
                    let af = actual_tile(f, tf, if_) as u64;
                    for in_ in 0..n_red {
                        let lo = in_ * tn;
                        let hi = lo + tn;
                        let active = global.active(lo, hi);
                        let rows_active = global.count_gt(lo);
                        let rows_finishing = rows_active - global.count_gt(hi.saturating_sub(1));
                        st.histogram_pass(
                            rows_active.div_ceil(tv as u64).max(1),
                            active,
                            af,
                            rows_active,
                            rows_finishing,
                            in_ as u64,
                            spill,
                            1,
                        );
                    }
                }
            }
        }
        // --- N outermost (Seq-only for AC): histogram model ----------------------
        (1, 0) => {
            // NVF: per neighbour slice, vertex tiles in the middle (each
            // contributing its own active edges for the slice), F innermost.
            if tv == 1 && st.chunks.is_none() {
                let classes = prep.classes();
                let gmax = classes.last().map_or(0, |&(d, _)| d);
                let n_red = (gmax as u64).div_ceil(st.tn).max(1) as usize;
                for in_ in 0..n_red {
                    let lo = in_ * tn;
                    let hi = lo + tn;
                    for &(d, m) in classes {
                        let active = (d.min(hi) - d.min(lo)) as u64;
                        let rows_active = u64::from(d > lo);
                        let rows_finishing = u64::from(d > lo && d <= hi.saturating_sub(1));
                        st.histogram_pass(
                            n_f as u64,
                            active,
                            f as u64,
                            rows_active,
                            rows_finishing,
                            in_ as u64,
                            spill,
                            m,
                        );
                    }
                }
            } else {
                let summaries: Vec<DegreeSummary> = (0..n_v).map(tile_summary).collect();
                let gmax = summaries.iter().map(|s| s.max()).max().unwrap_or(0);
                let n_red = (gmax as u64).div_ceil(st.tn).max(1) as usize;
                for in_ in 0..n_red {
                    let lo = in_ * tn;
                    let hi = lo + tn;
                    for summary in &summaries {
                        let active = summary.active(lo, hi);
                        let rows_active = summary.count_gt(lo);
                        let rows_finishing = rows_active - summary.count_gt(hi.saturating_sub(1));
                        st.histogram_pass(
                            n_f as u64,
                            active,
                            f as u64,
                            rows_active,
                            rows_finishing,
                            in_ as u64,
                            spill,
                            1,
                        );
                    }
                }
            }
        }
        (2, 0) => {
            // NFV: per neighbour slice, feature tiles in the middle (each
            // revisiting the slice's active edges over its columns), V innermost.
            // The F loop is batched per class, preserving iteration order.
            let global = prep.global();
            let n_red = (global.max() as u64).div_ceil(st.tn).max(1) as usize;
            for in_ in 0..n_red {
                let lo = in_ * tn;
                let hi = lo + tn;
                let active = global.active(lo, hi);
                let rows_active = global.count_gt(lo);
                let rows_finishing = rows_active - global.count_gt(hi.saturating_sub(1));
                for &(af, m) in &f_classes {
                    st.histogram_pass(
                        rows_active.div_ceil(tv as u64).max(1),
                        active,
                        af,
                        rows_active,
                        rows_finishing,
                        in_ as u64,
                        spill,
                        m,
                    );
                }
            }
        }
        _ => unreachable!("all (pos_v, pos_n) combinations covered"),
    }

    let cycles = if st.cycles > 0 { st.cycles + phase_fill } else { 0 };
    let chunk_marks = st.chunks.map(|t| t.finish(cycles)).unwrap_or_default();
    PhaseStats {
        cycles,
        stall_cycles: st.stall_cycles,
        macs: st.macs,
        counters: st.counters,
        pe_footprint: tiling.pe_footprint(),
        chunk_marks,
        psum_spilled: st.spilled,
    }
}

/// Mutable walk state shared by the pass helpers.
struct Walk {
    counters: AccessCounters,
    cycles: u64,
    stall_cycles: u64,
    macs: u64,
    spilled: bool,
    chunks: Option<ChunkTracker>,
    classes: OperandClasses,
    opts: EngineOptions,
    overhead: u64,
    tn: u64,
    tf: u64,
    /// Numerator/denominator of the psum overflow fraction.
    spill_ratio: (u64, u64),
}

impl Walk {
    /// Charges the dense-input and adjacency traffic common to every pass that
    /// visits `edge_visits` edges over `width` feature columns of `rows` rows,
    /// for `m` identical passes. Returns the *per-pass* GB reads (for timing).
    fn charge_inputs(&mut self, edge_visits: u64, width: u64, rows: u64, m: u64) -> u64 {
        let feat = edge_visits * width;
        // CSR structure (column indices + row pointers) is always Adjacency
        // traffic; the per-edge *values* land in the `b_input` class (plain
        // adjacency values, or attention scores for a GAT aggregation) and can
        // be RF-resident when the SDDMM producer kept them local.
        let structure = edge_visits + rows;
        self.counters.read(OperandClass::Adjacency, structure * m);
        let mut gb = structure;
        if !self.opts.scores_resident {
            self.counters.read(self.classes.b_input, edge_visits * m);
            gb += edge_visits;
        }
        if self.opts.input_resident {
            // CA SP-Optimized: the intermediate rows are already local.
        } else {
            self.counters.read(self.classes.a_input, feat * m);
            gb += feat;
        }
        // Multicast: each adjacency value fans out across the spatial F lanes;
        // features land in exactly one PE each.
        self.counters.rf_writes += (feat + edge_visits * self.tf) * m;
        gb
    }

    /// `m` identical passes with `N` innermost (VFN / FVN): reduction completes
    /// in-pass.
    fn reduction_innermost_pass(
        &mut self,
        steps: u64,
        edge_visits: u64,
        rows: u64,
        width: u64,
        m: u64,
    ) {
        let macs = edge_visits * width;
        self.macs += macs * m;
        self.counters.rf_reads += 2 * macs * m;
        let updates = macs.div_ceil(self.tn);
        self.counters.rf_reads += updates * m;
        self.counters.rf_writes += updates * m;
        let mut gb_writes = 0;
        let out = rows * width;
        if self.opts.output_stays_local {
            self.counters.rf_writes += out * m;
        } else {
            self.counters.write(self.classes.output, out * m);
            gb_writes = out;
        }
        let gb_reads = self.charge_inputs(edge_visits, width, rows, m);
        let (pass, stall) = pass_timing(steps.max(1), gb_reads, gb_writes, 0, self.opts.bandwidth, self.overhead);
        let start = self.cycles;
        self.cycles += pass * m;
        self.stall_cycles += stall * m;
        self.advance_chunks(m, out, macs, pass, start);
    }

    /// `m` identical passes with `N` in the middle (VNF): one neighbour slice,
    /// F innermost.
    #[allow(clippy::too_many_arguments)]
    fn reduction_middle_pass(
        &mut self,
        steps: u64,
        macs: u64,
        rows: u64,
        width: u64,
        red_idx: u64,
        n_red: u64,
        edge_visits: u64,
        spill: bool,
        m: u64,
    ) {
        self.macs += macs * m;
        self.counters.rf_reads += 2 * macs * m;
        let touched = rows * width;
        let spilled = touched * self.spill_ratio.0 / self.spill_ratio.1;
        let mut gb_writes = 0;
        if spill {
            self.spilled = true;
            if red_idx > 0 {
                self.counters.read(OperandClass::Psum, spilled * m);
            }
            if red_idx < n_red - 1 {
                self.counters.write(OperandClass::Psum, spilled * m);
                gb_writes += spilled;
            }
        } else {
            let updates = macs.div_ceil(self.tn);
            self.counters.rf_reads += updates * m;
            self.counters.rf_writes += updates * m;
        }
        let mut produced = 0;
        if red_idx == n_red - 1 {
            if self.opts.output_stays_local {
                self.counters.rf_writes += touched * m;
            } else {
                self.counters.write(self.classes.output, touched * m);
                gb_writes += touched;
            }
            produced = touched;
        }
        let mut gb_reads = self.charge_inputs(edge_visits, width, rows, m);
        if spill && red_idx > 0 {
            gb_reads += spilled;
        }
        let (pass, stall) = pass_timing(steps.max(1), gb_reads, gb_writes, 0, self.opts.bandwidth, self.overhead);
        let start = self.cycles;
        self.cycles += pass * m;
        self.stall_cycles += stall * m;
        self.advance_chunks(m, produced, macs, pass, start);
    }

    /// The full slice walk of one single-row vertex tile under VNF (`m` rows of
    /// identical degree `d` batched together).
    fn vnf_vertex(&mut self, d: usize, f: usize, n_f: usize, tn: usize, spill: bool, m: u64) {
        let n_red = (d as u64).div_ceil(self.tn).max(1) as usize;
        for in_ in 0..n_red {
            let lo = in_ * tn;
            let hi = lo + tn;
            let active = (d.min(hi) - d.min(lo)) as u64;
            self.reduction_middle_pass(
                n_f as u64,
                active * f as u64,
                1,
                f as u64,
                in_ as u64,
                n_red as u64,
                active,
                spill,
                m,
            );
        }
    }

    /// `m` identical histogram-modelled passes (FNV / NVF / NFV): one global
    /// neighbour slice.
    #[allow(clippy::too_many_arguments)]
    fn histogram_pass(
        &mut self,
        steps: u64,
        edge_visits: u64,
        width: u64,
        rows_active: u64,
        rows_finishing: u64,
        red_idx: u64,
        spill: bool,
        m: u64,
    ) {
        let macs = edge_visits * width;
        self.macs += macs * m;
        self.counters.rf_reads += 2 * macs * m;
        let mut gb_writes = 0;
        if spill {
            self.spilled = true;
            let live = self.spill_scale(rows_active.saturating_sub(rows_finishing) * width);
            if red_idx > 0 {
                self.counters.read(OperandClass::Psum, self.spill_scale(rows_active * width) * m);
            }
            if live > 0 {
                self.counters.write(OperandClass::Psum, live * m);
                gb_writes += live;
            }
        } else {
            let updates = macs.div_ceil(self.tn);
            self.counters.rf_reads += updates * m;
            self.counters.rf_writes += updates * m;
        }
        let out = rows_finishing * width;
        if out > 0 {
            if self.opts.output_stays_local {
                self.counters.rf_writes += out * m;
            } else {
                self.counters.write(self.classes.output, out * m);
                gb_writes += out;
            }
        }
        let mut gb_reads = self.charge_inputs(edge_visits, width, rows_active, m);
        if spill && red_idx > 0 {
            gb_reads += self.spill_scale(rows_active * width);
        }
        let (pass, stall) = pass_timing(steps.max(1), gb_reads, gb_writes, 0, self.opts.bandwidth, self.overhead);
        let start = self.cycles;
        self.cycles += pass * m;
        self.stall_cycles += stall * m;
        self.advance_chunks(m, out, macs, pass, start);
    }

    fn spill_scale(&self, x: u64) -> u64 {
        x * self.spill_ratio.0 / self.spill_ratio.1
    }

    fn advance_chunks(&mut self, m: u64, produced_each: u64, visits_each: u64, pass_cycles: u64, start: u64) {
        let Some(t) = self.chunks.as_mut() else { return };
        match self.opts.chunk.expect("tracker implies spec").side {
            ChunkSide::Produce => {
                if produced_each > 0 {
                    t.advance_repeat(m, produced_each, pass_cycles, start);
                }
            }
            ChunkSide::Consume => t.advance_repeat(m, visits_each, pass_cycles, start),
        }
    }
}

/// Distinct degrees with multiplicities, ascending — single-row vertex tiles
/// with equal degree make identical pass sequences, so batched walks iterate
/// these classes instead of every vertex.
fn degree_classes(degrees: &[usize]) -> Vec<(usize, u64)> {
    let mut sorted: Vec<usize> = degrees.to_vec();
    sorted.sort_unstable();
    let mut out: Vec<(usize, u64)> = Vec::new();
    for d in sorted {
        match out.last_mut() {
            Some((last, m)) if *last == d => *m += 1,
            _ => out.push((d, 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BandwidthShare;
    use omega_dataflow::LoopOrder;

    fn tiling(order: &str, tiles: [usize; 3]) -> IntraTiling {
        let d: Vec<Dim> = order.chars().map(|c| Dim::from_letter(c).unwrap()).collect();
        IntraTiling::new(
            Phase::Aggregation,
            LoopOrder::new(Phase::Aggregation, [d[0], d[1], d[2]]).unwrap(),
            tiles,
        )
    }

    fn run(degrees: &[usize], f: usize, t: &IntraTiling) -> PhaseStats {
        let cfg = AccelConfig::paper_default();
        let wl = SpmmWorkload { degrees, feature_width: f };
        simulate_spmm(&wl, t, &cfg, &OperandClasses::aggregation_ac(), &EngineOptions::plain(cfg.full_bandwidth()))
    }

    #[test]
    fn mac_count_equals_edge_visits_times_features() {
        let degrees = [3usize, 1, 5, 0, 2];
        let e: u64 = 11;
        for (order, tiles) in [("VFN", [2, 4, 1]), ("FVN", [2, 4, 1]), ("VNF", [2, 1, 4]), ("FNV", [2, 2, 4])] {
            let s = run(&degrees, 8, &tiling(order, tiles));
            assert_eq!(s.macs, e * 8, "{order}");
        }
    }

    #[test]
    fn evil_row_dominates_tile_synchronized_cycles() {
        // 63 rows of degree 2 plus one "evil" row of degree 200 in one big tile:
        // the tile advances at the evil row's pace.
        let mut degrees = vec![2usize; 63];
        degrees.push(200);
        let wide = run(&degrees, 16, &tiling("VFN", [64, 8, 1]));
        // Per (v,f) pass: 200 steps; 2 f-tiles → ≥ 400 compute cycles.
        assert!(wide.cycles >= 400, "cycles = {}", wide.cycles);
        // Splitting vertices into tiles of 8 isolates the evil row.
        let narrow = run(&degrees, 16, &tiling("VFN", [8, 8, 1]));
        // 7 tiles × 2 steps + 1 tile × 200 steps, × 2 f-tiles ≈ 428 ≥ but per-pass
        // overheads differ; the key property: narrow does *more total passes* yet
        // comparable cycles, and per-PE efficiency is better.
        assert!(narrow.compute_utilisation() > wide.compute_utilisation());
    }

    #[test]
    fn spatial_n_reduces_cycles_on_dense_graphs() {
        // Spending PE budget on N (spatial aggregation, Seq2/PP2/PP4 style) cuts
        // the per-row reduction steps ~T_N-fold on densely connected graphs.
        let degrees = vec![64usize; 32];
        let temporal = run(&degrees, 16, &tiling("VFN", [8, 8, 1]));
        let spatial = run(&degrees, 16, &tiling("VFN", [8, 8, 8]));
        assert!(
            spatial.cycles * 4 < temporal.cycles,
            "spatial {} vs temporal {}",
            spatial.cycles,
            temporal.cycles
        );
    }

    #[test]
    fn output_written_once_per_element() {
        let degrees = [2usize, 3, 1, 4];
        let s = run(&degrees, 8, &tiling("VFN", [2, 4, 1]));
        assert_eq!(s.counters.gb_writes[OperandClass::Intermediate.idx()], 4 * 8);
    }

    #[test]
    fn input_reads_scale_with_edges_and_features() {
        let degrees = [2usize, 3, 1, 4];
        let s = run(&degrees, 8, &tiling("VFN", [2, 4, 1]));
        assert_eq!(s.counters.gb_reads[OperandClass::Input.idx()], 10 * 8);
        // Adjacency traffic: 2 per edge visit per f-tile + row pointers.
        let adj = s.counters.gb_reads[OperandClass::Adjacency.idx()];
        assert!(adj >= 2 * 10 * 2, "adj = {adj}"); // 2 f-tiles re-walk the CSR
    }

    #[test]
    fn vnf_spills_when_f_revisits_overflow_rf() {
        // n_f = F/T_F = 64 revisits > 13 budget → spill.
        let degrees = vec![6usize; 16];
        let s = run(&degrees, 64, &tiling("VNF", [4, 1, 1]));
        assert!(s.psum_spilled);
        assert!(s.counters.gb_of(OperandClass::Psum) > 0);
    }

    #[test]
    fn vnf_no_spill_with_few_f_tiles() {
        let degrees = vec![6usize; 16];
        let s = run(&degrees, 64, &tiling("VNF", [4, 1, 16]));
        // n_f = 4 ≤ 13 → fits.
        assert!(!s.psum_spilled);
        assert_eq!(s.counters.gb_of(OperandClass::Psum), 0);
    }

    #[test]
    fn output_stays_local_suppresses_gb_writes() {
        let degrees = [2usize, 3, 1, 4];
        let t = tiling("VFN", [2, 4, 1]);
        let cfg = AccelConfig::paper_default();
        let wl = SpmmWorkload { degrees: &degrees, feature_width: 8 };
        let mut opts = EngineOptions::plain(cfg.full_bandwidth());
        opts.output_stays_local = true;
        let s = simulate_spmm(&wl, &t, &cfg, &OperandClasses::aggregation_ac(), &opts);
        assert_eq!(s.counters.total_gb_writes(), 0);
    }

    #[test]
    fn produce_chunks_align_with_rows() {
        let degrees = vec![3usize; 16];
        let t = tiling("VFN", [4, 8, 1]);
        let cfg = AccelConfig::paper_default();
        let wl = SpmmWorkload { degrees: &degrees, feature_width: 8 };
        let mut opts = EngineOptions::plain(cfg.full_bandwidth());
        opts.chunk = Some(crate::engine::ChunkSpec { side: ChunkSide::Produce, pel: 4 * 8 });
        let s = simulate_spmm(&wl, &t, &cfg, &OperandClasses::aggregation_ac(), &opts);
        assert_eq!(s.chunk_marks.len(), 4); // 16 rows / 4-row chunks
        assert_eq!(*s.chunk_marks.last().unwrap(), s.cycles);
        assert!(s.chunk_marks.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bandwidth_throttling_stalls_aggregation() {
        let degrees = vec![32usize; 64];
        let t = tiling("VFN", [8, 16, 1]);
        let cfg = AccelConfig::paper_default();
        let wl = SpmmWorkload { degrees: &degrees, feature_width: 32 };
        let fast = simulate_spmm(&wl, &t, &cfg, &OperandClasses::aggregation_ac(),
            &EngineOptions::plain(BandwidthShare { dist: 512, red: 512 }));
        let slow = simulate_spmm(&wl, &t, &cfg, &OperandClasses::aggregation_ac(),
            &EngineOptions::plain(BandwidthShare { dist: 32, red: 32 }));
        assert!(slow.cycles > fast.cycles);
        assert!(slow.stall_cycles > 0);
    }

    #[test]
    fn empty_graph_is_free() {
        let s = run(&[], 8, &tiling("VFN", [2, 4, 1]));
        assert_eq!(s.cycles, 0);
        let s = run(&[0, 0, 0], 8, &tiling("VFN", [2, 4, 1]));
        assert_eq!(s.cycles, 0);
    }

    #[test]
    fn n_outer_orders_produce_consistent_macs() {
        let degrees = [3usize, 1, 5, 0, 2];
        for order in ["NVF", "NFV"] {
            let s = run(&degrees, 8, &tiling(order, [2, 2, 2]));
            assert_eq!(s.macs, 11 * 8, "{order}");
            assert!(s.cycles > 0);
        }
    }

    #[test]
    fn degree_summary_queries() {
        let d = DegreeSummary::new([3usize, 1, 5, 0, 2].into_iter());
        assert_eq!(d.sum_min(usize::MAX >> 1), 11);
        assert_eq!(d.active(0, 2), (2 + 1 + 2) + 2); // min(deg,2) each
        assert_eq!(d.active(2, 4), ((3 - 2) + 2));
        assert_eq!(d.count_gt(2), 2);
        assert_eq!(d.count_gt(0), 4);
        assert_eq!(d.max(), 5);
    }
}
