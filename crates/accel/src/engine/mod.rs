//! Phase engines: tile-step-accurate simulation of one GNN phase.
//!
//! Three engines live here: dense GEMM ([`simulate_gemm`]), sparse SpMM over a
//! CSR adjacency ([`simulate_spmm`]), and the adjacency-masked SDDMM attention
//! scoring of GAT-style models ([`simulate_sddmm`]). All walk the loop nest at
//! **pass** granularity — one full
//! sweep of the innermost temporal loop at fixed outer/middle tile indices. Per
//! pass they account, in closed form:
//!
//! * compute cycles — one MAC per PE per cycle, so a pass of `n` innermost tiles
//!   takes `n` compute cycles; Aggregation rows inside a spatial vertex tile are
//!   **tile-synchronized**, so a pass takes `ceil(max_degree_in_tile / T_N)`
//!   steps — the paper's "evil row" pathology emerges from this;
//! * global-buffer traffic per operand class — streaming operands are re-fetched
//!   per innermost step, stationary operands reloaded only when their tile
//!   indices change, multicast copies counted as RF writes;
//! * partial-sum placement — when the reduction dimension is not innermost, the
//!   live psums of one accumulation round either fit the RF
//!   ([`crate::RfBudget`]) or spill, adding GB psum reads/writes per revisit;
//! * bandwidth stalls — a pass cannot finish faster than its GB reads divide by
//!   the distribution bandwidth or its writes by the collection bandwidth;
//! * chunk timestamps — cumulative cycle marks each time `Pel` elements of the
//!   intermediate are produced (first phase) or consumed (second phase), which
//!   the inter-phase cost model turns into the PP pipeline schedule.

mod gemm;
mod sddmm;
mod spmm;

pub use gemm::{simulate_gemm, GemmDims};
pub use sddmm::{simulate_sddmm, simulate_sddmm_prepared, SddmmWorkload};
pub use spmm::{simulate_spmm, simulate_spmm_prepared, PreparedSpmm, SpmmWorkload};

use serde::Serialize;

use crate::{BandwidthShare, OperandClass};

/// Operand-class assignment for one phase run, deciding which Fig. 13 buckets
/// the traffic lands in. The assignment depends on the phase order: e.g. in AC
/// the Combination's streaming input is the `Intermediate`; in CA it is the raw
/// `Input` features and its output is the `Intermediate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct OperandClasses {
    /// The dense matrix streamed as the "A" operand (features or intermediate).
    pub a_input: OperandClass,
    /// The second operand (adjacency for SpMM, weights for GEMM).
    pub b_input: OperandClass,
    /// The produced matrix (intermediate or final output).
    pub output: OperandClass,
}

impl OperandClasses {
    /// Aggregation in AC order: reads features, writes the intermediate.
    pub fn aggregation_ac() -> Self {
        OperandClasses {
            a_input: OperandClass::Input,
            b_input: OperandClass::Adjacency,
            output: OperandClass::Intermediate,
        }
    }

    /// Aggregation in CA order: reads the intermediate, writes the final output.
    pub fn aggregation_ca() -> Self {
        OperandClasses {
            a_input: OperandClass::Intermediate,
            b_input: OperandClass::Adjacency,
            output: OperandClass::Output,
        }
    }

    /// Combination in AC order: reads the intermediate, writes the final output.
    pub fn combination_ac() -> Self {
        OperandClasses {
            a_input: OperandClass::Intermediate,
            b_input: OperandClass::Weight,
            output: OperandClass::Output,
        }
    }

    /// Combination in CA order: reads features, writes the intermediate.
    pub fn combination_ca() -> Self {
        OperandClasses {
            a_input: OperandClass::Input,
            b_input: OperandClass::Weight,
            output: OperandClass::Intermediate,
        }
    }

    /// SDDMM attention scoring: reads the input features (both dot-product
    /// operands come from the same feature matrix), walks the adjacency
    /// structure, and writes per-edge scores.
    pub fn sddmm() -> Self {
        OperandClasses {
            a_input: OperandClass::Input,
            b_input: OperandClass::Adjacency,
            output: OperandClass::EdgeScore,
        }
    }

    /// Attention-weighted Aggregation (GAT, AC order): like
    /// [`Self::aggregation_ac`], but the per-edge values gathered alongside the
    /// CSR structure are the SDDMM-produced attention scores, so their traffic
    /// lands in the [`OperandClass::EdgeScore`] bucket.
    pub fn aggregation_gat() -> Self {
        OperandClasses {
            a_input: OperandClass::Input,
            b_input: OperandClass::EdgeScore,
            output: OperandClass::Intermediate,
        }
    }
}

/// Which side of the intermediate matrix chunk timestamps track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum ChunkSide {
    /// This phase produces the intermediate: mark every `pel` elements written.
    Produce,
    /// This phase consumes the intermediate: mark every `pel` elements whose
    /// processing completes.
    Consume,
}

/// Chunk-timestamp request: emit a cumulative cycle mark per `pel` elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct ChunkSpec {
    /// Producer or consumer accounting.
    pub side: ChunkSide,
    /// Elements per chunk (`Pel`, Section IV-D).
    pub pel: u64,
}

/// Per-run engine options.
///
/// `Eq`/`Hash` make the options usable as part of a phase-simulation cache key
/// (the engines are deterministic functions of workload × tiling × options):
/// every field that changes a simulation result participates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EngineOptions {
    /// NoC bandwidth available to this phase.
    pub bandwidth: BandwidthShare,
    /// The `a_input` operand is already resident in the PE register files
    /// (SP-Optimized consumer): no GB reads, no distribution stalls for it.
    pub input_resident: bool,
    /// The produced matrix stays in the PE register files (SP-Optimized
    /// producer): no GB writes, no collection stalls for it.
    pub output_stays_local: bool,
    /// The per-edge values gathered with the CSR structure (the attention
    /// scores of a GAT aggregation) are already resident in the PE register
    /// files — the SDDMM producer kept them local — so only the structure
    /// (indices + row pointers) is fetched from the GB. Consumed by the SpMM
    /// engine; the other engines ignore it.
    pub scores_resident: bool,
    /// Chunk-timestamp request.
    pub chunk: Option<ChunkSpec>,
}

impl EngineOptions {
    /// Plain run: full bandwidth share given, everything through the GB, no
    /// chunk marks.
    pub fn plain(bandwidth: BandwidthShare) -> Self {
        EngineOptions {
            bandwidth,
            input_resident: false,
            output_stays_local: false,
            scores_resident: false,
            chunk: None,
        }
    }
}

/// Tracks progress toward chunk boundaries and records cumulative cycle marks.
#[derive(Debug)]
pub(crate) struct ChunkTracker {
    pel: u64,
    total: u64,
    progress: u64,
    emitted: u64,
    marks: Vec<u64>,
}

impl ChunkTracker {
    pub(crate) fn new(spec: Option<&ChunkSpec>, total_elems: u64) -> Option<Self> {
        let spec = spec?;
        let pel = spec.pel.max(1);
        let chunks = total_elems.div_ceil(pel).max(1);
        Some(ChunkTracker { pel, total: total_elems, progress: 0, emitted: 0, marks: Vec::with_capacity(chunks as usize) })
    }

    /// Records `elems` of progress at cumulative time `now`. Reference
    /// implementation for [`Self::advance_repeat`], which the engines use for
    /// batched passes (`advance(e, t)` ≡ `advance_repeat(1, e, …)`); kept for
    /// the equivalence test.
    #[cfg(test)]
    pub(crate) fn advance(&mut self, elems: u64, now: u64) {
        self.progress += elems;
        while (self.emitted + 1) * self.pel <= self.progress {
            self.marks.push(now);
            self.emitted += 1;
        }
    }

    /// Records `reps` back-to-back identical passes, each contributing
    /// `elems_each` of progress and `cycles_each` cycles, with the first pass
    /// starting at cumulative time `start_cycles`. Emits exactly the marks the
    /// equivalent sequence of [`Self::advance`] calls would (each boundary is
    /// stamped with the end time of the pass that crosses it) in O(#marks)
    /// instead of O(reps) — what lets the engines batch uniform passes without
    /// losing the pipeline-chunk timeline.
    pub(crate) fn advance_repeat(
        &mut self,
        reps: u64,
        elems_each: u64,
        cycles_each: u64,
        start_cycles: u64,
    ) {
        if reps == 0 {
            return;
        }
        if elems_each == 0 {
            return;
        }
        let end = self.progress + reps * elems_each;
        while (self.emitted + 1) * self.pel <= end {
            let target = (self.emitted + 1) * self.pel;
            // 1-based index of the pass whose end crosses `target`.
            let r = (target - self.progress).div_ceil(elems_each);
            self.marks.push(start_cycles + r * cycles_each);
            self.emitted += 1;
        }
        self.progress = end;
    }

    /// Closes the tracker at final time `now`, emitting the trailing partial
    /// chunk (and any rounding shortfall) so the last mark equals the phase's
    /// total cycles.
    pub(crate) fn finish(mut self, now: u64) -> Vec<u64> {
        let expected = self.total.div_ceil(self.pel).max(1);
        while (self.marks.len() as u64) < expected {
            self.marks.push(now);
        }
        if let Some(last) = self.marks.last_mut() {
            *last = now;
        }
        self.marks
    }
}

/// Actual size of tile `i` when dividing `extent` into tiles of `tile`.
#[inline]
pub(crate) fn actual_tile(extent: usize, tile: usize, i: usize) -> usize {
    let start = i * tile;
    tile.min(extent - start)
}

/// Equivalence classes of a tiled loop of `n` iterations whose per-pass cost is
/// uniform except possibly at the first index (stationary reloads), the last
/// index (remainder tile, final reduction step), and boundary conditions on the
/// reduction index. Returns `(representative index, multiplicity)` pairs in
/// iteration order; walking them with the multiplicity applied is exactly
/// equivalent to walking `0..n` pass by pass.
pub(crate) fn loop_classes(n: usize) -> Vec<(usize, u64)> {
    match n {
        0 => Vec::new(),
        1 => vec![(0, 1)],
        2 => vec![(0, 1), (1, 1)],
        _ => vec![(0, 1), (1, (n - 2) as u64), (n - 1, 1)],
    }
}

/// Combines per-pass costs into cycles: compute throughput vs distribution and
/// collection bandwidth, plus fixed per-pass overheads (tree fill, NoC latency)
/// and a *serial* preload of stationary operands — streaming cannot start until
/// the pinned tile sits in the RFs, which is the `t_load` that SP-Optimized
/// avoids (Table III). Returns `(pass_cycles, stall_cycles)`.
#[inline]
pub(crate) fn pass_timing(
    compute: u64,
    stream_reads: u64,
    gb_writes: u64,
    preload_elems: u64,
    bw: BandwidthShare,
    overhead: u64,
) -> (u64, u64) {
    let preload = crate::noc::distribution_cycles(preload_elems, bw.dist);
    let dist = crate::noc::distribution_cycles(stream_reads, bw.dist);
    let coll = crate::noc::collection_cycles(gb_writes, bw.red);
    let body = compute.max(dist).max(coll);
    (preload + body + overhead, preload + body - compute.min(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_tracker_marks_boundaries() {
        let spec = ChunkSpec { side: ChunkSide::Produce, pel: 10 };
        let mut t = ChunkTracker::new(Some(&spec), 25).unwrap();
        t.advance(6, 5);
        t.advance(6, 9); // 12 ≥ 10 → mark at 9
        t.advance(10, 20); // 22 ≥ 20 → mark at 20
        let marks = t.finish(31);
        assert_eq!(marks, vec![9, 20, 31]); // ceil(25/10) = 3 chunks
    }

    #[test]
    fn chunk_tracker_handles_multi_crossings() {
        let spec = ChunkSpec { side: ChunkSide::Consume, pel: 5 };
        let mut t = ChunkTracker::new(Some(&spec), 20).unwrap();
        t.advance(20, 7); // all four chunks complete at once
        let marks = t.finish(7);
        assert_eq!(marks, vec![7, 7, 7, 7]);
    }

    #[test]
    fn chunk_tracker_none_without_spec() {
        assert!(ChunkTracker::new(None, 100).is_none());
    }

    #[test]
    fn advance_repeat_matches_sequential_advance() {
        // Batched uniform passes must emit exactly the marks the per-pass walk
        // would, including multi-crossing and partial-trailing cases.
        for (pel, total, reps, elems, cycles) in
            [(10u64, 95u64, 12u64, 8u64, 3u64), (3, 40, 7, 6, 5), (64, 64, 4, 9, 2), (5, 100, 20, 5, 1)]
        {
            let spec = ChunkSpec { side: ChunkSide::Produce, pel };
            let mut seq = ChunkTracker::new(Some(&spec), total).unwrap();
            let mut now = 17u64; // arbitrary non-zero start
            for _ in 0..reps {
                now += cycles;
                seq.advance(elems, now);
            }
            let mut batched = ChunkTracker::new(Some(&spec), total).unwrap();
            batched.advance_repeat(reps, elems, cycles, 17);
            assert_eq!(seq.marks, batched.marks, "pel={pel} reps={reps} elems={elems}");
            assert_eq!(seq.progress, batched.progress);
            assert_eq!(seq.emitted, batched.emitted);
        }
    }

    #[test]
    fn loop_classes_partition_the_range() {
        for n in 0..7usize {
            let classes = loop_classes(n);
            let total: u64 = classes.iter().map(|&(_, m)| m).sum();
            assert_eq!(total, n as u64, "n={n}");
            // First and last indices are always singleton classes.
            if n >= 2 {
                assert_eq!(classes.first().unwrap(), &(0, 1));
                assert_eq!(classes.last().unwrap(), &(n - 1, 1));
            }
            // Representatives are valid indices in iteration order.
            assert!(classes.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(classes.iter().all(|&(rep, _)| rep < n));
        }
    }

    #[test]
    fn actual_tile_remainders() {
        assert_eq!(actual_tile(10, 4, 0), 4);
        assert_eq!(actual_tile(10, 4, 1), 4);
        assert_eq!(actual_tile(10, 4, 2), 2);
    }

    #[test]
    fn pass_timing_stall_accounting() {
        let bw = BandwidthShare { dist: 10, red: 10 };
        // Compute-bound: 8 cycles compute, 40 reads → 4 cycles dist → no stall.
        let (c, s) = pass_timing(8, 40, 0, 0, bw, 2);
        assert_eq!((c, s), (10, 0));
        // Bandwidth-bound: 100 reads → 10 cycles > 8 compute → 2 stall cycles.
        let (c, s) = pass_timing(8, 100, 0, 0, bw, 2);
        assert_eq!((c, s), (12, 2));
        // Collection-bound.
        let (c, s) = pass_timing(1, 0, 55, 0, bw, 0);
        assert_eq!((c, s), (6, 5));
        // Serial preload adds on top of the overlapped body.
        let (c, s) = pass_timing(8, 40, 0, 25, bw, 2);
        assert_eq!((c, s), (13, 3));
    }
}
