//! Phase engines: tile-step-accurate simulation of one GNN phase.
//!
//! Four engines live here: dense GEMM ([`simulate_gemm`]), sparse SpMM over a
//! CSR adjacency ([`simulate_spmm`]), the adjacency-masked SDDMM attention
//! scoring of GAT-style models ([`simulate_sddmm`]), and the streaming
//! elementwise/normalization phase ([`simulate_elementwise`]). Each engine is a
//! thin **leaf** over the shared `core` module's machinery (the
//! `PhaseEngine` trait): the core owns the tile-walk bookkeeping, pass timing,
//! chunk timestamps, and stats assembly, while a leaf contributes only the
//! phase-specific loop nest and per-pass operand math. All walk the loop nest
//! at **pass** granularity — one full
//! sweep of the innermost temporal loop at fixed outer/middle tile indices. Per
//! pass they account, in closed form:
//!
//! * compute cycles — one MAC per PE per cycle, so a pass of `n` innermost tiles
//!   takes `n` compute cycles; Aggregation rows inside a spatial vertex tile are
//!   **tile-synchronized**, so a pass takes `ceil(max_degree_in_tile / T_N)`
//!   steps — the paper's "evil row" pathology emerges from this;
//! * global-buffer traffic per operand class — streaming operands are re-fetched
//!   per innermost step, stationary operands reloaded only when their tile
//!   indices change, multicast copies counted as RF writes;
//! * partial-sum placement — when the reduction dimension is not innermost, the
//!   live psums of one accumulation round either fit the RF
//!   ([`crate::RfBudget`]) or spill, adding GB psum reads/writes per revisit;
//! * bandwidth stalls — a pass cannot finish faster than its GB reads divide by
//!   the distribution bandwidth or its writes by the collection bandwidth;
//! * chunk timestamps — cumulative cycle marks each time `Pel` elements of the
//!   intermediate are produced (first phase) or consumed (second phase), which
//!   the inter-phase cost model turns into the PP pipeline schedule.

pub(crate) mod core;
mod elementwise;
mod gemm;
mod sddmm;
mod spmm;

pub use self::core::{PreparedGemm, PreparedSpmm};
pub use elementwise::{simulate_elementwise, ElementwiseOp, ElementwiseWorkload};
pub use gemm::{simulate_gemm, simulate_gemm_prepared, GemmDims};
pub use sddmm::{simulate_sddmm, simulate_sddmm_prepared, SddmmWorkload};
pub use spmm::{simulate_spmm, simulate_spmm_prepared, SpmmWorkload};

use serde::Serialize;

use crate::{BandwidthShare, OperandClass};

/// Operand-class assignment for one phase run, deciding which Fig. 13 buckets
/// the traffic lands in. The assignment depends on the phase order: e.g. in AC
/// the Combination's streaming input is the `Intermediate`; in CA it is the raw
/// `Input` features and its output is the `Intermediate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct OperandClasses {
    /// The dense matrix streamed as the "A" operand (features or intermediate).
    pub a_input: OperandClass,
    /// The second operand (adjacency for SpMM, weights for GEMM).
    pub b_input: OperandClass,
    /// The produced matrix (intermediate or final output).
    pub output: OperandClass,
}

impl OperandClasses {
    /// Aggregation in AC order: reads features, writes the intermediate.
    pub fn aggregation_ac() -> Self {
        OperandClasses {
            a_input: OperandClass::Input,
            b_input: OperandClass::Adjacency,
            output: OperandClass::Intermediate,
        }
    }

    /// Aggregation in CA order: reads the intermediate, writes the final output.
    pub fn aggregation_ca() -> Self {
        OperandClasses {
            a_input: OperandClass::Intermediate,
            b_input: OperandClass::Adjacency,
            output: OperandClass::Output,
        }
    }

    /// Combination in AC order: reads the intermediate, writes the final output.
    pub fn combination_ac() -> Self {
        OperandClasses {
            a_input: OperandClass::Intermediate,
            b_input: OperandClass::Weight,
            output: OperandClass::Output,
        }
    }

    /// Combination in CA order: reads features, writes the intermediate.
    pub fn combination_ca() -> Self {
        OperandClasses {
            a_input: OperandClass::Input,
            b_input: OperandClass::Weight,
            output: OperandClass::Intermediate,
        }
    }

    /// SDDMM attention scoring: reads the input features (both dot-product
    /// operands come from the same feature matrix), walks the adjacency
    /// structure, and writes per-edge scores.
    pub fn sddmm() -> Self {
        OperandClasses {
            a_input: OperandClass::Input,
            b_input: OperandClass::Adjacency,
            output: OperandClass::EdgeScore,
        }
    }

    /// Attention-weighted Aggregation (GAT, AC order): like
    /// [`Self::aggregation_ac`], but the per-edge values gathered alongside the
    /// CSR structure are the SDDMM-produced attention scores, so their traffic
    /// lands in the [`OperandClass::EdgeScore`] bucket.
    pub fn aggregation_gat() -> Self {
        OperandClasses {
            a_input: OperandClass::Input,
            b_input: OperandClass::EdgeScore,
            output: OperandClass::Intermediate,
        }
    }

    /// An elementwise/normalization phase operating in place on one matrix:
    /// its read and write traffic both land in `class` (the class of the
    /// matrix it post-processes — usually [`OperandClass::Output`] for a
    /// post-layer activation or LayerNorm).
    pub fn elementwise_on(class: OperandClass) -> Self {
        OperandClasses { a_input: class, b_input: class, output: class }
    }
}

/// Which side of the intermediate matrix chunk timestamps track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum ChunkSide {
    /// This phase produces the intermediate: mark every `pel` elements written.
    Produce,
    /// This phase consumes the intermediate: mark every `pel` elements whose
    /// processing completes.
    Consume,
}

/// Chunk-timestamp request: emit a cumulative cycle mark per `pel` elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct ChunkSpec {
    /// Producer or consumer accounting.
    pub side: ChunkSide,
    /// Elements per chunk (`Pel`, Section IV-D).
    pub pel: u64,
}

/// On-chip storage budgets one phase run is held to.
///
/// [`CapacityBudget::UNBOUNDED`] (the [`EngineOptions::plain`] default)
/// reproduces the paper's "sufficient buffering" assumption bit-exactly: the
/// engines still *report* their working-set peaks, but nothing spills. Finite
/// budgets make oversized tiles and residency pins cost real traffic — the
/// core charges a costed spill pass per overflowing level (DESIGN.md §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct CapacityBudget {
    /// Register-file bytes per PE the phase may occupy.
    pub rf_bytes_per_pe: usize,
    /// Global-buffer bytes the phase's staged working set may occupy.
    pub gb_bytes: usize,
}

impl CapacityBudget {
    /// No budget on either level: peaks are reported, nothing spills.
    pub const UNBOUNDED: CapacityBudget =
        CapacityBudget { rf_bytes_per_pe: usize::MAX, gb_bytes: usize::MAX };

    /// `true` when neither level is bounded.
    pub fn is_unbounded(&self) -> bool {
        self.rf_bytes_per_pe == usize::MAX && self.gb_bytes == usize::MAX
    }
}

/// Per-run engine options.
///
/// `Eq`/`Hash` make the options usable as part of a phase-simulation cache key
/// (the engines are deterministic functions of workload × tiling × options):
/// every field that changes a simulation result participates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EngineOptions {
    /// NoC bandwidth available to this phase.
    pub bandwidth: BandwidthShare,
    /// The `a_input` operand is already resident in the PE register files
    /// (SP-Optimized consumer): no GB reads, no distribution stalls for it.
    pub input_resident: bool,
    /// The produced matrix stays in the PE register files (SP-Optimized
    /// producer): no GB writes, no collection stalls for it.
    pub output_stays_local: bool,
    /// The per-edge values gathered with the CSR structure (the attention
    /// scores of a GAT aggregation) are already resident in the PE register
    /// files — the SDDMM producer kept them local — so only the structure
    /// (indices + row pointers) is fetched from the GB. Consumed by the SpMM
    /// engine; the other engines ignore it.
    pub scores_resident: bool,
    /// Chunk-timestamp request.
    pub chunk: Option<ChunkSpec>,
    /// On-chip storage budgets this run is held to
    /// ([`CapacityBudget::UNBOUNDED`] = the paper's free-buffering model).
    pub capacity: CapacityBudget,
    /// Force the per-edge reference walk: every vertex tile is scanned and
    /// every pass issued with multiplicity 1, instead of replaying
    /// summary-batched tile classes. O(nnz) instead of O(degree classes +
    /// tile boundaries) — kept compiled as the differential-testing oracle
    /// (`crates/accel/tests/summary_identity.rs` asserts bit-identity).
    pub reference_walk: bool,
}

impl EngineOptions {
    /// Plain run: full bandwidth share given, everything through the GB, no
    /// chunk marks, no storage budget.
    pub fn plain(bandwidth: BandwidthShare) -> Self {
        EngineOptions {
            bandwidth,
            input_resident: false,
            output_stays_local: false,
            scores_resident: false,
            chunk: None,
            capacity: CapacityBudget::UNBOUNDED,
            reference_walk: false,
        }
    }
}
