//! The dense-GEMM phase leaf (Combination).

use omega_dataflow::{Dim, IntraTiling, Phase};
use serde::Serialize;

use super::core::{
    actual_tile, loop_classes, run_phase, Footprint, PhaseEngine, PhaseWalk, PreparedGemm,
    SpillModel,
};
use super::{ChunkSide, EngineOptions, OperandClasses};
use crate::{AccelConfig, PhaseStats};

/// Matrix dimensions of a GEMM phase: `Output[V×G] += A[V×F] · B[F×G]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct GemmDims {
    /// Rows of `A` and the output (vertices).
    pub v: usize,
    /// Columns of `A` / rows of `B` (the reduction dimension).
    pub f: usize,
    /// Columns of `B` and the output.
    pub g: usize,
}

/// Simulates the Combination phase under a concrete tiling.
///
/// See the module docs of [`crate::engine`] for the cost model. The operand
/// roles: `A` is the `(V×F)` streamed matrix (intermediate in AC, raw features
/// in CA), `B` the `(F×G)` weights, and the output is `(V×G)`.
pub fn simulate_gemm(
    dims: GemmDims,
    tiling: &IntraTiling,
    cfg: &AccelConfig,
    classes: &OperandClasses,
    opts: &EngineOptions,
) -> PhaseStats {
    simulate_gemm_prepared(&PreparedGemm::new(dims), tiling, cfg, classes, opts)
}

/// [`simulate_gemm`] over a pre-built [`PreparedGemm`] — the uniform
/// `simulate_*_prepared` entry point callers evaluating many tilings of one
/// workload use for every phase kind.
pub fn simulate_gemm_prepared(
    prep: &PreparedGemm,
    tiling: &IntraTiling,
    cfg: &AccelConfig,
    classes: &OperandClasses,
    opts: &EngineOptions,
) -> PhaseStats {
    assert_eq!(tiling.phase(), Phase::Combination, "GEMM engine needs a Combination tiling");
    let leaf = GemmLeaf::new(prep.dims(), tiling, cfg);
    run_phase(&leaf, cfg, classes, opts)
}

/// The GEMM leaf: a dense three-deep nest over `V`/`F`/`G` whose passes sweep
/// the innermost dimension at fixed outer/middle tiles.
struct GemmLeaf<'a> {
    dims: GemmDims,
    tiling: &'a IntraTiling,
    /// Spatial reduction group size (`T_F`).
    t_red: usize,
    /// Position of the reduction dimension `F` in the loop order.
    pos_r: usize,
    /// Reduction tile count.
    n_red: u64,
    /// Position of `G` in the loop order (decides the consume-chunk stream).
    pos_g: usize,
    spill: SpillModel,
}

impl<'a> GemmLeaf<'a> {
    fn new(dims: GemmDims, tiling: &'a IntraTiling, cfg: &AccelConfig) -> Self {
        let GemmDims { v, f, g } = dims;
        if v == 0 || f == 0 || g == 0 {
            // Degenerate: `run_phase` short-circuits before reading these.
            let spill = SpillModel::new(cfg, 1, 1, false);
            return GemmLeaf { dims, tiling, t_red: 1, pos_r: 2, n_red: 1, pos_g: 0, spill };
        }
        let extent = |d: Dim| -> usize {
            match d {
                Dim::V => v,
                Dim::F => f,
                Dim::G => g,
                Dim::N => 1,
            }
        };
        let tile = |d: Dim| -> usize { tiling.tile_of(d).min(extent(d)) };
        let ntiles = |d: Dim| -> usize { extent(d).div_ceil(tile(d)) };
        let order = tiling.order();
        let t_red = tile(Dim::F);
        let pos_r = order.position(Dim::F).expect("F is a Combination dim");
        let n_red = ntiles(Dim::F) as u64;
        let pos_g = order.position(Dim::G).expect("G is a Combination dim");
        // Partial-sum placement: the live psums of one accumulation round are
        // the temporal revisits of the output dims inner to the reduction
        // position, *shared across the T_F PEs of each spatial reduction group*
        // — which is why SP1/SP2 (large T_F) keep psums in the RFs while
        // SPhighV (T_F = 1) spills (Section V-D). One RF word is pinned by the
        // stationary operand (there is always exactly one operand not indexed
        // by the innermost loop dimension).
        let out_revisits: u64 = [Dim::V, Dim::G]
            .iter()
            .filter(|&&d| order.position(d).expect("output dim present") > pos_r)
            .map(|&d| ntiles(d) as u64)
            .product();
        let spill = SpillModel::new(cfg, out_revisits, t_red, pos_r < 2);
        GemmLeaf { dims, tiling, t_red, pos_r, n_red, pos_g, spill }
    }
}

impl PhaseEngine for GemmLeaf<'_> {
    fn is_empty(&self) -> bool {
        self.dims.v == 0 || self.dims.f == 0 || self.dims.g == 0
    }

    fn reduction_lanes(&self) -> usize {
        self.t_red
    }

    fn pe_footprint(&self) -> usize {
        self.tiling.pe_footprint()
    }

    fn chunk_total(&self, side: ChunkSide) -> u64 {
        match side {
            // Output of this phase is the intermediate (CA).
            ChunkSide::Produce => (self.dims.v as u64) * (self.dims.g as u64),
            // The A input is the intermediate (AC).
            ChunkSide::Consume => (self.dims.v as u64) * (self.dims.f as u64),
        }
    }

    fn footprint(&self, opts: &EngineOptions) -> Footprint {
        if self.is_empty() {
            return Footprint::default();
        }
        let GemmDims { v, f, g } = self.dims;
        let tile = |d: Dim, extent: usize| self.tiling.tile_of(d).min(extent) as u64;
        let (tv, tf, tg) = (tile(Dim::V, v), tile(Dim::F, f), tile(Dim::G, g));
        // GB stages one pass's operand tiles: the weight tile always, the A
        // and output tiles unless a residency flag keeps them in the RFs.
        let mut gb = tf * tg;
        if !opts.input_resident {
            gb += tv * tf;
        }
        if !opts.output_stays_local {
            gb += tv * tg;
        }
        // Residency pins hold the *whole* matrix in the RFs across the phase.
        let mut pins = 0u64;
        if opts.input_resident {
            pins += v as u64 * f as u64;
        }
        if opts.output_stays_local {
            pins += v as u64 * g as u64;
        }
        Footprint::new(self.spill.live(), pins, self.pe_footprint(), gb)
    }

    fn walk(&self, w: &mut PhaseWalk) {
        let GemmDims { v, f, g } = self.dims;
        let extent = |d: Dim| -> usize {
            match d {
                Dim::V => v,
                Dim::F => f,
                Dim::G => g,
                Dim::N => 1,
            }
        };
        let tile = |d: Dim| -> usize { self.tiling.tile_of(d).min(extent(d)) };
        let ntiles = |d: Dim| -> usize { extent(d).div_ceil(tile(d)) };
        let order = self.tiling.order();
        let [d0, d1, d2] = order.dims();
        let (n0, n1, n2) = (ntiles(d0), ntiles(d1), ntiles(d2));
        let e2 = extent(d2) as u64;

        // Operand dimension sets.
        let a_dims = [Dim::V, Dim::F];
        let b_dims = [Dim::F, Dim::G];

        // Pass costs are uniform in each loop index except at the first
        // iteration (stationary reloads), the last (remainder tile, final
        // reduction step), and the reduction-index boundaries — so both loops
        // collapse into ≤ 3 classes each, every class evaluated once with its
        // multiplicity. With chunk timestamps requested the outer loop must
        // still walk pass order, so only the inner loop is batched (the
        // timeline within a batch is reconstructed exactly by
        // `ChunkTracker::advance_repeat`).
        let i0_classes: Vec<(usize, u64)> = if w.has_chunks() {
            (0..n0).map(|i| (i, 1)).collect()
        } else {
            loop_classes(n0)
        };
        let i1_classes = loop_classes(n1);
        for &(i0, m0) in &i0_classes {
            let a0 = actual_tile(extent(d0), tile(d0), i0) as u64;
            for &(i1, m1) in &i1_classes {
                let m = m0 * m1;
                let a1 = actual_tile(extent(d1), tile(d1), i1) as u64;
                // Coverage of a dimension within this pass.
                let cover = |d: Dim| -> u64 {
                    if d == d0 {
                        a0
                    } else if d == d1 {
                        a1
                    } else {
                        e2
                    }
                };

                let mut gb_reads_pass: u64 = 0;
                let mut gb_writes_pass: u64 = 0;
                let mut preload_elems: u64 = 0;

                // --- input operands ---------------------------------------------
                for (dims2, class, is_a) in
                    [(a_dims, w.classes.a_input, true), (b_dims, w.classes.b_input, false)]
                {
                    let streaming = dims2.contains(&d2);
                    let elems: u64 = dims2.iter().map(|&d| cover(d)).product();
                    let lacking: Dim = *[Dim::V, Dim::F, Dim::G]
                        .iter()
                        .find(|&&d| !dims2.contains(&d))
                        .expect("each operand lacks one dim");
                    let copies = tile(lacking) as u64;
                    let resident = is_a && w.opts.input_resident;
                    let fetch = if streaming {
                        // Re-fetched every pass.
                        true
                    } else {
                        // Stationary: reload when its indices change — every pass
                        // if indexed by the middle loop, else once per outer
                        // iteration.
                        dims2.contains(&d1) || i1 == 0
                    };
                    if fetch {
                        if resident {
                            // Already in the RFs: only the per-use RF reads
                            // (counted with the MACs) apply.
                        } else {
                            w.counters.read(class, elems * m);
                            if streaming {
                                gb_reads_pass += elems;
                            } else {
                                // Stationary tiles are pinned before streaming
                                // starts — the serial t_load of Table III.
                                preload_elems += elems;
                            }
                            w.counters.rf_writes += elems * copies * m;
                        }
                    }
                }

                // --- compute ----------------------------------------------------
                let macs_pass = a0 * a1 * e2;
                w.macs += macs_pass * m;
                w.counters.rf_reads += 2 * macs_pass * m;

                // --- outputs & partial sums -------------------------------------
                let mut produced_this_pass: u64 = 0;
                if self.pos_r == 2 {
                    // Reduction innermost: the pass completes its output tile.
                    let out_elems = a0 * a1;
                    let updates = macs_pass / self.t_red.max(1) as u64;
                    w.counters.rf_reads += updates * m;
                    w.counters.rf_writes += updates * m;
                    if w.opts.output_stays_local {
                        w.counters.rf_writes += out_elems * m;
                    } else {
                        w.counters.write(w.classes.output, out_elems * m);
                        gb_writes_pass += out_elems;
                    }
                    produced_this_pass = out_elems;
                } else {
                    // Reduction at an outer position: outputs touched this pass
                    // are revisited across the reduction tiles.
                    let touched: u64 = [Dim::V, Dim::G].iter().map(|&d| cover(d)).product();
                    let red_idx = if self.pos_r == 0 { i0 as u64 } else { i1 as u64 };
                    if self.spill.spill {
                        w.spilled = true;
                        let spilled = self.spill.scale(touched);
                        if red_idx > 0 {
                            w.counters.read(crate::OperandClass::Psum, spilled * m);
                            gb_reads_pass += spilled;
                        }
                        if red_idx < self.n_red - 1 {
                            w.counters.write(crate::OperandClass::Psum, spilled * m);
                            gb_writes_pass += spilled;
                        }
                    } else {
                        let updates = macs_pass / self.t_red.max(1) as u64;
                        w.counters.rf_reads += updates * m;
                        w.counters.rf_writes += updates * m;
                    }
                    if red_idx == self.n_red - 1 {
                        if w.opts.output_stays_local {
                            w.counters.rf_writes += touched * m;
                        } else {
                            w.counters.write(w.classes.output, touched * m);
                            gb_writes_pass += touched;
                        }
                        produced_this_pass = touched;
                    }
                }

                // --- consume-side chunk stream ----------------------------------
                // A's elements whose processing completes this pass: the A tile
                // itself when G is innermost; the (d0, d2) A-tile on the last
                // middle iteration when G is the middle loop; nothing per pass
                // when G is outermost (the whole intermediate stays needed —
                // marks land at finish).
                let consumed_this_pass = match self.pos_g {
                    2 => a0 * a1,
                    1 if i1 == n1 - 1 => a0 * e2,
                    _ => 0,
                };

                w.run_pass(
                    n2 as u64,
                    gb_reads_pass,
                    gb_writes_pass,
                    preload_elems,
                    produced_this_pass,
                    consumed_this_pass,
                    m,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BandwidthShare, OperandClass};
    use omega_dataflow::LoopOrder;

    fn tiling(order: &str, tiles: [usize; 3]) -> IntraTiling {
        let d: Vec<Dim> = order.chars().map(|c| Dim::from_letter(c).unwrap()).collect();
        IntraTiling::new(
            Phase::Combination,
            LoopOrder::new(Phase::Combination, [d[0], d[1], d[2]]).unwrap(),
            tiles,
        )
    }

    fn run(dims: GemmDims, t: &IntraTiling) -> PhaseStats {
        let cfg = AccelConfig::paper_default();
        simulate_gemm(dims, t, &cfg, &OperandClasses::combination_ac(), &EngineOptions::plain(cfg.full_bandwidth()))
    }

    #[test]
    fn mac_count_is_exact() {
        let dims = GemmDims { v: 10, f: 7, g: 5 };
        for (order, tiles) in [("VGF", [2, 2, 1]), ("VFG", [4, 2, 1]), ("GFV", [2, 2, 4]), ("FGV", [3, 2, 4])] {
            let s = run(dims, &tiling(order, tiles));
            assert_eq!(s.macs, 10 * 7 * 5, "{order}");
        }
    }

    #[test]
    fn output_stationary_writes_each_output_once() {
        let dims = GemmDims { v: 8, f: 16, g: 4 };
        let s = run(dims, &tiling("VGF", [4, 4, 1]));
        assert_eq!(s.counters.gb_writes[OperandClass::Output.idx()], 8 * 4);
        assert_eq!(s.counters.gb_of(OperandClass::Psum), 0);
        assert!(!s.psum_spilled);
    }

    #[test]
    fn streaming_inputs_are_refetched_per_g_tile() {
        // VFG with small RF-friendly G: the A matrix is stationary per (v,f) tile,
        // weights stream; weight reads = F*G per (v,f) tile pass... total = nv*nf*F_t*G.
        let dims = GemmDims { v: 4, f: 4, g: 8 };
        let s = run(dims, &tiling("VFG", [2, 2, 1]));
        // A reads: stationary per pass, reloaded every pass (indexed by d1=F):
        // nv*nf passes × 2*2 elements = 4 passes × 4 = 16 = V*F once each.
        assert_eq!(s.counters.gb_reads[OperandClass::Intermediate.idx()], 16);
        // B (weights) streams: per pass tf × G = 2*8 = 16, × 4 passes = 64.
        assert_eq!(s.counters.gb_reads[OperandClass::Weight.idx()], 64);
    }

    #[test]
    fn cycles_scale_inversely_with_parallelism() {
        let dims = GemmDims { v: 64, f: 64, g: 16 };
        let small = run(dims, &tiling("VGF", [4, 4, 1]));
        let large = run(dims, &tiling("VGF", [16, 16, 1]));
        assert!(large.cycles * 8 < small.cycles * 9, "{} vs {}", large.cycles, small.cycles);
    }

    #[test]
    fn psum_spill_when_reduction_outer_and_rf_small() {
        // VFG with 64 G-revisits shared over T_F = 2 → 32 live psums per PE;
        // 13 fit the RF, the other 19/32 of the traffic spills.
        let dims = GemmDims { v: 8, f: 32, g: 64 };
        let s = run(dims, &tiling("VFG", [4, 2, 1]));
        assert!(s.psum_spilled);
        let nf: u64 = 16; // 32 / 2
        let touched_per_pass: u64 = 4 * 64; // T_V × G
        let spilled_per_pass = touched_per_pass * (32 - 13) / 32;
        // Writes on every non-final f-tile: 2 v-tiles × (nf-1) f-tiles.
        assert_eq!(
            s.counters.gb_writes[OperandClass::Psum.idx()],
            2 * (nf - 1) * spilled_per_pass
        );
        assert_eq!(
            s.counters.gb_reads[OperandClass::Psum.idx()],
            2 * (nf - 1) * spilled_per_pass
        );
        // Final outputs written exactly once.
        assert_eq!(s.counters.gb_writes[OperandClass::Output.idx()], 8 * 64);
    }

    #[test]
    fn no_spill_when_revisits_fit_rf() {
        // G revisits = 8 ≤ 13 → RF accumulation, no psum traffic.
        let dims = GemmDims { v: 8, f: 32, g: 8 };
        let s = run(dims, &tiling("VFG", [4, 2, 1]));
        assert!(!s.psum_spilled);
        assert_eq!(s.counters.gb_of(OperandClass::Psum), 0);
    }

    #[test]
    fn input_resident_removes_intermediate_reads() {
        let dims = GemmDims { v: 8, f: 8, g: 4 };
        let t = tiling("VFG", [4, 4, 1]);
        let cfg = AccelConfig::paper_default();
        let mut opts = EngineOptions::plain(cfg.full_bandwidth());
        opts.input_resident = true;
        let s = simulate_gemm(dims, &t, &cfg, &OperandClasses::combination_ac(), &opts);
        assert_eq!(s.counters.gb_reads[OperandClass::Intermediate.idx()], 0);
        // Weights still stream.
        assert!(s.counters.gb_reads[OperandClass::Weight.idx()] > 0);
    }

    #[test]
    fn bandwidth_throttling_adds_stalls() {
        let dims = GemmDims { v: 32, f: 64, g: 16 };
        let t = tiling("VGF", [16, 16, 1]);
        let cfg = AccelConfig::paper_default();
        let fast = simulate_gemm(dims, &t, &cfg, &OperandClasses::combination_ac(),
            &EngineOptions::plain(BandwidthShare { dist: 512, red: 512 }));
        let slow = simulate_gemm(dims, &t, &cfg, &OperandClasses::combination_ac(),
            &EngineOptions::plain(BandwidthShare { dist: 16, red: 16 }));
        assert!(slow.cycles > fast.cycles);
        assert!(slow.stall_cycles > fast.stall_cycles);
    }

    #[test]
    fn consume_chunks_cover_intermediate() {
        let dims = GemmDims { v: 16, f: 8, g: 4 };
        let t = tiling("VGF", [4, 4, 1]);
        let cfg = AccelConfig::paper_default();
        let mut opts = EngineOptions::plain(cfg.full_bandwidth());
        // Row chunks of 4 rows: Pel = 4 * F = 32; V*F = 128 → 4 chunks.
        opts.chunk = Some(crate::engine::ChunkSpec { side: ChunkSide::Consume, pel: 32 });
        let s = simulate_gemm(dims, &t, &cfg, &OperandClasses::combination_ac(), &opts);
        assert_eq!(s.chunk_marks.len(), 4);
        assert_eq!(*s.chunk_marks.last().unwrap(), s.cycles);
        assert!(s.chunk_marks.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn produce_chunks_cover_output() {
        // CA-style: Combination produces the intermediate (V×G).
        let dims = GemmDims { v: 16, f: 8, g: 4 };
        let t = tiling("VGF", [4, 4, 1]);
        let cfg = AccelConfig::paper_default();
        let mut opts = EngineOptions::plain(cfg.full_bandwidth());
        opts.chunk = Some(crate::engine::ChunkSpec { side: ChunkSide::Produce, pel: 16 });
        let s = simulate_gemm(dims, &t, &cfg, &OperandClasses::combination_ca(), &opts);
        assert_eq!(s.chunk_marks.len(), 4); // V*G / 16
        assert_eq!(*s.chunk_marks.last().unwrap(), s.cycles);
    }

    #[test]
    fn zero_dims_produce_zero_stats() {
        let t = tiling("VGF", [1, 1, 1]);
        let s = run(GemmDims { v: 0, f: 4, g: 4 }, &t);
        assert_eq!(s.cycles, 0);
        assert_eq!(s.macs, 0);
    }

    #[test]
    fn tile_larger_than_extent_is_clamped() {
        let dims = GemmDims { v: 3, f: 2, g: 2 };
        let s = run(dims, &tiling("VGF", [512, 16, 1]));
        assert_eq!(s.macs, 12);
        assert!(s.cycles > 0);
    }

    #[test]
    fn prepared_variant_matches_unprepared() {
        let dims = GemmDims { v: 12, f: 9, g: 7 };
        let prep = PreparedGemm::new(dims);
        let cfg = AccelConfig::paper_default();
        let t = tiling("VFG", [4, 2, 1]);
        let mut opts = EngineOptions::plain(cfg.full_bandwidth());
        opts.chunk = Some(crate::engine::ChunkSpec { side: ChunkSide::Produce, pel: 11 });
        let a = simulate_gemm(dims, &t, &cfg, &OperandClasses::combination_ca(), &opts);
        let b = simulate_gemm_prepared(&prep, &t, &cfg, &OperandClasses::combination_ca(), &opts);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.chunk_marks, b.chunk_marks);
    }
}
