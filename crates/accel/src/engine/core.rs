//! The `PhaseEngine` core: shared machinery of every phase engine.
//!
//! A phase engine is split in two (DESIGN.md §3):
//!
//! * the **core** (this module) owns everything that is identical across phase
//!   kinds — the pass-granularity walk state ([`PhaseWalk`]), chunk-timeline
//!   emission ([`ChunkTracker`]), uniform-pass batching ([`loop_classes`]),
//!   bandwidth-share accounting ([`bandwidth_sweep`], [`pass_timing`]),
//!   partial-sum placement ([`SpillModel`]), pipeline-fill overheads
//!   ([`fill_overheads`]), prepared workload structures ([`PreparedSpmm`],
//!   [`PreparedGemm`]), and the [`run_phase`] driver that assembles the final
//!   [`PhaseStats`];
//! * each **leaf** (`gemm.rs`, `spmm.rs`, `sddmm.rs`, `elementwise.rs`)
//!   implements the [`PhaseEngine`] trait: which loop orders are legal, how the
//!   tile walk visits the workload, and what each pass costs in MACs and
//!   per-operand-class traffic.
//!
//! Everything here is crate-internal by design: the public surface of
//! `omega_accel::engine` stays the `simulate_*` functions and their
//! workload/options types, so the core can evolve without breaking callers.
//!
//! # Adding a phase kind
//!
//! 1. Define the workload type and a leaf struct precomputing the tile grid
//!    and a [`SpillModel`] (when the phase can carry partial sums).
//! 2. Implement [`PhaseEngine`]: `is_empty`, `reduction_lanes`,
//!    `pe_footprint`, `chunk_total`, and `walk` — the walk calls
//!    [`PhaseWalk::run_pass`] once per batched pass with the per-pass compute
//!    steps, GB traffic, and produced/consumed element counts. Override
//!    `epilogue` for post-walk sweeps (the SDDMM softmax).
//! 3. Expose a `simulate_<kind>` entry point that validates the tiling and
//!    calls [`run_phase`]. The elementwise engine (`elementwise.rs`, ~150
//!    lines) is the template.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use super::{ChunkSide, ChunkSpec, EngineOptions, GemmDims, OperandClasses};
use crate::{AccelConfig, AccessCounters, BandwidthShare, PhaseStats, RfBudget};

/// Tracks progress toward chunk boundaries and records cumulative cycle marks.
#[derive(Debug)]
pub(crate) struct ChunkTracker {
    pel: u64,
    total: u64,
    progress: u64,
    emitted: u64,
    marks: Vec<u64>,
}

impl ChunkTracker {
    pub(crate) fn new(spec: Option<&ChunkSpec>, total_elems: u64) -> Option<Self> {
        let spec = spec?;
        let pel = spec.pel.max(1);
        let chunks = total_elems.div_ceil(pel).max(1);
        Some(ChunkTracker { pel, total: total_elems, progress: 0, emitted: 0, marks: Vec::with_capacity(chunks as usize) })
    }

    /// Records `elems` of progress at cumulative time `now`. Reference
    /// implementation for [`Self::advance_repeat`], which the engines use for
    /// batched passes (`advance(e, t)` ≡ `advance_repeat(1, e, …)`); kept for
    /// the equivalence test.
    #[cfg(test)]
    pub(crate) fn advance(&mut self, elems: u64, now: u64) {
        self.progress += elems;
        while (self.emitted + 1) * self.pel <= self.progress {
            self.marks.push(now);
            self.emitted += 1;
        }
    }

    /// Records `reps` back-to-back identical passes, each contributing
    /// `elems_each` of progress and `cycles_each` cycles, with the first pass
    /// starting at cumulative time `start_cycles`. Emits exactly the marks the
    /// equivalent sequence of [`Self::advance`] calls would (each boundary is
    /// stamped with the end time of the pass that crosses it) in O(#marks)
    /// instead of O(reps) — what lets the engines batch uniform passes without
    /// losing the pipeline-chunk timeline.
    pub(crate) fn advance_repeat(
        &mut self,
        reps: u64,
        elems_each: u64,
        cycles_each: u64,
        start_cycles: u64,
    ) {
        if reps == 0 {
            return;
        }
        if elems_each == 0 {
            return;
        }
        let end = self.progress + reps * elems_each;
        while (self.emitted + 1) * self.pel <= end {
            let target = (self.emitted + 1) * self.pel;
            // 1-based index of the pass whose end crosses `target`.
            let r = (target - self.progress).div_ceil(elems_each);
            self.marks.push(start_cycles + r * cycles_each);
            self.emitted += 1;
        }
        self.progress = end;
    }

    /// Closes the tracker at final time `now`, emitting the trailing partial
    /// chunk (and any rounding shortfall) so the last mark equals the phase's
    /// total cycles.
    pub(crate) fn finish(mut self, now: u64) -> Vec<u64> {
        let expected = self.total.div_ceil(self.pel).max(1);
        while (self.marks.len() as u64) < expected {
            self.marks.push(now);
        }
        if let Some(last) = self.marks.last_mut() {
            *last = now;
        }
        self.marks
    }
}

/// Actual size of tile `i` when dividing `extent` into tiles of `tile`.
#[inline]
pub(crate) fn actual_tile(extent: usize, tile: usize, i: usize) -> usize {
    let start = i * tile;
    tile.min(extent - start)
}

/// Equivalence classes of a tiled loop of `n` iterations whose per-pass cost is
/// uniform except possibly at the first index (stationary reloads), the last
/// index (remainder tile, final reduction step), and boundary conditions on the
/// reduction index. Returns `(representative index, multiplicity)` pairs in
/// iteration order; walking them with the multiplicity applied is exactly
/// equivalent to walking `0..n` pass by pass.
pub(crate) fn loop_classes(n: usize) -> Vec<(usize, u64)> {
    match n {
        0 => Vec::new(),
        1 => vec![(0, 1)],
        2 => vec![(0, 1), (1, 1)],
        _ => vec![(0, 1), (1, (n - 2) as u64), (n - 1, 1)],
    }
}

/// One NoC-bounded sweep: `compute` cycles of array work overlapped with
/// distributing `gb_reads` elements and collecting `gb_writes` elements at the
/// given bandwidth share. Returns `(body_cycles, stall_cycles)` — the body is
/// the slowest of the three streams, the stall the part not covered by
/// compute. This is the single copy of the bandwidth-share math every engine's
/// pass timing and the SDDMM softmax sweeps reduce to.
#[inline]
pub(crate) fn bandwidth_sweep(
    compute: u64,
    gb_reads: u64,
    gb_writes: u64,
    bw: BandwidthShare,
) -> (u64, u64) {
    let dist = crate::noc::distribution_cycles(gb_reads, bw.dist);
    let coll = crate::noc::collection_cycles(gb_writes, bw.red);
    let body = compute.max(dist).max(coll);
    (body, body - compute.min(body))
}

/// Combines per-pass costs into cycles: one [`bandwidth_sweep`] body, plus
/// fixed per-pass overheads (tree fill, NoC latency) and a *serial* preload of
/// stationary operands — streaming cannot start until the pinned tile sits in
/// the RFs, which is the `t_load` that SP-Optimized avoids (Table III).
/// Returns `(pass_cycles, stall_cycles)`.
#[inline]
pub(crate) fn pass_timing(
    compute: u64,
    stream_reads: u64,
    gb_writes: u64,
    preload_elems: u64,
    bw: BandwidthShare,
    overhead: u64,
) -> (u64, u64) {
    let preload = crate::noc::distribution_cycles(preload_elems, bw.dist);
    let (body, stall) = bandwidth_sweep(compute, stream_reads, gb_writes, bw);
    (preload + body + overhead, preload + stall)
}

/// Pipeline-fill overheads of a phase whose spatial reduction spans `lanes`
/// PEs: the reduction-tree depth plus the distribution-network latency.
/// Returns `(phase_fill, pass_fill)` — by default the networks stay pipelined
/// across passes, so the fill is paid once per phase; the `per_pass_fill` knob
/// moves it into every pass instead.
pub(crate) fn fill_overheads(cfg: &AccelConfig, lanes: usize) -> (u64, u64) {
    let tree = if lanes > 1 { crate::tree_latency(lanes, cfg.tree_latency_per_level) } else { 0 };
    if cfg.knobs.per_pass_fill {
        (0, tree + cfg.dist_latency)
    } else {
        (tree + cfg.dist_latency, 0)
    }
}

/// Partial-sum placement for one phase: whether the live partial sums of an
/// accumulation round fit the per-PE register files, and — when they do not —
/// which fraction of the touched elements spills to the global buffer.
///
/// `revisits` is the number of live partial sums per reduction group (the
/// temporal revisits of the output dims inner to the reduction position, times
/// any head multiplicity); `lanes` the spatial reduction group size sharing
/// them (`psum_group_sharing`); `possible` gates kinds/orders that cannot
/// carry partial sums at all (reduction innermost, single reduction slice).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpillModel {
    /// Live partial sums per PE (the overflow fraction's denominator, ≥ 1).
    live: u64,
    /// The overflowing share of them (the numerator).
    num: u64,
    /// `true` when the live psums overflow the RF and spill to the GB.
    pub(crate) spill: bool,
}

impl SpillModel {
    pub(crate) fn new(cfg: &AccelConfig, revisits: u64, lanes: usize, possible: bool) -> Self {
        let share = if cfg.knobs.psum_group_sharing { lanes.max(1) as u64 } else { 1 };
        let live = revisits.div_ceil(share);
        let rf = RfBudget::new(cfg.rf_words(), 1);
        let spill = possible && !rf.psums_fit(live as usize);
        // Only the psums that do not fit spill: traffic scales with the
        // overflow fraction (the RF keeps serving the rest).
        let num = if cfg.knobs.fractional_spill {
            live.saturating_sub(rf.psum_capacity() as u64)
        } else {
            live
        };
        SpillModel { live: live.max(1), num, spill }
    }

    /// The GB-spilled share of `x` live elements.
    #[inline]
    pub(crate) fn scale(&self, x: u64) -> u64 {
        x * self.num / self.live
    }

    /// Live partial sums per PE — the psum share of the RF working-set demand
    /// the [`Footprint`] model reports.
    #[inline]
    pub(crate) fn live(&self) -> u64 {
        self.live
    }
}

/// Working-set demand of one phase run at the two on-chip storage levels — the
/// footprint model the capacity story hangs off (DESIGN.md §3). Each leaf
/// derives it from its actual tile grid and the residency flags; [`run_phase`]
/// turns it into the reported [`PhaseStats::rf_peak_bytes`] /
/// [`PhaseStats::gb_peak_bytes`] and, under a finite
/// [`super::CapacityBudget`], into costed spill passes.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Footprint {
    /// Peak per-PE register-file demand, in words.
    pub(crate) rf_words_per_pe: u64,
    /// Peak global-buffer staging demand, in elements.
    pub(crate) gb_elems: u64,
}

impl Footprint {
    /// Baseline per-PE RF slots every engine occupies: one stationary word plus
    /// the two double-buffered stream slots ([`RfBudget`]'s model).
    pub(crate) const BASE_RF_WORDS: u64 = 3;

    /// Builds a footprint from the per-PE live-psum demand, the full-matrix
    /// residency pins (distributed across `pe_footprint` PEs), and the GB
    /// staging elements.
    pub(crate) fn new(
        live_psums: u64,
        pinned_elems: u64,
        pe_footprint: usize,
        gb_elems: u64,
    ) -> Self {
        let per_pe_pins = pinned_elems.div_ceil(pe_footprint.max(1) as u64);
        Footprint { rf_words_per_pe: Self::BASE_RF_WORDS + live_psums + per_pe_pins, gb_elems }
    }
}

/// The share of `total` stream elements that makes an extra GB round trip when
/// `over` of `peak` working-set bytes overflow the budget: `total · over /
/// peak` (widened to `u128` so huge residency pins cannot overflow).
fn overflow_share(total: u64, over: u64, peak: u64) -> u64 {
    if peak == 0 {
        return 0;
    }
    ((total as u128 * over as u128) / peak as u128) as u64
}

/// Mutable walk state threaded through every leaf's tile walk: the accumulating
/// statistics, the chunk tracker, and the per-run classification/options.
/// Leaves charge traffic into [`Self::counters`] as they classify it, then
/// close each batched pass with [`Self::run_pass`].
pub(crate) struct PhaseWalk {
    /// Per-operand-class buffer access counters.
    pub(crate) counters: AccessCounters,
    /// Cumulative cycles so far.
    pub(crate) cycles: u64,
    /// Cumulative bandwidth-stall cycles (subset of `cycles`).
    pub(crate) stall_cycles: u64,
    /// Cumulative MACs.
    pub(crate) macs: u64,
    /// Set when any pass spilled partial sums.
    pub(crate) spilled: bool,
    /// Tile passes replayed from a batched class this walk (flushed into
    /// [`crate::telemetry::class_replays`] by [`run_phase`]).
    pub(crate) class_replays: u64,
    /// Operand-class assignment of this run.
    pub(crate) classes: OperandClasses,
    /// Per-run engine options.
    pub(crate) opts: EngineOptions,
    chunks: Option<ChunkTracker>,
    /// Per-pass fill overhead (0 unless `per_pass_fill`).
    overhead: u64,
}

impl PhaseWalk {
    /// `true` when chunk timestamps were requested — leaves use this to pick
    /// order-exact walks over order-insensitive batched ones.
    pub(crate) fn has_chunks(&self) -> bool {
        self.chunks.is_some()
    }

    /// Closes a batch of `m` identical passes: times the pass body against the
    /// bandwidth share ([`pass_timing`]), accumulates cycles and stalls, and
    /// advances the chunk timeline — `produced_each` intermediate elements per
    /// pass on the produce side, `consumed_each` on the consume side (either
    /// may be 0 when the pass completes nothing on that side).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_pass(
        &mut self,
        compute: u64,
        gb_reads: u64,
        gb_writes: u64,
        preload_elems: u64,
        produced_each: u64,
        consumed_each: u64,
        m: u64,
    ) {
        let (pass, stall) =
            pass_timing(compute, gb_reads, gb_writes, preload_elems, self.opts.bandwidth, self.overhead);
        let start = self.cycles;
        self.cycles += pass * m;
        self.stall_cycles += stall * m;
        if let Some(t) = self.chunks.as_mut() {
            let elems = match self.opts.chunk.expect("tracker implies spec").side {
                ChunkSide::Produce => produced_each,
                ChunkSide::Consume => consumed_each,
            };
            t.advance_repeat(m, elems, pass, start);
        }
    }
}

/// One phase kind's leaf: what [`run_phase`] needs beyond the shared core.
/// Implementations precompute their tile grid (and [`SpillModel`]) at
/// construction; `walk` then visits the workload pass by pass.
pub(crate) trait PhaseEngine {
    /// Degenerate workload (no work at all) — [`run_phase`] returns
    /// [`PhaseStats::empty`] without walking.
    fn is_empty(&self) -> bool;

    /// Spatial reduction lanes (the tree fan-in; 1 when the phase has no
    /// spatial reduction), used for the pipeline-fill overheads.
    fn reduction_lanes(&self) -> usize;

    /// PEs the tiling occupies.
    fn pe_footprint(&self) -> usize;

    /// Total intermediate elements the chunk timeline tracks on `side`:
    /// produced elements, or the consume-side progress units of this kind
    /// (edge visits for the sparse engines, elements for the dense ones).
    fn chunk_total(&self, side: ChunkSide) -> u64;

    /// The phase-specific tile walk: one [`PhaseWalk::run_pass`] per batched
    /// pass.
    fn walk(&self, w: &mut PhaseWalk);

    /// The working-set demand of this run (the footprint model): per-PE RF
    /// words and GB staging elements, derived from the tile grid and the
    /// residency flags in `opts`. Pure reporting until a finite
    /// [`super::CapacityBudget`] makes overflow cost traffic.
    fn footprint(&self, opts: &EngineOptions) -> Footprint;

    /// Post-walk sweeps (the SDDMM softmax); returns the extra cycles to add
    /// after the walk. Traffic/stalls are charged into the walk state.
    fn epilogue(&self, _w: &mut PhaseWalk) -> u64 {
        0
    }
}

/// Drives one leaf through the shared simulation skeleton: empty short-cut,
/// fill overheads, chunk tracking, the walk, the epilogue, and the final
/// [`PhaseStats`] assembly. Every `simulate_*` entry point is a thin wrapper
/// over this.
pub(crate) fn run_phase<E: PhaseEngine>(
    leaf: &E,
    cfg: &AccelConfig,
    classes: &OperandClasses,
    opts: &EngineOptions,
) -> PhaseStats {
    let footprint = leaf.pe_footprint();
    if leaf.is_empty() {
        return PhaseStats::empty(footprint);
    }
    let (phase_fill, pass_fill) = fill_overheads(cfg, leaf.reduction_lanes());
    let chunk_total = opts.chunk.map_or(0, |c| leaf.chunk_total(c.side));
    let mut w = PhaseWalk {
        counters: AccessCounters::default(),
        cycles: 0,
        stall_cycles: 0,
        macs: 0,
        spilled: false,
        class_replays: 0,
        classes: *classes,
        opts: *opts,
        chunks: ChunkTracker::new(opts.chunk.as_ref(), chunk_total),
        overhead: pass_fill,
    };
    leaf.walk(&mut w);
    crate::telemetry::add_class_replays(w.class_replays);
    let extra = leaf.epilogue(&mut w);
    let fp = leaf.footprint(opts);
    let word = cfg.word_bytes as u64;
    let rf_peak_bytes = fp.rf_words_per_pe.saturating_mul(word);
    let gb_peak_bytes = fp.gb_elems.saturating_mul(word);
    // Costed capacity spills: under a finite budget, the overflow fraction of
    // the working set makes an extra GB round trip per streamed element — RF
    // overflow bounces the produced stream through the GB as psum traffic, GB
    // overflow re-fetches the consumed stream (conceptually from DRAM through
    // the GB). Both are pure-traffic passes (compute = 0), timed against the
    // phase's bandwidth share. An unbounded budget compares against
    // `u64::MAX` and never fires, keeping the paper model bit-identical.
    let mut capacity_cycles = 0u64;
    if w.cycles > 0 {
        if (opts.capacity.rf_bytes_per_pe as u64) < rf_peak_bytes {
            let over = rf_peak_bytes - opts.capacity.rf_bytes_per_pe as u64;
            let elems = overflow_share(leaf.chunk_total(ChunkSide::Produce), over, rf_peak_bytes);
            if elems > 0 {
                w.spilled = true;
                w.counters.read(crate::OperandClass::Psum, elems);
                w.counters.write(crate::OperandClass::Psum, elems);
                let (body, stall) = bandwidth_sweep(0, elems, elems, opts.bandwidth);
                capacity_cycles += body;
                w.stall_cycles += stall;
            }
        }
        if (opts.capacity.gb_bytes as u64) < gb_peak_bytes {
            let over = gb_peak_bytes - opts.capacity.gb_bytes as u64;
            let elems = overflow_share(leaf.chunk_total(ChunkSide::Consume), over, gb_peak_bytes);
            if elems > 0 {
                w.spilled = true;
                w.counters.read(classes.a_input, elems);
                let (body, stall) = bandwidth_sweep(0, elems, 0, opts.bandwidth);
                capacity_cycles += body;
                w.stall_cycles += stall;
            }
        }
    }
    // Phase-level pipeline fill is paid once, only when the phase did any work.
    let cycles = if w.cycles > 0 { w.cycles + phase_fill + extra + capacity_cycles } else { 0 };
    let chunk_marks = w.chunks.map(|t| t.finish(cycles)).unwrap_or_default();
    PhaseStats {
        cycles,
        stall_cycles: w.stall_cycles,
        macs: w.macs,
        counters: w.counters,
        pe_footprint: footprint,
        chunk_marks,
        psum_spilled: w.spilled,
        rf_peak_bytes,
        gb_peak_bytes,
    }
}

// ---------------------------------------------------------------------------
// Prepared workload structures — the shared prepare logic hoisted out of the
// leaves so `PreparedEval` plans every phase kind uniformly.
// ---------------------------------------------------------------------------

/// Degree summary supporting O(log classes) "edges active in neighbour slice
/// `[lo, hi)`" queries: `Σ_v min(deg_v, hi) − min(deg_v, lo)`. Shared by the
/// SpMM and SDDMM leaves, whose neighbour-slice walks are the same shape.
///
/// Stored as **degree classes** (distinct degrees + multiplicities), not the
/// sorted row list, so construction is O(V + classes·log classes) and the
/// structure stays small even for million-row graphs whose rows fall into a
/// few hundred distinct degrees.
#[derive(Debug)]
pub(crate) struct DegreeSummary {
    /// Distinct degrees, ascending.
    degs: Vec<u32>,
    /// `rows[i]` = rows with degree among `degs[..i]` (len = degs.len() + 1).
    rows: Vec<u64>,
    /// `edges[i]` = Σ degree·count over `degs[..i]`.
    edges: Vec<u64>,
}

impl DegreeSummary {
    pub(crate) fn new(degrees: impl Iterator<Item = usize>) -> Self {
        let mut counts: HashMap<u32, u64> = HashMap::new();
        let mut n = 0u64;
        for d in degrees {
            *counts.entry(d as u32).or_insert(0) += 1;
            n += 1;
        }
        crate::telemetry::count_prepare(n);
        let mut classes: Vec<(u32, u64)> = counts.into_iter().collect();
        classes.sort_unstable_by_key(|&(d, _)| d);
        Self::from_classes(classes.iter().map(|&(d, m)| (d as usize, m)))
    }

    /// Builds the summary from already-deduplicated `(degree, multiplicity)`
    /// classes in ascending degree order — O(classes), no re-counting.
    pub(crate) fn from_classes(classes: impl Iterator<Item = (usize, u64)>) -> Self {
        let (lo, hi) = classes.size_hint();
        let cap = hi.unwrap_or(lo);
        let mut degs = Vec::with_capacity(cap);
        let mut rows = Vec::with_capacity(cap + 1);
        let mut edges = Vec::with_capacity(cap + 1);
        rows.push(0u64);
        edges.push(0u64);
        for (d, m) in classes {
            debug_assert!(degs.last().is_none_or(|&p| p < d as u32), "classes must ascend");
            degs.push(d as u32);
            rows.push(rows.last().unwrap() + m);
            edges.push(edges.last().unwrap() + d as u64 * m);
        }
        DegreeSummary { degs, rows, edges }
    }

    fn total_rows(&self) -> u64 {
        *self.rows.last().unwrap()
    }

    /// Σ_v min(deg_v, x).
    fn sum_min(&self, x: usize) -> u64 {
        let idx = self.degs.partition_point(|&d| (d as usize) < x);
        self.edges[idx] + (self.total_rows() - self.rows[idx]) * x as u64
    }

    /// Edge visits whose within-row index falls in `[lo, hi)`.
    pub(crate) fn active(&self, lo: usize, hi: usize) -> u64 {
        self.sum_min(hi) - self.sum_min(lo)
    }

    /// Rows with degree > k.
    pub(crate) fn count_gt(&self, k: usize) -> u64 {
        self.total_rows() - self.rows[self.degs.partition_point(|&d| d as usize <= k)]
    }

    pub(crate) fn max(&self) -> usize {
        self.degs.last().map_or(0, |&d| d as usize)
    }
}

/// Distinct degrees with multiplicities, ascending — single-row vertex tiles
/// with equal degree make identical pass sequences, so batched walks iterate
/// these classes instead of every vertex. O(V + classes·log classes).
fn degree_classes(degrees: &[usize]) -> Vec<(usize, u64)> {
    crate::telemetry::count_prepare(degrees.len() as u64);
    let mut counts: HashMap<usize, u64> = HashMap::new();
    for &d in degrees {
        *counts.entry(d).or_insert(0) += 1;
    }
    let mut out: Vec<(usize, u64)> = counts.into_iter().collect();
    out.sort_unstable_by_key(|&(d, _)| d);
    out
}

/// One equivalence class of vertex tiles: every tile whose (sorted) degree
/// multiset equals the class key produces an identical pass timeline under
/// *any* loop order and tile shape, so the summary walks compute that
/// timeline once and replay it `mult` times (`ChunkTracker::advance_repeat`
/// keeps even the chunk marks exact).
#[derive(Debug)]
pub(crate) struct TileClass {
    /// Σ degrees of one tile in the class (edge visits).
    pub(crate) sum: u64,
    /// Max degree of one tile (tile-synchronized step count keys off this).
    pub(crate) max: usize,
    /// Rows in one tile (`tv`, or the remainder for the last tile).
    pub(crate) rows: u64,
    /// Tiles in this class.
    pub(crate) mult: u64,
    /// The class key: one tile's degrees, sorted ascending.
    degrees: Box<[u32]>,
    /// Lazily-built slice summary for the orders that cut the neighbour
    /// dimension mid-nest (VNF / NVF).
    summary: OnceLock<DegreeSummary>,
}

impl TileClass {
    /// The degree summary of one representative tile (all tiles in the class
    /// share it by construction).
    pub(crate) fn summary(&self) -> &DegreeSummary {
        self.summary.get_or_init(|| {
            crate::telemetry::count_prepare(self.degrees.len() as u64);
            // The key is sorted, so the classes are a linear run-length pass.
            let mut classes: Vec<(usize, u64)> = Vec::new();
            for &d in self.degrees.iter() {
                match classes.last_mut() {
                    Some((last, m)) if *last == d as usize => *m += 1,
                    _ => classes.push((d as usize, 1)),
                }
            }
            DegreeSummary::from_classes(classes.into_iter())
        })
    }
}

/// The per-(workload, `T_V`) tile summary driving the O(degree classes +
/// tile boundaries) walks: every vertex tile mapped to its [`TileClass`],
/// with boundary (remainder) tiles falling out naturally as their own class.
/// Built once per tile height in [`PreparedSpmm::summary`] and shared across
/// every simulation of that workload — loop order, `T_F`/`T_N`, chunking,
/// residency, and capacity budgets all reuse the same structure.
#[derive(Debug)]
pub(crate) struct WorkloadSummary {
    /// Class id of each vertex tile, in tile order (the chunk-exact walks
    /// iterate this; O(#tiles) entries).
    tile_class: Vec<u32>,
    classes: Vec<TileClass>,
}

impl WorkloadSummary {
    pub(crate) fn new(degrees: &[usize], tv: usize) -> Self {
        let tv = tv.max(1);
        let v = degrees.len();
        let n_v = v.div_ceil(tv);
        crate::telemetry::count_prepare(v as u64);
        let mut classes: Vec<TileClass> = Vec::new();
        let mut index: HashMap<Box<[u32]>, u32> = HashMap::new();
        let mut tile_class = Vec::with_capacity(n_v);
        for iv in 0..n_v {
            let lo = iv * tv;
            let hi = ((iv + 1) * tv).min(v);
            let mut key: Vec<u32> = degrees[lo..hi].iter().map(|&d| d as u32).collect();
            key.sort_unstable();
            let key: Box<[u32]> = key.into_boxed_slice();
            let id = match index.get(&key) {
                Some(&id) => {
                    classes[id as usize].mult += 1;
                    id
                }
                None => {
                    let id = classes.len() as u32;
                    let sum = key.iter().map(|&d| d as u64).sum();
                    let max = key.last().map_or(0, |&d| d as usize);
                    classes.push(TileClass {
                        sum,
                        max,
                        rows: (hi - lo) as u64,
                        mult: 1,
                        degrees: key.clone(),
                        summary: OnceLock::new(),
                    });
                    index.insert(key, id);
                    id
                }
            };
            tile_class.push(id);
        }
        WorkloadSummary { tile_class, classes }
    }

    /// The tile classes, in first-occurrence order.
    pub(crate) fn classes(&self) -> &[TileClass] {
        &self.classes
    }

    /// The class of vertex tile `iv`.
    pub(crate) fn class_of(&self, iv: usize) -> &TileClass {
        &self.classes[self.tile_class[iv] as usize]
    }

    /// The class *id* of vertex tile `iv` — O(1) equality checks let the
    /// chunk-exact walks fold runs of consecutive same-class tiles.
    pub(crate) fn class_id(&self, iv: usize) -> u32 {
        self.tile_class[iv]
    }

    /// Number of vertex tiles.
    pub(crate) fn num_tiles(&self) -> usize {
        self.tile_class.len()
    }
}

/// Degree structures of one adjacency, hoisted out of the sparse leaves so a
/// caller evaluating thousands of tilings of the *same* workload (the DSE hot
/// path) pays the O(V log V) sorting once instead of per simulation.
///
/// The totals (`nnz`, `max_degree`) are computed eagerly; the sorted degree
/// classes and the global degree summary — needed only by some loop orders —
/// are built lazily on first use and shared across threads.
#[derive(Debug)]
pub struct PreparedSpmm<'a> {
    degrees: &'a [usize],
    nnz: u64,
    max_degree: usize,
    classes: OnceLock<Vec<(usize, u64)>>,
    global: OnceLock<DegreeSummary>,
    /// Per-`T_V` tile summaries, built once and shared across every
    /// simulation of this workload (tile heights are few — the DSE's
    /// power-of-two tile ladder yields ~log₂ V distinct values).
    summaries: Mutex<HashMap<usize, Arc<WorkloadSummary>>>,
}

impl<'a> PreparedSpmm<'a> {
    /// Prepares the degree structures for `degrees`: one fused O(V) pass for
    /// the totals, everything else lazy.
    pub fn new(degrees: &'a [usize]) -> Self {
        crate::telemetry::count_prepare(degrees.len() as u64);
        let mut nnz = 0u64;
        let mut max_degree = 0usize;
        for &d in degrees {
            nnz += d as u64;
            max_degree = max_degree.max(d);
        }
        PreparedSpmm {
            degrees,
            nnz,
            max_degree,
            classes: OnceLock::new(),
            global: OnceLock::new(),
            summaries: Mutex::new(HashMap::new()),
        }
    }

    /// The stored non-zeros per row this preparation covers.
    pub fn degrees(&self) -> &'a [usize] {
        self.degrees
    }

    /// Total stored non-zeros.
    pub fn nnz(&self) -> u64 {
        self.nnz
    }

    /// Maximum row degree.
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    pub(crate) fn classes(&self) -> &[(usize, u64)] {
        self.classes.get_or_init(|| degree_classes(self.degrees))
    }

    pub(crate) fn global(&self) -> &DegreeSummary {
        self.global.get_or_init(|| DegreeSummary::new(self.degrees.iter().copied()))
    }

    /// The tile summary for vertex-tile height `tv`, built on first use and
    /// cached (thread-safe — DSE workers share one `PreparedSpmm`).
    pub(crate) fn summary(&self, tv: usize) -> Arc<WorkloadSummary> {
        let mut map = self.summaries.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(tv).or_insert_with(|| Arc::new(WorkloadSummary::new(self.degrees, tv))).clone()
    }
}

/// Prepared form of a GEMM workload — the dense counterpart of
/// [`PreparedSpmm`], so `PreparedEval` holds one prepared structure per phase
/// kind and calls the uniform `simulate_*_prepared` entry points. A GEMM has
/// no degree structure to hoist, so this only pins the dimensions.
#[derive(Debug, Clone, Copy)]
pub struct PreparedGemm {
    dims: GemmDims,
}

impl PreparedGemm {
    /// Prepares a GEMM of the given dimensions.
    pub fn new(dims: GemmDims) -> Self {
        PreparedGemm { dims }
    }

    /// The matrix dimensions this preparation covers.
    pub fn dims(&self) -> GemmDims {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_tracker_marks_boundaries() {
        let spec = ChunkSpec { side: ChunkSide::Produce, pel: 10 };
        let mut t = ChunkTracker::new(Some(&spec), 25).unwrap();
        t.advance(6, 5);
        t.advance(6, 9); // 12 ≥ 10 → mark at 9
        t.advance(10, 20); // 22 ≥ 20 → mark at 20
        let marks = t.finish(31);
        assert_eq!(marks, vec![9, 20, 31]); // ceil(25/10) = 3 chunks
    }

    #[test]
    fn chunk_tracker_handles_multi_crossings() {
        let spec = ChunkSpec { side: ChunkSide::Consume, pel: 5 };
        let mut t = ChunkTracker::new(Some(&spec), 20).unwrap();
        t.advance(20, 7); // all four chunks complete at once
        let marks = t.finish(7);
        assert_eq!(marks, vec![7, 7, 7, 7]);
    }

    #[test]
    fn chunk_tracker_none_without_spec() {
        assert!(ChunkTracker::new(None, 100).is_none());
    }

    #[test]
    fn advance_repeat_matches_sequential_advance() {
        // Batched uniform passes must emit exactly the marks the per-pass walk
        // would, including multi-crossing and partial-trailing cases.
        for (pel, total, reps, elems, cycles) in
            [(10u64, 95u64, 12u64, 8u64, 3u64), (3, 40, 7, 6, 5), (64, 64, 4, 9, 2), (5, 100, 20, 5, 1)]
        {
            let spec = ChunkSpec { side: ChunkSide::Produce, pel };
            let mut seq = ChunkTracker::new(Some(&spec), total).unwrap();
            let mut now = 17u64; // arbitrary non-zero start
            for _ in 0..reps {
                now += cycles;
                seq.advance(elems, now);
            }
            let mut batched = ChunkTracker::new(Some(&spec), total).unwrap();
            batched.advance_repeat(reps, elems, cycles, 17);
            assert_eq!(seq.marks, batched.marks, "pel={pel} reps={reps} elems={elems}");
            assert_eq!(seq.progress, batched.progress);
            assert_eq!(seq.emitted, batched.emitted);
        }
    }

    #[test]
    fn loop_classes_partition_the_range() {
        for n in 0..7usize {
            let classes = loop_classes(n);
            let total: u64 = classes.iter().map(|&(_, m)| m).sum();
            assert_eq!(total, n as u64, "n={n}");
            // First and last indices are always singleton classes.
            if n >= 2 {
                assert_eq!(classes.first().unwrap(), &(0, 1));
                assert_eq!(classes.last().unwrap(), &(n - 1, 1));
            }
            // Representatives are valid indices in iteration order.
            assert!(classes.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(classes.iter().all(|&(rep, _)| rep < n));
        }
    }

    #[test]
    fn actual_tile_remainders() {
        assert_eq!(actual_tile(10, 4, 0), 4);
        assert_eq!(actual_tile(10, 4, 1), 4);
        assert_eq!(actual_tile(10, 4, 2), 2);
    }

    #[test]
    fn pass_timing_stall_accounting() {
        let bw = BandwidthShare { dist: 10, red: 10 };
        // Compute-bound: 8 cycles compute, 40 reads → 4 cycles dist → no stall.
        let (c, s) = pass_timing(8, 40, 0, 0, bw, 2);
        assert_eq!((c, s), (10, 0));
        // Bandwidth-bound: 100 reads → 10 cycles > 8 compute → 2 stall cycles.
        let (c, s) = pass_timing(8, 100, 0, 0, bw, 2);
        assert_eq!((c, s), (12, 2));
        // Collection-bound.
        let (c, s) = pass_timing(1, 0, 55, 0, bw, 0);
        assert_eq!((c, s), (6, 5));
        // Serial preload adds on top of the overlapped body.
        let (c, s) = pass_timing(8, 40, 0, 25, bw, 2);
        assert_eq!((c, s), (13, 3));
    }

    /// Satellite check: [`bandwidth_sweep`] reproduces each engine's previous
    /// inline NoC math exactly — both the pass-timing composition and the
    /// SDDMM softmax two-sweep costing.
    #[test]
    fn bandwidth_sweep_matches_previous_inline_math() {
        let cases = [
            (8u64, 40u64, 0u64, 10usize, 10usize),
            (8, 100, 0, 10, 10),
            (1, 0, 55, 10, 10),
            (7, 33, 91, 4, 16),
            (0, 0, 0, 512, 512),
            (100, 5000, 4999, 512, 256),
        ];
        for (compute, reads, writes, dist, red) in cases {
            let bw = BandwidthShare { dist, red };
            // The engines' previous inline form.
            let d = crate::noc::distribution_cycles(reads, bw.dist);
            let c = crate::noc::collection_cycles(writes, bw.red);
            let body = compute.max(d).max(c);
            let stall = body - compute.min(body);
            assert_eq!(bandwidth_sweep(compute, reads, writes, bw), (body, stall));
            // The softmax two-sweep form: sweep 1 reads only, sweep 2 reads +
            // writes; stalls accumulate per sweep.
            let sweep1 = compute.max(d);
            let sweep2 = compute.max(d).max(c);
            let (b1, s1) = bandwidth_sweep(compute, reads, 0, bw);
            let (b2, s2) = bandwidth_sweep(compute, reads, writes, bw);
            assert_eq!((b1, b2), (sweep1, sweep2));
            assert_eq!(s1 + s2, (sweep1 - compute.min(sweep1)) + (sweep2 - compute.min(sweep2)));
        }
    }

    #[test]
    fn spill_model_overflow_fraction() {
        let cfg = AccelConfig::paper_default(); // 16-word RF → 13 psum slots
        // 32 revisits over 2 lanes → 16 live > 13 → spills 3/16 of traffic.
        let s = SpillModel::new(&cfg, 32, 2, true);
        assert!(s.spill);
        assert_eq!(s.scale(160), 160 * 3 / 16);
        // Fits: 8 live ≤ 13.
        let s = SpillModel::new(&cfg, 16, 2, false);
        assert!(!s.spill);
        let s = SpillModel::new(&cfg, 16, 2, true);
        assert!(!s.spill);
        // `possible = false` never spills regardless of pressure.
        let s = SpillModel::new(&cfg, 1 << 20, 1, false);
        assert!(!s.spill);
    }

    #[test]
    fn degree_summary_queries() {
        let d = DegreeSummary::new([3usize, 1, 5, 0, 2].into_iter());
        assert_eq!(d.sum_min(usize::MAX >> 1), 11);
        assert_eq!(d.active(0, 2), (2 + 1 + 2) + 2); // min(deg,2) each
        assert_eq!(d.active(2, 4), (3 - 2) + 2);
        assert_eq!(d.count_gt(2), 2);
        assert_eq!(d.count_gt(0), 4);
        assert_eq!(d.max(), 5);
    }
}
