//! Per-phase simulation statistics.

use serde::{Deserialize, Serialize};

/// Operand classes tracked separately in the global-buffer counters — the
/// breakdown of Fig. 13 (Adj / Inp / Int / Wt / Op / Psum) extended with the
/// per-edge attention scores an SDDMM phase produces (`Score`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum OperandClass {
    /// CSR adjacency structure + values (`Adj`).
    Adjacency,
    /// Dense input feature matrix (`Inp`).
    Input,
    /// The intermediate matrix between the phases (`Int`).
    Intermediate,
    /// Weight matrix (`Wt`).
    Weight,
    /// Final output matrix (`Op`).
    Output,
    /// Spilled partial sums (`Psum`).
    Psum,
    /// Per-edge attention scores (`Score`): the adjacency-shaped output of an
    /// SDDMM scoring phase, re-read as the aggregation weights of an
    /// attention GNN.
    EdgeScore,
}

/// Number of distinct [`OperandClass`] buckets (length of the counter arrays).
pub const NUM_OPERAND_CLASSES: usize = 7;

impl OperandClass {
    /// All classes in Fig. 13 order (the attention-score bucket last).
    pub const ALL: [OperandClass; NUM_OPERAND_CLASSES] = [
        OperandClass::Adjacency,
        OperandClass::Input,
        OperandClass::Intermediate,
        OperandClass::Weight,
        OperandClass::Output,
        OperandClass::Psum,
        OperandClass::EdgeScore,
    ];

    /// Index into counter arrays.
    #[inline]
    pub fn idx(self) -> usize {
        match self {
            OperandClass::Adjacency => 0,
            OperandClass::Input => 1,
            OperandClass::Intermediate => 2,
            OperandClass::Weight => 3,
            OperandClass::Output => 4,
            OperandClass::Psum => 5,
            OperandClass::EdgeScore => 6,
        }
    }

    /// Fig. 13 legend label.
    pub fn label(self) -> &'static str {
        match self {
            OperandClass::Adjacency => "Adj",
            OperandClass::Input => "Inp",
            OperandClass::Intermediate => "Int",
            OperandClass::Weight => "Wt",
            OperandClass::Output => "Op",
            OperandClass::Psum => "Psum",
            OperandClass::EdgeScore => "Score",
        }
    }
}

impl std::fmt::Display for OperandClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Buffer access counters for one simulated phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Deserialize, Serialize)]
pub struct AccessCounters {
    /// Global-buffer reads per operand class.
    pub gb_reads: [u64; NUM_OPERAND_CLASSES],
    /// Global-buffer writes per operand class.
    pub gb_writes: [u64; NUM_OPERAND_CLASSES],
    /// Register-file reads (all operands).
    pub rf_reads: u64,
    /// Register-file writes (all operands).
    pub rf_writes: u64,
}

impl AccessCounters {
    /// Adds `n` GB reads of class `c`.
    #[inline]
    pub fn read(&mut self, c: OperandClass, n: u64) {
        self.gb_reads[c.idx()] += n;
    }

    /// Adds `n` GB writes of class `c`.
    #[inline]
    pub fn write(&mut self, c: OperandClass, n: u64) {
        self.gb_writes[c.idx()] += n;
    }

    /// Total GB reads across classes.
    pub fn total_gb_reads(&self) -> u64 {
        self.gb_reads.iter().sum()
    }

    /// Total GB writes across classes.
    pub fn total_gb_writes(&self) -> u64 {
        self.gb_writes.iter().sum()
    }

    /// GB reads + writes of one class.
    pub fn gb_of(&self, c: OperandClass) -> u64 {
        self.gb_reads[c.idx()] + self.gb_writes[c.idx()]
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &AccessCounters) {
        for i in 0..NUM_OPERAND_CLASSES {
            self.gb_reads[i] += other.gb_reads[i];
            self.gb_writes[i] += other.gb_writes[i];
        }
        self.rf_reads += other.rf_reads;
        self.rf_writes += other.rf_writes;
    }
}

/// Result of simulating one phase under one intra-phase dataflow.
#[derive(Debug, Clone, Deserialize, Serialize)]
pub struct PhaseStats {
    /// Total cycles, including stalls.
    pub cycles: u64,
    /// Cycles lost to distribution/collection bandwidth (subset of `cycles`).
    pub stall_cycles: u64,
    /// Multiply-accumulate operations performed.
    pub macs: u64,
    /// Buffer access counters.
    pub counters: AccessCounters,
    /// PEs occupied by this phase's tiling.
    pub pe_footprint: usize,
    /// Cumulative cycle timestamps at which successive `Pel` chunks of the
    /// intermediate matrix were produced/consumed (empty when no chunking was
    /// requested). The final entry always equals `cycles`.
    pub chunk_marks: Vec<u64>,
    /// `true` if partial sums overflowed the register files and spilled to the
    /// global buffer somewhere in this phase.
    pub psum_spilled: bool,
    /// Peak per-PE register-file working set this phase *demands*, in bytes:
    /// stationary + stream slots, live partial sums, and the per-PE share of
    /// any residency pins (`input_resident` / `output_stays_local` /
    /// `scores_resident` matrices). Reported unconditionally; compared against
    /// a budget only when capacity enforcement is on.
    pub rf_peak_bytes: u64,
    /// Peak global-buffer staging working set this phase demands, in bytes:
    /// the operand tiles the GB must hold concurrently to feed one pass.
    pub gb_peak_bytes: u64,
}

impl PhaseStats {
    /// Stats of a degenerate phase (a workload with no work at all): zero
    /// cycles/traffic on `pe_footprint` allocated PEs.
    pub fn empty(pe_footprint: usize) -> Self {
        PhaseStats {
            cycles: 0,
            stall_cycles: 0,
            macs: 0,
            counters: AccessCounters::default(),
            pe_footprint,
            chunk_marks: Vec::new(),
            psum_spilled: false,
            rf_peak_bytes: 0,
            gb_peak_bytes: 0,
        }
    }

    /// Per-chunk durations derived from the cumulative marks.
    pub fn chunk_durations(&self) -> Vec<u64> {
        let mut prev = 0;
        self.chunk_marks
            .iter()
            .map(|&m| {
                let d = m.saturating_sub(prev);
                prev = m;
                d
            })
            .collect()
    }

    /// Average achieved MACs per PE per cycle (compute utilisation), in `[0, 1]`.
    pub fn compute_utilisation(&self) -> f64 {
        if self.cycles == 0 || self.pe_footprint == 0 {
            return 0.0;
        }
        self.macs as f64 / (self.cycles as f64 * self.pe_footprint as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_distinct() {
        let idxs: std::collections::HashSet<_> = OperandClass::ALL.iter().map(|c| c.idx()).collect();
        assert_eq!(idxs.len(), NUM_OPERAND_CLASSES);
        assert_eq!(OperandClass::Adjacency.label(), "Adj");
        assert_eq!(OperandClass::Psum.to_string(), "Psum");
        assert_eq!(OperandClass::EdgeScore.label(), "Score");
    }

    #[test]
    fn counters_accumulate_and_merge() {
        let mut a = AccessCounters::default();
        a.read(OperandClass::Input, 10);
        a.write(OperandClass::Output, 4);
        a.rf_reads = 7;
        let mut b = AccessCounters::default();
        b.read(OperandClass::Input, 5);
        b.rf_writes = 2;
        a.merge(&b);
        assert_eq!(a.gb_reads[OperandClass::Input.idx()], 15);
        assert_eq!(a.total_gb_reads(), 15);
        assert_eq!(a.total_gb_writes(), 4);
        assert_eq!(a.gb_of(OperandClass::Input), 15);
        assert_eq!(a.gb_of(OperandClass::Output), 4);
        assert_eq!(a.rf_reads, 7);
        assert_eq!(a.rf_writes, 2);
    }

    #[test]
    fn chunk_durations_from_marks() {
        let s = PhaseStats {
            cycles: 100,
            stall_cycles: 0,
            macs: 0,
            counters: AccessCounters::default(),
            pe_footprint: 1,
            chunk_marks: vec![30, 70, 100],
            psum_spilled: false,
            rf_peak_bytes: 0,
            gb_peak_bytes: 0,
        };
        assert_eq!(s.chunk_durations(), vec![30, 40, 30]);
    }

    #[test]
    fn compute_utilisation_bounds() {
        let s = PhaseStats {
            cycles: 10,
            stall_cycles: 0,
            macs: 40,
            counters: AccessCounters::default(),
            pe_footprint: 8,
            chunk_marks: vec![],
            psum_spilled: false,
            rf_peak_bytes: 0,
            gb_peak_bytes: 0,
        };
        assert!((s.compute_utilisation() - 0.5).abs() < 1e-12);
        let zero = PhaseStats { cycles: 0, pe_footprint: 0, ..s };
        assert_eq!(zero.compute_utilisation(), 0.0);
    }
}
