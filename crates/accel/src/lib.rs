//! Spatial-accelerator simulation substrate for the OMEGA framework.
//!
//! The paper builds OMEGA around the STONNE simulator, which models flexible
//! spatial accelerators (MAERI, SIGMA): a PE array with per-PE register files, a
//! single-cycle configurable distribution network, a configurable reduction
//! network, a banked global buffer, and CSR decode logic for SpMM (Section V-A1).
//! This crate re-implements that substrate as a **tile-step-accurate** simulator:
//!
//! * [`AccelConfig`] — hardware parameters (PE count, RF size, NoC bandwidths,
//!   micro-latencies) with the paper's defaults (512 PEs, 64 B RF, stall-free
//!   bandwidth unless a case study reduces it).
//! * [`EnergyModel`] — per-access energies from Dally et al. as used by the paper
//!   (global buffer 1.046 pJ at 1 MB/bank, register file 0.053 pJ), plus
//!   capacity-scaled energy for the PP intermediate partition.
//! * [`stats`] — per-operand-class access counters ([`OperandClass`]) and
//!   [`PhaseStats`], including the per-`Pel`-chunk timestamps the inter-phase
//!   cost model consumes (Section V-A1: "Some dataflows like PP require
//!   timestamps for the portions of outputs computed for both the phases, which
//!   are collected at the granularity of Pel").
//! * [`engine`] — a shared `PhaseEngine` core behind four leaf engines:
//!   [`engine::simulate_gemm`] (Combination), [`engine::simulate_spmm`]
//!   (Aggregation over CSR), [`engine::simulate_sddmm`] (adjacency-masked
//!   attention scoring plus its edge-wise softmax pass), and
//!   [`engine::simulate_elementwise`] (post-layer activation / LayerNorm
//!   sweeps). All walk the loop
//!   nest at *pass* granularity (one sweep of the innermost temporal loop),
//!   computing cycles and buffer traffic in closed form per pass: compute
//!   throughput (1 MAC/PE/cycle), distribution/collection bandwidth stalls,
//!   multicast reuse, partial-sum spill traffic when the reduction dimension is
//!   not innermost and the live partial sums overflow the RF, and
//!   tile-synchronized row processing (the "evil row" effect).
//! * [`functional`] — functional execution of any legal tiling, used by property
//!   tests to show the simulator walks a dataflow that really computes the kernel.
//!
//! ```
//! use omega_accel::engine::{simulate_spmm, EngineOptions, OperandClasses, SpmmWorkload};
//! use omega_accel::AccelConfig;
//! use omega_dataflow::{Dim, IntraTiling, LoopOrder, Phase};
//!
//! // Aggregate 64 rows of degree 4 over 32 features with a VtFsNt dataflow.
//! let cfg = AccelConfig::paper_default();
//! let degrees = vec![4usize; 64];
//! let wl = SpmmWorkload { degrees: &degrees, feature_width: 32 };
//! let order = LoopOrder::new(Phase::Aggregation, [Dim::V, Dim::F, Dim::N]).unwrap();
//! let tiling = IntraTiling::new(Phase::Aggregation, order, [16, 32, 1]);
//! let stats = simulate_spmm(&wl, &tiling, &cfg, &OperandClasses::aggregation_ac(),
//!     &EngineOptions::plain(cfg.full_bandwidth()));
//! assert_eq!(stats.macs, 64 * 4 * 32);
//! assert!(stats.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod energy;
pub mod engine;
pub mod functional;
mod noc;
mod rf;
pub mod stats;
pub mod telemetry;

pub use config::{AccelConfig, BandwidthShare, ModelKnobs};
pub use energy::EnergyModel;
pub use noc::{collection_cycles, distribution_cycles, tree_latency};
pub use rf::RfBudget;
pub use stats::{AccessCounters, OperandClass, PhaseStats, NUM_OPERAND_CLASSES};
