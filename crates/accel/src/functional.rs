//! Functional execution of a tiled dataflow — the simulator's correctness anchor.
//!
//! A dataflow only reorders and parallelises the loop nest; it must not change
//! what is computed. These walkers execute a phase *in the exact tile order the
//! engine models* and return the numeric result, which property tests compare
//! against the reference kernels in `omega-matrix`. Integer-valued test operands
//! make float accumulation exact, so results must match bit-for-bit across all
//! legal orders and tilings.

use omega_dataflow::{Dim, IntraTiling, Phase};
use omega_matrix::{CsrMatrix, DenseMatrix};

/// Executes a Combination GEMM (`out = a · b`) in the tile order of `tiling`.
///
/// # Panics
/// Panics if the tiling is not a Combination tiling or shapes disagree.
pub fn execute_gemm(a: &DenseMatrix, b: &DenseMatrix, tiling: &IntraTiling) -> DenseMatrix {
    assert_eq!(tiling.phase(), Phase::Combination);
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (v, f, g) = (a.rows(), a.cols(), b.cols());
    let mut out = DenseMatrix::zeros(v, g);

    let extent = |d: Dim| match d {
        Dim::V => v,
        Dim::F => f,
        Dim::G => g,
        Dim::N => 1,
    };
    let tile = |d: Dim| tiling.tile_of(d).min(extent(d)).max(1);
    let [d0, d1, d2] = tiling.order().dims();

    let bounds = |d: Dim, i: usize| {
        let t = tile(d);
        (i * t, ((i + 1) * t).min(extent(d)))
    };
    let ntiles = |d: Dim| extent(d).div_ceil(tile(d));

    for i0 in 0..ntiles(d0) {
        for i1 in 0..ntiles(d1) {
            for i2 in 0..ntiles(d2) {
                let range = |d: Dim| {
                    let idx = if d == d0 {
                        i0
                    } else if d == d1 {
                        i1
                    } else {
                        i2
                    };
                    bounds(d, idx)
                };
                let (v0, v1) = range(Dim::V);
                let (f0, f1) = range(Dim::F);
                let (g0, g1) = range(Dim::G);
                for vi in v0..v1 {
                    for fi in f0..f1 {
                        let aval = a.get(vi, fi);
                        for gi in g0..g1 {
                            *out.get_mut(vi, gi) += aval * b.get(fi, gi);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Executes an Aggregation SpMM (`out = adj · x`) in the tile order of `tiling`.
///
/// The `N` dimension walks each row's CSR neighbour list in slices of `T_N`,
/// exactly as the engine models.
///
/// # Panics
/// Panics if the tiling is not an Aggregation tiling or shapes disagree.
pub fn execute_spmm(adj: &CsrMatrix, x: &DenseMatrix, tiling: &IntraTiling) -> DenseMatrix {
    assert_eq!(tiling.phase(), Phase::Aggregation);
    assert_eq!(adj.cols(), x.rows(), "inner dimensions must agree");
    let (v, f) = (adj.rows(), x.cols());
    let max_deg = (0..v).map(|r| adj.row_nnz(r)).max().unwrap_or(0);
    let mut out = DenseMatrix::zeros(v, f);
    if max_deg == 0 || v == 0 || f == 0 {
        return out;
    }

    let extent = |d: Dim| match d {
        Dim::V => v,
        Dim::F => f,
        Dim::N => max_deg,
        Dim::G => 1,
    };
    let tile = |d: Dim| tiling.tile_of(d).min(extent(d)).max(1);
    let [d0, d1, d2] = tiling.order().dims();
    let bounds = |d: Dim, i: usize| {
        let t = tile(d);
        (i * t, ((i + 1) * t).min(extent(d)))
    };
    let ntiles = |d: Dim| extent(d).div_ceil(tile(d));

    for i0 in 0..ntiles(d0) {
        for i1 in 0..ntiles(d1) {
            for i2 in 0..ntiles(d2) {
                let range = |d: Dim| {
                    let idx = if d == d0 {
                        i0
                    } else if d == d1 {
                        i1
                    } else {
                        i2
                    };
                    bounds(d, idx)
                };
                let (v0, v1) = range(Dim::V);
                let (f0, f1) = range(Dim::F);
                let (n0, n1) = range(Dim::N);
                for vi in v0..v1 {
                    let cols = adj.row_cols(vi);
                    let vals = adj.row_vals(vi);
                    let hi = n1.min(cols.len());
                    for ni in n0..hi {
                        let nbr = cols[ni] as usize;
                        let aval = vals[ni];
                        for fi in f0..f1 {
                            *out.get_mut(vi, fi) += aval * x.get(nbr, fi);
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_dataflow::LoopOrder;
    use omega_matrix::ops;

    fn cmb(order: &str, tiles: [usize; 3]) -> IntraTiling {
        let d: Vec<Dim> = order.chars().map(|c| Dim::from_letter(c).unwrap()).collect();
        IntraTiling::new(Phase::Combination, LoopOrder::new(Phase::Combination, [d[0], d[1], d[2]]).unwrap(), tiles)
    }

    fn agg(order: &str, tiles: [usize; 3]) -> IntraTiling {
        let d: Vec<Dim> = order.chars().map(|c| Dim::from_letter(c).unwrap()).collect();
        IntraTiling::new(Phase::Aggregation, LoopOrder::new(Phase::Aggregation, [d[0], d[1], d[2]]).unwrap(), tiles)
    }

    fn dense(r: usize, c: usize, seed: u64) -> DenseMatrix {
        DenseMatrix::from_fn(r, c, |i, j| (((i * 31 + j * 7) as u64 + seed) % 5) as f32 - 2.0)
    }

    fn sparse(n: usize, seed: u64) -> CsrMatrix {
        let mut coo = omega_matrix::CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0).unwrap();
            for j in 0..n {
                if (i * 13 + j * 5 + seed as usize).is_multiple_of(4) {
                    coo.push(i, j, 1.0).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn gemm_matches_reference_for_all_orders() {
        let a = dense(7, 5, 1);
        let b = dense(5, 6, 2);
        let reference = ops::gemm(&a, &b).unwrap();
        for order in ["VFG", "VGF", "FVG", "FGV", "GVF", "GFV"] {
            for tiles in [[1, 1, 1], [2, 2, 2], [3, 2, 4], [8, 8, 8]] {
                let got = execute_gemm(&a, &b, &cmb(order, tiles));
                assert_eq!(got, reference, "{order} {tiles:?}");
            }
        }
    }

    #[test]
    fn spmm_matches_reference_for_all_orders() {
        let adj = sparse(9, 3);
        let x = dense(9, 4, 5);
        let reference = ops::spmm(&adj, &x).unwrap();
        for order in ["VFN", "VNF", "FVN", "FNV", "NVF", "NFV"] {
            for tiles in [[1, 1, 1], [2, 2, 2], [4, 3, 2]] {
                let got = execute_spmm(&adj, &x, &agg(order, tiles));
                assert_eq!(got, reference, "{order} {tiles:?}");
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let adj = CsrMatrix::empty(3, 3);
        let x = dense(3, 2, 0);
        let out = execute_spmm(&adj, &x, &agg("VFN", [1, 1, 1]));
        assert_eq!(out, DenseMatrix::zeros(3, 2));
    }
}
