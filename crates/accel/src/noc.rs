//! Network-on-chip timing helpers: distribution, collection, reduction tree.

/// Cycles to deliver `elems` operand elements through a distribution network of
/// `bandwidth` elements/cycle. With the paper's default ("sufficient") bandwidth
/// this returns a number ≤ the compute cycles and never stalls the array.
#[inline]
pub fn distribution_cycles(elems: u64, bandwidth: usize) -> u64 {
    elems.div_ceil(bandwidth.max(1) as u64)
}

/// Cycles to drain `elems` output elements through the collection/reduction
/// network of `bandwidth` elements/cycle.
#[inline]
pub fn collection_cycles(elems: u64, bandwidth: usize) -> u64 {
    elems.div_ceil(bandwidth.max(1) as u64)
}

/// Pipeline-fill latency of a spatial reduction over `fan_in` inputs with the
/// given per-level latency — an adder tree of depth `ceil(log2(fan_in))`
/// (MAERI's augmented reduction tree). Charged once per pass; the tree is
/// pipelined afterwards.
#[inline]
pub fn tree_latency(fan_in: usize, per_level: u64) -> u64 {
    if fan_in <= 1 {
        return 0;
    }
    let levels = usize::BITS - (fan_in - 1).leading_zeros();
    levels as u64 * per_level
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_rounds_up() {
        assert_eq!(distribution_cycles(512, 512), 1);
        assert_eq!(distribution_cycles(513, 512), 2);
        assert_eq!(distribution_cycles(0, 512), 0);
        assert_eq!(distribution_cycles(100, 0), 100); // clamped to 1/cycle
    }

    #[test]
    fn collection_rounds_up() {
        assert_eq!(collection_cycles(64, 64), 1);
        assert_eq!(collection_cycles(65, 64), 2);
    }

    #[test]
    fn tree_depth_is_log2() {
        assert_eq!(tree_latency(1, 1), 0);
        assert_eq!(tree_latency(2, 1), 1);
        assert_eq!(tree_latency(4, 1), 2);
        assert_eq!(tree_latency(5, 1), 3);
        assert_eq!(tree_latency(8, 1), 3);
        assert_eq!(tree_latency(512, 1), 9);
        assert_eq!(tree_latency(8, 2), 6);
    }
}
