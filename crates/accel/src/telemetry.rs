//! Lightweight simulation telemetry: the preparation-cost and class-replay
//! counters the scaling regression tests and the DSE `--stats` output read.
//!
//! Two counters live here, with deliberately different scopes:
//!
//! * [`prepare_ops`] — a **thread-local** count of degree elements visited
//!   while building prepared-workload structures (`PreparedSpmm`,
//!   `WorkloadSummary`, `DegreeSummary`, degree classes) *and* while scanning
//!   tiles inside a reference walk. Thread-local so a test can assert "the
//!   second simulation of the same workload built nothing" without
//!   interference from parallel tests; reset it with [`reset_prepare_ops`]
//!   before the section under measurement.
//! * [`class_replays`] — a **process-wide monotone** count of tile passes that
//!   were *replayed* from a batched degree/tile class instead of being walked
//!   (a class covering `m` identical tiles costs one timeline computation and
//!   `m − 1` replays). The CI scale smoke asserts it is non-zero after an
//!   RMAT sweep — proof the summary-driven path actually engaged.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    static PREPARE_OPS: Cell<u64> = const { Cell::new(0) };
}

static CLASS_REPLAYS: AtomicU64 = AtomicU64::new(0);

/// Degree elements visited by prepared-structure builds and reference-walk
/// tile scans on *this thread* since the last [`reset_prepare_ops`].
pub fn prepare_ops() -> u64 {
    PREPARE_OPS.with(|c| c.get())
}

/// Resets this thread's [`prepare_ops`] counter to zero.
pub fn reset_prepare_ops() {
    PREPARE_OPS.with(|c| c.set(0));
}

#[inline]
pub(crate) fn count_prepare(n: u64) {
    PREPARE_OPS.with(|c| c.set(c.get() + n));
}

/// Process-wide monotone count of tile passes replayed from a batched class
/// instead of walked per-edge. Read a before/after delta around the section
/// of interest.
pub fn class_replays() -> u64 {
    CLASS_REPLAYS.load(Ordering::Relaxed)
}

#[inline]
pub(crate) fn add_class_replays(n: u64) {
    if n > 0 {
        CLASS_REPLAYS.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_ops_are_thread_local_and_resettable() {
        reset_prepare_ops();
        count_prepare(7);
        count_prepare(5);
        assert_eq!(prepare_ops(), 12);
        let other = std::thread::spawn(|| {
            count_prepare(100);
            prepare_ops()
        })
        .join()
        .unwrap();
        assert_eq!(other, 100);
        assert_eq!(prepare_ops(), 12);
        reset_prepare_ops();
        assert_eq!(prepare_ops(), 0);
    }

    #[test]
    fn class_replays_accumulate_globally() {
        let before = class_replays();
        add_class_replays(3);
        add_class_replays(0); // no-op, no atomic traffic
        assert!(class_replays() >= before + 3);
    }
}
