//! Buffer-access energy model (Section V-B2, after Dally et al.).

use serde::Serialize;

/// Per-access energies for the on-chip storage hierarchy.
///
/// The paper assumes 1.046 pJ per global-buffer access (1 MB bank) and 0.053 pJ
/// per PE register-file access. PP's dedicated intermediate partition is smaller
/// than a full GB bank, and "the energy of memory accesses from smaller
/// intermediate buffer partition is less" (Section V-B2) — we scale the access
/// energy with the square root of the partition capacity (first-order SRAM
/// bitline/wordline scaling), clamped between the RF and GB energies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EnergyModel {
    /// Energy per global-buffer access in pJ.
    pub gb_access_pj: f64,
    /// Energy per register-file access in pJ.
    pub rf_access_pj: f64,
    /// Energy per off-chip DRAM word access in pJ. Fig. 6: when the Seq
    /// intermediate exceeds the on-chip buffers "it needs to move back and
    /// forth between memory which adds energy costs". ~200 pJ/word is the
    /// order of magnitude Dally et al. give for LPDDR-class DRAM (two orders
    /// above the 1 MB SRAM bank).
    pub dram_access_pj: f64,
    /// Reference bank capacity for `gb_access_pj`, in bytes.
    pub gb_bank_bytes: usize,
}

impl EnergyModel {
    /// The paper's constants.
    pub fn paper_default() -> Self {
        EnergyModel {
            gb_access_pj: 1.046,
            rf_access_pj: 0.053,
            dram_access_pj: 200.0,
            gb_bank_bytes: 1 << 20,
        }
    }

    /// Energy of one access to an SRAM partition of `capacity_bytes`, in pJ.
    pub fn buffer_access_pj(&self, capacity_bytes: usize) -> f64 {
        if capacity_bytes == 0 {
            return self.rf_access_pj;
        }
        let scaled = self.gb_access_pj * (capacity_bytes as f64 / self.gb_bank_bytes as f64).sqrt();
        scaled.clamp(self.rf_access_pj, self.gb_access_pj)
    }

    /// Total energy in pJ for a number of GB accesses.
    pub fn gb_pj(&self, accesses: u64) -> f64 {
        accesses as f64 * self.gb_access_pj
    }

    /// Total energy in pJ for a number of RF accesses.
    pub fn rf_pj(&self, accesses: u64) -> f64 {
        accesses as f64 * self.rf_access_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let e = EnergyModel::paper_default();
        assert!((e.gb_access_pj - 1.046).abs() < 1e-12);
        assert!((e.rf_access_pj - 0.053).abs() < 1e-12);
    }

    #[test]
    fn partition_energy_scales_with_sqrt_capacity() {
        let e = EnergyModel::paper_default();
        // Full bank = full energy.
        assert!((e.buffer_access_pj(1 << 20) - 1.046).abs() < 1e-9);
        // Quarter bank = half energy.
        assert!((e.buffer_access_pj(1 << 18) - 0.523).abs() < 1e-9);
        // Monotone in capacity.
        assert!(e.buffer_access_pj(1 << 16) < e.buffer_access_pj(1 << 18));
    }

    #[test]
    fn partition_energy_is_clamped() {
        let e = EnergyModel::paper_default();
        // Tiny partitions never dip below RF energy.
        assert!((e.buffer_access_pj(4) - e.rf_access_pj).abs() < 1e-12);
        assert!((e.buffer_access_pj(0) - e.rf_access_pj).abs() < 1e-12);
        // Oversized partitions never exceed GB energy.
        assert!((e.buffer_access_pj(1 << 24) - e.gb_access_pj).abs() < 1e-12);
    }

    #[test]
    fn totals() {
        let e = EnergyModel::paper_default();
        assert!((e.gb_pj(1000) - 1046.0).abs() < 1e-9);
        assert!((e.rf_pj(1000) - 53.0).abs() < 1e-9);
    }
}
