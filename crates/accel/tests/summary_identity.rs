//! Differential proof that the summary-driven walk is bit-identical to the
//! per-edge reference oracle.
//!
//! The default SpMM/SDDMM walk batches degree classes and replays tile
//! timelines by multiplicity; `EngineOptions::reference_walk` keeps the old
//! fully unbatched per-edge path alive as an oracle. This suite compares the
//! two walks *field by field* (`PhaseStats` deliberately has no `PartialEq`,
//! so nothing can silently widen the comparison) across:
//!
//! * all seven Table-IV datasets (large ones down-sampled via
//!   [`omega_graph::scale::sample_subgraph`] to keep the O(nnz) oracle
//!   tractable),
//! * adversarial degree vectors — star hubs, rings, bimodal mixes, empty
//!   rows, a lone mega-hub, and the empty workload,
//! * all SpMM loop orders, SDDMM orders and head counts, a tiling spread with
//!   remainder tiles, chunked timelines on both sides, residency flags,
//!   throttled bandwidth, and finite capacity budgets that force spills,
//! * a proptest arm over random Chung-Lu degree distributions.
//!
//! Two regression tests pin the scaling claims themselves: prepared-summary
//! construction is one-shot (the second simulation of the same workload
//! builds nothing, while the reference walk keeps re-scanning tiles), and the
//! summary walk actually *replays* duplicate tiles instead of walking them.

use omega_accel::engine::{
    simulate_sddmm, simulate_spmm, simulate_spmm_prepared, CapacityBudget, ChunkSide, ChunkSpec,
    EngineOptions, OperandClasses, PreparedSpmm, SddmmWorkload, SpmmWorkload,
};
use omega_accel::{telemetry, AccelConfig, BandwidthShare, PhaseStats};
use omega_dataflow::{Dim, IntraTiling, LoopOrder, Phase};
use omega_graph::generators::chung_lu;
use omega_graph::scale::sample_subgraph;
use omega_graph::DatasetSpec;
use proptest::prelude::*;

fn tiling(phase: Phase, order: &str, tiles: [usize; 3]) -> IntraTiling {
    let d: Vec<Dim> = order.chars().map(|c| Dim::from_letter(c).unwrap()).collect();
    IntraTiling::new(phase, LoopOrder::new(phase, [d[0], d[1], d[2]]).unwrap(), tiles)
}

const SPMM_ORDERS: [&str; 6] = ["VFN", "FVN", "VNF", "FNV", "NVF", "NFV"];
const SDDMM_ORDERS: [&str; 3] = ["VFN", "VNF", "FVN"];
const TILINGS: [[usize; 3]; 4] = [[1, 1, 1], [4, 4, 2], [16, 8, 4], [5, 3, 2]];

/// Field-by-field equality. `PhaseStats` has no `PartialEq` on purpose: every
/// new cost-model field must be added here explicitly or the compiler keeps
/// quiet and the oracle stops covering it — so we enumerate all nine fields.
fn assert_same(summary: &PhaseStats, reference: &PhaseStats, ctx: &str) {
    assert_eq!(summary.cycles, reference.cycles, "cycles: {ctx}");
    assert_eq!(summary.stall_cycles, reference.stall_cycles, "stall_cycles: {ctx}");
    assert_eq!(summary.macs, reference.macs, "macs: {ctx}");
    assert_eq!(summary.counters, reference.counters, "counters: {ctx}");
    assert_eq!(summary.pe_footprint, reference.pe_footprint, "pe_footprint: {ctx}");
    assert_eq!(summary.chunk_marks, reference.chunk_marks, "chunk_marks: {ctx}");
    assert_eq!(summary.psum_spilled, reference.psum_spilled, "psum_spilled: {ctx}");
    assert_eq!(summary.rf_peak_bytes, reference.rf_peak_bytes, "rf_peak_bytes: {ctx}");
    assert_eq!(summary.gb_peak_bytes, reference.gb_peak_bytes, "gb_peak_bytes: {ctx}");
}

/// The option matrix: chunk specs (none / produce / consume at non-round
/// `Pel`), residency combinations, bandwidth shares, and capacity budgets
/// including finite ones small enough to force the PR 7 spill arms. `full`
/// selects the exhaustive matrix (72 options) for the small adversarial
/// vectors; the reduced matrix (12 options) still covers every arm once and
/// keeps the per-edge oracle affordable on the real datasets.
fn option_matrix(cfg: &AccelConfig, full: bool) -> Vec<EngineOptions> {
    let chunks = [
        None,
        Some(ChunkSpec { side: ChunkSide::Produce, pel: 257 }),
        Some(ChunkSpec { side: ChunkSide::Consume, pel: 1023 }),
    ];
    let all_flags = [(false, false, false), (true, false, false), (false, true, false), (true, true, true)];
    let flags: &[(bool, bool, bool)] = if full { &all_flags } else { &all_flags[..2] };
    let bws = if full {
        vec![cfg.full_bandwidth(), BandwidthShare { dist: 48, red: 48 }]
    } else {
        vec![cfg.full_bandwidth()]
    };
    let caps = [
        CapacityBudget::UNBOUNDED,
        CapacityBudget { rf_bytes_per_pe: 128, gb_bytes: 1 << 13 },
        CapacityBudget { rf_bytes_per_pe: 24, gb_bytes: 3072 },
    ];
    let caps: &[CapacityBudget] = if full { &caps } else { &caps[..2] };
    let mut out = Vec::new();
    for chunk in chunks {
        for &(input_resident, output_stays_local, scores_resident) in flags {
            for &bandwidth in &bws {
                for &capacity in caps {
                    out.push(EngineOptions {
                        bandwidth,
                        input_resident,
                        output_stays_local,
                        scores_resident,
                        chunk,
                        capacity,
                        reference_walk: false,
                    });
                }
            }
        }
    }
    out
}

/// Sweeps one degree vector through both walks and asserts bit-identity on
/// every (order, tiling, option) point.
fn sweep_spmm(label: &str, degrees: &[usize], f: usize, cfg: &AccelConfig, opts: &[EngineOptions]) {
    let swl = SpmmWorkload { degrees, feature_width: f };
    for order in SPMM_ORDERS {
        for tiles in TILINGS {
            let t = tiling(Phase::Aggregation, order, tiles);
            for base in opts {
                let classes = if base.scores_resident {
                    OperandClasses::aggregation_gat()
                } else {
                    OperandClasses::aggregation_ac()
                };
                let summary = simulate_spmm(&swl, &t, cfg, &classes, base);
                let mut oracle = *base;
                oracle.reference_walk = true;
                let reference = simulate_spmm(&swl, &t, cfg, &classes, &oracle);
                assert_same(
                    &summary,
                    &reference,
                    &format!("{label} spmm {order} tiles={tiles:?} opts={base:?}"),
                );
            }
        }
    }
}

fn sweep_sddmm(label: &str, degrees: &[usize], f: usize, cfg: &AccelConfig, opts: &[EngineOptions]) {
    for heads in [1usize, 3] {
        let swl = SddmmWorkload { degrees, dot_width: (f / heads).max(1), heads };
        for order in SDDMM_ORDERS {
            for tiles in TILINGS {
                let t = tiling(Phase::Aggregation, order, tiles);
                for base in opts {
                    let summary = simulate_sddmm(&swl, &t, cfg, &OperandClasses::sddmm(), base);
                    let mut oracle = *base;
                    oracle.reference_walk = true;
                    let reference = simulate_sddmm(&swl, &t, cfg, &OperandClasses::sddmm(), &oracle);
                    assert_same(
                        &summary,
                        &reference,
                        &format!("{label} sddmm h={heads} {order} tiles={tiles:?} opts={base:?}"),
                    );
                }
            }
        }
    }
}

/// Hand-built degree vectors that stress the class machinery: maximal
/// multiplicity (every tile identical), no multiplicity (a hub dominating one
/// tile), empty rows inside and between tiles, and the degenerate workloads.
fn adversarial_vectors() -> Vec<(&'static str, Vec<usize>)> {
    let mut star = vec![2usize; 64];
    star[0] = 64; // hub: every spoke + self loop
    let bimodal: Vec<usize> = (0..96).map(|i| if i % 2 == 0 { 2 } else { 33 }).collect();
    let holes: Vec<usize> = (0..80).map(|i| if i % 3 == 0 { 0 } else { 5 + i % 7 }).collect();
    let mut lone_hub = vec![0usize; 97];
    lone_hub[41] = 500;
    vec![
        ("star", star),
        ("ring", vec![3usize; 64]),
        ("bimodal", bimodal),
        ("holes", holes),
        ("lone-hub", lone_hub),
        ("single-row", vec![7usize]),
        ("empty", Vec::new()),
    ]
}

#[test]
fn adversarial_degree_vectors_are_bit_identical() {
    let cfg = AccelConfig::paper_default();
    let opts = option_matrix(&cfg, true);
    for (label, degrees) in adversarial_vectors() {
        sweep_spmm(label, &degrees, 19, &cfg, &opts);
        sweep_sddmm(label, &degrees, 19, &cfg, &opts);
    }
}

#[test]
fn table_iv_datasets_are_bit_identical() {
    let cfg = AccelConfig::paper_default();
    let opts = option_matrix(&cfg, false);
    for spec in DatasetSpec::all() {
        let ds = spec.generate(7);
        // The oracle is O(nnz) per pass; down-sample the big batches to a
        // representative subgraph and cap the feature sweep so the full
        // 7-dataset × order × tiling × option product stays test-sized.
        let graph = if ds.graph.num_vertices() > 1600 {
            sample_subgraph(&ds.graph, 1200, 7)
        } else {
            ds.graph.clone()
        };
        let degrees: Vec<usize> = (0..graph.num_vertices()).map(|i| graph.degree(i)).collect();
        let f = graph.feature_dim().min(96);
        sweep_spmm(spec.name, &degrees, f, &cfg, &opts);
        sweep_sddmm(spec.name, &degrees, f, &cfg, &opts);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random Chung-Lu degree distributions, one (order, tiling, option)
    /// point per case so shrinking isolates the exact failing configuration.
    #[test]
    fn random_chung_lu_degrees_are_bit_identical(
        n in 1usize..180,
        edges in 1usize..600,
        seed in 0u64..1024,
        order_idx in 0usize..6,
        tiling_idx in 0usize..4,
        opt_idx in 0usize..72,
    ) {
        let g = chung_lu("cl", n, edges, 2.3, 4, seed).build();
        let degrees: Vec<usize> = (0..g.num_vertices()).map(|i| g.degree(i)).collect();
        let cfg = AccelConfig::paper_default();
        let opts = option_matrix(&cfg, true);
        let base = opts[opt_idx % opts.len()];
        let mut oracle = base;
        oracle.reference_walk = true;
        let t = tiling(Phase::Aggregation, SPMM_ORDERS[order_idx], TILINGS[tiling_idx]);
        let classes = if base.scores_resident {
            OperandClasses::aggregation_gat()
        } else {
            OperandClasses::aggregation_ac()
        };
        let swl = SpmmWorkload { degrees: &degrees, feature_width: 24 };
        let ctx = format!(
            "cl n={n} edges={edges} seed={seed} {} tiles={:?} opts={base:?}",
            SPMM_ORDERS[order_idx], TILINGS[tiling_idx],
        );
        assert_same(
            &simulate_spmm(&swl, &t, &cfg, &classes, &base),
            &simulate_spmm(&swl, &t, &cfg, &classes, &oracle),
            &ctx,
        );
        let dwl = SddmmWorkload { degrees: &degrees, dot_width: 8, heads: 3 };
        let st = tiling(Phase::Aggregation, SDDMM_ORDERS[order_idx % 3], TILINGS[tiling_idx]);
        assert_same(
            &simulate_sddmm(&dwl, &st, &cfg, &OperandClasses::sddmm(), &base),
            &simulate_sddmm(&dwl, &st, &cfg, &OperandClasses::sddmm(), &oracle),
            &ctx,
        );
    }
}

/// Pins the tentpole's cost claim: preparing the summary structures touches
/// O(V + classes) degree elements *once* — the second simulation of the same
/// `PreparedSpmm` builds nothing — while the per-edge oracle re-scans tiles
/// on every call. `prepare_ops` is thread-local, so parallel tests in this
/// binary cannot perturb the deltas.
#[test]
fn prepared_summary_build_cost_is_one_shot_and_reference_rescans() {
    let degrees: Vec<usize> = (0..1024).map(|i| (i * 7919) % 37).collect();
    let v = degrees.len() as u64;
    let cfg = AccelConfig::paper_default();
    let t = tiling(Phase::Aggregation, "VNF", [8, 4, 4]);
    let classes = OperandClasses::aggregation_ac();
    let opts = EngineOptions::plain(cfg.full_bandwidth());

    telemetry::reset_prepare_ops();
    let prep = PreparedSpmm::new(&degrees);
    let first = simulate_spmm_prepared(&prep, 32, &t, &cfg, &classes, &opts);
    let built = telemetry::prepare_ops();
    assert!(built > 0, "summary build must be visible to the counter");
    assert!(
        built <= 8 * v + 4096,
        "summary build cost {built} is not O(V + classes) for V = {v}"
    );

    let second = simulate_spmm_prepared(&prep, 32, &t, &cfg, &classes, &opts);
    assert_eq!(telemetry::prepare_ops(), built, "second simulation rebuilt summary state");
    assert_same(&first, &second, "prepared re-simulation");

    let mut oracle = opts;
    oracle.reference_walk = true;
    let r1 = simulate_spmm_prepared(&prep, 32, &t, &cfg, &classes, &oracle);
    let after_first_oracle = telemetry::prepare_ops();
    assert!(after_first_oracle > built, "reference walk must scan tiles");
    assert_same(&first, &r1, "oracle vs prepared summary");
    let _ = simulate_spmm_prepared(&prep, 32, &t, &cfg, &classes, &oracle);
    assert!(
        telemetry::prepare_ops() > after_first_oracle,
        "reference walk must re-scan on every simulation"
    );
}

/// The summary walk must *replay* duplicate tiles, not walk them: 256
/// identical rows at `Tv = 4` form 64 identical tiles, so one timeline is
/// computed and the rest replayed — visible as growth of the process-wide
/// replay counter (monotone, so parallel tests only ever add to it).
#[test]
fn summary_walk_replays_duplicate_tiles() {
    let degrees = vec![6usize; 256];
    let swl = SpmmWorkload { degrees: &degrees, feature_width: 16 };
    let cfg = AccelConfig::paper_default();
    let t = tiling(Phase::Aggregation, "VFN", [4, 4, 2]);
    let opts = EngineOptions::plain(cfg.full_bandwidth());
    let before = telemetry::class_replays();
    let _ = simulate_spmm(&swl, &t, &cfg, &OperandClasses::aggregation_ac(), &opts);
    assert!(
        telemetry::class_replays() > before,
        "uniform-degree workload produced no class replays"
    );
}
