//! Property tests: engine invariants across random dataflows and workloads.

use proptest::prelude::*;

use omega_accel::engine::{simulate_gemm, simulate_spmm, EngineOptions, GemmDims, OperandClasses, SpmmWorkload};
use omega_accel::functional::{execute_gemm, execute_spmm};
use omega_accel::{AccelConfig, BandwidthShare};
use omega_dataflow::{Dim, IntraTiling, LoopOrder, Phase};
use omega_matrix::{ops, CooMatrix, CsrMatrix, DenseMatrix};

fn agg_tiling(order_idx: usize, tiles: [usize; 3]) -> IntraTiling {
    let order = LoopOrder::all(Phase::Aggregation)[order_idx % 6];
    IntraTiling::new(Phase::Aggregation, order, tiles)
}

fn cmb_tiling(order_idx: usize, tiles: [usize; 3]) -> IntraTiling {
    let order = LoopOrder::all(Phase::Combination)[order_idx % 6];
    IntraTiling::new(Phase::Combination, order, tiles)
}

fn small_dense(r: usize, c: usize, seed: u64) -> DenseMatrix {
    DenseMatrix::from_fn(r, c, |i, j| (((i * 31 + j * 17) as u64 + seed) % 7) as f32 - 3.0)
}

fn random_csr(n: usize, density_mod: usize, seed: u64) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 1.0).unwrap();
        for j in 0..n {
            if (i * 13 + j * 7 + seed as usize).is_multiple_of(density_mod) {
                coo.push(i, j, 1.0).unwrap();
            }
        }
    }
    coo.to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A dataflow reorders computation; it must not change the result.
    #[test]
    fn functional_gemm_is_order_invariant(
        order_idx in 0usize..6,
        tv in 1usize..6, tf in 1usize..6, tg in 1usize..6,
        v in 1usize..9, f in 1usize..9, g in 1usize..9,
        seed in 0u64..32,
    ) {
        let a = small_dense(v, f, seed);
        let b = small_dense(f, g, seed + 1);
        let reference = ops::gemm(&a, &b).unwrap();
        let got = execute_gemm(&a, &b, &cmb_tiling(order_idx, [tv, tf, tg]));
        prop_assert_eq!(got, reference);
    }

    #[test]
    fn functional_spmm_is_order_invariant(
        order_idx in 0usize..6,
        tv in 1usize..6, tf in 1usize..6, tn in 1usize..6,
        n in 1usize..10, f in 1usize..8,
        density in 2usize..6,
        seed in 0u64..32,
    ) {
        let adj = random_csr(n, density, seed);
        let x = small_dense(n, f, seed + 2);
        let reference = ops::spmm(&adj, &x).unwrap();
        let got = execute_spmm(&adj, &x, &agg_tiling(order_idx, [tv, tf, tn]));
        prop_assert_eq!(got, reference);
    }

    /// MAC work is an invariant of the dataflow: only schedule and traffic change.
    #[test]
    fn gemm_macs_invariant_across_dataflows(
        order_idx in 0usize..6,
        tv in 1usize..9, tf in 1usize..9, tg in 1usize..9,
        v in 1usize..20, f in 1usize..20, g in 1usize..20,
    ) {
        let cfg = AccelConfig::paper_default();
        let tiling = cmb_tiling(order_idx, [tv, tf, tg]);
        let s = simulate_gemm(
            GemmDims { v, f, g },
            &tiling,
            &cfg,
            &OperandClasses::combination_ac(),
            &EngineOptions::plain(cfg.full_bandwidth()),
        );
        prop_assert_eq!(s.macs, (v * f * g) as u64);
        // Cycles can never undercut the compute bound for the PEs actually used
        // (tiles are positional in the loop order, so query the tiling).
        let spatial = (tiling.tile_of(Dim::V).min(v)
            * tiling.tile_of(Dim::F).min(f)
            * tiling.tile_of(Dim::G).min(g)) as u64;
        prop_assert!(s.cycles >= s.macs / spatial.max(1));
    }

    #[test]
    fn spmm_macs_invariant_across_dataflows(
        order_idx in 0usize..6,
        tv in 1usize..9, tf in 1usize..9, tn in 1usize..5,
        f in 1usize..16,
        degrees in proptest::collection::vec(0usize..12, 1..24),
    ) {
        let cfg = AccelConfig::paper_default();
        let wl = SpmmWorkload { degrees: &degrees, feature_width: f };
        let e = wl.nnz();
        let s = simulate_spmm(
            &wl,
            &agg_tiling(order_idx, [tv, tf, tn]),
            &cfg,
            &OperandClasses::aggregation_ac(),
            &EngineOptions::plain(cfg.full_bandwidth()),
        );
        prop_assert_eq!(s.macs, e * f as u64);
    }

    /// Lowering bandwidth can only slow a phase down (monotonicity).
    #[test]
    fn bandwidth_monotonicity_gemm(
        order_idx in 0usize..6,
        v in 4usize..24, f in 4usize..24, g in 2usize..12,
    ) {
        let cfg = AccelConfig::paper_default();
        let t = cmb_tiling(order_idx, [4, 4, 2]);
        let mut prev = None;
        for bw in [512usize, 64, 8, 1] {
            let s = simulate_gemm(
                GemmDims { v, f, g },
                &t,
                &cfg,
                &OperandClasses::combination_ac(),
                &EngineOptions::plain(BandwidthShare { dist: bw, red: bw }),
            );
            if let Some(p) = prev {
                prop_assert!(s.cycles >= p, "bw {bw}: {} < {}", s.cycles, p);
            }
            prev = Some(s.cycles);
        }
    }

    /// Chunk marks are monotone, end at the total, and have the expected count.
    #[test]
    fn chunk_marks_are_well_formed(
        degrees in proptest::collection::vec(1usize..9, 4..40),
        f in 2usize..16,
        pel_rows in 1usize..8,
    ) {
        use omega_accel::engine::{ChunkSide, ChunkSpec};
        let cfg = AccelConfig::paper_default();
        let wl = SpmmWorkload { degrees: &degrees, feature_width: f };
        let t = agg_tiling(0, [2, 4, 1]); // VFN
        let pel = (pel_rows * f) as u64;
        let mut opts = EngineOptions::plain(cfg.full_bandwidth());
        opts.chunk = Some(ChunkSpec { side: ChunkSide::Produce, pel });
        let s = simulate_spmm(&wl, &t, &cfg, &OperandClasses::aggregation_ac(), &opts);
        let total = (degrees.len() * f) as u64;
        prop_assert_eq!(s.chunk_marks.len() as u64, total.div_ceil(pel));
        prop_assert!(s.chunk_marks.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*s.chunk_marks.last().unwrap(), s.cycles);
    }

    /// SP-Optimized flags remove exactly the intermediate GB traffic.
    #[test]
    fn resident_flags_only_remove_intermediate_traffic(
        v in 2usize..16, f in 2usize..16, g in 2usize..8,
    ) {
        let cfg = AccelConfig::paper_default();
        let t = cmb_tiling(0, [2, 2, 1]); // VFG
        let base = simulate_gemm(GemmDims { v, f, g }, &t, &cfg,
            &OperandClasses::combination_ac(), &EngineOptions::plain(cfg.full_bandwidth()));
        let mut opts = EngineOptions::plain(cfg.full_bandwidth());
        opts.input_resident = true;
        let resident = simulate_gemm(GemmDims { v, f, g }, &t, &cfg,
            &OperandClasses::combination_ac(), &opts);
        use omega_accel::OperandClass;
        prop_assert_eq!(resident.counters.gb_reads[OperandClass::Intermediate.idx()], 0);
        prop_assert_eq!(
            resident.counters.gb_reads[OperandClass::Weight.idx()],
            base.counters.gb_reads[OperandClass::Weight.idx()]
        );
        prop_assert!(resident.cycles <= base.cycles);
    }
}

/// Deterministic end-to-end check on a graph-shaped workload.
#[test]
fn engines_run_on_generated_graphs() {
    use omega_graph::DatasetSpec;
    let d = DatasetSpec::mutag().generate(3);
    let degrees: Vec<usize> = (0..d.graph.num_vertices()).map(|v| d.graph.degree(v)).collect();
    let cfg = AccelConfig::paper_default();
    let wl = SpmmWorkload { degrees: &degrees, feature_width: d.graph.feature_dim() };
    let t = agg_tiling(0, [32, 16, 1]);
    let s = simulate_spmm(&wl, &t, &cfg, &OperandClasses::aggregation_ac(), &EngineOptions::plain(cfg.full_bandwidth()));
    assert_eq!(s.macs, wl.nnz() * d.graph.feature_dim() as u64);
    assert!(s.cycles > 0);
    assert!(s.compute_utilisation() > 0.0);
}
