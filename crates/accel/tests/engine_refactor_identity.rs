//! Golden bit-identity pin for the `PhaseEngine` refactor.
//!
//! Every engine output across the full supported option matrix — all loop
//! orders × a tiling spread (remainder tiles, spill shapes, single-row tiles)
//! × unchunked/produce-chunked/consume-chunked × residency flags × bandwidth
//! shares — is folded into one FNV-1a hash per (dataset, engine). The
//! constants below were recorded from the pre-refactor engines; the refactored
//! engines must reproduce them bit for bit. Any intentional cost-model change
//! must update the constants *and* say why in the commit.

use omega_accel::engine::{
    simulate_gemm, simulate_sddmm, simulate_spmm, CapacityBudget, ChunkSide, ChunkSpec,
    EngineOptions, GemmDims, OperandClasses, SddmmWorkload, SpmmWorkload,
};
use omega_accel::{AccelConfig, BandwidthShare, PhaseStats};
use omega_dataflow::{Dim, IntraTiling, LoopOrder, Phase};
use omega_graph::DatasetSpec;

/// FNV-1a 64-bit fold.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn stats(&mut self, s: &PhaseStats) {
        self.u64(s.cycles);
        self.u64(s.stall_cycles);
        self.u64(s.macs);
        for &r in &s.counters.gb_reads {
            self.u64(r);
        }
        for &w in &s.counters.gb_writes {
            self.u64(w);
        }
        self.u64(s.counters.rf_reads);
        self.u64(s.counters.rf_writes);
        self.u64(s.pe_footprint as u64);
        self.u64(s.chunk_marks.len() as u64);
        for &m in &s.chunk_marks {
            self.u64(m);
        }
        self.u64(s.psum_spilled as u64);
    }
}

fn tiling(phase: Phase, order: &str, tiles: [usize; 3]) -> IntraTiling {
    let d: Vec<Dim> = order.chars().map(|c| Dim::from_letter(c).unwrap()).collect();
    IntraTiling::new(phase, LoopOrder::new(phase, [d[0], d[1], d[2]]).unwrap(), tiles)
}

const TILINGS: [[usize; 3]; 4] = [[1, 1, 1], [4, 4, 2], [16, 8, 4], [5, 3, 2]];

/// The option matrix every engine is swept over: chunk specs (none, produce,
/// consume at non-round `Pel`), residency-flag combinations, and two bandwidth
/// shares (stall-free and throttled). `reference_walk = true` re-runs the
/// whole matrix through the per-edge oracle — it must land on the same golden
/// hashes as the summary-driven default.
fn options_with(cfg: &AccelConfig, reference_walk: bool) -> Vec<EngineOptions> {
    let mut out = Vec::new();
    let chunks = [
        None,
        Some(ChunkSpec { side: ChunkSide::Produce, pel: 257 }),
        Some(ChunkSpec { side: ChunkSide::Consume, pel: 1023 }),
    ];
    let flags = [(false, false, false), (true, false, false), (false, true, false), (true, true, true)];
    let bws = [cfg.full_bandwidth(), BandwidthShare { dist: 48, red: 48 }];
    for chunk in chunks {
        for (input_resident, output_stays_local, scores_resident) in flags {
            for bandwidth in bws {
                out.push(EngineOptions {
                    bandwidth,
                    input_resident,
                    output_stays_local,
                    scores_resident,
                    chunk,
                    capacity: CapacityBudget::UNBOUNDED,
                    reference_walk,
                });
            }
        }
    }
    out
}

struct Workload {
    degrees: Vec<usize>,
    v: usize,
    f: usize,
    g: usize,
}

fn dataset(spec: DatasetSpec) -> Workload {
    let ds = spec.generate(7);
    let v = ds.graph.num_vertices();
    Workload {
        degrees: (0..v).map(|i| ds.graph.degree(i)).collect(),
        v,
        f: ds.graph.feature_dim(),
        g: 16,
    }
}

fn gemm_hash(wl: &Workload, cfg: &AccelConfig) -> u64 {
    let mut h = Fnv::new();
    let dims = GemmDims { v: wl.v, f: wl.f, g: wl.g };
    for order in ["VGF", "VFG", "GVF", "GFV", "FVG", "FGV"] {
        for tiles in TILINGS {
            let t = tiling(Phase::Combination, order, tiles);
            for opts in options_with(cfg, false) {
                h.stats(&simulate_gemm(dims, &t, cfg, &OperandClasses::combination_ac(), &opts));
            }
        }
    }
    h.0
}

fn spmm_hash(wl: &Workload, cfg: &AccelConfig, reference_walk: bool) -> u64 {
    let mut h = Fnv::new();
    let swl = SpmmWorkload { degrees: &wl.degrees, feature_width: wl.f };
    for order in ["VFN", "FVN", "VNF", "FNV", "NVF", "NFV"] {
        for tiles in TILINGS {
            let t = tiling(Phase::Aggregation, order, tiles);
            for opts in options_with(cfg, reference_walk) {
                let classes = if opts.scores_resident {
                    OperandClasses::aggregation_gat()
                } else {
                    OperandClasses::aggregation_ac()
                };
                h.stats(&simulate_spmm(&swl, &t, cfg, &classes, &opts));
            }
        }
    }
    h.0
}

fn sddmm_hash(wl: &Workload, cfg: &AccelConfig, reference_walk: bool) -> u64 {
    let mut h = Fnv::new();
    for heads in [1usize, 3] {
        let dot = (wl.f / heads).max(1);
        let swl = SddmmWorkload { degrees: &wl.degrees, dot_width: dot, heads };
        for order in ["VFN", "VNF", "FVN"] {
            for tiles in TILINGS {
                let t = tiling(Phase::Aggregation, order, tiles);
                for opts in options_with(cfg, reference_walk) {
                    h.stats(&simulate_sddmm(&swl, &t, cfg, &OperandClasses::sddmm(), &opts));
                }
            }
        }
    }
    h.0
}

// Golden hashes recorded from the pre-refactor engines (PR 5 tree).
const GOLDEN: [(&str, &str, u64); 6] = [
    ("Mutag", "gemm", 0xa7b04528687bbdc8),
    ("Mutag", "spmm", 0xa3f67dc2096e51a9),
    ("Mutag", "sddmm", 0xe76d0e057b5b0fe3),
    ("Proteins", "gemm", 0xff32bddf56e42bc9),
    ("Proteins", "spmm", 0xe0ec2e6f41f59138),
    ("Proteins", "sddmm", 0x2d20a797ac61df8f),
];

fn golden(dataset: &str, engine: &str) -> u64 {
    GOLDEN
        .iter()
        .find(|&&(d, e, _)| d == dataset && e == engine)
        .map(|&(_, _, h)| h)
        .expect("golden entry")
}

fn check(dataset_name: &str, engine: &str, actual: u64) {
    assert_eq!(
        actual,
        golden(dataset_name, engine),
        "{dataset_name}/{engine}: engine output diverged from the pre-refactor golden hash \
         (actual {actual:#018x})"
    );
}

#[test]
fn mutag_engines_match_prerefactor_goldens() {
    let cfg = AccelConfig::paper_default();
    let wl = dataset(DatasetSpec::mutag());
    check("Mutag", "gemm", gemm_hash(&wl, &cfg));
    check("Mutag", "spmm", spmm_hash(&wl, &cfg, false));
    check("Mutag", "sddmm", sddmm_hash(&wl, &cfg, false));
}

/// Summary-path satellite: the per-edge reference walk must reproduce the very
/// same golden hashes as the summary-driven default — one assertion covering
/// the whole loop-order × tiling × option matrix per engine.
#[test]
fn reference_walk_reproduces_the_same_goldens() {
    let cfg = AccelConfig::paper_default();
    for spec in [DatasetSpec::mutag(), DatasetSpec::proteins()] {
        let name = spec.name;
        let wl = dataset(spec);
        check(name, "spmm", spmm_hash(&wl, &cfg, true));
        check(name, "sddmm", sddmm_hash(&wl, &cfg, true));
    }
}

/// Capacity satellite: an *unbounded* budget is bit-identical to the paper
/// model (all fields, including the new peaks), a budget equal to the reported
/// peaks never fires, and finite budgets only ever add traffic and cycles.
#[test]
fn capacity_budgets_are_identity_at_unbounded_and_monotone_when_finite() {
    let cfg = AccelConfig::paper_default();
    let wl = dataset(DatasetSpec::mutag());
    let swl = SpmmWorkload { degrees: &wl.degrees, feature_width: wl.f };
    let dims = GemmDims { v: wl.v, f: wl.f, g: wl.g };
    for tiles in TILINGS {
        let ts = tiling(Phase::Aggregation, "VFN", tiles);
        let tg = tiling(Phase::Combination, "VGF", tiles);
        for resident in [false, true] {
            let mut base = EngineOptions::plain(cfg.full_bandwidth());
            base.input_resident = resident;
            let spmm = |opts: &EngineOptions| {
                simulate_spmm(&swl, &ts, &cfg, &OperandClasses::aggregation_ac(), opts)
            };
            let gemm = |opts: &EngineOptions| {
                simulate_gemm(dims, &tg, &cfg, &OperandClasses::combination_ac(), opts)
            };
            for (run, peaks_of) in [
                (&spmm as &dyn Fn(&EngineOptions) -> PhaseStats, "spmm"),
                (&gemm as &dyn Fn(&EngineOptions) -> PhaseStats, "gemm"),
            ] {
                let free = run(&base);
                assert!(free.rf_peak_bytes > 0, "{peaks_of}: peaks must always be reported");
                assert!(free.gb_peak_bytes > 0, "{peaks_of}");
                // Budget exactly at the peak: nothing overflows.
                let mut at_peak = base;
                at_peak.capacity = CapacityBudget {
                    rf_bytes_per_pe: free.rf_peak_bytes as usize,
                    gb_bytes: free.gb_peak_bytes as usize,
                };
                let fit = run(&at_peak);
                assert_eq!(fit.cycles, free.cycles, "{peaks_of} {tiles:?} resident={resident}");
                assert_eq!(fit.counters, free.counters);
                // Halving both budgets can only add cost.
                let mut tight = base;
                tight.capacity = CapacityBudget {
                    rf_bytes_per_pe: (free.rf_peak_bytes as usize / 2).max(1),
                    gb_bytes: (free.gb_peak_bytes as usize / 2).max(1),
                };
                let spilled = run(&tight);
                assert!(spilled.cycles > free.cycles, "{peaks_of} {tiles:?} resident={resident}");
                assert!(spilled.counters.total_gb_reads() > free.counters.total_gb_reads());
                assert!(spilled.psum_spilled);
                assert_eq!(spilled.macs, free.macs, "spills never change the compute");
            }
        }
    }
}

#[test]
fn proteins_engines_match_prerefactor_goldens() {
    let cfg = AccelConfig::paper_default();
    let wl = dataset(DatasetSpec::proteins());
    check("Proteins", "gemm", gemm_hash(&wl, &cfg));
    check("Proteins", "spmm", spmm_hash(&wl, &cfg, false));
    check("Proteins", "sddmm", sddmm_hash(&wl, &cfg, false));
}
