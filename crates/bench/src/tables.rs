//! Generators for Tables I–V of the paper.

use serde::Serialize;

use omega_accel::AccelConfig;
use omega_core::model_check::{buffering_formula, runtime_formula};
use omega_dataflow::analysis::{analyse, ReductionStyle};
use omega_dataflow::enumerate::{count_for, design_space_size, sp_optimized_pattern_count};
use omega_dataflow::presets::Preset;
use omega_dataflow::{Dim, InterPhase, IntraTiling, LoopOrder, Phase};
use omega_graph::{Category, DatasetSpec, GraphStats};

use crate::common::{concretize, default_suite, eval_preset, SEED};

/// Table I: hardware implications of the three example 2D GEMM dataflows.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Dataflow string (`VsGsFt`, ...).
    pub dataflow: String,
    /// Stationary operand ("Output" when the output accumulates in place).
    pub stationary: String,
    /// Streaming operands.
    pub streaming: Vec<String>,
    /// `(operand, spatial dim)` multicast pairs.
    pub multicast: Vec<String>,
    /// `Spatial` or `Temporal` reduction.
    pub reduction: String,
}

/// Regenerates Table I from the analysis module.
pub fn table1() -> Vec<Table1Row> {
    // The paper's three example dataflows, as concrete tilings with every
    // spatial dim unrolled by 2 (the analysis only cares about s/t).
    let rows: [(&str, [Dim; 3], [usize; 3]); 3] = [
        ("VsGsFt", [Dim::V, Dim::G, Dim::F], [2, 2, 1]),
        ("GsFsVt", [Dim::G, Dim::F, Dim::V], [2, 2, 1]),
        ("VsFsGt", [Dim::V, Dim::F, Dim::G], [2, 2, 1]),
    ];
    rows.iter()
        .map(|&(name, order, tiles)| {
            let t = IntraTiling::new(
                Phase::Combination,
                LoopOrder::new(Phase::Combination, order).expect("valid order"),
                tiles,
            );
            let a = analyse(&t);
            Table1Row {
                dataflow: name.to_string(),
                stationary: if a.output_stationary {
                    "Output (VG)".to_string()
                } else {
                    a.stationary.map(|o| o.to_string()).unwrap_or_default()
                },
                streaming: a.streaming.iter().map(|o| o.to_string()).collect(),
                multicast: a.multicast.iter().map(|(o, d)| format!("{o} across {d}")).collect(),
                reduction: match a.reduction {
                    ReductionStyle::Spatial => "Spatial".to_string(),
                    ReductionStyle::Temporal => "Temporal".to_string(),
                },
            }
        })
        .collect()
}

/// Table II: the design-space characterisation, summarised as counts.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Summary {
    /// Sequential choices (row 1).
    pub seq_choices: usize,
    /// SP-Generic choices (row 3 = rows 4-9).
    pub sp_choices: usize,
    /// PP choices (rows 4-9).
    pub pp_choices: usize,
    /// The paper's total: 6,656.
    pub total: usize,
    /// SP-Optimized instances (row 2).
    pub sp_optimized: usize,
}

/// Regenerates the Table II counts.
pub fn table2() -> Table2Summary {
    Table2Summary {
        seq_choices: count_for(InterPhase::Sequential),
        sp_choices: count_for(InterPhase::SequentialPipeline),
        pp_choices: count_for(InterPhase::ParallelPipeline),
        total: design_space_size(),
        sp_optimized: sp_optimized_pattern_count(),
    }
}

/// Table III: runtime/buffering closed forms checked against the simulator for
/// every preset on every dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// Dataset name.
    pub dataset: String,
    /// Dataflow preset name.
    pub dataflow: String,
    /// Buffering the closed form predicts (elements).
    pub buffering_formula: u64,
    /// Buffering the simulator reports.
    pub buffering_simulated: u64,
    /// Runtime the closed form predicts (cycles).
    pub runtime_formula: u64,
    /// Runtime the simulator reports.
    pub runtime_simulated: u64,
    /// Whether both agree exactly.
    pub consistent: bool,
}

/// Regenerates the Table III consistency check.
pub fn table3() -> Vec<Table3Row> {
    let cfg = AccelConfig::paper_default();
    let mut rows = Vec::new();
    for (_, wl) in default_suite() {
        for preset in Preset::all() {
            let p = eval_preset(&preset, &wl, &cfg);
            let bf = buffering_formula(&p.report, &wl);
            let rf = runtime_formula(&p.report);
            rows.push(Table3Row {
                dataset: p.dataset,
                dataflow: p.dataflow,
                buffering_formula: bf,
                buffering_simulated: p.report.intermediate_buffer_elems,
                runtime_formula: rf,
                runtime_simulated: p.report.total_cycles,
                consistent: bf == p.report.intermediate_buffer_elems && rf == p.report.total_cycles,
            });
        }
    }
    rows
}

/// Table IV: dataset statistics — the published spec plus the generated
/// synthetic batch's actual statistics.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Row {
    /// Dataset name.
    pub name: String,
    /// Graphs in the full collection (spec).
    pub population: usize,
    /// Published average nodes per graph.
    pub spec_avg_nodes: f64,
    /// Published average edges per graph.
    pub spec_avg_edges: f64,
    /// Feature width.
    pub features: usize,
    /// Paper-assigned category.
    pub category: Category,
    /// Evaluated batch size.
    pub batch_size: usize,
    /// Generated batched-graph statistics.
    pub generated: GraphStats,
}

/// Regenerates Table IV.
pub fn table4() -> Vec<Table4Row> {
    DatasetSpec::all()
        .into_iter()
        .map(|spec| {
            let d = spec.generate(SEED);
            Table4Row {
                name: spec.name.to_string(),
                population: spec.population,
                spec_avg_nodes: spec.avg_nodes,
                spec_avg_edges: spec.avg_edges,
                features: spec.features,
                category: spec.category,
                batch_size: spec.batch_size,
                generated: d.stats(),
            }
        })
        .collect()
}

/// Table V: the nine dataflow configurations with their concrete tile tuples
/// on Citeseer (the paper prints tiles per figure; we show one representative).
#[derive(Debug, Clone, Serialize)]
pub struct Table5Row {
    /// Preset name.
    pub name: String,
    /// Pattern in the paper's template syntax.
    pub configuration: String,
    /// Table V's distinguishing-property column.
    pub distinguishing_property: String,
    /// Concrete tiles on Citeseer at 512 PEs.
    pub citeseer_tiles: (usize, usize, usize, usize, usize, usize),
}

/// Regenerates Table V.
pub fn table5() -> Vec<Table5Row> {
    let cfg = AccelConfig::paper_default();
    let (_, wl) = default_suite()
        .into_iter()
        .find(|(d, _)| d.name() == "Citeseer")
        .expect("Citeseer in suite");
    Preset::all()
        .into_iter()
        .map(|p| {
            let df = concretize(&p, &wl, &cfg, 0.5);
            Table5Row {
                name: p.name.to_string(),
                configuration: p.pattern.to_string(),
                distinguishing_property: p.distinguishing_property.to_string(),
                citeseer_tiles: df.tile_tuple(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_rows() {
        let rows = table1();
        assert_eq!(rows.len(), 3);
        // Row 1: VsGsFt — output stationary, temporal reduction.
        assert_eq!(rows[0].stationary, "Output (VG)");
        assert_eq!(rows[0].reduction, "Temporal");
        // Row 2: GsFsVt — weight stationary, spatial reduction.
        assert!(rows[1].stationary.contains("Weights"));
        assert_eq!(rows[1].reduction, "Spatial");
        // Row 3: VsFsGt — intermediate stationary, spatial reduction.
        assert!(rows[2].stationary.contains("Intermediate"));
        assert_eq!(rows[2].reduction, "Spatial");
    }

    #[test]
    fn table2_reproduces_6656() {
        let t = table2();
        assert_eq!(t.seq_choices, 4608);
        assert_eq!(t.sp_choices, 1024);
        assert_eq!(t.pp_choices, 1024);
        assert_eq!(t.total, 6656);
        assert_eq!(t.sp_optimized, 16);
    }

    #[test]
    fn table5_lists_nine_presets() {
        let rows = table5();
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[0].name, "Seq1");
        assert!(rows[4].configuration.starts_with("SP_AC"));
        // SPhighV really maps the whole array to V.
        assert_eq!(rows[4].citeseer_tiles.0, 512);
    }

    #[test]
    fn table4_specs_match_registry() {
        let rows = table4();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[5].name, "Citeseer");
        assert_eq!(rows[5].generated.vertices, 3327);
        assert_eq!(rows[4].batch_size, 32);
    }
}
