//! Generators for Figures 11–16 of the paper's evaluation.

use serde::Serialize;

use omega_accel::{AccelConfig, OperandClass, NUM_OPERAND_CLASSES};
use omega_dataflow::presets::Preset;

use crate::common::{default_suite, eval_preset, eval_preset_with_split};

/// Fig. 11: runtimes of the nine Table V dataflows, normalised to Seq1, per
/// dataset (GCN, 512 PEs, ~100% static utilisation).
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Row {
    /// Dataset name.
    pub dataset: String,
    /// Dataflow preset name.
    pub dataflow: String,
    /// Tile tuple `(T_V_AGG, T_N, T_F_AGG, T_V_CMB, T_G, T_F_CMB)`.
    pub tiles: (usize, usize, usize, usize, usize, usize),
    /// Absolute cycles.
    pub cycles: u64,
    /// Cycles normalised to Seq1 on the same dataset.
    pub normalized: f64,
}

/// Regenerates Fig. 11.
pub fn fig11() -> Vec<Fig11Row> {
    let cfg = AccelConfig::paper_default();
    let mut rows = Vec::new();
    for (_, wl) in default_suite() {
        let presets = Preset::all();
        let points: Vec<_> = presets.iter().map(|p| eval_preset(p, &wl, &cfg)).collect();
        let base = points[0].report.total_cycles.max(1) as f64; // Seq1 first in Table V order
        for p in points {
            rows.push(Fig11Row {
                dataset: p.dataset,
                dataflow: p.dataflow,
                tiles: p.tiles,
                cycles: p.report.total_cycles,
                normalized: p.report.total_cycles as f64 / base,
            });
        }
    }
    rows
}

/// Fig. 12: on-chip buffer access energy per dataflow per dataset, split into
/// the global buffer, the PP intermediate partition, and the PE register files.
#[derive(Debug, Clone, Serialize)]
pub struct Fig12Row {
    /// Dataset name.
    pub dataset: String,
    /// Dataflow preset name.
    pub dataflow: String,
    /// Global-buffer energy (µJ), excluding intermediate traffic.
    pub gb_uj: f64,
    /// Intermediate buffer energy (µJ).
    pub intermediate_uj: f64,
    /// Register-file energy (µJ).
    pub rf_uj: f64,
    /// Total (µJ).
    pub total_uj: f64,
}

/// Regenerates Fig. 12.
pub fn fig12() -> Vec<Fig12Row> {
    let cfg = AccelConfig::paper_default();
    let mut rows = Vec::new();
    for (_, wl) in default_suite() {
        for preset in Preset::all() {
            let p = eval_preset(&preset, &wl, &cfg);
            let e = &p.report.energy;
            rows.push(Fig12Row {
                dataset: p.dataset,
                dataflow: p.dataflow,
                gb_uj: e.gb_pj / 1e6,
                intermediate_uj: e.intermediate_pj / 1e6,
                rf_uj: e.rf_pj / 1e6,
                total_uj: e.total_pj() / 1e6,
            });
        }
    }
    rows
}

/// Fig. 13: global-buffer access breakdown by operand class (Adj / Inp / Int /
/// Wt / Op / Psum, plus the attention-score bucket) for Mutag and Citeseer.
#[derive(Debug, Clone, Serialize)]
pub struct Fig13Row {
    /// Dataset name (Mutag or Citeseer).
    pub dataset: String,
    /// Dataflow preset name.
    pub dataflow: String,
    /// Accesses per class, in [`OperandClass::ALL`] order.
    pub accesses: [u64; NUM_OPERAND_CLASSES],
    /// Fraction of total per class.
    pub fractions: [f64; NUM_OPERAND_CLASSES],
}

/// Regenerates Fig. 13.
pub fn fig13() -> Vec<Fig13Row> {
    let cfg = AccelConfig::paper_default();
    let mut rows = Vec::new();
    for (_, wl) in default_suite() {
        if wl.name != "Mutag" && wl.name != "Citeseer" {
            continue;
        }
        for preset in Preset::all() {
            let p = eval_preset(&preset, &wl, &cfg);
            let mut accesses = [0u64; NUM_OPERAND_CLASSES];
            for c in OperandClass::ALL {
                accesses[c.idx()] = p.report.counters.gb_of(c);
            }
            let total: u64 = accesses.iter().sum();
            let fractions = accesses.map(|a| a as f64 / total.max(1) as f64);
            rows.push(Fig13Row { dataset: p.dataset, dataflow: p.dataflow, accesses, fractions });
        }
    }
    rows
}

/// Fig. 14: PP load balancing — PE allocations 25-75 / 50-50 / 75-25 at low
/// (PP1) and high (PP3) pipelining granularity, for Collab, Mutag, Citeseer.
/// Runtimes are normalised to the 50-50 low-granularity point per dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig14Row {
    /// Dataset name.
    pub dataset: String,
    /// Granularity label (`low` = PP1, `high` = PP3).
    pub granularity: String,
    /// PE allocation label, e.g. `"25-75"` (Aggregation–Combination).
    pub allocation: String,
    /// Absolute cycles.
    pub cycles: u64,
    /// Normalised to 50-50 low granularity.
    pub normalized: f64,
}

/// Regenerates Fig. 14.
pub fn fig14() -> Vec<Fig14Row> {
    let cfg = AccelConfig::paper_default();
    let mut rows = Vec::new();
    let splits = [(0.25, "25-75"), (0.5, "50-50"), (0.75, "75-25")];
    for (_, wl) in default_suite() {
        if !matches!(wl.name.as_str(), "Collab" | "Mutag" | "Citeseer") {
            continue;
        }
        let low = Preset::by_name("PP1").expect("PP1 exists");
        let high = Preset::by_name("PP3").expect("PP3 exists");
        let base = eval_preset_with_split(&low, &wl, &cfg, 0.5).report.total_cycles.max(1) as f64;
        for (preset, label) in [(&low, "low"), (&high, "high")] {
            for (frac, alloc) in splits {
                let p = eval_preset_with_split(preset, &wl, &cfg, frac);
                rows.push(Fig14Row {
                    dataset: p.dataset,
                    granularity: label.to_string(),
                    allocation: alloc.to_string(),
                    cycles: p.report.total_cycles,
                    normalized: p.report.total_cycles as f64 / base,
                });
            }
        }
    }
    rows
}

/// Fig. 15: scalability — runtimes at 512 and 2048 PEs (normalised to Seq1 at
/// the same PE count) for Mutag and Citeseer.
#[derive(Debug, Clone, Serialize)]
pub struct Fig15Row {
    /// Dataset name.
    pub dataset: String,
    /// Dataflow preset name.
    pub dataflow: String,
    /// PE count (512 or 2048).
    pub pes: usize,
    /// Absolute cycles.
    pub cycles: u64,
    /// Normalised to Seq1 at the same PE count.
    pub normalized: f64,
}

/// Regenerates Fig. 15.
pub fn fig15() -> Vec<Fig15Row> {
    let mut rows = Vec::new();
    for pes in [512usize, 2048] {
        let cfg = AccelConfig::paper_default().with_pes(pes);
        for (_, wl) in default_suite() {
            if wl.name != "Mutag" && wl.name != "Citeseer" {
                continue;
            }
            let points: Vec<_> = Preset::all().iter().map(|p| eval_preset(p, &wl, &cfg)).collect();
            let base = points[0].report.total_cycles.max(1) as f64;
            for p in points {
                rows.push(Fig15Row {
                    dataset: p.dataset,
                    dataflow: p.dataflow,
                    pes,
                    cycles: p.report.total_cycles,
                    normalized: p.report.total_cycles as f64 / base,
                });
            }
        }
    }
    rows
}

/// Fig. 16: bandwidth sensitivity — global-buffer elements/cycle swept over
/// {512, 256, 128, 64}; runtimes normalised to Seq1 at 512 elements/cycle.
#[derive(Debug, Clone, Serialize)]
pub struct Fig16Row {
    /// Dataset name.
    pub dataset: String,
    /// Dataflow preset name (Seq1, SP2, PP3 — one per inter-phase strategy).
    pub dataflow: String,
    /// GB elements per cycle.
    pub bandwidth: usize,
    /// Absolute cycles.
    pub cycles: u64,
    /// Normalised to Seq1 at bandwidth 512.
    pub normalized: f64,
}

/// Regenerates Fig. 16.
pub fn fig16() -> Vec<Fig16Row> {
    let mut rows = Vec::new();
    let dataflows = ["Seq1", "SP2", "PP3"];
    for (_, wl) in default_suite() {
        if !matches!(wl.name.as_str(), "Collab" | "Mutag" | "Citeseer") {
            continue;
        }
        let base_cfg = AccelConfig::paper_default().with_bandwidth(512);
        let base = eval_preset(&Preset::by_name("Seq1").expect("Seq1"), &wl, &base_cfg)
            .report
            .total_cycles
            .max(1) as f64;
        for bw in [512usize, 256, 128, 64] {
            let cfg = AccelConfig::paper_default().with_bandwidth(bw);
            for name in dataflows {
                let p = eval_preset(&Preset::by_name(name).expect("preset"), &wl, &cfg);
                rows.push(Fig16Row {
                    dataset: p.dataset,
                    dataflow: p.dataflow,
                    bandwidth: bw,
                    cycles: p.report.total_cycles,
                    normalized: p.report.total_cycles as f64 / base,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    // Figure generators are exercised end-to-end (shapes asserted) in the
    // root integration tests; here we only check structural invariants that
    // are cheap on the smaller datasets.

    #[test]
    fn fig14_rows_cover_the_grid() {
        let rows = fig14();
        // 3 datasets × 2 granularities × 3 allocations.
        assert_eq!(rows.len(), 18);
        // The 50-50 low-granularity point is the normalisation base.
        for d in ["Collab", "Mutag", "Citeseer"] {
            let base: Vec<_> = rows
                .iter()
                .filter(|r| r.dataset == d && r.granularity == "low" && r.allocation == "50-50")
                .collect();
            assert_eq!(base.len(), 1);
            assert!((base[0].normalized - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fig16_monotone_in_bandwidth() {
        let rows = fig16();
        for d in ["Collab", "Mutag", "Citeseer"] {
            for df in ["Seq1", "SP2", "PP3"] {
                let mut per: Vec<_> =
                    rows.iter().filter(|r| r.dataset == d && r.dataflow == df).collect();
                per.sort_by_key(|r| std::cmp::Reverse(r.bandwidth));
                assert_eq!(per.len(), 4);
                for w in per.windows(2) {
                    assert!(
                        w[1].cycles >= w[0].cycles,
                        "{d}/{df}: {} @{} vs {} @{}",
                        w[0].cycles,
                        w[0].bandwidth,
                        w[1].cycles,
                        w[1].bandwidth
                    );
                }
            }
        }
    }
}
