//! Section V-D architectural insights: the value of flexibility.
//!
//! The paper's closing argument is that a *reconfigurable* dataflow accelerator
//! beats fixed-dataflow ASICs for multiphase kernels because the best dataflow
//! (and the best PP allocation) changes with the workload. This module
//! quantifies that: for each dataset, compare
//!
//! * **rigid** — one dataflow fixed across all datasets (each Table V preset in
//!   turn, tiles still workload-fitted, as a HyGCN/AWB-GCN-style fixed engine
//!   would), versus
//! * **flexible** — the per-dataset best preset (what a programmable substrate
//!   with a mapper achieves).

use serde::Serialize;

use omega_accel::{AccelConfig, ModelKnobs};
use omega_core::dse::{DseCache, DseOptions};
use omega_core::evaluate;
use omega_core::mapper::Objective;
use omega_dataflow::presets::Preset;
use omega_dataflow::tiles::{choose_tiling, Cap, PhasePolicy};
use omega_dataflow::{Dim, GnnDataflow, GnnDataflowPattern, InterPhase};

use crate::common::{default_suite, eval_preset};

/// One dataset's rigid-vs-flexible comparison.
#[derive(Debug, Clone, Serialize)]
pub struct FlexibilityRow {
    /// Dataset name.
    pub dataset: String,
    /// The per-dataset best preset (the flexible accelerator's choice).
    pub best_dataflow: String,
    /// Cycles of the per-dataset best.
    pub best_cycles: u64,
    /// The single fixed dataflow that is best *on average* across the suite.
    pub best_rigid: String,
    /// Cycles of that rigid choice on this dataset.
    pub rigid_cycles: u64,
    /// Slowdown of the rigid accelerator on this dataset.
    pub rigid_slowdown: f64,
    /// Worst-case slowdown across all rigid choices on this dataset (what
    /// committing to the *wrong* ASIC dataflow costs).
    pub worst_rigid_slowdown: f64,
}

/// Regenerates the flexibility study.
pub fn flexibility() -> Vec<FlexibilityRow> {
    let cfg = AccelConfig::paper_default();
    let suite = default_suite();
    let presets = Preset::all();

    // cycles[d][p]
    let grid: Vec<Vec<u64>> = suite
        .iter()
        .map(|(_, wl)| presets.iter().map(|p| eval_preset(p, wl, &cfg).report.total_cycles).collect())
        .collect();

    // The rigid accelerator commits to one dataflow for every dataset; pick the
    // one with the best geometric-mean slowdown vs the per-dataset best.
    let best_per_dataset: Vec<u64> =
        grid.iter().map(|row| row.iter().copied().min().expect("presets")).collect();
    let rigid_idx = (0..presets.len())
        .min_by(|&a, &b| {
            let score = |p: usize| -> f64 {
                grid.iter()
                    .zip(&best_per_dataset)
                    .map(|(row, &best)| (row[p] as f64 / best as f64).ln())
                    .sum()
            };
            score(a).total_cmp(&score(b))
        })
        .expect("non-empty");

    suite
        .iter()
        .enumerate()
        .map(|(d, (_, wl))| {
            let row = &grid[d];
            let best = best_per_dataset[d];
            let best_idx = row.iter().position(|&c| c == best).expect("present");
            let worst = row.iter().copied().max().expect("presets");
            FlexibilityRow {
                dataset: wl.name.clone(),
                best_dataflow: presets[best_idx].name.to_string(),
                best_cycles: best,
                best_rigid: presets[rigid_idx].name.to_string(),
                rigid_cycles: row[rigid_idx],
                rigid_slowdown: row[rigid_idx] as f64 / best as f64,
                worst_rigid_slowdown: worst as f64 / best as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flexibility_study_shape() {
        let rows = flexibility();
        assert_eq!(rows.len(), 7);
        for r in &rows {
            // The flexible choice is by construction no slower than the rigid one.
            assert!(r.rigid_slowdown >= 1.0 - 1e-9, "{}", r.dataset);
            assert!(r.worst_rigid_slowdown >= r.rigid_slowdown - 1e-9);
        }
        // Flexibility matters: committing to the wrong ASIC dataflow costs ≥ 1.5x
        // somewhere in the suite (Section V-D's argument).
        assert!(rows.iter().any(|r| r.worst_rigid_slowdown >= 1.5));
        // And no single rigid dataflow is optimal everywhere.
        assert!(rows.iter().any(|r| r.rigid_slowdown > 1.01));
    }
}

/// One row of the cost-model ablation: a DESIGN.md §3 modelling decision flipped
/// off, measured on the configuration it matters most for.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Which knob was flipped.
    pub knob: String,
    /// Dataset × dataflow probe.
    pub probe: String,
    /// Cycles with the calibrated model.
    pub baseline_cycles: u64,
    /// Cycles with the knob flipped.
    pub ablated_cycles: u64,
    /// Energy (pJ) with the calibrated model.
    pub baseline_energy_pj: f64,
    /// Energy (pJ) with the knob flipped.
    pub ablated_energy_pj: f64,
}

/// Regenerates the cost-model ablation (DESIGN.md §3 decisions, one at a time).
pub fn ablation() -> Vec<AblationRow> {
    let suite = default_suite();
    let probe = |dataset: &str, preset_name: &str, knobs: ModelKnobs| {
        let (_, wl) = suite.iter().find(|(d, _)| d.name() == dataset).expect("dataset in suite");
        let cfg = AccelConfig { knobs, ..AccelConfig::paper_default() };
        let preset = Preset::by_name(preset_name).expect("preset");
        let p = eval_preset(&preset, wl, &cfg);
        (p.report.total_cycles, p.report.energy.total_pj())
    };
    let base = ModelKnobs::default();
    let cases: [(&str, &str, &str, ModelKnobs); 3] = [
        // Without group sharing, SP2's psums (revisits = G) no longer fit the RF
        // and it spills like SPhighV — the decision separates them.
        (
            "psum_group_sharing",
            "Citeseer/SP2",
            "SP2",
            ModelKnobs { psum_group_sharing: false, ..base },
        ),
        // Without fractional spill, SPhighV's near-miss (16 live vs 13 words)
        // spills everything, exaggerating the energy blow-up.
        (
            "fractional_spill",
            "Cora/SPhighV",
            "SPhighV",
            ModelKnobs { fractional_spill: false, ..base },
        ),
        // Charging NoC fill per pass instead of per phase punishes short-pass
        // dataflows (spatial aggregation, PP's small tiles).
        ("per_pass_fill", "Collab/Seq2", "Seq2", ModelKnobs { per_pass_fill: true, ..base }),
    ];
    let mut rows: Vec<AblationRow> = cases
        .into_iter()
        .map(|(knob, probe_name, preset, knobs)| {
            let dataset = probe_name.split('/').next().expect("dataset/preset");
            let (bc, be) = probe(dataset, preset, base);
            let (ac, ae) = probe(dataset, preset, knobs);
            AblationRow {
                knob: knob.to_string(),
                probe: probe_name.to_string(),
                baseline_cycles: bc,
                ablated_cycles: ac,
                baseline_energy_pj: be,
                ablated_energy_pj: ae,
            }
        })
        .collect();
    // Fig. 6's DRAM cliff: shrink the GB so Citeseer's 49 MB Seq intermediate no
    // longer fits on chip (Section V-A2 sizes the default to fit).
    {
        let (_, wl) = suite.iter().find(|(d, _)| d.name() == "Citeseer").expect("Citeseer");
        let preset = Preset::by_name("Seq1").expect("Seq1");
        let fits = eval_preset(&preset, wl, &AccelConfig::paper_default());
        let small = AccelConfig { gb_bytes: 8 << 20, ..AccelConfig::paper_default() };
        let spills = eval_preset(&preset, wl, &small);
        rows.push(AblationRow {
            knob: "gb_capacity (Fig. 6 DRAM cliff)".into(),
            probe: "Citeseer/Seq1 @ 8MB GB".into(),
            baseline_cycles: fits.report.total_cycles,
            ablated_cycles: spills.report.total_cycles,
            baseline_energy_pj: fits.report.energy.total_pj(),
            ablated_energy_pj: spills.report.energy.total_pj(),
        });
    }
    rows
}

#[cfg(test)]
mod ablation_tests {
    use super::*;

    #[test]
    fn each_knob_moves_its_probe() {
        let rows = ablation();
        assert_eq!(rows.len(), 4);
        let by_knob = |k: &str| rows.iter().find(|r| r.knob == k).expect("knob present");

        // No group sharing → SP2 spills → more energy and more cycles.
        let r = by_knob("psum_group_sharing");
        assert!(r.ablated_energy_pj > r.baseline_energy_pj * 1.05, "{r:?}");

        // Full spill → strictly more psum energy for the near-miss SPhighV.
        let r = by_knob("fractional_spill");
        assert!(r.ablated_energy_pj > r.baseline_energy_pj * 1.5, "{r:?}");

        // Per-pass fill → strictly more cycles for the spatial-N dataflow.
        let r = by_knob("per_pass_fill");
        assert!(r.ablated_cycles > r.baseline_cycles, "{r:?}");
        // Energy is untouched by a pure timing knob.
        assert!((r.ablated_energy_pj - r.baseline_energy_pj).abs() < 1e-6);

        // The Fig. 6 DRAM cliff: an 8 MB GB makes Seq's energy explode on
        // Citeseer (the intermediate alone is ~49 MB).
        let r = by_knob("gb_capacity (Fig. 6 DRAM cliff)");
        assert!(r.ablated_energy_pj > 5.0 * r.baseline_energy_pj, "{r:?}");
    }
}

/// One dataset's comparison of the two published accelerator dataflows the
/// paper names (Section III-C / Table II): HyGCN's `PP_AC(VxFsNt, VsGsFt)` and
/// AWB-GCN's `PP_CA(FsNtVs, GtFtVs)`, run on the flexible substrate, against
/// the best Table V preset.
#[derive(Debug, Clone, Serialize)]
pub struct AcceleratorRow {
    /// Dataset name.
    pub dataset: String,
    /// HyGCN dataflow cycles.
    pub hygcn_cycles: u64,
    /// AWB-GCN dataflow cycles.
    pub awb_gcn_cycles: u64,
    /// Best Table V preset cycles.
    pub best_preset_cycles: u64,
    /// The best preset's name.
    pub best_preset: String,
    /// HyGCN normalised to the best preset.
    pub hygcn_vs_best: f64,
    /// AWB-GCN normalised to the best preset.
    pub awb_gcn_vs_best: f64,
}

/// Concretises a published accelerator's dataflow pattern for a workload.
fn accelerator_dataflow(
    pattern: &GnnDataflowPattern,
    wl: &omega_core::GnnWorkload,
    cfg: &AccelConfig,
) -> GnnDataflow {
    let ctx = wl.tile_context(pattern.phase_order);
    let (a, c) = if pattern.inter == InterPhase::ParallelPipeline {
        (cfg.num_pes / 2, cfg.num_pes / 2)
    } else {
        (cfg.num_pes, cfg.num_pes)
    };
    // Balanced growth over whatever the pattern allows to be spatial.
    let policy = |p: &omega_dataflow::IntraPattern| {
        let dims: Vec<Dim> = p
            .order()
            .dims()
            .iter()
            .enumerate()
            .filter(|&(i, _)| p.maps()[i] != omega_dataflow::MappingSpec::Temporal)
            .map(|(_, &d)| d)
            .collect();
        PhasePolicy::round_robin(&dims).with_cap(Dim::N, Cap::MeanDegreePow2)
    };
    let agg = choose_tiling(&pattern.agg, &ctx, a, &policy(&pattern.agg));
    let cmb = choose_tiling(&pattern.cmb, &ctx, c, &policy(&pattern.cmb));
    GnnDataflow { inter: pattern.inter, phase_order: pattern.phase_order, agg, cmb }
}

/// Regenerates the published-accelerator case study.
pub fn accelerators() -> Vec<AcceleratorRow> {
    let cfg = AccelConfig::paper_default();
    let hygcn: GnnDataflowPattern =
        "PP_AC(VxFsNt, VsGsFt)".parse().expect("HyGCN pattern parses");
    let awb: GnnDataflowPattern = "PP_CA(FsNtVs, GtFtVs)".parse().expect("AWB-GCN pattern parses");
    default_suite()
        .into_iter()
        .map(|(_, wl)| {
            let hygcn_df = accelerator_dataflow(&hygcn, &wl, &cfg);
            let awb_df = accelerator_dataflow(&awb, &wl, &cfg);
            let hygcn_cycles =
                evaluate(&wl, &hygcn_df, &cfg).expect("HyGCN dataflow is legal").total_cycles;
            let awb_gcn_cycles =
                evaluate(&wl, &awb_df, &cfg).expect("AWB-GCN dataflow is legal").total_cycles;
            let (best_preset, best_preset_cycles) = Preset::all()
                .iter()
                .map(|p| (p.name.to_string(), eval_preset(p, &wl, &cfg).report.total_cycles))
                .min_by_key(|&(_, c)| c)
                .expect("presets evaluated");
            AcceleratorRow {
                dataset: wl.name.clone(),
                hygcn_cycles,
                awb_gcn_cycles,
                best_preset_cycles,
                best_preset,
                hygcn_vs_best: hygcn_cycles as f64 / best_preset_cycles as f64,
                awb_gcn_vs_best: awb_gcn_cycles as f64 / best_preset_cycles as f64,
            }
        })
        .collect()
}

/// One dataset's best Table V preset measured against the exhaustive optimum
/// of the full 6,656-pattern space — how much the paper's hand-picked
/// configurations leave on the table (the question Table V cannot answer by
/// itself, and exactly what a mapper-equipped flexible accelerator recovers).
#[derive(Debug, Clone, Serialize)]
pub struct PresetGapRow {
    /// Dataset name.
    pub dataset: String,
    /// Best Table V preset by runtime.
    pub best_preset: String,
    /// Its cycles.
    pub best_preset_cycles: u64,
    /// The exhaustive optimum's dataflow.
    pub exhaustive_best: String,
    /// Its cycles.
    pub exhaustive_cycles: u64,
    /// Best preset over exhaustive optimum (≥ 1).
    pub preset_gap: f64,
    /// Cost-model evaluations the search spent (cache-shared across studies).
    pub evaluated: usize,
    /// Candidates rejected by validation.
    pub skipped: usize,
    /// Candidates discarded by the admissible lower-bound prune without
    /// simulation (`evaluated + skipped + pruned` covers space + seeds).
    pub pruned: usize,
}

/// The preset-gap study over a subset of the Table IV suite (`datasets` by
/// name; unknown names are ignored). Exhaustive outcomes come from the shared
/// [`DseCache`], so re-running the study (or mixing it with the sweeps) never
/// re-searches a workload.
pub fn preset_gap_for(datasets: &[&str]) -> Vec<PresetGapRow> {
    let cfg = AccelConfig::paper_default();
    default_suite()
        .into_iter()
        .filter(|(d, _)| datasets.contains(&d.name()))
        .map(|(_, wl)| {
            let (best_preset, best_preset_cycles) = Preset::all()
                .iter()
                .map(|p| (p.name.to_string(), eval_preset(p, &wl, &cfg).report.total_cycles))
                .min_by_key(|&(_, c)| c)
                .expect("presets evaluated");
            let outcome = DseCache::global().explore(
                &wl,
                &cfg,
                &DseOptions { top_k: 1, ..DseOptions::new(Objective::Runtime) },
            );
            let optimum = outcome.best().expect("the enumerated space is never empty");
            PresetGapRow {
                dataset: wl.name.clone(),
                best_preset,
                best_preset_cycles,
                exhaustive_best: optimum.dataflow.to_string(),
                exhaustive_cycles: optimum.report.total_cycles,
                preset_gap: best_preset_cycles as f64 / optimum.report.total_cycles as f64,
                evaluated: outcome.evaluated,
                skipped: outcome.skipped,
                pruned: outcome.pruned,
            }
        })
        .collect()
}

/// The preset-gap study over the full seven-dataset suite.
pub fn preset_gap() -> Vec<PresetGapRow> {
    let suite = default_suite();
    let names: Vec<&str> = suite.iter().map(|(d, _)| d.name()).collect();
    preset_gap_for(&names)
}

/// One (model × dataset) row of the model-level DSE study: the best uniform
/// Table V preset applied to every layer versus the joint per-layer-specialised
/// (+pipelined, +partitioned) mapping found by
/// [`omega_core::dse::model::explore_model`].
#[derive(Debug, Clone, Serialize)]
pub struct ModelGapRow {
    /// Model name (GCN-2, GraphSAGE-2, GIN-n).
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Layers in the model.
    pub layers: usize,
    /// Best uniform preset (one Table V entry for every layer).
    pub uniform_preset: String,
    /// Its end-to-end cycles.
    pub uniform_cycles: u64,
    /// End-to-end cycles of the joint winner.
    pub specialised_cycles: u64,
    /// Uniform score over winner score under the study's runtime objective —
    /// i.e. `uniform_cycles / specialised_cycles` (≥ 1): what per-layer
    /// specialisation and inter-phase freedom save end-to-end.
    pub model_gap: f64,
    /// `true` when the winner pipelines somewhere (intra-layer SP/PP or a
    /// pipelined inter-layer link).
    pub winner_pipelined: bool,
    /// Joint mappings enumerated.
    pub space: usize,
    /// The winning mapping, in the `⇒`/`∥⇒` chain notation.
    pub winner: String,
}

/// The model-level DSE study over explicit (model, dataset) cases. Layer-level
/// searches go through the shared [`DseCache`], so rows over the same layer
/// shapes (and reruns) never re-search the 6,656-pattern space.
pub fn model_gap_for(cases: &[(GnnModelCase, &str)]) -> Vec<ModelGapRow> {
    use omega_core::dse::model::{explore_model, ModelDseOptions};

    let cfg = AccelConfig::paper_default();
    let suite = default_suite();
    cases
        .iter()
        .filter_map(|(case, dataset)| {
            let (_, wl) = suite.iter().find(|(d, _)| d.name() == *dataset)?;
            let model = case.build();
            let opts = ModelDseOptions { threads: 4, ..Default::default() };
            let out = explore_model(&model, wl, &cfg, &opts, DseCache::global());
            let gap = out.model_gap()?;
            let best = out.best()?;
            let uniform = out.uniform.as_ref()?;
            Some(ModelGapRow {
                model: model.name.clone(),
                dataset: wl.name.clone(),
                layers: model.layer_widths.len(),
                uniform_preset: uniform.preset.clone(),
                uniform_cycles: uniform.total_cycles,
                specialised_cycles: best.report.total_cycles,
                model_gap: gap,
                winner_pipelined: best.mapping.is_pipelined(),
                space: out.space,
                winner: format!("{}", best.mapping),
            })
        })
        .collect()
}

/// The named model shapes the study sweeps.
#[derive(Debug, Clone, Copy)]
pub enum GnnModelCase {
    /// Kipf & Welling 2-layer GCN (hidden 16, 7 classes).
    Gcn2,
    /// 2-layer GraphSAGE (hidden 32, 7 classes) — AC-only.
    Sage2,
    /// 3-layer GIN of width 64 (adds an MLP GEMM per layer).
    Gin3,
    /// 2-layer GAT (8 heads over hidden 64, 7 classes) — adds an SDDMM
    /// scoring phase per layer, AC-only.
    Gat2,
}

impl GnnModelCase {
    fn build(self) -> omega_core::models::GnnModel {
        use omega_core::models::GnnModel;
        match self {
            GnnModelCase::Gcn2 => GnnModel::gcn_2layer(7),
            GnnModelCase::Sage2 => GnnModel::sage_2layer(32, 7),
            GnnModelCase::Gin3 => GnnModel::gin(3, 64),
            GnnModelCase::Gat2 => GnnModel::gat_2layer(8, 7),
        }
    }
}

/// The default model-gap study: citation-style node classification (Cora,
/// Citeseer) under GCN-2/GraphSAGE-2/GAT-2, and graph classification (Mutag,
/// Proteins) under GCN-2/GIN-3/GAT-2 — all three phase types covered.
pub fn model_gap() -> Vec<ModelGapRow> {
    model_gap_for(&[
        (GnnModelCase::Gcn2, "Cora"),
        (GnnModelCase::Gcn2, "Citeseer"),
        (GnnModelCase::Sage2, "Cora"),
        (GnnModelCase::Gcn2, "Mutag"),
        (GnnModelCase::Gin3, "Mutag"),
        (GnnModelCase::Gin3, "Proteins"),
        (GnnModelCase::Gat2, "Cora"),
        (GnnModelCase::Gat2, "Mutag"),
    ])
}

#[cfg(test)]
mod model_gap_tests {
    use super::*;

    #[test]
    fn model_gap_bounds_and_specialisation_win() {
        // Small-graph subset keeps the per-layer exhaustive searches quick; the
        // repro binary runs the full study.
        let rows = model_gap_for(&[
            (GnnModelCase::Gcn2, "Mutag"),
            (GnnModelCase::Gin3, "Mutag"),
            (GnnModelCase::Gat2, "Mutag"),
        ]);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            // The joint winner can never lose to a uniform preset (they are
            // seeded into the search).
            assert!(r.model_gap >= 1.0 - 1e-12, "{r:?}");
            assert!(r.specialised_cycles > 0);
            assert!(r.space > 0);
            assert!(!r.winner.is_empty());
        }
        // Somewhere the uniform preset leaves real runtime on the table.
        assert!(rows.iter().any(|r| r.model_gap > 1.005), "{rows:#?}");
        // GIN adds an MLP stage per layer and has 3 layers.
        assert_eq!(rows[1].layers, 3);
        // GAT's attention (SDDMM) phases make it strictly costlier than GCN-2
        // on the same graph even after joint optimisation.
        assert!(rows[2].specialised_cycles > rows[0].specialised_cycles, "{rows:#?}");
    }
}

/// One (dataset × capacity regime) row of the capacity study: which Table V
/// preset wins once finite on-chip storage makes overflowing working sets pay
/// costed spill passes — and whether that winner *shifts* versus the
/// unbounded model every other study uses.
#[derive(Debug, Clone, Serialize)]
pub struct CapacityRow {
    /// Dataset name.
    pub dataset: String,
    /// Capacity regime, e.g. `unbounded` or `rf 16 B/PE + gb 96 KiB`.
    pub regime: String,
    /// The preset with the fewest cycles under this regime.
    pub winner: String,
    /// Its cycles under this regime.
    pub winner_cycles: u64,
    /// The unbounded-model winner for this dataset.
    pub unbounded_winner: String,
    /// What the unbounded winner costs under this regime (its spill penalty).
    pub unbounded_winner_cycles: u64,
    /// `true` when the capacity constraint changed which preset wins.
    pub shifted: bool,
}

/// The capacity study over explicit datasets: Table V preset winners under
/// shrinking register-file / global-buffer budgets (the phase engines charge
/// costed spill passes once `enforce_capacity` is on and a working set
/// overflows). The unbounded regime reproduces the paper's infinite-buffer
/// winners exactly; the finite regimes show where they stop being the right
/// choice.
pub fn capacity_study_for(datasets: &[&str]) -> Vec<CapacityRow> {
    // (label, rf bytes per PE, gb bytes); `None` keeps `enforce_capacity` off
    // entirely (the paper's infinite-buffer model). The finite budgets use
    // `usize::MAX` on the axis they leave open so one constraint is isolated
    // at a time.
    let regimes: [(&str, Option<(usize, usize)>); 4] = [
        ("unbounded", None),
        ("rf 32 B/PE", Some((32, usize::MAX))),
        ("gb 2.5 KiB", Some((usize::MAX, 2560))),
        ("rf 16 B/PE + gb 2.5 KiB", Some((16, 2560))),
    ];
    let suite = default_suite();
    let mut rows = Vec::new();
    for (_, wl) in suite.iter().filter(|(d, _)| datasets.contains(&d.name())) {
        let winner_under = |budget: Option<(usize, usize)>| -> (String, u64, AccelConfig) {
            let mut cfg = AccelConfig::paper_default();
            if let Some((rf, gb)) = budget {
                cfg.knobs.enforce_capacity = true;
                cfg.rf_bytes_per_pe = rf;
                cfg.gb_bytes = gb;
            }
            let (name, cycles) = Preset::all()
                .iter()
                .map(|p| (p.name.to_string(), eval_preset(p, wl, &cfg).report.total_cycles))
                .min_by_key(|&(_, c)| c)
                .expect("presets evaluated");
            (name, cycles, cfg)
        };
        let (unbounded_winner, _, _) = winner_under(None);
        for (label, budget) in regimes {
            let (winner, winner_cycles, cfg) = winner_under(budget);
            let unbounded_preset = Preset::by_name(&unbounded_winner).expect("known preset");
            let unbounded_winner_cycles =
                eval_preset(&unbounded_preset, wl, &cfg).report.total_cycles;
            rows.push(CapacityRow {
                dataset: wl.name.clone(),
                regime: label.to_string(),
                shifted: winner != unbounded_winner,
                winner,
                winner_cycles,
                unbounded_winner: unbounded_winner.clone(),
                unbounded_winner_cycles,
            });
        }
    }
    rows
}

/// The capacity study over the full Table IV suite.
pub fn capacity_study() -> Vec<CapacityRow> {
    let suite = default_suite();
    let names: Vec<&str> = suite.iter().map(|(d, _)| d.name()).collect();
    capacity_study_for(&names)
}

#[cfg(test)]
mod capacity_tests {
    use super::*;

    #[test]
    fn capacity_constraints_shift_preset_winners() {
        let rows = capacity_study_for(&["Mutag", "Proteins", "Cora"]);
        assert_eq!(rows.len(), 12); // 3 datasets × 4 regimes
        for r in &rows {
            // The winner is a winner: never slower than the unbounded-model
            // choice re-evaluated under the same budget.
            assert!(r.winner_cycles <= r.unbounded_winner_cycles, "{r:?}");
            assert_eq!(r.shifted, r.winner != r.unbounded_winner);
            // The unbounded regime agrees with itself by construction.
            if r.regime == "unbounded" {
                assert!(!r.shifted, "{r:?}");
            }
        }
        // The study's headline: finite budgets change at least one dataset's
        // Table V winner — buffer capacity is a real axis of the design space.
        assert!(
            rows.iter().any(|r| r.shifted),
            "no preset winner shifted under any finite budget: {rows:#?}"
        );
        // And the spill passes are visible: somewhere the unbounded winner
        // pays real extra cycles under a finite budget.
        let unbounded = |d: &str| {
            rows.iter()
                .find(|r| r.dataset == d && r.regime == "unbounded")
                .map(|r| r.winner_cycles)
                .expect("row present")
        };
        assert!(
            rows.iter()
                .any(|r| r.regime != "unbounded"
                    && r.unbounded_winner_cycles > unbounded(&r.dataset)),
            "no spill penalty anywhere: {rows:#?}"
        );
    }
}

#[cfg(test)]
mod preset_gap_tests {
    use super::*;

    #[test]
    fn preset_gap_bounds_and_coverage() {
        // Small-graph subset keeps the exhaustive searches quick; the repro
        // binary runs the full suite.
        let rows = preset_gap_for(&["Mutag", "Proteins", "Imdb-bin"]);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            // The search covers the whole space plus the preset seeds (pruned
            // candidates are covered by their lower bound, not a simulation)…
            assert_eq!(r.evaluated + r.skipped + r.pruned, 6656 + 12, "{}", r.dataset);
            // …so the optimum can never lose to a Table V preset.
            assert!(r.preset_gap >= 1.0 - 1e-12, "{r:?}");
            assert!(r.exhaustive_cycles > 0 && r.exhaustive_cycles <= r.best_preset_cycles);
        }
        // Somewhere even in the small sets the presets leave runtime on the table.
        assert!(rows.iter().any(|r| r.preset_gap > 1.005), "{rows:#?}");
    }
}

#[cfg(test)]
mod accelerator_tests {
    use super::*;

    #[test]
    fn published_dataflows_run_on_the_whole_suite() {
        let rows = accelerators();
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(r.hygcn_cycles > 0 && r.awb_gcn_cycles > 0, "{}", r.dataset);
            // HyGCN shares the presets' AC order, so the workload-tuned preset
            // always at least matches it.
            assert!(r.hygcn_vs_best >= 1.0 - 1e-9, "{}", r.dataset);
        }
        // Both fixed dataflows pay a real penalty somewhere in the suite
        // (the Section V-D flexibility argument applied to real ASICs)...
        assert!(rows.iter().any(|r| r.hygcn_vs_best > 1.3));
        assert!(rows.iter().any(|r| r.awb_gcn_vs_best > 1.3));
        // ...while AWB-GCN's CA order legitimately *wins* on a dense wide-feature
        // workload: computing A·(X·W) shrinks aggregation work from E×F to E×G
        // (the Table V presets are all AC). No single dataflow dominates.
        assert!(
            rows.iter().any(|r| r.awb_gcn_vs_best < 1.0),
            "CA should win somewhere: {rows:?}"
        );
    }
}
