//! Shared workload construction and evaluation helpers for the harness.

use serde::Serialize;

use omega_accel::AccelConfig;
use omega_core::{evaluate, CostReport, GnnWorkload};
use omega_dataflow::presets::Preset;
use omega_dataflow::{GnnDataflow, InterPhase};
use omega_graph::{suite, Dataset};

/// Base seed used by every experiment (fixed for reproducibility).
pub const SEED: u64 = 0x0E5A_2022;

/// GCN hidden width used throughout the evaluation (see `DESIGN.md` §2).
pub const HIDDEN: usize = 16;

/// The seven Table IV datasets paired with their GCN-layer workloads.
pub fn default_suite() -> Vec<(Dataset, GnnWorkload)> {
    suite(SEED)
        .into_iter()
        .map(|d| {
            let wl = GnnWorkload::gcn_layer(&d, HIDDEN);
            (d, wl)
        })
        .collect()
}

/// One evaluated (dataset × dataflow) point.
#[derive(Debug, Clone, Serialize)]
pub struct EvalPoint {
    /// Dataset name.
    pub dataset: String,
    /// Preset name (`Seq1` .. `PP4`).
    pub dataflow: String,
    /// Concrete dataflow string.
    pub dataflow_desc: String,
    /// Tile sizes `(T_V_AGG, T_N, T_F_AGG, T_V_CMB, T_G, T_F_CMB)`.
    pub tiles: (usize, usize, usize, usize, usize, usize),
    /// The full cost report.
    pub report: CostReport,
}

/// Concretises a preset for a workload on `cfg`, with the given PP split
/// (`agg_fraction` of the PEs to Aggregation; ignored for Seq/SP).
pub fn concretize(
    preset: &Preset,
    workload: &GnnWorkload,
    cfg: &AccelConfig,
    agg_fraction: f64,
) -> GnnDataflow {
    let ctx = workload.tile_context(preset.pattern.phase_order);
    let (a, c) = if preset.pattern.inter == InterPhase::ParallelPipeline {
        let agg = ((cfg.num_pes as f64 * agg_fraction).round() as usize).clamp(1, cfg.num_pes - 1);
        (agg, cfg.num_pes - agg)
    } else {
        (cfg.num_pes, cfg.num_pes)
    };
    preset.concretize(&ctx, a, c)
}

/// Evaluates one preset (50-50 PP split) on one workload.
pub fn eval_preset(
    preset: &Preset,
    workload: &GnnWorkload,
    cfg: &AccelConfig,
) -> EvalPoint {
    eval_preset_with_split(preset, workload, cfg, 0.5)
}

/// Evaluates one preset with an explicit PP split.
pub fn eval_preset_with_split(
    preset: &Preset,
    workload: &GnnWorkload,
    cfg: &AccelConfig,
    agg_fraction: f64,
) -> EvalPoint {
    let df = concretize(preset, workload, cfg, agg_fraction);
    let report = evaluate(workload, &df, cfg).expect("preset dataflows are legal");
    EvalPoint {
        dataset: workload.name.clone(),
        dataflow: preset.name.to_string(),
        dataflow_desc: df.to_string(),
        tiles: df.tile_tuple(),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_seven_datasets() {
        let s = default_suite();
        assert_eq!(s.len(), 7);
        assert!(s.iter().all(|(d, w)| d.name() == w.name));
        assert!(s.iter().all(|(_, w)| w.g == HIDDEN));
    }

    #[test]
    fn concretize_splits_pp() {
        let (_, wl) = default_suite().swap_remove(0);
        let cfg = AccelConfig::paper_default();
        let pp = Preset::by_name("PP1").unwrap();
        let df = concretize(&pp, &wl, &cfg, 0.25);
        assert!(df.agg.pe_footprint() <= 128);
        assert!(df.cmb.pe_footprint() <= 384);
        let seq = Preset::by_name("Seq1").unwrap();
        let df = concretize(&seq, &wl, &cfg, 0.25);
        assert!(df.agg.pe_footprint() <= 512);
    }

    #[test]
    fn eval_point_carries_names() {
        let (_, wl) = default_suite().swap_remove(0);
        let cfg = AccelConfig::paper_default();
        let p = eval_preset(&Preset::by_name("Seq1").unwrap(), &wl, &cfg);
        assert_eq!(p.dataset, "Mutag");
        assert_eq!(p.dataflow, "Seq1");
        assert!(p.report.total_cycles > 0);
    }
}
