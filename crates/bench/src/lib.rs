//! Reproduction harness for every table and figure in the paper's evaluation.
//!
//! Each `figNN`/`tableN` function regenerates one artifact as plain data rows
//! (all `serde`-serialisable); [`render`] pretty-prints them and the `repro`
//! binary writes CSV/JSON under `results/`. Criterion benches in `benches/`
//! wrap the same functions. See `EXPERIMENTS.md` for paper-vs-measured notes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod figures;
pub mod insights;
pub mod render;
pub mod sweep;
pub mod tables;

pub use common::{default_suite, EvalPoint, SEED};
