//! `explore` — exhaustive parallel design-space exploration over the paper's
//! full 6,656-pattern dataflow space, for any dataset and objective — and,
//! with `--model`, the model-level joint search over per-layer dataflows,
//! inter-layer pipelining, and PE partitioning for whole GNN chains.
//!
//! ```text
//! explore --dataset Cora --objective edp --threads 8 --top 10 --refine
//! explore --dataset Citeseer --objective runtime --json results/cora-dse.json
//! explore --dataset Mutag --threads 2 --pes 2048 --hidden 64
//! explore --model gcn2 --dataset Cora --threads 8
//! explore --model gin --dataset Mutag --per-layer-k 4 --json -
//! explore --model gat --dataset Cora --threads 8
//! explore --model gcn2 --dataset Mutag --activation act
//! explore --dataset rmat-20 --threads 8 --stats
//! ```
//!
//! Prints a ranked table of the best dataflows (the *true* optimum of the
//! enumerated space, not a preset or a sample), the preset gap — how much the
//! best Table V preset leaves on the table versus that optimum — and search
//! statistics. In `--model` mode the ranked rows are whole-model mappings and
//! the gap is measured against the best *uniform* preset applied to every
//! layer. `--json PATH` additionally writes the full outcome as JSON (`-` for
//! stdout).

use std::process::ExitCode;

use omega_accel::engine::ElementwiseOp;
use omega_accel::AccelConfig;
use omega_core::dse::model::{explore_model, ModelDseOptions, ModelExploreOutcome};
use omega_core::dse::{explore, DseCache, DseOptions, ExploreOutcome};
use omega_core::mapper::{self, Objective};
use omega_core::models::GnnModel;
use omega_core::{evaluate, GnnWorkload};
use omega_graph::DatasetSpec;

struct Args {
    dataset: String,
    model: Option<String>,
    per_layer_k: usize,
    objective: Objective,
    objective_set: bool,
    threads: usize,
    top: usize,
    refine: bool,
    prune: bool,
    phase_cache: bool,
    reference_walk: bool,
    stats: bool,
    hidden: Option<usize>,
    activation: Option<ElementwiseOp>,
    pes: usize,
    bandwidth: Option<usize>,
    pareto: bool,
    rf_bytes: Option<usize>,
    gb_bytes: Option<usize>,
    max_buffer_bytes: Option<u64>,
    seed: u64,
    json: Option<String>,
    serve: Option<String>,
    remote: Option<String>,
    deadline_ms: Option<u64>,
    cache_file: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        dataset: "Citeseer".into(),
        model: None,
        per_layer_k: 4,
        objective: Objective::Runtime,
        objective_set: false,
        threads: 8,
        top: 10,
        refine: false,
        prune: true,
        phase_cache: true,
        reference_walk: false,
        stats: false,
        hidden: None,
        activation: None,
        pes: 512,
        bandwidth: None,
        pareto: false,
        rf_bytes: None,
        gb_bytes: None,
        max_buffer_bytes: None,
        seed: 0x0E5A_2022,
        json: None,
        serve: None,
        remote: None,
        deadline_ms: None,
        cache_file: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--dataset" => out.dataset = value(&mut i)?,
            "--model" => out.model = Some(value(&mut i)?),
            "--per-layer-k" => {
                out.per_layer_k =
                    value(&mut i)?.parse().map_err(|e| format!("--per-layer-k: {e}"))?
            }
            "--objective" => {
                out.objective = match value(&mut i)?.to_lowercase().as_str() {
                    "runtime" | "cycles" => Objective::Runtime,
                    "energy" => Objective::Energy,
                    "edp" => Objective::Edp,
                    other => return Err(format!("unknown objective '{other}' (runtime|energy|edp)")),
                };
                out.objective_set = true;
            }
            "--threads" => {
                out.threads = value(&mut i)?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--top" => out.top = value(&mut i)?.parse().map_err(|e| format!("--top: {e}"))?,
            "--refine" => out.refine = true,
            "--no-prune" => out.prune = false,
            "--no-phase-cache" => out.phase_cache = false,
            "--reference-walk" => out.reference_walk = true,
            "--stats" => out.stats = true,
            "--hidden" => {
                out.hidden = Some(value(&mut i)?.parse().map_err(|e| format!("--hidden: {e}"))?)
            }
            "--activation" => {
                out.activation = Some(match value(&mut i)?.to_lowercase().as_str() {
                    "act" | "relu" => ElementwiseOp::Activation,
                    "norm" | "layernorm" => ElementwiseOp::LayerNorm,
                    other => return Err(format!("unknown activation '{other}' (act|norm)")),
                })
            }
            "--pes" => out.pes = value(&mut i)?.parse().map_err(|e| format!("--pes: {e}"))?,
            "--bandwidth" => {
                out.bandwidth = Some(value(&mut i)?.parse().map_err(|e| format!("--bandwidth: {e}"))?)
            }
            "--pareto" => out.pareto = true,
            "--rf-bytes" => {
                out.rf_bytes =
                    Some(value(&mut i)?.parse().map_err(|e| format!("--rf-bytes: {e}"))?)
            }
            "--gb-bytes" => {
                out.gb_bytes =
                    Some(value(&mut i)?.parse().map_err(|e| format!("--gb-bytes: {e}"))?)
            }
            "--max-buffer-bytes" => {
                out.max_buffer_bytes = Some(
                    value(&mut i)?.parse().map_err(|e| format!("--max-buffer-bytes: {e}"))?,
                )
            }
            "--seed" => out.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--json" => out.json = Some(value(&mut i)?),
            "--serve" => out.serve = Some(value(&mut i)?),
            "--remote" => out.remote = Some(value(&mut i)?),
            "--deadline-ms" => {
                out.deadline_ms =
                    Some(value(&mut i)?.parse().map_err(|e| format!("--deadline-ms: {e}"))?)
            }
            "--cache-file" => out.cache_file = Some(value(&mut i)?),
            "--help" | "-h" => return Err("usage".into()),
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    if out.threads == 0 {
        return Err("--threads must be >= 1".into());
    }
    if out.top == 0 {
        return Err("--top must be >= 1".into());
    }
    if out.pes == 0 {
        return Err("--pes must be >= 1".into());
    }
    if out.per_layer_k == 0 {
        return Err("--per-layer-k must be >= 1".into());
    }
    if out.pareto && out.objective_set {
        return Err(
            "--objective has no effect with --pareto (the frontier covers runtime, energy, \
             and buffer footprint at once; pick a point from it instead)"
                .into(),
        );
    }
    if out.pareto && out.refine {
        return Err(
            "--refine has no effect with --pareto (refinement chases one scalar objective; \
             the frontier is multi-objective)"
                .into(),
        );
    }
    if out.max_buffer_bytes.is_some() && !out.pareto {
        return Err(
            "--max-buffer-bytes requires --pareto (budget queries are answered from the \
             frontier)"
                .into(),
        );
    }
    if out.rf_bytes == Some(0) || out.gb_bytes == Some(0) {
        return Err("--rf-bytes/--gb-bytes must be >= 1".into());
    }
    if out.cache_file.is_some() && out.serve.is_none() {
        return Err("--cache-file requires --serve".into());
    }
    if out.remote.is_some() && (out.model.is_some() || out.pareto || out.serve.is_some()) {
        return Err(
            "--remote forwards one layer-level search to a running mapperd; it cannot \
             combine with --model, --pareto, or --serve"
                .into(),
        );
    }
    if out.deadline_ms.is_some() && out.remote.is_none() {
        return Err("--deadline-ms requires --remote (deadlines are a serving concept)".into());
    }
    Ok(out)
}

/// `--serve ADDR`: forward into the `mapperd` daemon loop instead of running
/// one exploration — the same worker pool, shared decision cache, and
/// NDJSON protocol, sized by `--threads`/`--top`/`--cache-file`.
fn serve(addr: &str, args: &Args) -> ExitCode {
    omega_serve::signal::install();
    let opts = omega_serve::ServeOptions {
        addr: addr.to_string(),
        threads: args.threads,
        search_threads: args.threads,
        top_k: args.top,
        cache_file: args.cache_file.as_ref().map(std::path::PathBuf::from),
        ..Default::default()
    };
    let server = match omega_serve::MapperServer::bind(opts) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("explore --serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("explore: serving mapper decisions on {addr}"),
        Err(e) => {
            eprintln!("explore --serve: no local address: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(stats) => {
            println!(
                "explore: served {} requests — {} searches, {} hits, {} coalesced",
                stats.requests, stats.searches, stats.hits, stats.coalesced
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("explore --serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--remote ADDR`: forward the layer-level search to a running `mapperd`
/// instead of searching locally — the client side of the serving stack, with
/// the same retry/backoff machinery `loadgen` uses. Transient failures (shed
/// responses, injected panics, a daemon still starting) retry with
/// exponential backoff + jitter; permanent errors surface immediately.
fn remote(addr: &str, args: &Args, workload: &GnnWorkload, cfg: &AccelConfig) -> ExitCode {
    use omega_serve::client::{MapperClient, RetryPolicy};
    let mut request = omega_serve::MapRequest::for_workload(workload);
    request.objective = Some(
        match args.objective {
            Objective::Runtime => "runtime",
            Objective::Energy => "energy",
            Objective::Edp => "edp",
        }
        .to_string(),
    );
    request.top_k = Some(args.top);
    request.pes = Some(cfg.num_pes);
    request.bandwidth = Some(cfg.dist_bandwidth);
    request.deadline_ms = args.deadline_ms;
    let policy = RetryPolicy { attempts: 5, base_delay_ms: 50, max_delay_ms: 2000, seed: args.seed };
    let mut client = match MapperClient::connect(addr, policy) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("explore --remote: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let response = match client.request(&request) {
        Ok(response) => response,
        Err(e) => {
            eprintln!("explore --remote: request failed after retries: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !response.ok {
        eprintln!(
            "explore --remote: {} (quality {})",
            response.error.as_deref().unwrap_or("request refused"),
            response.decision_quality.as_deref().unwrap_or("?")
        );
        return ExitCode::FAILURE;
    }
    println!(
        "workload  {} (V={}, F={}, G={}, nnz={})",
        workload.name, workload.v, workload.f, workload.g, workload.nnz
    );
    println!(
        "remote    {addr} — disposition {}, quality {}, server latency {} µs, {} retries",
        response.cache.as_deref().unwrap_or("?"),
        response.decision_quality.as_deref().unwrap_or("?"),
        response.latency_us.unwrap_or(0),
        client.retries(),
    );
    println!();
    println!("{:>4}  {:<28} {:>14} {:>14} {:>14}", "rank", "dataflow", "cycles", "energy (uJ)", "score");
    for (rank, d) in response.ranked.iter().flatten().enumerate() {
        println!(
            "{:>4}  {:<28} {:>14} {:>14.3} {:>14.4e}",
            rank + 1,
            d.dataflow,
            d.cycles,
            d.energy_pj / 1e6,
            d.score,
        );
    }
    ExitCode::SUCCESS
}

/// The named multi-layer models the CLI can explore.
fn model_by_name(name: &str) -> Option<GnnModel> {
    match name.to_lowercase().as_str() {
        "gcn2" => Some(GnnModel::gcn_2layer(7)),
        "sage2" => Some(GnnModel::sage_2layer(32, 7)),
        "gin" => Some(GnnModel::gin(3, 64)),
        "gat" => Some(GnnModel::gat_2layer(8, 7)),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "usage" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: explore [--dataset NAME|rmat-N|chung-lu-N] [--model gcn2|sage2|gin|gat] \
                 [--objective runtime|energy|edp] [--threads N] [--top K] \
                 [--per-layer-k K] [--refine] [--no-prune] [--no-phase-cache] \
                 [--reference-walk] \
                 [--stats] [--hidden G] [--activation act|norm] [--pes N] \
                 [--bandwidth ELEMS] [--pareto] [--rf-bytes N] [--gb-bytes N] \
                 [--max-buffer-bytes N] [--seed S] [--json PATH|-] \
                 [--serve HOST:PORT [--cache-file PATH]] \
                 [--remote HOST:PORT [--deadline-ms MS]]"
            );
            return ExitCode::FAILURE;
        }
    };

    if let Some(addr) = args.serve.clone() {
        return serve(&addr, &args);
    }

    // The Table IV registry first; unknown names fall through to the scale
    // family (`rmat-N` / `chung-lu-N`), whose summary-driven sweeps are the
    // reason million-vertex workloads are now addressable from the CLI.
    let mut workload = match DatasetSpec::by_name(&args.dataset) {
        Some(spec) => {
            let dataset = spec.generate(args.seed);
            GnnWorkload::gcn_layer(&dataset, args.hidden.unwrap_or(16))
        }
        None => match omega_graph::scale_graph(&args.dataset, args.seed) {
            Some(graph) => GnnWorkload::from_graph(&graph, args.hidden.unwrap_or(16)),
            None => {
                eprintln!(
                    "unknown dataset '{}'; known: {}, rmat-N, chung-lu-N",
                    args.dataset,
                    DatasetSpec::all().iter().map(|s| s.name).collect::<Vec<_>>().join(", ")
                );
                return ExitCode::FAILURE;
            }
        },
    };
    // `--activation` appends a sequential elementwise suffix to every evaluated
    // design; in model mode the same op rides on every layer instead.
    workload.post_op = args.activation;
    let mut cfg = AccelConfig::paper_default().with_pes(args.pes);
    if let Some(bw) = args.bandwidth {
        cfg = cfg.with_bandwidth(bw);
    }
    // Finite budgets make capacity a *modelled* constraint: working sets that
    // overflow pay costed spill passes inside the phase engines.
    if let Some(rf) = args.rf_bytes {
        cfg.rf_bytes_per_pe = rf;
        cfg.knobs.enforce_capacity = true;
    }
    if let Some(gb) = args.gb_bytes {
        cfg.gb_bytes = gb;
        cfg.knobs.enforce_capacity = true;
    }
    // `--reference-walk` pins every sparse phase to the per-edge oracle: same
    // ranked result (bit-identical), O(nnz) cost — the differential baseline
    // for the summary-driven walk.
    cfg.knobs.reference_walk = args.reference_walk;

    if let Some(addr) = args.remote.clone() {
        return remote(&addr, &args, &workload, &cfg);
    }

    if let Some(model_name) = &args.model {
        let Some(mut model) = model_by_name(model_name) else {
            eprintln!("unknown model '{model_name}'; known: gcn2, sage2, gin, gat");
            return ExitCode::FAILURE;
        };
        if let Some(op) = args.activation {
            model = model.with_activation(op);
        }
        return run_model(&model, &workload, &cfg, &args);
    }

    let opts = DseOptions {
        objective: args.objective,
        threads: args.threads,
        top_k: args.top,
        refine_steps: if args.refine { 16 } else { 0 },
        prune: args.prune,
        phase_cache: args.phase_cache,
        pareto: args.pareto,
        ..DseOptions::default()
    };
    let outcome = explore(&workload, &cfg, &opts);

    println!(
        "workload  {} (V={}, F={}, G={}, nnz={}, max deg={}{})",
        workload.name,
        workload.v,
        workload.f,
        workload.g,
        workload.nnz,
        workload.max_degree,
        workload.post_op.map(|op| format!(", post {op}")).unwrap_or_default()
    );
    println!("machine   {} PEs, {} elems/cycle NoC", cfg.num_pes, cfg.dist_bandwidth);
    println!(
        "search    {} patterns + {} seeds, {} evaluated, {} skipped, {} threads, {:.2}s{}",
        outcome.space,
        outcome.seeded,
        outcome.evaluated,
        outcome.skipped,
        outcome.threads,
        outcome.elapsed_ms / 1e3,
        if args.refine { format!(" (incl. {} refinement evals)", outcome.refine_evals) } else { String::new() },
    );
    if args.stats {
        // The factored-engine observables (also in the JSON outcome): unique
        // phase sims vs reuse, and how much of the space the admissible
        // lower bound pruned without simulating.
        let lookups = outcome.phase_sims + outcome.phase_cache_hits;
        println!(
            "stats     phase_sims={} phase_cache_hits={} ({:.1}% reuse), pruned={} ({:.1}% of space), class_replays={}",
            outcome.phase_sims,
            outcome.phase_cache_hits,
            100.0 * outcome.phase_cache_hits as f64 / lookups.max(1) as f64,
            outcome.pruned,
            100.0 * outcome.pruned as f64 / outcome.space.max(1) as f64,
            outcome.class_replays,
        );
    }
    println!();
    if args.pareto {
        print_frontier(&outcome);
        if let Some(budget) = args.max_buffer_bytes {
            print_budget_query(&outcome, budget);
        }
    } else {
        print_ranked(&outcome, args.objective);
    }

    // The paper-relevant question: how much do Table V's presets leave on the
    // table versus the true optimum of the space?
    if let Some(best) = outcome.best() {
        let preset_best = mapper::extended_candidates(&workload, &cfg)
            .iter()
            .filter_map(|df| evaluate(&workload, df, &cfg).ok().map(|r| (args.objective.score(&r), df.to_string())))
            .min_by(|a, b| a.0.total_cmp(&b.0));
        if let Some((preset_score, preset_name)) = preset_best {
            println!(
                "\npreset gap: best preset {} scores {:.4e}; exhaustive optimum {:.4e} ({:.2}% on the table)",
                preset_name,
                preset_score,
                best.score,
                100.0 * (preset_score / best.score - 1.0),
            );
        }
    }

    if let Some(path) = &args.json {
        match serde_json::to_string_pretty(&outcome) {
            Ok(json) => {
                if path == "-" {
                    println!("{json}");
                } else if let Err(e) = write_with_dirs(path, &json) {
                    eprintln!("could not write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("could not serialise outcome: {e:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Model mode: joint search over per-layer dataflows × inter-layer links × PE
/// partitions for a whole GNN chain, reported against the best uniform preset.
fn run_model(model: &GnnModel, workload: &GnnWorkload, cfg: &AccelConfig, args: &Args) -> ExitCode {
    if args.hidden.is_some() || args.refine {
        eprintln!(
            "error: --hidden and --refine have no effect with --model \
             (layer widths come from the model; tile refinement is layer-level only)"
        );
        return ExitCode::FAILURE;
    }
    let opts = ModelDseOptions {
        objective: args.objective,
        threads: args.threads,
        top_k: args.top,
        per_layer_k: args.per_layer_k,
        // The per-layer searches honour the factored-engine flags, so the
        // reference arm (`--no-prune --no-phase-cache`) stays reachable for
        // bit-identity checks; the ranked output is identical either way.
        prune: args.prune,
        phase_cache: args.phase_cache,
        pareto: args.pareto,
        ..ModelDseOptions::default()
    };
    let outcome = explore_model(model, workload, cfg, &opts, DseCache::global());

    println!(
        "model     {} ({} layers) on {} (V={}, F={}, nnz={})",
        outcome.model,
        outcome.layer_candidates.len(),
        workload.name,
        workload.v,
        workload.f,
        workload.nnz
    );
    println!("machine   {} PEs, {} elems/cycle NoC", cfg.num_pes, cfg.dist_bandwidth);
    println!(
        "search    {} joint mappings ({} layer candidates × {} link options) + {} uniform seeds, \
         {} evaluated, {} infeasible, {} threads, {:.2}s",
        outcome.space,
        outcome
            .layer_candidates
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join("·"),
        outcome
            .link_options
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join("·"),
        outcome.seeded,
        outcome.evaluated,
        outcome.skipped,
        outcome.threads,
        outcome.elapsed_ms / 1e3,
    );
    if args.stats {
        let lookups = outcome.phase_sims + outcome.phase_cache_hits;
        println!(
            "stats     layer searches: phase_sims={} phase_cache_hits={} ({:.1}% reuse)",
            outcome.phase_sims,
            outcome.phase_cache_hits,
            100.0 * outcome.phase_cache_hits as f64 / lookups.max(1) as f64,
        );
    }
    println!();
    if args.pareto {
        print_model_frontier(&outcome);
        if let Some(budget) = args.max_buffer_bytes {
            print_model_budget_query(&outcome, budget);
        }
    } else {
        print_model_ranked(&outcome, args.objective);
    }

    if let (Some(best), Some(uniform), Some(gap)) =
        (outcome.best(), outcome.uniform.as_ref(), outcome.model_gap())
    {
        // The gap is measured in the chosen objective, not always cycles.
        println!(
            "\nmodel gap: best uniform preset {} scores {:.4e} end-to-end; \
             per-layer-specialised mapping scores {:.4e} ({:.2}% on the table; \
             cycles {} vs {})",
            uniform.preset,
            uniform.score,
            best.score,
            100.0 * (gap - 1.0),
            uniform.total_cycles,
            best.report.total_cycles,
        );
    }

    if let Some(path) = &args.json {
        match serde_json::to_string_pretty(&outcome) {
            Ok(json) => {
                if path == "-" {
                    println!("{json}");
                } else if let Err(e) = write_with_dirs(path, &json) {
                    eprintln!("could not write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("could not serialise outcome: {e:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// The model-level frontier: whole-chain mappings trading end-to-end runtime,
/// energy, and peak working set (concurrent stages add, sequential steps max).
fn print_model_frontier(outcome: &ModelExploreOutcome) {
    println!(
        "Pareto frontier: {} non-dominated mappings over (runtime, energy, buffer peak)",
        outcome.frontier.len()
    );
    println!(
        "{:>4}  {:<72} {:>14} {:>14} {:>14}",
        "pt", "per-layer mapping", "cycles", "energy (uJ)", "peak (KiB)"
    );
    for (n, p) in outcome.frontier.iter().enumerate() {
        println!(
            "{:>4}  {:<72} {:>14} {:>14.3} {:>14.1}",
            n + 1,
            format!("{}", p.mapping),
            p.runtime_cycles,
            p.energy_pj / 1e6,
            p.buffer_peak_bytes as f64 / 1024.0,
        );
    }
}

fn print_model_budget_query(outcome: &ModelExploreOutcome, budget: u64) {
    println!();
    let fit = outcome
        .frontier
        .iter()
        .filter(|p| p.buffer_peak_bytes <= budget)
        .min_by_key(|p| p.runtime_cycles);
    match fit {
        Some(p) => println!(
            "budget {budget} B: fastest fitting mapping {} — {} cycles, {:.3} uJ, peak {} B",
            p.mapping,
            p.runtime_cycles,
            p.energy_pj / 1e6,
            p.buffer_peak_bytes,
        ),
        None => println!(
            "budget {budget} B: no mapping fits (frontier minimum peak is {} B)",
            outcome.frontier.iter().map(|p| p.buffer_peak_bytes).min().unwrap_or(0),
        ),
    }
}

fn print_model_ranked(outcome: &ModelExploreOutcome, objective: Objective) {
    let score_head = match objective {
        Objective::Runtime => "cycles",
        Objective::Energy => "energy (uJ)",
        Objective::Edp => "EDP (cyc*pJ)",
    };
    println!(
        "{:>4}  {:<72} {:>14} {:>14} {:>14}",
        "rank", "per-layer mapping (⇒ sequential, ∥pel@p/c⇒ pipelined link)", "cycles",
        "energy (uJ)", score_head
    );
    for (rank, r) in outcome.ranked.iter().enumerate() {
        println!(
            "{:>4}  {:<72} {:>14} {:>14.3} {:>14.4e}",
            rank + 1,
            format!("{}", r.mapping),
            r.report.total_cycles,
            r.report.energy.total_uj(),
            r.score,
        );
    }
}

fn write_with_dirs(path: &str, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

/// The layer-level Pareto frontier: every point a best-possible trade between
/// runtime, energy, and peak on-chip working set.
fn print_frontier(outcome: &ExploreOutcome) {
    println!(
        "Pareto frontier: {} non-dominated points over (runtime, energy, buffer peak)",
        outcome.frontier.len()
    );
    println!(
        "{:>4}  {:<28} {:<26} {:>14} {:>14} {:>14}",
        "pt", "dataflow", "tiles", "cycles", "energy (uJ)", "peak (KiB)"
    );
    for (n, p) in outcome.frontier.iter().enumerate() {
        println!(
            "{:>4}  {:<28} {:<26} {:>14} {:>14.3} {:>14.1}",
            n + 1,
            p.dataflow.to_string(),
            format!("{:?}", p.dataflow.tile_tuple()),
            p.runtime_cycles,
            p.energy_pj / 1e6,
            p.buffer_peak_bytes as f64 / 1024.0,
        );
    }
}

/// Answers a `--max-buffer-bytes` budget query from the frontier: the fastest
/// design whose peak working set fits (always the exact optimum among all
/// candidates that fit — the feasible-region optimum lies on the frontier).
fn print_budget_query(outcome: &ExploreOutcome, budget: u64) {
    println!();
    let fit = outcome
        .frontier
        .iter()
        .filter(|p| p.buffer_peak_bytes <= budget)
        .min_by_key(|p| p.runtime_cycles);
    match fit {
        Some(p) => println!(
            "budget {budget} B: fastest fitting design {} {:?} — {} cycles, {:.3} uJ, peak {} B",
            p.dataflow,
            p.dataflow.tile_tuple(),
            p.runtime_cycles,
            p.energy_pj / 1e6,
            p.buffer_peak_bytes,
        ),
        None => println!(
            "budget {budget} B: no design fits (frontier minimum peak is {} B)",
            outcome.frontier.iter().map(|p| p.buffer_peak_bytes).min().unwrap_or(0),
        ),
    }
}

fn print_ranked(outcome: &ExploreOutcome, objective: Objective) {
    let score_head = match objective {
        Objective::Runtime => "cycles",
        Objective::Energy => "energy (uJ)",
        Objective::Edp => "EDP (cyc*pJ)",
    };
    println!(
        "{:>4}  {:<28} {:<26} {:>14} {:>14} {:>14}",
        "rank", "dataflow", "tiles", "cycles", "energy (uJ)", score_head
    );
    for (rank, r) in outcome.ranked.iter().enumerate() {
        println!(
            "{:>4}  {:<28} {:<26} {:>14} {:>14.3} {:>14.4e}",
            rank + 1,
            r.dataflow.to_string(),
            format!("{:?}", r.dataflow.tile_tuple()),
            r.report.total_cycles,
            r.report.energy.total_uj(),
            r.score,
        );
    }
}
