//! `eval` — evaluate any dataflow (in the paper's template syntax) on any
//! dataset, with hardware overrides. The tool a downstream user reaches for.
//!
//! ```text
//! eval --dataflow "SP_AC(VsFxNt, VsFxGx)" --dataset Citeseer
//! eval --preset PP3 --dataset Collab --pes 1024 --bandwidth 256 --hidden 64
//! eval --dataflow "PP_CA(FsNtVs, GtFtVs)" --dataset Cora --agg-pes 128
//! ```
//!
//! Patterns with `x` placeholders are concretised by the tile chooser; pass
//! `--tiles tv,tn,tf,tv,tg,tf` to pin exact tile sizes instead.

use std::process::ExitCode;

use omega_accel::AccelConfig;
use omega_core::{evaluate, GnnWorkload};
use omega_dataflow::presets::Preset;
use omega_dataflow::tiles::{choose_tiling, Cap, PhasePolicy};
use omega_dataflow::{
    Dim, GnnDataflow, GnnDataflowPattern, InterPhase, IntraTiling, MappingSpec,
};
use omega_graph::DatasetSpec;

struct Args {
    dataflow: Option<String>,
    preset: Option<String>,
    dataset: String,
    hidden: usize,
    pes: usize,
    bandwidth: Option<usize>,
    agg_pes: Option<usize>,
    tiles: Option<[usize; 6]>,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        dataflow: None,
        preset: None,
        dataset: "Citeseer".into(),
        hidden: 16,
        pes: 512,
        bandwidth: None,
        agg_pes: None,
        tiles: None,
        seed: 0x0E5A_2022,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--dataflow" => out.dataflow = Some(value(&mut i)?),
            "--preset" => out.preset = Some(value(&mut i)?),
            "--dataset" => out.dataset = value(&mut i)?,
            "--hidden" => out.hidden = value(&mut i)?.parse().map_err(|e| format!("--hidden: {e}"))?,
            "--pes" => out.pes = value(&mut i)?.parse().map_err(|e| format!("--pes: {e}"))?,
            "--bandwidth" => {
                out.bandwidth = Some(value(&mut i)?.parse().map_err(|e| format!("--bandwidth: {e}"))?)
            }
            "--agg-pes" => {
                out.agg_pes = Some(value(&mut i)?.parse().map_err(|e| format!("--agg-pes: {e}"))?)
            }
            "--seed" => out.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--tiles" => {
                let raw = value(&mut i)?;
                let parts: Vec<usize> = raw
                    .split(',')
                    .map(|p| p.trim().parse().map_err(|e| format!("--tiles: {e}")))
                    .collect::<Result<_, _>>()?;
                if parts.len() != 6 {
                    return Err("--tiles needs 6 comma-separated values (tV,tN,tF,tV,tG,tF)".into());
                }
                out.tiles = Some([parts[0], parts[1], parts[2], parts[3], parts[4], parts[5]]);
            }
            "--help" | "-h" => return Err("usage".into()),
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    if out.dataflow.is_none() && out.preset.is_none() {
        // Bare `eval` should still do something useful: evaluate the paper's
        // SP2 preset on the default dataset.
        out.preset = Some("SP2".into());
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "usage" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: eval [--dataflow \"SP_AC(VsFxNt, VsFxGx)\" | --preset SP2] \
                 [--dataset NAME] [--hidden G] [--pes N] [--bandwidth ELEMS] \
                 [--agg-pes N] [--tiles tV,tN,tF,tV,tG,tF] [--seed S]\n\
                 with no dataflow/preset, defaults to --preset SP2"
            );
            return ExitCode::FAILURE;
        }
    };

    // Degenerate hardware is rejected up front: 0 PEs has no meaningful cost
    // model (and divides/clamps downstream), and a parallel pipeline cannot
    // split fewer than 2 PEs into two concurrent partitions.
    if args.pes == 0 {
        eprintln!("error: --pes must be >= 1 (got 0)");
        return ExitCode::FAILURE;
    }

    let Some(spec) = DatasetSpec::by_name(&args.dataset) else {
        eprintln!(
            "unknown dataset '{}'; known: {}",
            args.dataset,
            DatasetSpec::all().iter().map(|s| s.name).collect::<Vec<_>>().join(", ")
        );
        return ExitCode::FAILURE;
    };
    let dataset = spec.generate(args.seed);
    let wl = GnnWorkload::gcn_layer(&dataset, args.hidden);

    let mut cfg = AccelConfig::paper_default().with_pes(args.pes);
    if let Some(bw) = args.bandwidth {
        cfg = cfg.with_bandwidth(bw);
    }

    let df: GnnDataflow = if let Some(name) = &args.preset {
        let Some(preset) = Preset::by_name(name) else {
            eprintln!("unknown preset '{name}'; known: Seq1 Seq2 SP1 SP2 SPhighV PP1 PP2 PP3 PP4");
            return ExitCode::FAILURE;
        };
        if let Err(e) = check_pp_split(&preset.pattern, &cfg) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        let ctx = wl.tile_context(preset.pattern.phase_order);
        let (a, c) = split(&preset.pattern, &args, &cfg);
        preset.concretize(&ctx, a, c)
    } else {
        let pattern: GnnDataflowPattern = match args.dataflow.as_deref().unwrap_or_default().parse() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("could not parse dataflow: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = check_pp_split(&pattern, &cfg) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        concretize_pattern(&pattern, &wl, &args, &cfg)
    };

    println!("workload  {} (V={}, F={}, G={}, nnz={}, max deg={})", wl.name, wl.v, wl.f, wl.g, wl.nnz, wl.max_degree);
    println!("machine   {} PEs, {} elems/cycle NoC", cfg.num_pes, cfg.dist_bandwidth);
    println!("dataflow  {df}   tiles {:?}", df.tile_tuple());

    match evaluate(&wl, &df, &cfg) {
        Ok(r) => {
            println!("\nruntime              {:>14} cycles", r.total_cycles);
            println!("  aggregation        {:>14} cycles ({} stall)", r.agg.cycles, r.agg.stall_cycles);
            println!("  combination        {:>14} cycles ({} stall)", r.cmb.cycles, r.cmb.stall_cycles);
            println!("intermediate buffer  {:>14} elements", r.intermediate_buffer_elems);
            if let (Some(g), Some(pel)) = (r.granularity, r.pel) {
                println!("pipelining           {g} granularity, Pel = {pel}");
            }
            println!("SP-Optimized         {:>14}", r.sp_optimized);
            println!("energy               {:>14.3} uJ", r.energy.total_uj());
            println!("  global buffer      {:>14.3} uJ", r.energy.gb_pj / 1e6);
            println!("  intermediate       {:>14.3} uJ", r.energy.intermediate_pj / 1e6);
            println!("  register files     {:>14.3} uJ", r.energy.rf_pj / 1e6);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("\nillegal dataflow: {e}");
            ExitCode::FAILURE
        }
    }
}

/// A parallel pipeline needs at least one PE per partition; with fewer than 2
/// PEs the split (`clamp(1, num_pes - 1)`) would underflow — reject clearly.
fn check_pp_split(pattern: &GnnDataflowPattern, cfg: &AccelConfig) -> Result<(), String> {
    if pattern.inter == InterPhase::ParallelPipeline && cfg.num_pes < 2 {
        return Err(format!(
            "a PP dataflow splits the array into two partitions and needs --pes >= 2 (got {})",
            cfg.num_pes
        ));
    }
    Ok(())
}

fn split(pattern: &GnnDataflowPattern, args: &Args, cfg: &AccelConfig) -> (usize, usize) {
    if pattern.inter == InterPhase::ParallelPipeline {
        let a = args.agg_pes.unwrap_or(cfg.num_pes / 2).clamp(1, cfg.num_pes - 1);
        (a, cfg.num_pes - a)
    } else {
        (cfg.num_pes, cfg.num_pes)
    }
}

fn concretize_pattern(
    pattern: &GnnDataflowPattern,
    wl: &GnnWorkload,
    args: &Args,
    cfg: &AccelConfig,
) -> GnnDataflow {
    if let Some(t) = args.tiles {
        let place = |tiling: &omega_dataflow::IntraPattern, tv: usize, tmid: usize, tf: usize| {
            let tiles = tiling.order().dims().map(|d| match d {
                Dim::V => tv,
                Dim::N | Dim::G => tmid,
                Dim::F => tf,
            });
            IntraTiling::new(tiling.phase(), tiling.order(), tiles)
        };
        return GnnDataflow {
            inter: pattern.inter,
            phase_order: pattern.phase_order,
            agg: place(&pattern.agg, t[0], t[1], t[2]),
            cmb: place(&pattern.cmb, t[3], t[4], t[5]),
        };
    }
    let ctx = wl.tile_context(pattern.phase_order);
    let (a, c) = split(pattern, args, cfg);
    let policy = |p: &omega_dataflow::IntraPattern| {
        let dims: Vec<Dim> = p
            .order()
            .dims()
            .iter()
            .enumerate()
            .filter(|&(i, _)| p.maps()[i] != MappingSpec::Temporal)
            .map(|(_, &d)| d)
            .collect();
        PhasePolicy::round_robin(&dims).with_cap(Dim::N, Cap::MeanDegreePow2)
    };
    GnnDataflow {
        inter: pattern.inter,
        phase_order: pattern.phase_order,
        agg: choose_tiling(&pattern.agg, &ctx, a, &policy(&pattern.agg)),
        cmb: choose_tiling(&pattern.cmb, &ctx, c, &policy(&pattern.cmb)),
    }
}
