//! `loadgen` — synthetic decision traffic against a running `mapperd`.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7453 --requests 200 --concurrency 4
//! loadgen --addr 127.0.0.1:7453 --dataset Citeseer --repeat-pct 80 --json -
//! loadgen --addr 127.0.0.1:7453 --mode fast --no-warmup --shutdown
//! ```
//!
//! Drives a deterministic mix of repeated ("hot", defaulting to 80%) and
//! fresh workloads over `--concurrency` persistent connections (closed loop:
//! each connection sends its next request as soon as the previous answer
//! lands) and reports client-measured p50/p99 decision latency, sustained
//! QPS, and the cache-disposition mix. Hot workloads are `--hot-set` hidden
//! widths of `--dataset`; fresh ones perturb the graph seed so every one is a
//! new fingerprint. `--warmup` (default) first sends each hot workload once,
//! so the timed run measures the warm-cache serving path. Run `mapperd` with
//! at least `--threads == --concurrency` workers: connections are sticky to a
//! worker for their lifetime.
//!
//! `--json PATH` (or `-` for stdout) writes a machine-readable summary
//! including the server's own counters; `--shutdown` asks the daemon to drain
//! and flush its cache when done.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use omega_core::GnnWorkload;
use omega_graph::DatasetSpec;
use omega_serve::{MapRequest, MapResponse};
use serde::Serialize;

struct Args {
    addr: String,
    requests: usize,
    concurrency: usize,
    dataset: String,
    hot_set: usize,
    repeat_pct: u64,
    mode: String,
    objective: Option<String>,
    top_k: usize,
    warmup: bool,
    seed: u64,
    json: Option<String>,
    shutdown: bool,
    quiet: bool,
}

const USAGE: &str = "usage: loadgen [--addr HOST:PORT] [--requests N] [--concurrency C] \
                     [--dataset NAME] [--hot-set N] [--repeat-pct P] [--mode exact|fast] \
                     [--objective runtime|energy|edp] [--top K] [--no-warmup] [--seed S] \
                     [--json PATH|-] [--shutdown] [--quiet]";

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        addr: "127.0.0.1:7453".into(),
        requests: 200,
        concurrency: 4,
        dataset: "Citeseer".into(),
        hot_set: 4,
        repeat_pct: 80,
        mode: "exact".into(),
        objective: None,
        top_k: 3,
        warmup: true,
        seed: 0x0E5A_2022,
        json: None,
        shutdown: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        let parsed = |name: &str, v: String| v.parse::<usize>().map_err(|e| format!("{name}: {e}"));
        match arg.as_str() {
            "--addr" => out.addr = value("--addr")?,
            "--requests" => out.requests = parsed("--requests", value("--requests")?)?,
            "--concurrency" => out.concurrency = parsed("--concurrency", value("--concurrency")?)?,
            "--dataset" => out.dataset = value("--dataset")?,
            "--hot-set" => out.hot_set = parsed("--hot-set", value("--hot-set")?)?,
            "--repeat-pct" => out.repeat_pct = parsed("--repeat-pct", value("--repeat-pct")?)? as u64,
            "--mode" => out.mode = value("--mode")?,
            "--objective" => out.objective = Some(value("--objective")?),
            "--top" => out.top_k = parsed("--top", value("--top")?)?,
            "--no-warmup" => out.warmup = false,
            "--warmup" => out.warmup = true,
            "--seed" => {
                out.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--json" => out.json = Some(value("--json")?),
            "--shutdown" => out.shutdown = true,
            "--quiet" => out.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if out.requests == 0 || out.concurrency == 0 || out.hot_set == 0 {
        return Err("--requests, --concurrency, and --hot-set must be positive".into());
    }
    if out.repeat_pct > 100 {
        return Err("--repeat-pct must be 0..=100".into());
    }
    Ok(out)
}

/// SplitMix64: deterministic per-index stream selector.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn request_line(args: &Args, workload: &GnnWorkload) -> String {
    let mut request = MapRequest::for_workload(workload);
    request.mode = Some(args.mode.clone());
    request.objective = args.objective.clone();
    request.top_k = Some(args.top_k);
    serde_json::to_string(&request).expect("request JSON")
}

/// Connects with retries so loadgen can start before the daemon finishes
/// binding (CI starts both back-to-back).
fn connect(addr: &str) -> Result<TcpStream, String> {
    let mut last = String::new();
    for _ in 0..100 {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                return Ok(stream);
            }
            Err(e) => last = e.to_string(),
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    Err(format!("cannot connect to {addr}: {last}"))
}

fn exchange(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Result<MapResponse, String> {
    stream.write_all(line.as_bytes()).map_err(|e| format!("send: {e}"))?;
    stream.write_all(b"\n").map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    reader.read_line(&mut response).map_err(|e| format!("recv: {e}"))?;
    if response.is_empty() {
        return Err("server closed the connection".into());
    }
    serde_json::from_str(&response).map_err(|e| format!("bad response: {e}"))
}

#[derive(Debug, Default)]
struct ClientTally {
    latencies_us: Vec<u64>,
    hit: u64,
    coalesced: u64,
    search: u64,
    warm: u64,
    errors: u64,
}

impl ClientTally {
    fn record(&mut self, latency_us: u64, response: &MapResponse) {
        self.latencies_us.push(latency_us);
        if !response.ok {
            self.errors += 1;
            return;
        }
        match response.cache.as_deref() {
            Some("hit") => self.hit += 1,
            Some("coalesced") => self.coalesced += 1,
            Some("search") => self.search += 1,
            Some("warm") => self.warm += 1,
            _ => {}
        }
    }
}

/// The machine-readable summary (`--json`).
#[derive(Debug, Serialize)]
struct Summary {
    addr: String,
    dataset: String,
    mode: String,
    requests: usize,
    concurrency: usize,
    elapsed_s: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
    hit: u64,
    coalesced: u64,
    search: u64,
    warm: u64,
    errors: u64,
    server: Option<omega_serve::ServerStats>,
}

fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(spec) = DatasetSpec::by_name(&args.dataset) else {
        eprintln!(
            "loadgen: unknown dataset '{}'; known: {}",
            args.dataset,
            DatasetSpec::all().iter().map(|s| s.name).collect::<Vec<_>>().join(", ")
        );
        return ExitCode::FAILURE;
    };

    // Hot set: one dataset instance served at `hot_set` hidden widths — the
    // repeated traffic a warm cache should answer without searching. Fresh
    // requests perturb the graph seed, so each is a new fingerprint (a new
    // graph arriving at the service, Dynasparse-style).
    let dataset = spec.generate(args.seed);
    let hot: Vec<String> = (0..args.hot_set)
        .map(|i| request_line(&args, &GnnWorkload::gcn_layer(&dataset, 16 + 8 * i)))
        .collect();
    let mut fresh_used = 0u64;
    let schedule: Vec<String> = (0..args.requests)
        .map(|i| {
            if mix(args.seed ^ i as u64) % 100 < args.repeat_pct {
                hot[(mix(i as u64) % args.hot_set as u64) as usize].clone()
            } else {
                fresh_used += 1;
                let variant = spec.generate(args.seed.wrapping_add(1000 + fresh_used));
                request_line(&args, &GnnWorkload::gcn_layer(&variant, 16))
            }
        })
        .collect();

    if !args.quiet {
        eprintln!(
            "loadgen: {} requests ({} fresh) over {} connections to {} [{} {}]",
            args.requests,
            fresh_used,
            args.concurrency,
            args.addr,
            args.dataset,
            args.mode
        );
    }

    // Warmup: prime the cache with each hot workload once, off the clock.
    if args.warmup {
        let mut stream = match connect(&args.addr) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("loadgen: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        for line in &hot {
            if let Err(e) = exchange(&mut stream, &mut reader, line) {
                eprintln!("loadgen: warmup failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let started = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|s| {
        let schedule = &schedule;
        let addr = &args.addr;
        let clients: Vec<_> = (0..args.concurrency)
            .map(|t| {
                s.spawn(move || {
                    let mut tally = ClientTally::default();
                    let mut stream = match connect(addr) {
                        Ok(s) => s,
                        Err(e) => {
                            eprintln!("loadgen: {e}");
                            tally.errors += 1;
                            return tally;
                        }
                    };
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    for line in schedule.iter().skip(t).step_by(args.concurrency) {
                        let sent = Instant::now();
                        match exchange(&mut stream, &mut reader, line) {
                            Ok(response) => {
                                tally.record(sent.elapsed().as_micros() as u64, &response)
                            }
                            Err(e) => {
                                eprintln!("loadgen: {e}");
                                tally.errors += 1;
                                return tally;
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        clients.into_iter().map(|c| c.join().expect("client thread")).collect()
    });
    let elapsed = started.elapsed();

    let mut latencies: Vec<u64> = Vec::with_capacity(args.requests);
    let (mut hit, mut coalesced, mut search, mut warm, mut errors) = (0, 0, 0, 0, 0);
    for t in &tallies {
        latencies.extend_from_slice(&t.latencies_us);
        hit += t.hit;
        coalesced += t.coalesced;
        search += t.search;
        warm += t.warm;
        errors += t.errors;
    }
    latencies.sort_unstable();
    let completed = latencies.len();
    let elapsed_s = elapsed.as_secs_f64();
    let qps = if elapsed_s > 0.0 { completed as f64 / elapsed_s } else { 0.0 };
    let p50_ms = percentile_us(&latencies, 0.50) as f64 / 1000.0;
    let p99_ms = percentile_us(&latencies, 0.99) as f64 / 1000.0;
    let mean_ms = if completed > 0 {
        latencies.iter().sum::<u64>() as f64 / completed as f64 / 1000.0
    } else {
        0.0
    };

    // Server-side counters (and optionally a drain-and-flush shutdown).
    let server = connect(&args.addr).ok().and_then(|mut stream| {
        let mut reader = BufReader::new(stream.try_clone().ok()?);
        let stats = exchange(&mut stream, &mut reader, "{\"cmd\":\"stats\"}").ok()?.stats;
        if args.shutdown {
            let _ = exchange(&mut stream, &mut reader, "{\"cmd\":\"shutdown\"}");
        }
        stats
    });

    println!(
        "loadgen: {completed}/{} requests in {elapsed_s:.3} s — {qps:.0} QPS, \
         p50 {p50_ms:.3} ms, p99 {p99_ms:.3} ms, mean {mean_ms:.3} ms",
        args.requests
    );
    println!(
        "loadgen: dispositions hit {hit}, coalesced {coalesced}, search {search}, \
         warm {warm}, errors {errors}"
    );
    if let Some(stats) = &server {
        println!(
            "loadgen: server counters — {} requests, {} searches, {} hits, {} coalesced, \
             {} warm starts, {} evictions, {} entries",
            stats.requests,
            stats.searches,
            stats.hits,
            stats.coalesced,
            stats.warm_starts,
            stats.evictions,
            stats.cache_entries
        );
    }

    let summary = Summary {
        addr: args.addr.clone(),
        dataset: args.dataset.clone(),
        mode: args.mode.clone(),
        requests: completed,
        concurrency: args.concurrency,
        elapsed_s,
        qps,
        p50_ms,
        p99_ms,
        mean_ms,
        hit,
        coalesced,
        search,
        warm,
        errors,
        server,
    };
    if let Some(path) = &args.json {
        let json = serde_json::to_string(&summary).expect("summary JSON");
        if path == "-" {
            println!("{json}");
        } else if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("loadgen: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if errors > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
