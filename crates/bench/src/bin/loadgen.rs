//! `loadgen` — synthetic decision traffic against a running `mapperd`.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7453 --requests 200 --concurrency 4
//! loadgen --addr 127.0.0.1:7453 --dataset Citeseer --repeat-pct 80 --json -
//! loadgen --addr 127.0.0.1:7453 --deadline-ms 10 --chaos --retries 5 \
//!         --max-error-rate 2 --shutdown
//! ```
//!
//! Drives a deterministic mix of repeated ("hot", defaulting to 80%) and
//! fresh workloads over `--concurrency` persistent connections (closed loop:
//! each connection sends its next request as soon as the previous answer
//! lands) and reports client-measured p50/p99 decision latency, sustained
//! QPS, the cache-disposition mix, and the decision-quality mix
//! (`exact`/`warm`/`preset`/`shed`). Hot workloads are `--hot-set` hidden
//! widths of `--dataset`; fresh ones perturb the graph seed so every one is a
//! new fingerprint. `--warmup` (default) first sends each hot workload once,
//! so the timed run measures the warm-cache serving path.
//!
//! Requests ride the retrying [`MapperClient`]: transient failures (shed
//! responses, injected panics, dropped connections) back off exponentially
//! with deterministic jitter and retry up to `--retries` times. The run exits
//! non-zero only when the final error+shed rate exceeds `--max-error-rate`
//! percent (default 0: any unrecovered failure fails the run).
//!
//! `--chaos` interleaves deterministic adversarial probes with the regular
//! traffic — garbage lines, oversized lines, slow split writes, mid-line
//! disconnects, connection bursts, and save probes — the client half of the
//! server's `FaultPlan`. Probes only assert liveness (the daemon answering
//! real traffic afterwards); their own dispositions are not failures.
//!
//! `--json PATH` (or `-` for stdout) writes a machine-readable summary
//! including the server's own counters; `--shutdown` asks the daemon to drain
//! and flush its cache when done.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use omega_core::GnnWorkload;
use omega_graph::DatasetSpec;
use omega_serve::client::{MapperClient, RetryPolicy};
use omega_serve::{MapRequest, MapResponse};
use serde::Serialize;

struct Args {
    addr: String,
    requests: usize,
    concurrency: usize,
    dataset: String,
    hot_set: usize,
    repeat_pct: u64,
    mode: String,
    objective: Option<String>,
    top_k: usize,
    deadline_ms: Option<u64>,
    warmup: bool,
    seed: u64,
    retries: u32,
    max_error_rate: f64,
    chaos: bool,
    json: Option<String>,
    shutdown: bool,
    quiet: bool,
}

const USAGE: &str = "usage: loadgen [--addr HOST:PORT] [--requests N] [--concurrency C] \
                     [--dataset NAME] [--hot-set N] [--repeat-pct P] [--mode exact|fast] \
                     [--objective runtime|energy|edp] [--top K] [--deadline-ms MS] \
                     [--no-warmup] [--seed S] [--retries N] [--max-error-rate PCT] \
                     [--chaos] [--json PATH|-] [--shutdown] [--quiet]";

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        addr: "127.0.0.1:7453".into(),
        requests: 200,
        concurrency: 4,
        dataset: "Citeseer".into(),
        hot_set: 4,
        repeat_pct: 80,
        mode: "exact".into(),
        objective: None,
        top_k: 3,
        deadline_ms: None,
        warmup: true,
        seed: 0x0E5A_2022,
        retries: 4,
        max_error_rate: 0.0,
        chaos: false,
        json: None,
        shutdown: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        let parsed = |name: &str, v: String| v.parse::<usize>().map_err(|e| format!("{name}: {e}"));
        match arg.as_str() {
            "--addr" => out.addr = value("--addr")?,
            "--requests" => out.requests = parsed("--requests", value("--requests")?)?,
            "--concurrency" => out.concurrency = parsed("--concurrency", value("--concurrency")?)?,
            "--dataset" => out.dataset = value("--dataset")?,
            "--hot-set" => out.hot_set = parsed("--hot-set", value("--hot-set")?)?,
            "--repeat-pct" => out.repeat_pct = parsed("--repeat-pct", value("--repeat-pct")?)? as u64,
            "--mode" => out.mode = value("--mode")?,
            "--objective" => out.objective = Some(value("--objective")?),
            "--top" => out.top_k = parsed("--top", value("--top")?)?,
            "--deadline-ms" => {
                out.deadline_ms =
                    Some(value("--deadline-ms")?.parse().map_err(|e| format!("--deadline-ms: {e}"))?)
            }
            "--no-warmup" => out.warmup = false,
            "--warmup" => out.warmup = true,
            "--seed" => {
                out.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--retries" => {
                out.retries = value("--retries")?.parse().map_err(|e| format!("--retries: {e}"))?
            }
            "--max-error-rate" => {
                out.max_error_rate = value("--max-error-rate")?
                    .parse()
                    .map_err(|e| format!("--max-error-rate: {e}"))?
            }
            "--chaos" => out.chaos = true,
            "--json" => out.json = Some(value("--json")?),
            "--shutdown" => out.shutdown = true,
            "--quiet" => out.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if out.requests == 0 || out.concurrency == 0 || out.hot_set == 0 {
        return Err("--requests, --concurrency, and --hot-set must be positive".into());
    }
    if out.repeat_pct > 100 {
        return Err("--repeat-pct must be 0..=100".into());
    }
    if !(0.0..=100.0).contains(&out.max_error_rate) {
        return Err("--max-error-rate must be 0..=100 (percent)".into());
    }
    Ok(out)
}

/// SplitMix64: deterministic per-index stream selector.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn request_line(args: &Args, workload: &GnnWorkload) -> String {
    let mut request = MapRequest::for_workload(workload);
    request.mode = Some(args.mode.clone());
    request.objective = args.objective.clone();
    request.top_k = Some(args.top_k);
    request.deadline_ms = args.deadline_ms;
    serde_json::to_string(&request).expect("request JSON")
}

/// Connect retries generous enough for CI, where loadgen starts before the
/// daemon finishes binding.
fn client_policy(args: &Args, stream: u64) -> RetryPolicy {
    RetryPolicy {
        attempts: args.retries.max(1),
        base_delay_ms: 25,
        max_delay_ms: 800,
        seed: args.seed ^ mix(stream),
    }
}

#[derive(Debug, Default)]
struct ClientTally {
    latencies_us: Vec<u64>,
    hit: u64,
    coalesced: u64,
    search: u64,
    warm: u64,
    exact: u64,
    degraded_warm: u64,
    degraded_preset: u64,
    shed: u64,
    errors: u64,
    retries: u64,
    reconnects: u64,
    chaos_probes: u64,
}

impl ClientTally {
    fn record(&mut self, latency_us: u64, response: &MapResponse) {
        self.latencies_us.push(latency_us);
        if !response.ok {
            if response.decision_quality.as_deref() == Some("shed") {
                self.shed += 1;
            } else {
                self.errors += 1;
            }
            return;
        }
        match response.cache.as_deref() {
            Some("hit") => self.hit += 1,
            Some("coalesced") => self.coalesced += 1,
            Some("search") => self.search += 1,
            Some("warm") => self.warm += 1,
            _ => {}
        }
        match response.decision_quality.as_deref() {
            Some("warm") => self.degraded_warm += 1,
            Some("preset") => self.degraded_preset += 1,
            // Unlabeled ok responses (control commands) are not decisions.
            Some("exact") => self.exact += 1,
            _ => {}
        }
    }
}

/// One adversarial client behaviour, driven by `--chaos`: the client half of
/// the server's fault plan. Each probe uses its own throwaway connection so
/// the measuring connections stay clean; failures are ignored — liveness is
/// asserted by the real traffic that follows and the final stats probe.
fn chaos_probe(addr: &str, kind: u64) {
    let Ok(mut stream) = TcpStream::connect(addr) else { return };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let await_line = |reader: &mut BufReader<TcpStream>| {
        let mut line = String::new();
        let _ = reader.read_line(&mut line);
    };
    match kind % 6 {
        // Garbage that is not JSON: server must answer a typed error.
        0 => {
            let _ = stream.write_all(b"{definitely not json\n");
            await_line(&mut reader);
        }
        // A single multi-KB line: bounded read path discards, types an error.
        1 => {
            let mut line = vec![b'x'; 64 * 1024];
            line.push(b'\n');
            let _ = stream.write_all(&line);
            await_line(&mut reader);
        }
        // Slow client: a valid request drip-fed in two halves.
        2 => {
            let _ = stream.write_all(b"{\"cmd\":");
            let _ = stream.flush();
            std::thread::sleep(Duration::from_millis(60));
            let _ = stream.write_all(b"\"ping\"}\n");
            await_line(&mut reader);
        }
        // Disconnect mid-line: the server must just drop the connection.
        3 => {
            let _ = stream.write_all(b"{\"cmd\":\"pi");
        }
        // Connection burst: pressure the admission limit; extras get explicit
        // shed lines instead of silent stalls.
        4 => {
            let burst: Vec<TcpStream> =
                (0..6).filter_map(|_| TcpStream::connect(addr).ok()).collect();
            std::thread::sleep(Duration::from_millis(20));
            for mut extra in burst {
                let _ = extra.set_read_timeout(Some(Duration::from_millis(200)));
                let mut buf = [0u8; 256];
                let _ = extra.read(&mut buf); // shed line or nothing
            }
        }
        // Save probe: exercises the save path (and any armed save-crash
        // fault); either an ok or an error line is acceptable.
        _ => {
            let _ = stream.write_all(b"{\"cmd\":\"save\"}\n");
            await_line(&mut reader);
        }
    }
}

/// The machine-readable summary (`--json`).
#[derive(Debug, Serialize)]
struct Summary {
    addr: String,
    dataset: String,
    mode: String,
    requests: usize,
    concurrency: usize,
    elapsed_s: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
    hit: u64,
    coalesced: u64,
    search: u64,
    warm: u64,
    exact: u64,
    degraded_warm: u64,
    degraded_preset: u64,
    shed: u64,
    errors: u64,
    retries: u64,
    reconnects: u64,
    chaos_probes: u64,
    error_rate_pct: f64,
    max_error_rate_pct: f64,
    server: Option<omega_serve::ServerStats>,
}

fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(spec) = DatasetSpec::by_name(&args.dataset) else {
        eprintln!(
            "loadgen: unknown dataset '{}'; known: {}",
            args.dataset,
            DatasetSpec::all().iter().map(|s| s.name).collect::<Vec<_>>().join(", ")
        );
        return ExitCode::FAILURE;
    };

    // Hot set: one dataset instance served at `hot_set` hidden widths — the
    // repeated traffic a warm cache should answer without searching. Fresh
    // requests perturb the graph seed, so each is a new fingerprint (a new
    // graph arriving at the service, Dynasparse-style).
    let dataset = spec.generate(args.seed);
    let hot: Vec<String> = (0..args.hot_set)
        .map(|i| request_line(&args, &GnnWorkload::gcn_layer(&dataset, 16 + 8 * i)))
        .collect();
    let mut fresh_used = 0u64;
    let schedule: Vec<String> = (0..args.requests)
        .map(|i| {
            if mix(args.seed ^ i as u64) % 100 < args.repeat_pct {
                hot[(mix(i as u64) % args.hot_set as u64) as usize].clone()
            } else {
                fresh_used += 1;
                let variant = spec.generate(args.seed.wrapping_add(1000 + fresh_used));
                request_line(&args, &GnnWorkload::gcn_layer(&variant, 16))
            }
        })
        .collect();

    if !args.quiet {
        eprintln!(
            "loadgen: {} requests ({} fresh) over {} connections to {} [{} {}]{}",
            args.requests,
            fresh_used,
            args.concurrency,
            args.addr,
            args.dataset,
            args.mode,
            if args.chaos { " +chaos" } else { "" }
        );
    }

    // Warmup: prime the cache with each hot workload once, off the clock.
    if args.warmup {
        let mut client = match MapperClient::connect(&args.addr, client_policy(&args, u64::MAX)) {
            Ok(client) => client,
            Err(e) => {
                eprintln!("loadgen: cannot connect to {}: {e}", args.addr);
                return ExitCode::FAILURE;
            }
        };
        for line in &hot {
            match client.request_line(line) {
                Ok(_) => {}
                Err(e) => {
                    eprintln!("loadgen: warmup failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let started = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|s| {
        let schedule = &schedule;
        let args = &args;
        let clients: Vec<_> = (0..args.concurrency)
            .map(|t| {
                s.spawn(move || {
                    let mut tally = ClientTally::default();
                    let indexed: Vec<(usize, &String)> =
                        schedule.iter().enumerate().skip(t).step_by(args.concurrency).collect();
                    let mut client =
                        match MapperClient::connect(&args.addr, client_policy(args, t as u64)) {
                            Ok(client) => client,
                            Err(e) => {
                                eprintln!("loadgen: cannot connect to {}: {e}", args.addr);
                                tally.errors += indexed.len() as u64;
                                return tally;
                            }
                        };
                    let mut consecutive_io = 0u32;
                    for (done, (i, line)) in indexed.iter().enumerate() {
                        if args.chaos && mix(args.seed ^ 0xC4A05 ^ *i as u64).is_multiple_of(8) {
                            tally.chaos_probes += 1;
                            chaos_probe(&args.addr, mix(0xFA17 ^ *i as u64));
                        }
                        let sent = Instant::now();
                        match client.request_line(line) {
                            Ok(response) => {
                                consecutive_io = 0;
                                tally.record(sent.elapsed().as_micros() as u64, &response);
                            }
                            Err(e) => {
                                tally.errors += 1;
                                consecutive_io += 1;
                                if consecutive_io > 10 {
                                    // The daemon is gone; charge what's left
                                    // as errors instead of grinding backoffs.
                                    eprintln!("loadgen: giving up on {}: {e}", args.addr);
                                    tally.errors += (indexed.len() - done - 1) as u64;
                                    break;
                                }
                            }
                        }
                    }
                    tally.retries = client.retries();
                    tally.reconnects = client.reconnects();
                    tally
                })
            })
            .collect();
        clients.into_iter().map(|c| c.join().expect("client thread")).collect()
    });
    let elapsed = started.elapsed();

    let mut latencies: Vec<u64> = Vec::with_capacity(args.requests);
    let mut sum = ClientTally::default();
    for t in &tallies {
        latencies.extend_from_slice(&t.latencies_us);
        sum.hit += t.hit;
        sum.coalesced += t.coalesced;
        sum.search += t.search;
        sum.warm += t.warm;
        sum.exact += t.exact;
        sum.degraded_warm += t.degraded_warm;
        sum.degraded_preset += t.degraded_preset;
        sum.shed += t.shed;
        sum.errors += t.errors;
        sum.retries += t.retries;
        sum.reconnects += t.reconnects;
        sum.chaos_probes += t.chaos_probes;
    }
    latencies.sort_unstable();
    let completed = latencies.len();
    let elapsed_s = elapsed.as_secs_f64();
    let qps = if elapsed_s > 0.0 { completed as f64 / elapsed_s } else { 0.0 };
    let p50_ms = percentile_us(&latencies, 0.50) as f64 / 1000.0;
    let p99_ms = percentile_us(&latencies, 0.99) as f64 / 1000.0;
    let mean_ms = if completed > 0 {
        latencies.iter().sum::<u64>() as f64 / completed as f64 / 1000.0
    } else {
        0.0
    };
    // Failure rate over everything attempted: hard errors plus final sheds
    // (a shed that survived all retries is an unanswered request).
    let error_rate_pct = 100.0 * (sum.errors + sum.shed) as f64 / args.requests.max(1) as f64;

    // Server-side counters (and optionally a drain-and-flush shutdown).
    let server = MapperClient::connect(&args.addr, client_policy(&args, u64::MAX - 1))
        .ok()
        .and_then(|mut client| {
            let stats = client.request_line("{\"cmd\":\"stats\"}").ok()?.stats;
            if args.shutdown {
                let _ = client.request_line("{\"cmd\":\"shutdown\"}");
            }
            stats
        });

    println!(
        "loadgen: {completed}/{} requests in {elapsed_s:.3} s — {qps:.0} QPS, \
         p50 {p50_ms:.3} ms, p99 {p99_ms:.3} ms, mean {mean_ms:.3} ms",
        args.requests
    );
    println!(
        "loadgen: cache hit {}, coalesced {}, search {}, warm {}",
        sum.hit, sum.coalesced, sum.search, sum.warm
    );
    println!(
        "loadgen: quality exact {}, degraded-warm {}, degraded-preset {}, shed {}; \
         errors {}, retries {}, reconnects {}, chaos probes {} ({error_rate_pct:.2}% failed, \
         limit {:.2}%)",
        sum.exact,
        sum.degraded_warm,
        sum.degraded_preset,
        sum.shed,
        sum.errors,
        sum.retries,
        sum.reconnects,
        sum.chaos_probes,
        args.max_error_rate
    );
    if let Some(stats) = &server {
        println!(
            "loadgen: server counters — {} requests, {} searches, {} hits, {} coalesced, \
             {} warm starts, {} evictions, {} entries, {} shed, {} degraded-warm, \
             {} degraded-preset, {} cancelled, {} quarantined, {} faults injected",
            stats.requests,
            stats.searches,
            stats.hits,
            stats.coalesced,
            stats.warm_starts,
            stats.evictions,
            stats.cache_entries,
            stats.shed,
            stats.degraded_warm,
            stats.degraded_preset,
            stats.cancelled_searches,
            stats.quarantined_loads,
            stats.faults_injected
        );
    }

    let summary = Summary {
        addr: args.addr.clone(),
        dataset: args.dataset.clone(),
        mode: args.mode.clone(),
        requests: completed,
        concurrency: args.concurrency,
        elapsed_s,
        qps,
        p50_ms,
        p99_ms,
        mean_ms,
        hit: sum.hit,
        coalesced: sum.coalesced,
        search: sum.search,
        warm: sum.warm,
        exact: sum.exact,
        degraded_warm: sum.degraded_warm,
        degraded_preset: sum.degraded_preset,
        shed: sum.shed,
        errors: sum.errors,
        retries: sum.retries,
        reconnects: sum.reconnects,
        chaos_probes: sum.chaos_probes,
        error_rate_pct,
        max_error_rate_pct: args.max_error_rate,
        server,
    };
    if let Some(path) = &args.json {
        let json = serde_json::to_string(&summary).expect("summary JSON");
        if path == "-" {
            println!("{json}");
        } else if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("loadgen: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if error_rate_pct > args.max_error_rate {
        eprintln!(
            "loadgen: FAILED — error rate {error_rate_pct:.2}% exceeds limit {:.2}%",
            args.max_error_rate
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
