//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro                 # run everything, print tables, write results/
//! repro fig11 fig14     # run a subset
//! repro --out results   # choose the output directory
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use omega_bench::{figures, insights, render, sweep, tables};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = PathBuf::from("results");
    if let Some(pos) = args.iter().position(|a| a == "--out") {
        if pos + 1 >= args.len() {
            eprintln!("--out requires a directory argument");
            return ExitCode::FAILURE;
        }
        out_dir = PathBuf::from(args.remove(pos + 1));
        args.remove(pos);
    }
    let all = [
        "table1", "table2", "table3", "table4", "table5", "fig11", "fig12", "fig13", "fig14",
        "fig15", "fig16", "flexibility", "ablation", "accelerators", "sweep", "preset_gap",
        "model_dse", "capacity_study",
    ];
    let selected: Vec<String> = if args.is_empty() {
        all.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };

    for name in &selected {
        match name.as_str() {
            "table1" => emit(&out_dir, name, "Table I: dataflow implications", &tables::table1()),
            "table2" => {
                emit(&out_dir, name, "Table II: design-space size", &[tables::table2()])
            }
            "table3" => emit(
                &out_dir,
                name,
                "Table III: closed forms vs simulator",
                &tables::table3(),
            ),
            "table4" => emit(&out_dir, name, "Table IV: datasets", &tables::table4()),
            "table5" => emit(&out_dir, name, "Table V: dataflow configurations", &tables::table5()),
            "fig11" => emit(&out_dir, name, "Fig 11: runtime vs Seq1", &figures::fig11()),
            "fig12" => emit(&out_dir, name, "Fig 12: buffer access energy", &figures::fig12()),
            "fig13" => emit(&out_dir, name, "Fig 13: GB access breakdown", &figures::fig13()),
            "fig14" => emit(&out_dir, name, "Fig 14: PP load balancing", &figures::fig14()),
            "fig15" => emit(&out_dir, name, "Fig 15: 512 vs 2048 PEs", &figures::fig15()),
            "fig16" => emit(&out_dir, name, "Fig 16: bandwidth sensitivity", &figures::fig16()),
            "flexibility" => emit(
                &out_dir,
                name,
                "Section V-D: value of flexibility (rigid vs reconfigurable)",
                &insights::flexibility(),
            ),
            "ablation" => emit(
                &out_dir,
                name,
                "Cost-model ablation (DESIGN.md S3 decisions)",
                &insights::ablation(),
            ),
            "accelerators" => emit(
                &out_dir,
                name,
                "Published accelerator dataflows: HyGCN vs AWB-GCN vs best preset",
                &insights::accelerators(),
            ),
            "sweep" => emit(
                &out_dir,
                name,
                "Graph-property sweep: where the best dataflow flips",
                &sweep::sweep(),
            ),
            "preset_gap" => emit(
                &out_dir,
                name,
                "Preset gap: best Table V preset vs the exhaustive 6,656-space optimum",
                &insights::preset_gap(),
            ),
            "model_dse" => emit(
                &out_dir,
                name,
                "Model-level DSE: per-layer-specialised + pipelined chains vs best uniform preset",
                &insights::model_gap(),
            ),
            "capacity_study" => emit(
                &out_dir,
                name,
                "Capacity study: Table V preset winners under finite RF/GB budgets",
                &insights::capacity_study(),
            ),
            other => {
                eprintln!("unknown experiment '{other}'; known: {}", all.join(", "));
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn emit<T: serde::Serialize>(out_dir: &std::path::Path, id: &str, title: &str, rows: &[T]) {
    print!("{}", render::text_table(title, rows));
    println!();
    let csv = out_dir.join(format!("{id}.csv"));
    let json = out_dir.join(format!("{id}.json"));
    if let Err(e) = render::write_csv(&csv, rows) {
        eprintln!("warning: could not write {}: {e}", csv.display());
    }
    if let Err(e) = render::write_json(&json, rows) {
        eprintln!("warning: could not write {}: {e}", json.display());
    }
}
