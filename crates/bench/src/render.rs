//! Generic rendering of experiment rows: aligned terminal tables, CSV, JSON.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use serde::Serialize;
use serde_json::Value;

/// Flattens one JSON object into `(column, cell)` pairs: nested objects get
/// dotted keys, arrays are joined with `;`.
fn flatten(prefix: &str, v: &Value, out: &mut Vec<(String, String)>) {
    match v {
        Value::Object(map) => {
            for (k, val) in map {
                let key = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                flatten(&key, val, out);
            }
        }
        Value::Array(items) => {
            let joined = items
                .iter()
                .map(render_scalar)
                .collect::<Vec<_>>()
                .join(";");
            out.push((prefix.to_string(), joined));
        }
        other => out.push((prefix.to_string(), render_scalar(other))),
    }
}

fn render_scalar(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::Number(n) => {
            if let Some(f) = n.as_f64() {
                if n.is_f64() {
                    format!("{f:.4}")
                } else {
                    n.to_string()
                }
            } else {
                n.to_string()
            }
        }
        Value::Bool(b) => b.to_string(),
        Value::Null => String::new(),
        other => other.to_string(),
    }
}

/// Converts rows into `(header, records)` form.
fn tabulate<T: Serialize>(rows: &[T]) -> (Vec<String>, Vec<Vec<String>>) {
    let mut header: Vec<String> = Vec::new();
    let mut records = Vec::with_capacity(rows.len());
    for row in rows {
        let v = serde_json::to_value(row).expect("rows serialize");
        let mut cells = Vec::new();
        flatten("", &v, &mut cells);
        if header.is_empty() {
            header = cells.iter().map(|(k, _)| k.clone()).collect();
        }
        records.push(cells.into_iter().map(|(_, c)| c).collect());
    }
    (header, records)
}

/// Renders rows as an aligned text table.
pub fn text_table<T: Serialize>(title: &str, rows: &[T]) -> String {
    let (header, records) = tabulate(rows);
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for rec in &records {
        for (i, cell) in rec.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let line = |cells: &[String], widths: &[usize]| {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let _ = writeln!(out, "{}", line(&header, &widths));
    for rec in &records {
        let _ = writeln!(out, "{}", line(rec, &widths));
    }
    out
}

/// Writes rows as CSV.
pub fn write_csv<T: Serialize>(path: &Path, rows: &[T]) -> std::io::Result<()> {
    let (header, records) = tabulate(rows);
    let mut out = String::new();
    let esc = |s: &str| {
        if s.contains(',') || s.contains('"') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let _ = writeln!(out, "{}", header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
    for rec in records {
        let _ = writeln!(out, "{}", rec.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
    }
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, out)
}

/// Writes rows as pretty JSON.
pub fn write_json<T: Serialize>(path: &Path, rows: &[T]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, serde_json::to_string_pretty(rows).expect("rows serialize"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Row {
        name: String,
        value: f64,
        count: u64,
        tags: Vec<String>,
    }

    fn rows() -> Vec<Row> {
        vec![
            Row { name: "a".into(), value: 1.5, count: 10, tags: vec!["x".into(), "y".into()] },
            Row { name: "long-name".into(), value: 0.25, count: 2, tags: vec![] },
        ]
    }

    #[test]
    fn text_table_is_aligned_and_titled() {
        let t = text_table("Demo", &rows());
        assert!(t.contains("== Demo =="));
        assert!(t.contains("name"));
        assert!(t.contains("1.5000"));
        assert!(t.contains("x;y"));
    }

    #[test]
    fn csv_round_trips_through_fs() {
        let dir = std::env::temp_dir().join("omega-bench-test");
        let path = dir.join("demo.csv");
        write_csv(&path, &rows()).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let mut lines = content.lines();
        assert_eq!(lines.next().unwrap(), "count,name,tags,value");
        assert!(content.contains("10,a,x;y,1.5000"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_output_parses_back() {
        let dir = std::env::temp_dir().join("omega-bench-test-json");
        let path = dir.join("demo.json");
        write_json(&path, &rows()).unwrap();
        let v: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
