//! Workload-property sweeps: "the impact of graph properties (such as number
//! of vertices, edges, features) on dataflow choices" (contribution (iii)).
//!
//! Synthetic single-knob sweeps over density (edges/vertex), feature width, and
//! degree skew show *where* the best dataflow flips — the map a mapper or DSE
//! tool needs (Section I: "in order for mappers or design-space exploration
//! tools to optimize the dataflow based on the workload").

use serde::Serialize;

use omega_accel::AccelConfig;
use omega_core::GnnWorkload;
use omega_dataflow::presets::Preset;
use omega_graph::generators::{chung_lu, erdos_renyi};

use crate::common::eval_preset;

/// One sweep point: a synthetic workload and the winning dataflow.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// Which knob the sweep varies (`density`, `features`, `skew`).
    pub knob: String,
    /// The knob's value at this point.
    pub value: f64,
    /// Workload summary `V/nnz/F`.
    pub workload: String,
    /// Winning preset by runtime.
    pub best_runtime: String,
    /// Winning preset by energy.
    pub best_energy: String,
    /// Runtime spread: worst preset over best preset.
    pub runtime_spread: f64,
}

fn best(points: &[(String, u64, f64)]) -> (String, String, f64) {
    let best_rt = points.iter().min_by_key(|(_, c, _)| *c).expect("non-empty");
    let best_en = points
        .iter()
        .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))
        .expect("non-empty");
    let worst_rt = points.iter().map(|(_, c, _)| *c).max().expect("non-empty");
    (best_rt.0.clone(), best_en.0.clone(), worst_rt as f64 / best_rt.1 as f64)
}

fn eval_all(wl: &GnnWorkload, cfg: &AccelConfig) -> Vec<(String, u64, f64)> {
    Preset::all()
        .iter()
        .map(|p| {
            let e = eval_preset(p, wl, cfg);
            (p.name.to_string(), e.report.total_cycles, e.report.energy.total_pj())
        })
        .collect()
}

/// Regenerates the graph-property sweep.
pub fn sweep() -> Vec<SweepRow> {
    let cfg = AccelConfig::paper_default();
    let mut rows = Vec::new();

    // --- density sweep: ER graphs, V = 1024, F = 256, mean degree 2 → 128 ----
    for mean_deg in [2usize, 8, 32, 128] {
        let edges = 1024 * mean_deg / 2;
        let g = erdos_renyi("sweep-density", 1024, edges, 256, 7).build();
        let wl = GnnWorkload::from_graph(&g, 16);
        let points = eval_all(&wl, &cfg);
        let (rt, en, spread) = best(&points);
        rows.push(SweepRow {
            knob: "density".into(),
            value: mean_deg as f64,
            workload: format!("{}/{}/{}", wl.v, wl.nnz, wl.f),
            best_runtime: rt,
            best_energy: en,
            runtime_spread: spread,
        });
    }

    // --- feature sweep: fixed sparse graph, F = 32 → 4096 --------------------
    for f in [32usize, 256, 1024, 4096] {
        let g = chung_lu("sweep-features", 2048, 4096, 2.2, f, 11).build();
        let wl = GnnWorkload::from_graph(&g, 16);
        let points = eval_all(&wl, &cfg);
        let (rt, en, spread) = best(&points);
        rows.push(SweepRow {
            knob: "features".into(),
            value: f as f64,
            workload: format!("{}/{}/{}", wl.v, wl.nnz, wl.f),
            best_runtime: rt,
            best_energy: en,
            runtime_spread: spread,
        });
    }

    // --- skew sweep: same V/E/F, power-law exponent 1.9 → 3.5 ----------------
    for gamma in [1.9f64, 2.2, 2.8, 3.5] {
        let g = chung_lu("sweep-skew", 2048, 6144, gamma, 512, 13).build();
        let wl = GnnWorkload::from_graph(&g, 16);
        let points = eval_all(&wl, &cfg);
        let (rt, en, spread) = best(&points);
        rows.push(SweepRow {
            knob: "skew".into(),
            value: gamma,
            workload: format!("{}/{}/{}", wl.v, wl.nnz, wl.f),
            best_runtime: rt,
            best_energy: en,
            runtime_spread: spread,
        });
    }

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_three_knobs() {
        let rows = sweep();
        assert_eq!(rows.len(), 12);
        for knob in ["density", "features", "skew"] {
            assert_eq!(rows.iter().filter(|r| r.knob == knob).count(), 4, "{knob}");
        }
        // The design space matters everywhere: spread is never trivial, and it
        // widens with density and skew (picking the wrong dataflow costs 1.7-4.4x).
        assert!(rows.iter().all(|r| r.runtime_spread > 1.05), "{rows:#?}");
        let density: Vec<_> = rows.iter().filter(|r| r.knob == "density").collect();
        assert!(density.last().unwrap().runtime_spread > density.first().unwrap().runtime_spread);
        // The winner is workload-dependent (the paper's core thesis): across the
        // runtime and energy objectives the sweep crowns several distinct
        // dataflows (on *uniform* synthetic graphs the runtime winner is stable —
        // see EXPERIMENTS.md D1 — while the energy winner flips with the knobs).
        let winners: std::collections::HashSet<_> = rows
            .iter()
            .flat_map(|r| [r.best_runtime.clone(), r.best_energy.clone()])
            .collect();
        assert!(winners.len() >= 3, "winners: {winners:?}");
    }
}
