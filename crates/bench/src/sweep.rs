//! Workload-property sweeps: "the impact of graph properties (such as number
//! of vertices, edges, features) on dataflow choices" (contribution (iii)).
//!
//! Synthetic single-knob sweeps over density (edges/vertex), feature width, and
//! degree skew show *where* the best dataflow flips — the map a mapper or DSE
//! tool needs (Section I: "in order for mappers or design-space exploration
//! tools to optimize the dataflow based on the workload").

use serde::Serialize;

use omega_accel::AccelConfig;
use omega_core::dse::{DseCache, DseOptions};
use omega_core::mapper::Objective;
use omega_core::GnnWorkload;
use omega_dataflow::presets::Preset;
use omega_graph::generators::{chung_lu, erdos_renyi};

use crate::common::eval_preset;

/// One sweep point: a synthetic workload and the winning dataflow.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// Which knob the sweep varies (`density`, `features`, `skew`).
    pub knob: String,
    /// The knob's value at this point.
    pub value: f64,
    /// Workload summary `V/nnz/F`.
    pub workload: String,
    /// Winning preset by runtime.
    pub best_runtime: String,
    /// Winning preset by energy.
    pub best_energy: String,
    /// Runtime spread: worst preset over best preset.
    pub runtime_spread: f64,
    /// The exhaustive optimum of the full 6,656-pattern space (by runtime).
    pub exhaustive_best: String,
    /// Its cycles.
    pub exhaustive_cycles: u64,
    /// Preset gap: best preset runtime over the exhaustive optimum's (≥ 1) —
    /// what Table V's presets leave on the table at this knob point.
    pub preset_gap: f64,
}

fn best(points: &[(String, u64, f64)]) -> (String, u64, String, f64) {
    let best_rt = points.iter().min_by_key(|(_, c, _)| *c).expect("non-empty");
    let best_en = points
        .iter()
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("non-empty");
    let worst_rt = points.iter().map(|(_, c, _)| *c).max().expect("non-empty");
    (best_rt.0.clone(), best_rt.1, best_en.0.clone(), worst_rt as f64 / best_rt.1 as f64)
}

fn eval_all(wl: &GnnWorkload, cfg: &AccelConfig) -> Vec<(String, u64, f64)> {
    Preset::all()
        .iter()
        .map(|p| {
            let e = eval_preset(p, wl, cfg);
            (p.name.to_string(), e.report.total_cycles, e.report.energy.total_pj())
        })
        .collect()
}

/// One sweep point evaluated: preset winners plus the exhaustive optimum, the
/// latter served by `cache` so repeated sweeps never re-search the space.
fn row(knob: &str, value: f64, wl: &GnnWorkload, cfg: &AccelConfig, cache: &DseCache) -> SweepRow {
    let points = eval_all(wl, cfg);
    let (rt, rt_cycles, en, spread) = best(&points);
    let outcome = cache.explore(
        wl,
        cfg,
        &DseOptions { top_k: 1, ..DseOptions::new(Objective::Runtime) },
    );
    let optimum = outcome.best().expect("the enumerated space is never empty");
    SweepRow {
        knob: knob.into(),
        value,
        workload: format!("{}/{}/{}", wl.v, wl.nnz, wl.f),
        best_runtime: rt,
        best_energy: en,
        runtime_spread: spread,
        exhaustive_best: optimum.dataflow.to_string(),
        exhaustive_cycles: optimum.report.total_cycles,
        preset_gap: rt_cycles as f64 / optimum.report.total_cycles as f64,
    }
}

/// Regenerates the graph-property sweep, using the process-wide [`DseCache`]
/// for the exhaustive optima.
pub fn sweep() -> Vec<SweepRow> {
    sweep_with_cache(DseCache::global())
}

/// [`sweep`] with an explicit exhaustive-search cache (tests inject a local
/// one to observe hit behaviour without cross-test interference).
pub fn sweep_with_cache(cache: &DseCache) -> Vec<SweepRow> {
    let cfg = AccelConfig::paper_default();
    let mut rows = Vec::new();

    // --- density sweep: ER graphs, V = 1024, F = 256, mean degree 2 → 128 ----
    for mean_deg in [2usize, 8, 32, 128] {
        let edges = 1024 * mean_deg / 2;
        let g = erdos_renyi("sweep-density", 1024, edges, 256, 7).build();
        let wl = GnnWorkload::from_graph(&g, 16);
        rows.push(row("density", mean_deg as f64, &wl, &cfg, cache));
    }

    // --- feature sweep: fixed sparse graph, F = 32 → 4096 --------------------
    for f in [32usize, 256, 1024, 4096] {
        let g = chung_lu("sweep-features", 2048, 4096, 2.2, f, 11).build();
        let wl = GnnWorkload::from_graph(&g, 16);
        rows.push(row("features", f as f64, &wl, &cfg, cache));
    }

    // --- skew sweep: same V/E/F, power-law exponent 1.9 → 3.5 ----------------
    for gamma in [1.9f64, 2.2, 2.8, 3.5] {
        let g = chung_lu("sweep-skew", 2048, 6144, gamma, 512, 13).build();
        let wl = GnnWorkload::from_graph(&g, 16);
        rows.push(row("skew", gamma, &wl, &cfg, cache));
    }

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_three_knobs() {
        let rows = sweep();
        assert_eq!(rows.len(), 12);
        for knob in ["density", "features", "skew"] {
            assert_eq!(rows.iter().filter(|r| r.knob == knob).count(), 4, "{knob}");
        }
        // The design space matters everywhere: spread is never trivial, and it
        // widens with density and skew (picking the wrong dataflow costs 1.7-4.4x).
        assert!(rows.iter().all(|r| r.runtime_spread > 1.05), "{rows:#?}");
        let density: Vec<_> = rows.iter().filter(|r| r.knob == "density").collect();
        assert!(density.last().unwrap().runtime_spread > density.first().unwrap().runtime_spread);
        // The winner is workload-dependent (the paper's core thesis): across the
        // runtime and energy objectives the sweep crowns several distinct
        // dataflows (on *uniform* synthetic graphs the runtime winner is stable —
        // see EXPERIMENTS.md D1 — while the energy winner flips with the knobs).
        let winners: std::collections::HashSet<_> = rows
            .iter()
            .flat_map(|r| [r.best_runtime.clone(), r.best_energy.clone()])
            .collect();
        assert!(winners.len() >= 3, "winners: {winners:?}");
        // The exhaustive optimum (seeded with the presets) can never lose to a
        // preset, so every gap is ≥ 1; and somewhere in the sweep the presets
        // genuinely leave runtime on the table.
        assert!(rows.iter().all(|r| r.preset_gap >= 1.0 - 1e-12), "{rows:#?}");
        assert!(rows.iter().all(|r| r.exhaustive_cycles > 0));
        assert!(
            rows.iter().any(|r| r.preset_gap > 1.01),
            "presets optimal everywhere? {rows:#?}"
        );
    }

    #[test]
    fn repeated_sweeps_hit_the_dse_cache() {
        // A local cache isolates this from other tests sharing the global one;
        // the searches counter is the observable (a re-search of a known
        // workload would not change len()).
        let cache = DseCache::new();
        let first = sweep_with_cache(&cache);
        assert_eq!(cache.searches(), 12, "one search per sweep point");
        let second = sweep_with_cache(&cache);
        assert_eq!(cache.searches(), 12, "second sweep re-searched");
        assert_eq!(cache.len(), 12);
        let gaps = |rows: &[SweepRow]| -> Vec<(String, u64)> {
            rows.iter().map(|r| (r.exhaustive_best.clone(), r.exhaustive_cycles)).collect()
        };
        assert_eq!(gaps(&first), gaps(&second));
    }
}
