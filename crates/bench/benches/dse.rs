//! Criterion benches for the exhaustive DSE engine: full-space search cost and
//! thread scaling (near-linear on multi-core hosts; flat on a single core).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use omega_accel::AccelConfig;
use omega_core::dse::{explore, DseOptions};
use omega_core::mapper::Objective;
use omega_core::GnnWorkload;
use omega_graph::DatasetSpec;

fn workload(name: &str) -> GnnWorkload {
    let dataset = DatasetSpec::by_name(name).expect("dataset").generate(0x0E5A_2022);
    GnnWorkload::gcn_layer(&dataset, 16)
}

fn bench_thread_scaling(c: &mut Criterion) {
    let wl = workload("Mutag");
    let cfg = AccelConfig::paper_default();
    let mut group = c.benchmark_group("dse_exhaustive_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            b.iter(|| {
                let out = explore(
                    &wl,
                    &cfg,
                    &DseOptions { threads, ..DseOptions::new(Objective::Runtime) },
                );
                assert_eq!(out.space, 6656);
                out.best().map(|r| r.report.total_cycles)
            })
        });
    }
    group.finish();
}

/// The ISSUE 4 headline: phase-factored + pruned vs brute-force reference,
/// single-threaded, per dataset (the configuration `BENCH_dse.json` records —
/// regenerate its numbers from this bench's output after engine changes).
fn bench_factored_vs_reference(c: &mut Criterion) {
    let cfg = AccelConfig::paper_default();
    for dataset in ["Mutag", "Proteins", "Citeseer"] {
        let wl = workload(dataset);
        let mut group = c.benchmark_group(format!("dse_single_thread/{dataset}"));
        // The reference arm re-simulates every candidate twice; keep the
        // sample count low so the slow arm stays tractable.
        group.sample_size(3);
        for (name, prune, phase_cache) in
            [("factored", true, true), ("reference", false, false)]
        {
            group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
                b.iter(|| {
                    let out = explore(
                        &wl,
                        &cfg,
                        &DseOptions {
                            threads: 1,
                            prune,
                            phase_cache,
                            ..DseOptions::new(Objective::Runtime)
                        },
                    );
                    assert_eq!(out.space, 6656);
                    out.best().map(|r| r.report.total_cycles)
                })
            });
        }
        group.finish();
    }
}

fn bench_objectives(c: &mut Criterion) {
    let wl = workload("Proteins");
    let cfg = AccelConfig::paper_default();
    let mut group = c.benchmark_group("dse_exhaustive_objective");
    group.sample_size(10);
    for (name, objective) in
        [("runtime", Objective::Runtime), ("energy", Objective::Energy), ("edp", Objective::Edp)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(name), &objective, |b, &objective| {
            b.iter(|| {
                explore(&wl, &cfg, &DseOptions { threads: 4, ..DseOptions::new(objective) })
                    .best()
                    .map(|r| r.score)
            })
        });
    }
    group.finish();
}

/// The ISSUE 5 trajectory row: the GAT model-level joint search (three-phase
/// layers, SDDMM included) through the factored per-layer engine vs the
/// brute-force reference arm, single-threaded on Cora.
fn bench_gat_model_search(c: &mut Criterion) {
    use omega_core::dse::model::{explore_model, ModelDseOptions};
    use omega_core::dse::DseCache;
    use omega_core::models::GnnModel;

    let cfg = AccelConfig::paper_default();
    let wl = workload("Cora");
    let model = GnnModel::gat_2layer(8, 7);
    let mut group = c.benchmark_group("dse_model_gat/Cora");
    group.sample_size(3);
    for (name, prune, phase_cache) in [("factored", true, true), ("reference", false, false)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                // A fresh cache per iteration so the layer searches really run.
                let cache = DseCache::new();
                let opts = ModelDseOptions {
                    threads: 1,
                    prune,
                    phase_cache,
                    ..ModelDseOptions::default()
                };
                let out = explore_model(&model, &wl, &cfg, &opts, &cache);
                out.best().map(|r| r.report.total_cycles)
            })
        });
    }
    group.finish();
}

/// The capacity-aware Pareto sweep vs the single-objective top-K search it
/// rides alongside: one pass over the same 6,656-pattern space, maintaining
/// the full (runtime, energy, buffer-footprint) frontier with bound-vector
/// pruning instead of a scalar threshold.
fn bench_pareto_frontier(c: &mut Criterion) {
    let wl = workload("Mutag");
    let cfg = AccelConfig::paper_default();
    let mut group = c.benchmark_group("dse_pareto/Mutag");
    group.sample_size(10);
    for (name, pareto, prune) in
        [("topk", false, true), ("pareto", true, true), ("pareto_noprune", true, false)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                let out = explore(
                    &wl,
                    &cfg,
                    &DseOptions {
                        threads: 2,
                        pareto,
                        prune,
                        ..DseOptions::new(Objective::Runtime)
                    },
                );
                assert_eq!(out.space, 6656);
                if pareto {
                    assert!(out.frontier.len() >= 3);
                }
                out.best().map(|r| r.report.total_cycles)
            })
        });
    }
    group.finish();
}

criterion_group!(
    dse,
    bench_factored_vs_reference,
    bench_thread_scaling,
    bench_objectives,
    bench_gat_model_search,
    bench_pareto_frontier
);
criterion_main!(dse);
