//! Criterion benches — one per evaluation figure. Each measures the wall time
//! of regenerating that figure with the OMEGA cost model, so regressions in
//! the simulator's asymptotics show up here.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use omega_bench::figures;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig11", |b| b.iter(|| black_box(figures::fig11())));
    g.bench_function("fig12", |b| b.iter(|| black_box(figures::fig12())));
    g.bench_function("fig13", |b| b.iter(|| black_box(figures::fig13())));
    g.bench_function("fig14", |b| b.iter(|| black_box(figures::fig14())));
    g.bench_function("fig15", |b| b.iter(|| black_box(figures::fig15())));
    g.bench_function("fig16", |b| b.iter(|| black_box(figures::fig16())));
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
