//! Criterion benches — one per paper table.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use omega_bench::tables;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1", |b| b.iter(|| black_box(tables::table1())));
    g.bench_function("table2", |b| b.iter(|| black_box(tables::table2())));
    g.bench_function("table3", |b| b.iter(|| black_box(tables::table3())));
    g.bench_function("table4", |b| b.iter(|| black_box(tables::table4())));
    g.bench_function("table5", |b| b.iter(|| black_box(tables::table5())));
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
