//! Micro-benchmarks of the simulator substrate: per-phase engine throughput,
//! dataset generation, reference kernels, and the mapper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use omega_accel::engine::{simulate_gemm, simulate_spmm, EngineOptions, GemmDims, OperandClasses, SpmmWorkload};
use omega_accel::AccelConfig;
use omega_core::mapper::{best_of, preset_candidates, Objective};
use omega_core::GnnWorkload;
use omega_dataflow::presets::Preset;
use omega_dataflow::{Dim, IntraTiling, LoopOrder, Phase};
use omega_graph::DatasetSpec;
use omega_matrix::ops;
use omega_matrix::DenseMatrix;

fn bench_phase_engines(c: &mut Criterion) {
    let cfg = AccelConfig::paper_default();
    let citeseer = DatasetSpec::citeseer().generate(7);
    let wl = GnnWorkload::gcn_layer(&citeseer, 16);

    let mut g = c.benchmark_group("engines");
    g.sample_size(20);

    let agg_tiling = IntraTiling::new(
        Phase::Aggregation,
        LoopOrder::new(Phase::Aggregation, [Dim::V, Dim::F, Dim::N]).unwrap(),
        [32, 16, 1],
    );
    g.bench_function("spmm_citeseer", |b| {
        let spmm = SpmmWorkload { degrees: &wl.degrees, feature_width: wl.f };
        b.iter(|| {
            black_box(simulate_spmm(
                &spmm,
                &agg_tiling,
                &cfg,
                &OperandClasses::aggregation_ac(),
                &EngineOptions::plain(cfg.full_bandwidth()),
            ))
        })
    });

    let cmb_tiling = IntraTiling::new(
        Phase::Combination,
        LoopOrder::new(Phase::Combination, [Dim::V, Dim::G, Dim::F]).unwrap(),
        [32, 16, 1],
    );
    g.bench_function("gemm_citeseer", |b| {
        b.iter(|| {
            black_box(simulate_gemm(
                GemmDims { v: wl.v, f: wl.f, g: wl.g },
                &cmb_tiling,
                &cfg,
                &OperandClasses::combination_ac(),
                &EngineOptions::plain(cfg.full_bandwidth()),
            ))
        })
    });
    g.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("generation");
    g.sample_size(10);
    for name in ["Mutag", "Collab", "Citeseer"] {
        g.bench_with_input(BenchmarkId::new("dataset", name), &name, |b, name| {
            let spec = DatasetSpec::by_name(name).unwrap();
            b.iter(|| black_box(spec.generate(3)))
        });
    }
    g.finish();
}

fn bench_reference_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("reference");
    g.sample_size(10);
    let a = DenseMatrix::from_fn(256, 256, |i, j| ((i * j) % 7) as f32);
    let b_mat = DenseMatrix::from_fn(256, 64, |i, j| ((i + j) % 5) as f32);
    g.bench_function("gemm_256", |b| b.iter(|| black_box(ops::gemm(&a, &b_mat).unwrap())));
    g.bench_function("gemm_256_parallel", |b| {
        b.iter(|| black_box(ops::gemm_parallel(&a, &b_mat, 4).unwrap()))
    });
    g.finish();
}

fn bench_mapper(c: &mut Criterion) {
    let cfg = AccelConfig::paper_default();
    let wl = GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(7), 16);
    let candidates = preset_candidates(&wl, &cfg);
    let mut g = c.benchmark_group("mapper");
    g.sample_size(10);
    g.bench_function("presets_mutag", |b| {
        b.iter(|| black_box(best_of(&candidates, &wl, &cfg, Objective::Runtime, 4)))
    });
    g.finish();
    // Keep a preset alive so the dependency is exercised end to end.
    black_box(Preset::all());
}

criterion_group!(benches, bench_phase_engines, bench_generation, bench_reference_kernels, bench_mapper);
criterion_main!(benches);
