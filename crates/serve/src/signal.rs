//! Process-termination signals for the daemon: SIGTERM/SIGINT flip a flag the
//! serving loops poll, so shutdown drains in-flight work and flushes the cache
//! instead of killing the process mid-request.
//!
//! This is the only unsafe code in the crate (the raw `signal(2)` FFI call);
//! `omega_core` itself forbids unsafe, so the daemon hosts it here. The
//! handler only stores to an atomic — async-signal-safe by construction.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATION: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been delivered (or [`request`]ed).
pub fn termination_requested() -> bool {
    TERMINATION.load(Ordering::SeqCst)
}

/// Marks termination as requested, as if a signal had arrived. Used by the
/// in-band `shutdown` protocol command and by tests.
pub fn request() {
    TERMINATION.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_terminate(_signum: i32) {
        super::request();
    }

    /// Installs SIGTERM/SIGINT handlers that flip the termination flag.
    pub fn install() {
        unsafe {
            signal(SIGTERM, on_terminate);
            signal(SIGINT, on_terminate);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal facility on this platform; the in-band `shutdown` command
    /// (and [`super::request`]) still work.
    pub fn install() {}
}

pub use imp::install;

#[cfg(test)]
mod tests {
    #[test]
    fn request_flips_the_flag() {
        // Process-global state: this test must not assume the flag starts
        // false if another test raised it, so it only checks the raise path.
        super::request();
        assert!(super::termination_requested());
    }
}
