//! `mapperd` — the persistent mapper daemon.
//!
//! ```text
//! mapperd --addr 127.0.0.1:7453 --threads 4 --cache-file mapper-cache.json
//! mapperd --addr 127.0.0.1:0 --cache-cap 4096 --search-threads 8 --quiet
//! ```
//!
//! Listens for newline-delimited JSON mapping requests (see the
//! `omega_serve` crate docs for the protocol), answering each from the
//! process-wide decision cache. Prints the bound address on stdout once
//! ready — wait for that line (or poll the port) before sending traffic.
//! SIGTERM, SIGINT, or an in-band `{"cmd":"shutdown"}` drain the workers and
//! flush the cache to `--cache-file`.

use std::path::PathBuf;
use std::process::ExitCode;

use omega_serve::faults::FaultPlan;
use omega_serve::{signal, MapperServer, ServeOptions};

const USAGE: &str = "usage: mapperd [--addr HOST:PORT] [--threads N] [--search-threads N] \
                     [--cache-cap N] [--cache-file PATH] [--top K] [--max-connections N] \
                     [--max-line-bytes N] [--write-timeout-ms N] [--no-background-complete] \
                     [--fault-plan SPEC] [--quiet]\n\
                     SPEC: panic_every=N,search_delay_ms=N,save_crash=0|1 \
                     (also read from $OMEGA_FAULTS)";

fn parse_args() -> Result<ServeOptions, String> {
    let mut opts = ServeOptions { faults: FaultPlan::from_env()?, ..Default::default() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--threads" => {
                opts.threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--search-threads" => {
                opts.search_threads =
                    value("--search-threads")?.parse().map_err(|e| format!("--search-threads: {e}"))?
            }
            "--cache-cap" => {
                opts.cache_capacity =
                    value("--cache-cap")?.parse().map_err(|e| format!("--cache-cap: {e}"))?
            }
            "--cache-file" => opts.cache_file = Some(PathBuf::from(value("--cache-file")?)),
            "--top" => opts.top_k = value("--top")?.parse().map_err(|e| format!("--top: {e}"))?,
            "--max-connections" => {
                opts.max_connections =
                    value("--max-connections")?.parse().map_err(|e| format!("--max-connections: {e}"))?
            }
            "--max-line-bytes" => {
                opts.max_line_bytes =
                    value("--max-line-bytes")?.parse().map_err(|e| format!("--max-line-bytes: {e}"))?
            }
            "--write-timeout-ms" => {
                opts.write_timeout_ms =
                    value("--write-timeout-ms")?.parse().map_err(|e| format!("--write-timeout-ms: {e}"))?
            }
            "--no-background-complete" => opts.background_complete = false,
            "--fault-plan" => opts.faults = FaultPlan::parse(&value("--fault-plan")?)?,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("mapperd: {e}");
            return ExitCode::FAILURE;
        }
    };
    signal::install();
    if opts.faults.is_active() && !opts.quiet {
        eprintln!("mapperd: fault plan armed: {}", opts.faults);
    }
    let server = match MapperServer::bind(opts) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("mapperd: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("mapperd: listening on {addr}"),
        Err(e) => {
            eprintln!("mapperd: no local address: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(stats) => {
            println!(
                "mapperd: served {} requests ({} errors) — {} searches, {} hits, \
                 {} coalesced, {} warm starts, {} evictions, {} shed, \
                 {} degraded (warm {} / preset {}), {} cancelled searches, \
                 {} faults injected, p50 {} µs, p99 {} µs",
                stats.requests,
                stats.errors,
                stats.searches,
                stats.hits,
                stats.coalesced,
                stats.warm_starts,
                stats.evictions,
                stats.shed,
                stats.degraded_warm + stats.degraded_preset,
                stats.degraded_warm,
                stats.degraded_preset,
                stats.cancelled_searches,
                stats.faults_injected,
                stats.p50_us,
                stats.p99_us,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mapperd: {e}");
            ExitCode::FAILURE
        }
    }
}
