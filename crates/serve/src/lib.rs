//! Mapper-as-a-service: `mapperd`, a persistent decision daemon over a shared
//! [`DseCache`].
//!
//! Dynasparse-style input-adaptive execution only works if the mapper answers
//! in milliseconds; the factored DSE made a Citeseer full-space sweep take
//! ~9 ms, and this crate productionises it as a long-running service. Clients
//! speak newline-delimited JSON over TCP: each line is one request, each
//! answer one line. A worker-thread pool multiplexes connections; every
//! mapping request funnels through one process-wide [`DseCache`], so identical
//! concurrent requests single-flight onto one search, repeats answer from
//! memory, and the whole cache persists across restarts via
//! [`DseCache::save`]/[`DseCache::load_or_quarantine`].
//!
//! ## Protocol
//!
//! Request fields (all except the workload shape optional):
//!
//! ```json
//! {"id":1,"workload":{"name":"Citeseer","v":3327,"f":3703,"g":16,
//!  "degrees":[...],"attention_heads":0,"post_op":null},
//!  "objective":"runtime","mode":"exact","top_k":5,"deadline_ms":10}
//! ```
//!
//! `cmd` selects non-mapping actions: `"ping"`, `"stats"`, `"save"`, and
//! `"shutdown"` (graceful: drains workers, then flushes the cache to the
//! configured file — SIGTERM does the same via [`signal`]). `mode:"fast"`
//! answers from the cache or a nearest-neighbour warm start
//! ([`DseCache::warm_hint`]) without ever running a full search unless the
//! cache is cold. Responses carry the decision, the cache disposition
//! (`hit`/`coalesced`/`search`/`warm`/`preset`), and the measured per-request
//! latency.
//!
//! ## Deadlines and the degradation ladder
//!
//! A request carrying `deadline_ms` is answered within that budget or answered
//! *degraded*, never silently late: cache hit → bounded search → warm-start
//! re-evaluation → best-preset fallback → explicit shed. Every response is
//! labeled with its `decision_quality` (`exact`/`warm`/`preset`/`shed`), and a
//! search abandoned by its deadline keeps running in the background to
//! populate the cache (disable with
//! [`ServeOptions::background_complete`] — then a cooperative
//! [`CancelToken`] stops it at the next work-chunk boundary).
//!
//! ## Admission control
//!
//! The daemon bounds every per-client resource: connections past
//! [`ServeOptions::max_connections`] are answered with an explicit `shed`
//! response and closed; request lines past [`ServeOptions::max_line_bytes`]
//! are discarded in constant memory and answered with a typed error; writes
//! to slow clients time out after [`ServeOptions::write_timeout_ms`]. Workers
//! serve bounded turns and rotate connections through a shared queue, so one
//! slow or idle client never pins a worker. [`faults::FaultPlan`] injects
//! handler panics, search delays, and save-path crashes to prove the recovery
//! paths under test and in CI chaos smokes.

pub mod client;
pub mod faults;
pub mod signal;

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use faults::FaultPlan;
use omega_accel::engine::ElementwiseOp;
use omega_core::dse::{
    CacheOutcome, CancelToken, DseCache, DseOptions, ExploreOutcome, RankedDataflow,
};
use omega_core::mapper::{extended_candidates, Objective};
use omega_core::{evaluate, AccelConfig, AttentionSpec, GnnDataflow, GnnWorkload};
use serde::{Deserialize, Serialize};

/// Locks a mutex, recovering the guard from a poisoned lock: a worker that
/// panicked mid-request must not wedge the daemon (same policy as the
/// serving-path locks inside `omega_core`).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The workload shape of a mapping request. Either the full `degrees` vector
/// (exact adjacency structure, as the cost model sees offline) or a
/// `mean_degree` summary (expanded to a uniform vector) must be present.
#[derive(Debug, Clone, Deserialize, Serialize)]
pub struct WorkloadSpec {
    /// Display name (defaults to `"request"`).
    pub name: Option<String>,
    /// Vertices `V` (> 0).
    pub v: usize,
    /// Input feature width `F` (> 0).
    pub f: usize,
    /// Output feature width `G` (> 0).
    pub g: usize,
    /// Stored non-zeros per adjacency row; length must equal `v`.
    pub degrees: Option<Vec<usize>>,
    /// Uniform-degree fallback when `degrees` is omitted.
    pub mean_degree: Option<f64>,
    /// Attention heads (> 0 makes this a GAT-style layer).
    pub attention_heads: Option<usize>,
    /// Elementwise post-phase: `"act"` or `"norm"`.
    pub post_op: Option<String>,
    /// Scale-family dataset name (`"rmat-N"` / `"chung-lu-N"`): the server
    /// generates the graph itself (deterministic seed), so million-vertex
    /// requests do not ship a million-entry `degrees` vector over the wire.
    /// When present, `v`/`f`/`degrees`/`mean_degree` are ignored; `g` still
    /// sets the hidden width.
    pub dataset: Option<String>,
}

/// The fixed generation seed for [`WorkloadSpec::dataset`] requests: every
/// server resolves the same name to the same graph, so persisted cache
/// entries stay valid across daemons.
pub const SCALE_DATASET_SEED: u64 = 0x0E5A_2022;

impl WorkloadSpec {
    /// Builds the request shape from an existing workload (client side).
    pub fn of(workload: &GnnWorkload) -> Self {
        WorkloadSpec {
            name: Some(workload.name.clone()),
            v: workload.v,
            f: workload.f,
            g: workload.g,
            degrees: Some(workload.degrees.clone()),
            mean_degree: None,
            attention_heads: workload.attention.map(|a| a.heads),
            post_op: workload.post_op.map(|op| op.label().to_string()),
            dataset: None,
        }
    }

    /// Validates the spec into the workload the cost model consumes.
    pub fn to_workload(&self) -> Result<GnnWorkload, String> {
        if let Some(ds) = self.dataset.as_deref() {
            if self.g == 0 {
                return Err("workload g must be positive".into());
            }
            let graph = omega_graph::scale_graph(ds, SCALE_DATASET_SEED).ok_or_else(|| {
                format!("unknown scale dataset `{ds}` (expected rmat-N or chung-lu-N)")
            })?;
            let mut wl = GnnWorkload::from_graph(&graph, self.g);
            if let Some(name) = &self.name {
                wl.name = name.clone();
            }
            wl.attention = match self.attention_heads {
                None | Some(0) => None,
                Some(heads) => Some(AttentionSpec::new(heads)),
            };
            wl.post_op = parse_post_op(self.post_op.as_deref())?;
            return Ok(wl);
        }
        if self.v == 0 || self.f == 0 || self.g == 0 {
            return Err(format!(
                "workload dims must be positive (v={} f={} g={})",
                self.v, self.f, self.g
            ));
        }
        let degrees: Vec<usize> = match &self.degrees {
            Some(d) => {
                if d.len() != self.v {
                    return Err(format!("degrees length {} != v {}", d.len(), self.v));
                }
                d.clone()
            }
            None => {
                let mean = self.mean_degree.unwrap_or(1.0);
                if !mean.is_finite() || mean < 0.0 {
                    return Err(format!("mean_degree {mean} must be finite and >= 0"));
                }
                vec![(mean.round() as usize).max(1); self.v]
            }
        };
        let nnz: u64 = degrees.iter().map(|&d| d as u64).sum();
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let mean_degree = nnz as f64 / self.v as f64;
        let attention = match self.attention_heads {
            None | Some(0) => None,
            Some(heads) => Some(AttentionSpec::new(heads)),
        };
        let post_op = parse_post_op(self.post_op.as_deref())?;
        Ok(GnnWorkload {
            name: self.name.clone().unwrap_or_else(|| "request".into()),
            v: self.v,
            f: self.f,
            g: self.g,
            degrees,
            nnz,
            mean_degree,
            max_degree,
            attention,
            post_op,
        })
    }
}

/// Parses the `post_op` request field (`"act"` / `"norm"`, with the long
/// spellings accepted too).
fn parse_post_op(label: Option<&str>) -> Result<Option<ElementwiseOp>, String> {
    match label {
        None | Some("") => Ok(None),
        Some("act" | "activation") => Ok(Some(ElementwiseOp::Activation)),
        Some("norm" | "layernorm") => Ok(Some(ElementwiseOp::LayerNorm)),
        Some(other) => Err(format!("unknown post_op `{other}` (expected act|norm)")),
    }
}

/// One request line. `cmd` defaults to `"map"`; control commands (`ping`,
/// `stats`, `save`, `shutdown`) ignore the mapping fields.
#[derive(Debug, Clone, Default, Deserialize, Serialize)]
pub struct MapRequest {
    /// Client-chosen correlation id, echoed back verbatim.
    pub id: Option<u64>,
    /// `"map"` (default) | `"ping"` | `"stats"` | `"save"` | `"shutdown"`.
    pub cmd: Option<String>,
    /// The shape to map (required for `map`).
    pub workload: Option<WorkloadSpec>,
    /// `"runtime"` (default) | `"energy"` | `"edp"`.
    pub objective: Option<String>,
    /// `"exact"` (default: full search on miss) | `"fast"` (cache or
    /// warm-start re-evaluation; searches only when the cache is cold).
    pub mode: Option<String>,
    /// Ranked winners to return (capped by the server's configured top-K).
    pub top_k: Option<usize>,
    /// Accelerator PEs (defaults to the paper config).
    pub pes: Option<usize>,
    /// DRAM bandwidth in elements/cycle (defaults to the paper config).
    pub bandwidth: Option<usize>,
    /// Answer-by budget in milliseconds. A cold search that cannot finish in
    /// this budget is answered degraded (warm → preset → shed) and labeled
    /// via `decision_quality`; omitted means "wait for the exact answer".
    pub deadline_ms: Option<u64>,
}

impl MapRequest {
    /// A mapping request for `workload` with server-side defaults elsewhere.
    pub fn for_workload(workload: &GnnWorkload) -> Self {
        MapRequest { workload: Some(WorkloadSpec::of(workload)), ..Default::default() }
    }
}

/// One ranked decision in a response: the dataflow in its parseable display
/// form plus the cost axes the client needs to act on it.
#[derive(Debug, Clone, Deserialize, Serialize)]
pub struct Decision {
    /// Display form of the concrete dataflow (round-trips via `FromStr`).
    pub dataflow: String,
    /// Modelled runtime.
    pub cycles: u64,
    /// Modelled total energy.
    pub energy_pj: f64,
    /// Peak on-chip working set.
    pub buffer_peak_bytes: u64,
    /// Objective value (lower is better).
    pub score: f64,
}

impl Decision {
    fn of(ranked: &RankedDataflow) -> Self {
        Decision {
            dataflow: ranked.dataflow.to_string(),
            cycles: ranked.report.total_cycles,
            energy_pj: ranked.report.energy.total_pj(),
            buffer_peak_bytes: ranked.report.buffer_peak_bytes,
            score: ranked.score,
        }
    }
}

/// Server-side counters, returned by the `stats` command and by
/// [`MapperServer::run`] on exit.
#[derive(Debug, Clone, Default, Deserialize, Serialize)]
pub struct ServerStats {
    /// Request lines handled (including control commands and errors).
    pub requests: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Entries currently cached.
    pub cache_entries: u64,
    /// Full searches actually run (completed) by the shared cache.
    pub searches: u64,
    /// Requests answered from a cached entry.
    pub hits: u64,
    /// Requests that piggybacked on another request's in-flight search.
    pub coalesced: u64,
    /// `fast`-mode requests answered by warm-start re-evaluation.
    pub warm_starts: u64,
    /// Cache entries evicted by the LRU bound.
    pub evictions: u64,
    /// Work refused outright: connections past the admission limit plus
    /// deadline requests with no degraded answer available.
    pub shed: u64,
    /// Deadline misses answered by warm-start re-evaluation
    /// (`decision_quality: "warm"` on a deadlined request).
    pub degraded_warm: u64,
    /// Deadline misses answered by the best-preset fallback
    /// (`decision_quality: "preset"`).
    pub degraded_preset: u64,
    /// Searches stopped early by a cooperative [`CancelToken`].
    pub cancelled_searches: u64,
    /// Corrupt cache files quarantined at load instead of aborting startup.
    pub quarantined_loads: u64,
    /// Faults the configured [`FaultPlan`] actually injected.
    pub faults_injected: u64,
    /// Median per-request service latency (µs, over a recent window).
    pub p50_us: u64,
    /// 99th-percentile per-request service latency (µs, over a recent window).
    pub p99_us: u64,
}

/// One response line. `ok == false` carries `error`; mapping responses carry
/// `best`/`ranked`, the cache disposition, the decision quality, and the
/// measured service latency.
#[derive(Debug, Clone, Default, Deserialize, Serialize)]
pub struct MapResponse {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Whether the request was served.
    pub ok: bool,
    /// What went wrong, when `ok` is false.
    pub error: Option<String>,
    /// `"hit"` | `"coalesced"` | `"search"` | `"warm"` | `"preset"` for
    /// mapping requests.
    pub cache: Option<String>,
    /// `"exact"` | `"warm"` | `"preset"` | `"shed"`: how good this answer is
    /// relative to a full search. Every mapping response is labeled — a
    /// degraded answer is never silently presented as exact.
    pub decision_quality: Option<String>,
    /// Server-side service time for this request (µs).
    pub latency_us: Option<u64>,
    /// The winning decision.
    pub best: Option<Decision>,
    /// Ranked winners, best first.
    pub ranked: Option<Vec<Decision>>,
    /// Warm-start neighbour distance ([`DseCache::warm_hint`]), `"warm"` only.
    pub warm_distance: Option<f64>,
    /// Counters, for the `stats` and `shutdown` commands.
    pub stats: Option<ServerStats>,
}

impl MapResponse {
    fn err(error: String) -> Self {
        MapResponse { ok: false, error: Some(error), ..Default::default() }
    }

    fn shed(error: String) -> Self {
        MapResponse {
            ok: false,
            error: Some(error),
            decision_quality: Some("shed".into()),
            ..Default::default()
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Connection-serving worker threads.
    pub threads: usize,
    /// DSE threads each search uses.
    pub search_threads: usize,
    /// LRU bound of the shared cache.
    pub cache_capacity: usize,
    /// Persist/restore the cache here (loaded at bind, flushed at shutdown).
    pub cache_file: Option<PathBuf>,
    /// Default (and maximum) ranked winners per response.
    pub top_k: usize,
    /// Admission limit: connections past this are answered with an explicit
    /// `shed` response and closed instead of queueing unboundedly.
    pub max_connections: usize,
    /// Longest accepted request line; longer lines are discarded in constant
    /// memory and answered with a typed error (the connection survives).
    pub max_line_bytes: usize,
    /// Response writes to a slow client abort after this long, so a stalled
    /// reader cannot pin a worker.
    pub write_timeout_ms: u64,
    /// Keep running a search whose request already timed out, so the result
    /// still populates the cache (`false` cancels it cooperatively instead).
    pub background_complete: bool,
    /// Deterministic fault injection (defaults to no faults).
    pub faults: FaultPlan,
    /// Suppress stderr progress lines.
    pub quiet: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7453".into(),
            threads: 4,
            search_threads: 4,
            cache_capacity: omega_core::dse::DEFAULT_CACHE_CAPACITY,
            cache_file: None,
            top_k: 10,
            max_connections: 64,
            max_line_bytes: 1 << 20,
            write_timeout_ms: 5000,
            background_complete: true,
            faults: FaultPlan::default(),
            quiet: false,
        }
    }
}

/// Sliding window of per-request latencies backing the p50/p99 counters.
const LATENCY_WINDOW: usize = 8192;

/// Per-turn read timeout: the longest an idle connection may hold a worker
/// before it rotates back into the shared queue.
const READ_SLICE_MS: u64 = 20;

/// Requests one connection may have served per turn before the worker rotates
/// to the next queued connection — the per-connection in-flight bound that
/// keeps one firehose client from starving the rest.
const MAX_LINES_PER_TURN: usize = 16;

/// One live client connection, multiplexed across worker turns. The partial
/// line and discard flag persist between turns, so a line split across
/// read slices (or an oversized line mid-discard) resumes where it left off.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    pending: Vec<u8>,
    discarding: bool,
}

/// What a detached search thread sends back: the outcome and its cache
/// disposition, or `None` when the search was cancelled mid-flight.
type SearchResult = Option<(Arc<ExploreOutcome>, CacheOutcome)>;

/// What a worker turn decided about its connection.
enum Turn {
    /// Still alive: rotate it back into the queue.
    Continue,
    /// Closed by the client, dead, or shut down: drop it.
    Closed,
}

/// One step of the bounded NDJSON reader.
#[derive(Debug, PartialEq, Eq)]
enum LineRead {
    /// A complete line (newline stripped, may be empty).
    Line(String),
    /// A line exceeded the byte bound; it was discarded without buffering.
    TooLong,
    /// No complete line buffered yet — try again next turn.
    Pending,
    /// Clean end of stream.
    Eof,
    /// Unrecoverable read error.
    Dead,
}

/// Reads one newline-terminated line of at most `max_bytes` bytes, buffering
/// at most `max_bytes` regardless of what the peer sends. An oversized line
/// flips `discarding`: its bytes are consumed and dropped until the newline,
/// then reported once as [`LineRead::TooLong`] — a multi-MB garbage line
/// costs bounded memory and the connection stays usable.
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    pending: &mut Vec<u8>,
    discarding: &mut bool,
    max_bytes: usize,
) -> LineRead {
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                return LineRead::Pending
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return LineRead::Dead,
        };
        if buf.is_empty() {
            return LineRead::Eof; // EOF; any partial line is dropped
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let oversized = *discarding || pending.len() + pos > max_bytes;
                if !oversized {
                    pending.extend_from_slice(&buf[..pos]);
                }
                reader.consume(pos + 1);
                *discarding = false;
                if oversized {
                    pending.clear();
                    return LineRead::TooLong;
                }
                let line = String::from_utf8_lossy(pending).into_owned();
                pending.clear();
                return LineRead::Line(line);
            }
            None => {
                let chunk = buf.len();
                if !*discarding {
                    if pending.len() + chunk > max_bytes {
                        pending.clear();
                        *discarding = true;
                    } else {
                        pending.extend_from_slice(buf);
                    }
                }
                reader.consume(chunk);
            }
        }
    }
}

/// The daemon: a TCP acceptor, a worker pool, and the shared [`DseCache`].
///
/// [`Self::bind`] claims the port and restores the cache file;
/// [`Self::run`] blocks serving requests until a `shutdown` command or a
/// termination signal, then flushes the cache and returns the final counters.
pub struct MapperServer {
    opts: ServeOptions,
    listener: TcpListener,
    cache: Arc<DseCache>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    warm_starts: AtomicU64,
    shed: AtomicU64,
    degraded_warm: AtomicU64,
    degraded_preset: AtomicU64,
    faults_injected: AtomicU64,
    map_seq: AtomicU64,
    search_seq: AtomicU64,
    save_crash_armed: AtomicBool,
    open_connections: AtomicUsize,
    active_searches: Arc<Mutex<HashMap<u64, CancelToken>>>,
    latencies_us: Mutex<VecDeque<u64>>,
}

impl MapperServer {
    /// Binds the listen socket and restores the cache file, when configured.
    /// A missing file is a cold start; a truncated/corrupt/mid-write file is
    /// quarantined (renamed aside) and the daemon starts cold instead of
    /// refusing to boot ([`DseCache::load_or_quarantine`]).
    pub fn bind(opts: ServeOptions) -> io::Result<MapperServer> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let cache = Arc::new(DseCache::with_capacity(opts.cache_capacity));
        if let Some(path) = &opts.cache_file {
            let report = cache.load_or_quarantine(path)?;
            if !opts.quiet {
                if report.cleaned_tmp {
                    eprintln!(
                        "mapperd: removed stale temp file left by an interrupted save of {}",
                        path.display()
                    );
                }
                if let Some(quarantined) = &report.quarantined {
                    eprintln!(
                        "mapperd: cache file {} failed validation; quarantined to {} (cold start)",
                        path.display(),
                        quarantined.display()
                    );
                }
                if report.loaded > 0 {
                    eprintln!(
                        "mapperd: restored {} cached decisions from {}",
                        report.loaded,
                        path.display()
                    );
                }
            }
        }
        let save_crash_armed = AtomicBool::new(opts.faults.save_crash);
        Ok(MapperServer {
            opts,
            listener,
            cache,
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            warm_starts: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            degraded_warm: AtomicU64::new(0),
            degraded_preset: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            map_seq: AtomicU64::new(0),
            search_seq: AtomicU64::new(0),
            save_crash_armed,
            open_connections: AtomicUsize::new(0),
            active_searches: Arc::new(Mutex::new(HashMap::new())),
            latencies_us: Mutex::new(VecDeque::with_capacity(LATENCY_WINDOW)),
        })
    }

    /// The bound address (the concrete port when `addr` asked for port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared decision cache.
    pub fn cache(&self) -> &DseCache {
        &self.cache
    }

    /// Asks the serving loop to drain and exit (same effect as the in-band
    /// `shutdown` command or SIGTERM).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::termination_requested()
    }

    /// Serves until shutdown, then cancels in-flight searches, flushes the
    /// cache file (when configured) and returns the final counters.
    pub fn run(&self) -> io::Result<ServerStats> {
        let queue: Mutex<VecDeque<Conn>> = Mutex::new(VecDeque::new());
        let available = Condvar::new();
        std::thread::scope(|s| {
            for _ in 0..self.opts.threads.max(1) {
                s.spawn(|| self.worker(&queue, &available));
            }
            while !self.shutting_down() {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        if self.open_connections.load(Ordering::Relaxed)
                            >= self.opts.max_connections.max(1)
                        {
                            self.shed_connection(stream);
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        // Short read slices keep the worker pool rotating
                        // through connections and responsive to shutdown.
                        let _ = stream.set_read_timeout(Some(Duration::from_millis(READ_SLICE_MS)));
                        let _ = stream.set_write_timeout(Some(Duration::from_millis(
                            self.opts.write_timeout_ms.max(1),
                        )));
                        let Ok(read_half) = stream.try_clone() else { continue };
                        self.open_connections.fetch_add(1, Ordering::Relaxed);
                        lock_recover(&queue).push_back(Conn {
                            reader: BufReader::new(read_half),
                            writer: stream,
                            pending: Vec::new(),
                            discarding: false,
                        });
                        available.notify_one();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        if !self.opts.quiet {
                            eprintln!("mapperd: accept failed: {e}");
                        }
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            }
            available.notify_all();
        });
        // Stop background searches promptly; a cancelled search discards its
        // partial work and never publishes to the cache.
        for (_, token) in lock_recover(&self.active_searches).drain() {
            token.cancel();
        }
        if let Some(path) = &self.opts.cache_file {
            self.cache.save(path)?;
            if !self.opts.quiet {
                eprintln!(
                    "mapperd: flushed {} cached decisions to {}",
                    self.cache.len(),
                    path.display()
                );
            }
        }
        Ok(self.stats())
    }

    /// Refuses a connection past the admission limit: best-effort explicit
    /// `shed` line (a short write timeout so a slow client cannot stall the
    /// accept loop), then close. Explicit refusal beats a silent stall — the
    /// client can back off and retry instead of hanging.
    fn shed_connection(&self, mut stream: TcpStream) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
        let response = MapResponse::shed(format!(
            "shed: connection limit {} reached, retry later",
            self.opts.max_connections
        ));
        if let Ok(json) = serde_json::to_string(&response) {
            let _ = stream.write_all(json.as_bytes()).and_then(|()| stream.write_all(b"\n"));
        }
    }

    fn worker(&self, queue: &Mutex<VecDeque<Conn>>, available: &Condvar) {
        loop {
            let conn = {
                let mut q = lock_recover(queue);
                loop {
                    if let Some(c) = q.pop_front() {
                        break Some(c);
                    }
                    if self.shutting_down() {
                        break None;
                    }
                    // Timed wait: a signal flips a flag nobody notifies on.
                    q = available
                        .wait_timeout(q, Duration::from_millis(100))
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            };
            let Some(mut conn) = conn else { return };
            match self.serve_turn(&mut conn) {
                Turn::Continue => {
                    lock_recover(queue).push_back(conn);
                    available.notify_one();
                }
                Turn::Closed => {
                    self.open_connections.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Serves one bounded turn of a connection: up to [`MAX_LINES_PER_TURN`]
    /// requests, or until the read slice times out with no complete line.
    fn serve_turn(&self, conn: &mut Conn) -> Turn {
        for _ in 0..MAX_LINES_PER_TURN {
            let step = read_bounded_line(
                &mut conn.reader,
                &mut conn.pending,
                &mut conn.discarding,
                self.opts.max_line_bytes.max(1),
            );
            let response = match step {
                LineRead::Line(line) => {
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    self.handle_line(trimmed)
                }
                LineRead::TooLong => {
                    self.requests.fetch_add(1, Ordering::Relaxed);
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    let response = MapResponse::err(format!(
                        "oversized request line: exceeds {} bytes",
                        self.opts.max_line_bytes.max(1)
                    ));
                    serde_json::to_string(&response).unwrap_or_default()
                }
                LineRead::Pending => {
                    return if self.shutting_down() { Turn::Closed } else { Turn::Continue }
                }
                LineRead::Eof | LineRead::Dead => return Turn::Closed,
            };
            let sent = conn
                .writer
                .write_all(response.as_bytes())
                .and_then(|()| conn.writer.write_all(b"\n"))
                .and_then(|()| conn.writer.flush());
            if sent.is_err() {
                return Turn::Closed; // dead or timed-out (slow) client
            }
        }
        Turn::Continue
    }

    /// Serves one request line and returns the response line (no trailing
    /// newline). Public so the protocol is testable without a socket.
    pub fn handle_line(&self, line: &str) -> String {
        let started = Instant::now();
        self.requests.fetch_add(1, Ordering::Relaxed);
        let mut response = match serde_json::from_str::<MapRequest>(line) {
            Ok(request) => {
                let id = request.id;
                // A panicking request must answer with an error, not take the
                // worker (and a poisoned lock) down with it.
                let outcome = catch_unwind(AssertUnwindSafe(|| self.dispatch(&request)));
                let mut response = match outcome {
                    Ok(Ok(response)) => response,
                    Ok(Err(error)) => MapResponse::err(error),
                    Err(_) => MapResponse::err("internal panic while serving request".into()),
                };
                response.id = id;
                response
            }
            Err(e) => MapResponse::err(format!("bad request: {e}")),
        };
        if !response.ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let latency_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        response.latency_us = Some(latency_us);
        let mut window = lock_recover(&self.latencies_us);
        if window.len() == LATENCY_WINDOW {
            window.pop_front();
        }
        window.push_back(latency_us);
        drop(window);
        serde_json::to_string(&response).unwrap_or_else(|e| {
            format!("{{\"ok\":false,\"error\":\"response serialisation failed: {e}\"}}")
        })
    }

    fn dispatch(&self, request: &MapRequest) -> Result<MapResponse, String> {
        match request.cmd.as_deref().unwrap_or("map") {
            "ping" => Ok(MapResponse { ok: true, ..Default::default() }),
            "stats" => Ok(MapResponse { ok: true, stats: Some(self.stats()), ..Default::default() }),
            "save" => {
                let path = self
                    .opts
                    .cache_file
                    .as_ref()
                    .ok_or_else(|| "no --cache-file configured".to_string())?;
                // One-shot injected crash in the tmp-write → rename window:
                // the panic unwinds to handle_line's catch_unwind, the client
                // sees an error, and the stale .tmp is cleaned at next bind.
                let crash = self.save_crash_armed.swap(false, Ordering::SeqCst);
                if crash {
                    self.faults_injected.fetch_add(1, Ordering::Relaxed);
                }
                self.cache
                    .save_with_crash_point(path, crash)
                    .map_err(|e| format!("cache save failed: {e}"))?;
                Ok(MapResponse { ok: true, ..Default::default() })
            }
            "shutdown" => {
                self.request_shutdown();
                Ok(MapResponse { ok: true, stats: Some(self.stats()), ..Default::default() })
            }
            "map" => self.serve_map(request),
            other => Err(format!("unknown cmd `{other}` (expected map|ping|stats|save|shutdown)")),
        }
    }

    fn serve_map(&self, request: &MapRequest) -> Result<MapResponse, String> {
        let started = Instant::now();
        let seq = self.map_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if self.opts.faults.should_panic(seq) {
            self.faults_injected.fetch_add(1, Ordering::Relaxed);
            panic!("injected fault: handler panic on map request {seq}");
        }
        let spec = request.workload.as_ref().ok_or_else(|| "missing `workload`".to_string())?;
        let workload = spec.to_workload()?;
        let objective = match request.objective.as_deref() {
            None | Some("runtime") => Objective::Runtime,
            Some("energy") => Objective::Energy,
            Some("edp") => Objective::Edp,
            Some(other) => {
                return Err(format!("unknown objective `{other}` (expected runtime|energy|edp)"))
            }
        };
        let mut cfg = AccelConfig::paper_default();
        if let Some(pes) = request.pes {
            cfg = cfg.with_pes(pes);
        }
        if let Some(bw) = request.bandwidth {
            cfg = cfg.with_bandwidth(bw);
        }
        let mut opts = DseOptions::new(objective);
        opts.threads = self.opts.search_threads;
        opts.top_k = request.top_k.unwrap_or(self.opts.top_k).clamp(1, self.opts.top_k.max(1));
        let mode = request.mode.as_deref().unwrap_or("exact");
        if !matches!(mode, "exact" | "fast") {
            return Err(format!("unknown mode `{mode}` (expected exact|fast)"));
        }
        // A cached answer is exact and fits any budget.
        if let Some(outcome) = self.cache.lookup(&workload, &cfg, &opts) {
            return Ok(Self::map_response(&outcome, "hit", None, "exact"));
        }
        // `fast` mode prefers a warm start over searching at all.
        if mode == "fast" {
            if let Some(response) = self.warm_start(&workload, &cfg, &opts, objective) {
                return Ok(response);
            }
        }
        match request.deadline_ms {
            None => {
                if self.opts.faults.search_delay_ms > 0 {
                    self.faults_injected.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(self.opts.faults.search_delay_ms));
                }
                let (outcome, how) = self.cache.explore_traced(&workload, &cfg, &opts);
                Ok(Self::map_response(&outcome, disposition(how), None, "exact"))
            }
            Some(deadline_ms) => {
                Ok(self.serve_with_deadline(&workload, cfg, opts, objective, deadline_ms, started))
            }
        }
    }

    /// Cold search under a deadline: the search runs on a detached thread
    /// while this worker waits out the budget (minus a margin reserved for
    /// composing a degraded answer). On time → exact; past budget → the
    /// degradation ladder. The abandoned search keeps running to populate
    /// the cache unless [`ServeOptions::background_complete`] is off, in
    /// which case its [`CancelToken`] stops it at the next chunk boundary.
    fn serve_with_deadline(
        &self,
        workload: &GnnWorkload,
        cfg: AccelConfig,
        opts: DseOptions,
        objective: Objective,
        deadline_ms: u64,
        started: Instant,
    ) -> MapResponse {
        let deadline = Duration::from_millis(deadline_ms.max(1));
        let margin = (deadline / 5).max(Duration::from_millis(1));
        let (rx, token) = self.spawn_search(workload, cfg, opts);
        let budget = deadline.saturating_sub(margin).saturating_sub(started.elapsed());
        match rx.recv_timeout(budget) {
            Ok(Some((outcome, how))) => {
                Self::map_response(&outcome, disposition(how), None, "exact")
            }
            // Cancelled under us (shutdown) or the search thread died:
            // degrade rather than stall or answer nothing.
            Ok(None) | Err(mpsc::RecvTimeoutError::Disconnected) => {
                self.degraded_response(workload, &cfg, &opts, objective)
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if !self.opts.background_complete {
                    token.cancel();
                }
                self.degraded_response(workload, &cfg, &opts, objective)
            }
        }
    }

    /// Starts a cancellable cached search on a detached thread, registering
    /// its [`CancelToken`] so shutdown can stop orphaned work. The channel
    /// yields `Some((outcome, disposition))`, or `None` if cancelled.
    fn spawn_search(
        &self,
        workload: &GnnWorkload,
        cfg: AccelConfig,
        opts: DseOptions,
    ) -> (mpsc::Receiver<SearchResult>, CancelToken) {
        let token = CancelToken::new();
        let id = self.search_seq.fetch_add(1, Ordering::Relaxed);
        lock_recover(&self.active_searches).insert(id, token.clone());
        if self.opts.faults.search_delay_ms > 0 {
            self.faults_injected.fetch_add(1, Ordering::Relaxed);
        }
        let (tx, rx) = mpsc::channel();
        let cache = Arc::clone(&self.cache);
        let registry = Arc::clone(&self.active_searches);
        let delay_ms = self.opts.faults.search_delay_ms;
        let workload = workload.clone();
        let cancel = token.clone();
        std::thread::spawn(move || {
            if delay_ms > 0 {
                std::thread::sleep(Duration::from_millis(delay_ms));
            }
            let result = cache.explore_traced_cancellable(&workload, &cfg, &opts, &cancel);
            lock_recover(&registry).remove(&id);
            // The requester may have timed out and moved on; that just means
            // nobody reads the result — the cache insert already happened.
            let _ = tx.send(result);
        });
        (rx, token)
    }

    /// The degradation ladder for a missed deadline: warm-start
    /// re-evaluation of the nearest cached shape, then the best preset
    /// dataflow by direct evaluation, then an explicit shed. Each rung is a
    /// handful of cost-model calls — microseconds, well inside any margin.
    fn degraded_response(
        &self,
        workload: &GnnWorkload,
        cfg: &AccelConfig,
        opts: &DseOptions,
        objective: Objective,
    ) -> MapResponse {
        if let Some(response) = self.warm_start(workload, cfg, opts, objective) {
            self.degraded_warm.fetch_add(1, Ordering::Relaxed);
            return response;
        }
        if let Some(response) = self.preset_fallback(workload, cfg, opts, objective) {
            self.degraded_preset.fetch_add(1, Ordering::Relaxed);
            return response;
        }
        self.shed.fetch_add(1, Ordering::Relaxed);
        MapResponse::shed("deadline exceeded and no degraded answer is available".into())
    }

    /// Warm-start path: re-evaluates the ranked dataflows of the nearest
    /// cached shape on the actual workload — a handful of cost-model calls
    /// instead of a full search. `None` when the cache is empty or no hinted
    /// dataflow evaluates successfully (caller falls back further).
    fn warm_start(
        &self,
        workload: &GnnWorkload,
        cfg: &AccelConfig,
        opts: &DseOptions,
        objective: Objective,
    ) -> Option<MapResponse> {
        let hint = self.cache.warm_hint(workload)?;
        let ranked = rank_by_evaluation(
            hint.outcome.ranked.iter().map(|r| &r.dataflow),
            workload,
            cfg,
            opts,
            objective,
        )?;
        self.warm_starts.fetch_add(1, Ordering::Relaxed);
        Some(MapResponse {
            ok: true,
            cache: Some("warm".into()),
            decision_quality: Some("warm".into()),
            best: ranked.first().cloned(),
            ranked: Some(ranked),
            warm_distance: Some(hint.distance),
            ..Default::default()
        })
    }

    /// Last resort before shedding: evaluate the preset candidate dataflows
    /// directly (the same seeds the full search starts from) and answer with
    /// the best. Always available — it needs no cache state at all.
    fn preset_fallback(
        &self,
        workload: &GnnWorkload,
        cfg: &AccelConfig,
        opts: &DseOptions,
        objective: Objective,
    ) -> Option<MapResponse> {
        let candidates = extended_candidates(workload, cfg);
        let ranked = rank_by_evaluation(candidates.iter(), workload, cfg, opts, objective)?;
        Some(MapResponse {
            ok: true,
            cache: Some("preset".into()),
            decision_quality: Some("preset".into()),
            best: ranked.first().cloned(),
            ranked: Some(ranked),
            ..Default::default()
        })
    }

    fn map_response(
        outcome: &ExploreOutcome,
        cache: &str,
        warm: Option<f64>,
        quality: &str,
    ) -> MapResponse {
        MapResponse {
            ok: true,
            cache: Some(cache.into()),
            decision_quality: Some(quality.into()),
            best: outcome.best().map(Decision::of),
            ranked: Some(outcome.ranked.iter().map(Decision::of).collect()),
            warm_distance: warm,
            ..Default::default()
        }
    }

    /// Current counters: request/error totals, the shared cache's
    /// hit/search/eviction counters, the robustness counters (shed, degraded
    /// by quality, cancelled searches, quarantined loads, injected faults),
    /// and p50/p99 service latency over a sliding window of recent requests.
    pub fn stats(&self) -> ServerStats {
        let mut sorted: Vec<u64> = lock_recover(&self.latencies_us).iter().copied().collect();
        sorted.sort_unstable();
        ServerStats {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache_entries: self.cache.len() as u64,
            searches: self.cache.searches() as u64,
            hits: self.cache.hits() as u64,
            coalesced: self.cache.coalesced() as u64,
            warm_starts: self.warm_starts.load(Ordering::Relaxed),
            evictions: self.cache.evictions() as u64,
            shed: self.shed.load(Ordering::Relaxed),
            degraded_warm: self.degraded_warm.load(Ordering::Relaxed),
            degraded_preset: self.degraded_preset.load(Ordering::Relaxed),
            cancelled_searches: self.cache.cancelled() as u64,
            quarantined_loads: self.cache.quarantined() as u64,
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            p50_us: percentile_us(&sorted, 0.50),
            p99_us: percentile_us(&sorted, 0.99),
        }
    }
}

/// Evaluates candidate dataflows on `workload`, ranks by objective score
/// (ties broken by display form for determinism), dedups, and truncates to
/// the requested top-K. `None` when nothing evaluates successfully.
fn rank_by_evaluation<'a, I>(
    candidates: I,
    workload: &GnnWorkload,
    cfg: &AccelConfig,
    opts: &DseOptions,
    objective: Objective,
) -> Option<Vec<Decision>>
where
    I: Iterator<Item = &'a GnnDataflow>,
{
    let mut ranked: Vec<Decision> = candidates
        .filter_map(|dataflow| {
            let report = evaluate(workload, dataflow, cfg).ok()?;
            Some(Decision {
                dataflow: dataflow.to_string(),
                cycles: report.total_cycles,
                energy_pj: report.energy.total_pj(),
                buffer_peak_bytes: report.buffer_peak_bytes,
                score: objective.score(&report),
            })
        })
        .collect();
    if ranked.is_empty() {
        return None;
    }
    ranked.sort_by(|a, b| a.score.total_cmp(&b.score).then_with(|| a.dataflow.cmp(&b.dataflow)));
    ranked.dedup_by(|a, b| a.dataflow == b.dataflow);
    ranked.truncate(opts.top_k.max(1));
    Some(ranked)
}

fn disposition(how: CacheOutcome) -> &'static str {
    match how {
        CacheOutcome::Hit => "hit",
        CacheOutcome::Coalesced => "coalesced",
        CacheOutcome::Searched => "search",
    }
}

/// Nearest-rank percentile of an ascending-sorted sample (0 when empty).
fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload_spec(g: usize) -> WorkloadSpec {
        WorkloadSpec {
            name: Some("tiny".into()),
            v: 24,
            f: 8,
            g,
            degrees: Some((0..24).map(|i| 1 + (i % 4)).collect()),
            mean_degree: None,
            attention_heads: None,
            post_op: None,
            dataset: None,
        }
    }

    fn test_server() -> MapperServer {
        test_server_with(ServeOptions::default())
    }

    fn test_server_with(mut opts: ServeOptions) -> MapperServer {
        // Port 0: bind a throwaway socket purely to construct the server; the
        // protocol tests below go through handle_line, not TCP.
        opts.addr = "127.0.0.1:0".into();
        opts.quiet = true;
        MapperServer::bind(opts).expect("bind")
    }

    fn request_json(spec: &WorkloadSpec, extra: &str) -> String {
        let workload = serde_json::to_string(spec).unwrap();
        format!("{{\"workload\":{workload}{extra}}}")
    }

    #[test]
    fn ping_stats_and_bad_json_round_trip() {
        let server = test_server();
        let pong: MapResponse =
            serde_json::from_str(&server.handle_line("{\"cmd\":\"ping\",\"id\":7}")).unwrap();
        assert!(pong.ok);
        assert_eq!(pong.id, Some(7));
        assert!(pong.latency_us.is_some());

        let bad: MapResponse = serde_json::from_str(&server.handle_line("{nope")).unwrap();
        assert!(!bad.ok);
        assert!(bad.error.unwrap().starts_with("bad request"));

        let stats: MapResponse =
            serde_json::from_str(&server.handle_line("{\"cmd\":\"stats\"}")).unwrap();
        let stats = stats.stats.expect("stats payload");
        assert_eq!(stats.requests, 3); // ping + bad line + this stats call
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn map_request_searches_then_hits() {
        let server = test_server();
        let line = request_json(&tiny_workload_spec(8), ",\"top_k\":3");
        let first: MapResponse = serde_json::from_str(&server.handle_line(&line)).unwrap();
        assert!(first.ok, "error: {:?}", first.error);
        assert_eq!(first.cache.as_deref(), Some("search"));
        assert_eq!(first.decision_quality.as_deref(), Some("exact"));
        let best = first.best.expect("a winning decision");
        assert!(best.cycles > 0);
        assert!(first.ranked.unwrap().len() <= 3);

        let second: MapResponse = serde_json::from_str(&server.handle_line(&line)).unwrap();
        assert_eq!(second.cache.as_deref(), Some("hit"));
        assert_eq!(second.decision_quality.as_deref(), Some("exact"));
        assert_eq!(second.best.unwrap().dataflow, best.dataflow);
        assert_eq!(server.cache().searches(), 1);
        assert_eq!(server.cache().hits(), 1);
    }

    #[test]
    fn fast_mode_warm_starts_from_the_nearest_shape() {
        let server = test_server();
        // Seed the cache with one exact search at g=8 …
        let seed = request_json(&tiny_workload_spec(8), "");
        let seeded: MapResponse = serde_json::from_str(&server.handle_line(&seed)).unwrap();
        assert!(seeded.ok);
        // … then ask for the unseen g=16 in fast mode: warm start, no search.
        let fast = request_json(&tiny_workload_spec(16), ",\"mode\":\"fast\"");
        let warm: MapResponse = serde_json::from_str(&server.handle_line(&fast)).unwrap();
        assert!(warm.ok, "error: {:?}", warm.error);
        assert_eq!(warm.cache.as_deref(), Some("warm"));
        assert_eq!(warm.decision_quality.as_deref(), Some("warm"));
        assert!(warm.warm_distance.unwrap() > 0.0);
        assert!(warm.best.is_some());
        assert_eq!(server.cache().searches(), 1, "warm start must not search");
    }

    #[test]
    fn map_errors_name_the_field() {
        let server = test_server();
        let missing: MapResponse = serde_json::from_str(&server.handle_line("{}")).unwrap();
        assert_eq!(missing.error.as_deref(), Some("missing `workload`"));

        let mut spec = tiny_workload_spec(8);
        spec.degrees = Some(vec![1; 3]); // wrong length
        let bad: MapResponse =
            serde_json::from_str(&server.handle_line(&request_json(&spec, ""))).unwrap();
        assert!(bad.error.unwrap().contains("degrees length 3 != v 24"));

        let unknown: MapResponse = serde_json::from_str(
            &server.handle_line(&request_json(&tiny_workload_spec(8), ",\"cmd\":\"frobnicate\"")),
        )
        .unwrap();
        assert!(unknown.error.unwrap().contains("unknown cmd"));
    }

    #[test]
    fn uniform_degree_fallback_builds_a_workload() {
        let spec = WorkloadSpec {
            name: None,
            v: 10,
            f: 4,
            g: 4,
            degrees: None,
            mean_degree: Some(2.6),
            attention_heads: Some(2),
            post_op: Some("act".into()),
            dataset: None,
        };
        let wl = spec.to_workload().unwrap();
        assert_eq!(wl.degrees, vec![3; 10]);
        assert_eq!(wl.nnz, 30);
        assert_eq!(wl.attention.unwrap().heads, 2);
        assert_eq!(wl.post_op, Some(ElementwiseOp::Activation));
    }

    #[test]
    fn scale_dataset_requests_generate_server_side() {
        let spec = WorkloadSpec {
            name: None,
            v: 0, // ignored: the graph supplies the shape
            f: 0,
            g: 8,
            degrees: None,
            mean_degree: None,
            attention_heads: None,
            post_op: None,
            dataset: Some("rmat-6".into()),
        };
        let wl = spec.to_workload().unwrap();
        assert_eq!(wl.v, 64);
        assert_eq!(wl.f, omega_graph::scale::SCALE_FEATURE_DIM);
        assert_eq!(wl.g, 8);
        assert!(wl.nnz > 64, "mirrors + self loops");
        // Deterministic across servers: the fixed seed pins the graph.
        let again = spec.to_workload().unwrap();
        assert_eq!(wl.degrees, again.degrees);
        // Unknown family names are rejected, not silently defaulted.
        let bad = WorkloadSpec { dataset: Some("rmat-x".into()), ..spec };
        assert!(bad.to_workload().is_err());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile_us(&[], 0.99), 0);
        assert_eq!(percentile_us(&[5], 0.50), 5);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&v, 0.50), 50);
        assert_eq!(percentile_us(&v, 0.99), 99);
        assert_eq!(percentile_us(&v, 1.0), 100);
    }

    /// Forces tiny fill_buf slices so lines split across reads exercise the
    /// partial-accumulation path.
    fn chunked(bytes: &[u8]) -> BufReader<io::Cursor<Vec<u8>>> {
        BufReader::with_capacity(3, io::Cursor::new(bytes.to_vec()))
    }

    #[test]
    fn bounded_reader_assembles_lines_across_small_reads() {
        let mut reader = chunked(b"hello world\nsecond\npartial-then-eof");
        let mut pending = Vec::new();
        let mut discarding = false;
        let mut next = || read_bounded_line(&mut reader, &mut pending, &mut discarding, 64);
        assert_eq!(next(), LineRead::Line("hello world".into()));
        assert_eq!(next(), LineRead::Line("second".into()));
        assert_eq!(next(), LineRead::Eof, "a half-sent line before EOF is dropped");
    }

    #[test]
    fn bounded_reader_discards_oversized_lines_without_buffering_them() {
        let big = vec![b'x'; 200];
        let mut input = big.clone();
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        let mut reader = chunked(&input);
        let mut pending = Vec::new();
        let mut discarding = false;
        let max = 16;
        loop {
            match read_bounded_line(&mut reader, &mut pending, &mut discarding, max) {
                LineRead::TooLong => break,
                LineRead::Pending => continue,
                other => panic!("expected TooLong, got {other:?}"),
            }
        }
        assert!(pending.len() <= max, "discard mode must not buffer the oversized line");
        // The connection is still usable: the next line parses normally.
        assert_eq!(
            read_bounded_line(&mut reader, &mut pending, &mut discarding, max),
            LineRead::Line("ok".into())
        );
    }

    #[test]
    fn bounded_reader_rejects_an_oversized_line_arriving_in_one_read() {
        // A complete-with-newline line over the bound, all in one buffer.
        let mut reader = BufReader::new(io::Cursor::new(b"0123456789ABCDEF\nok\n".to_vec()));
        let mut pending = Vec::new();
        let mut discarding = false;
        assert_eq!(read_bounded_line(&mut reader, &mut pending, &mut discarding, 8), LineRead::TooLong);
        assert_eq!(
            read_bounded_line(&mut reader, &mut pending, &mut discarding, 8),
            LineRead::Line("ok".into())
        );
    }

    #[test]
    fn deadline_miss_degrades_to_preset_then_background_completes() {
        let server = test_server_with(ServeOptions {
            faults: FaultPlan { search_delay_ms: 400, ..Default::default() },
            ..Default::default()
        });
        // Cold cache + 400 ms injected search delay + 30 ms budget: the
        // ladder has no warm neighbour, so the answer is the best preset.
        let line = request_json(&tiny_workload_spec(8), ",\"deadline_ms\":30,\"id\":1");
        let started = Instant::now();
        let degraded: MapResponse = serde_json::from_str(&server.handle_line(&line)).unwrap();
        assert!(degraded.ok, "error: {:?}", degraded.error);
        assert_eq!(degraded.decision_quality.as_deref(), Some("preset"));
        assert!(degraded.best.is_some(), "a preset answer still carries a decision");
        assert!(
            started.elapsed() < Duration::from_millis(350),
            "the deadline path must not wait out the full search delay"
        );
        let stats = server.stats();
        assert_eq!(stats.degraded_preset, 1);
        assert_eq!(stats.faults_injected, 1);
        // background_complete (default): the abandoned search still runs to
        // completion and publishes, so the same request later is an exact hit.
        let deadline = Instant::now() + Duration::from_secs(20);
        while server.cache().searches() == 0 {
            assert!(Instant::now() < deadline, "background search never completed");
            std::thread::sleep(Duration::from_millis(20));
        }
        let warm: MapResponse = serde_json::from_str(&server.handle_line(&line)).unwrap();
        assert_eq!(warm.cache.as_deref(), Some("hit"));
        assert_eq!(warm.decision_quality.as_deref(), Some("exact"));
    }

    #[test]
    fn deadline_miss_prefers_a_warm_neighbour_over_presets() {
        let server = test_server_with(ServeOptions {
            faults: FaultPlan { search_delay_ms: 400, ..Default::default() },
            background_complete: false,
            ..Default::default()
        });
        // Seed g=8 the slow way (no deadline: waits out the injected delay).
        let seed = request_json(&tiny_workload_spec(8), "");
        let seeded: MapResponse = serde_json::from_str(&server.handle_line(&seed)).unwrap();
        assert!(seeded.ok);
        // g=16 under a tight deadline: the nearest cached shape answers warm.
        let line = request_json(&tiny_workload_spec(16), ",\"deadline_ms\":30");
        let warm: MapResponse = serde_json::from_str(&server.handle_line(&line)).unwrap();
        assert!(warm.ok, "error: {:?}", warm.error);
        assert_eq!(warm.decision_quality.as_deref(), Some("warm"));
        assert!(warm.warm_distance.unwrap() > 0.0);
        assert_eq!(server.stats().degraded_warm, 1);
        // background_complete=false: the abandoned search is cancelled, so it
        // must never publish a second search. Give it time to prove that.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.cache().cancelled() == 0 {
            assert!(Instant::now() < deadline, "cancelled search never wound down");
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(server.cache().searches(), 1, "the cancelled search must not publish");
    }

    #[test]
    fn injected_panics_answer_errors_and_are_counted() {
        let server = test_server_with(ServeOptions {
            faults: FaultPlan { panic_every: 2, ..Default::default() },
            ..Default::default()
        });
        let line = request_json(&tiny_workload_spec(8), "");
        let first: MapResponse = serde_json::from_str(&server.handle_line(&line)).unwrap();
        assert!(first.ok, "first map request is not a panic multiple");
        let second: MapResponse = serde_json::from_str(&server.handle_line(&line)).unwrap();
        assert!(!second.ok);
        assert!(second.error.unwrap().contains("panic"));
        // The daemon survives and keeps serving (request 3 is odd → no panic).
        let third: MapResponse = serde_json::from_str(&server.handle_line(&line)).unwrap();
        assert!(third.ok);
        assert_eq!(third.cache.as_deref(), Some("hit"));
        let stats = server.stats();
        assert_eq!(stats.faults_injected, 1);
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn injected_save_crash_leaves_tmp_and_recovery_cleans_it() {
        let dir = std::env::temp_dir().join(format!("omega-serve-crash-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cache_file = dir.join("cache.json");
        let server = test_server_with(ServeOptions {
            cache_file: Some(cache_file.clone()),
            faults: FaultPlan { save_crash: true, ..Default::default() },
            ..Default::default()
        });
        let line = request_json(&tiny_workload_spec(8), "");
        let mapped: MapResponse = serde_json::from_str(&server.handle_line(&line)).unwrap();
        assert!(mapped.ok);
        // First save crashes in the tmp-write → rename window …
        let crashed: MapResponse =
            serde_json::from_str(&server.handle_line("{\"cmd\":\"save\"}")).unwrap();
        assert!(!crashed.ok);
        assert!(crashed.error.unwrap().contains("panic"));
        assert!(cache_file.with_extension("tmp").exists(), "crash leaves the tmp file behind");
        assert!(!cache_file.exists(), "the crashed save must not have renamed");
        // … the fault is one-shot: the retry succeeds …
        let saved: MapResponse =
            serde_json::from_str(&server.handle_line("{\"cmd\":\"save\"}")).unwrap();
        assert!(saved.ok, "error: {:?}", saved.error);
        assert!(cache_file.exists());
        drop(server);
        // … and a restart cleans the stale tmp and loads the good file.
        let reborn = test_server_with(ServeOptions {
            cache_file: Some(cache_file.clone()),
            ..Default::default()
        });
        assert!(!cache_file.with_extension("tmp").exists(), "bind cleans stale tmp files");
        let warm: MapResponse = serde_json::from_str(&reborn.handle_line(&line)).unwrap();
        assert_eq!(warm.cache.as_deref(), Some("hit"));
        assert_eq!(reborn.cache().searches(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
