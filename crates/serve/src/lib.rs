//! Mapper-as-a-service: `mapperd`, a persistent decision daemon over a shared
//! [`DseCache`].
//!
//! Dynasparse-style input-adaptive execution only works if the mapper answers
//! in milliseconds; the factored DSE made a Citeseer full-space sweep take
//! ~9 ms, and this crate productionises it as a long-running service. Clients
//! speak newline-delimited JSON over TCP: each line is one request, each
//! answer one line. A worker-thread pool serves connections; every mapping
//! request funnels through one process-wide [`DseCache`], so identical
//! concurrent requests single-flight onto one search, repeats answer from
//! memory, and the whole cache persists across restarts via
//! [`DseCache::save`]/[`DseCache::load_into`].
//!
//! ## Protocol
//!
//! Request fields (all except the workload shape optional):
//!
//! ```json
//! {"id":1,"workload":{"name":"Citeseer","v":3327,"f":3703,"g":16,
//!  "degrees":[...],"attention_heads":0,"post_op":null},
//!  "objective":"runtime","mode":"exact","top_k":5}
//! ```
//!
//! `cmd` selects non-mapping actions: `"ping"`, `"stats"`, `"save"`, and
//! `"shutdown"` (graceful: drains workers, then flushes the cache to the
//! configured file — SIGTERM does the same via [`signal`]). `mode:"fast"`
//! answers from the cache or a nearest-neighbour warm start
//! ([`DseCache::warm_hint`]) without ever running a full search unless the
//! cache is cold. Responses carry the decision, the cache disposition
//! (`hit`/`coalesced`/`search`/`warm`), and the measured per-request latency.

pub mod signal;

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use omega_accel::engine::ElementwiseOp;
use omega_core::dse::{CacheOutcome, DseCache, DseOptions, ExploreOutcome, RankedDataflow};
use omega_core::mapper::Objective;
use omega_core::{evaluate, AccelConfig, AttentionSpec, GnnWorkload};
use serde::{Deserialize, Serialize};

/// Locks a mutex, recovering the guard from a poisoned lock: a worker that
/// panicked mid-request must not wedge the daemon (same policy as the
/// serving-path locks inside `omega_core`).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The workload shape of a mapping request. Either the full `degrees` vector
/// (exact adjacency structure, as the cost model sees offline) or a
/// `mean_degree` summary (expanded to a uniform vector) must be present.
#[derive(Debug, Clone, Deserialize, Serialize)]
pub struct WorkloadSpec {
    /// Display name (defaults to `"request"`).
    pub name: Option<String>,
    /// Vertices `V` (> 0).
    pub v: usize,
    /// Input feature width `F` (> 0).
    pub f: usize,
    /// Output feature width `G` (> 0).
    pub g: usize,
    /// Stored non-zeros per adjacency row; length must equal `v`.
    pub degrees: Option<Vec<usize>>,
    /// Uniform-degree fallback when `degrees` is omitted.
    pub mean_degree: Option<f64>,
    /// Attention heads (> 0 makes this a GAT-style layer).
    pub attention_heads: Option<usize>,
    /// Elementwise post-phase: `"act"` or `"norm"`.
    pub post_op: Option<String>,
}

impl WorkloadSpec {
    /// Builds the request shape from an existing workload (client side).
    pub fn of(workload: &GnnWorkload) -> Self {
        WorkloadSpec {
            name: Some(workload.name.clone()),
            v: workload.v,
            f: workload.f,
            g: workload.g,
            degrees: Some(workload.degrees.clone()),
            mean_degree: None,
            attention_heads: workload.attention.map(|a| a.heads),
            post_op: workload.post_op.map(|op| op.label().to_string()),
        }
    }

    /// Validates the spec into the workload the cost model consumes.
    pub fn to_workload(&self) -> Result<GnnWorkload, String> {
        if self.v == 0 || self.f == 0 || self.g == 0 {
            return Err(format!(
                "workload dims must be positive (v={} f={} g={})",
                self.v, self.f, self.g
            ));
        }
        let degrees: Vec<usize> = match &self.degrees {
            Some(d) => {
                if d.len() != self.v {
                    return Err(format!("degrees length {} != v {}", d.len(), self.v));
                }
                d.clone()
            }
            None => {
                let mean = self.mean_degree.unwrap_or(1.0);
                if !mean.is_finite() || mean < 0.0 {
                    return Err(format!("mean_degree {mean} must be finite and >= 0"));
                }
                vec![(mean.round() as usize).max(1); self.v]
            }
        };
        let nnz: u64 = degrees.iter().map(|&d| d as u64).sum();
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let mean_degree = nnz as f64 / self.v as f64;
        let attention = match self.attention_heads {
            None | Some(0) => None,
            Some(heads) => Some(AttentionSpec::new(heads)),
        };
        let post_op = match self.post_op.as_deref() {
            None | Some("") => None,
            Some("act" | "activation") => Some(ElementwiseOp::Activation),
            Some("norm" | "layernorm") => Some(ElementwiseOp::LayerNorm),
            Some(other) => return Err(format!("unknown post_op `{other}` (expected act|norm)")),
        };
        Ok(GnnWorkload {
            name: self.name.clone().unwrap_or_else(|| "request".into()),
            v: self.v,
            f: self.f,
            g: self.g,
            degrees,
            nnz,
            mean_degree,
            max_degree,
            attention,
            post_op,
        })
    }
}

/// One request line. `cmd` defaults to `"map"`; control commands (`ping`,
/// `stats`, `save`, `shutdown`) ignore the mapping fields.
#[derive(Debug, Clone, Default, Deserialize, Serialize)]
pub struct MapRequest {
    /// Client-chosen correlation id, echoed back verbatim.
    pub id: Option<u64>,
    /// `"map"` (default) | `"ping"` | `"stats"` | `"save"` | `"shutdown"`.
    pub cmd: Option<String>,
    /// The shape to map (required for `map`).
    pub workload: Option<WorkloadSpec>,
    /// `"runtime"` (default) | `"energy"` | `"edp"`.
    pub objective: Option<String>,
    /// `"exact"` (default: full search on miss) | `"fast"` (cache or
    /// warm-start re-evaluation; searches only when the cache is cold).
    pub mode: Option<String>,
    /// Ranked winners to return (capped by the server's configured top-K).
    pub top_k: Option<usize>,
    /// Accelerator PEs (defaults to the paper config).
    pub pes: Option<usize>,
    /// DRAM bandwidth in elements/cycle (defaults to the paper config).
    pub bandwidth: Option<usize>,
}

impl MapRequest {
    /// A mapping request for `workload` with server-side defaults elsewhere.
    pub fn for_workload(workload: &GnnWorkload) -> Self {
        MapRequest { workload: Some(WorkloadSpec::of(workload)), ..Default::default() }
    }
}

/// One ranked decision in a response: the dataflow in its parseable display
/// form plus the cost axes the client needs to act on it.
#[derive(Debug, Clone, Deserialize, Serialize)]
pub struct Decision {
    /// Display form of the concrete dataflow (round-trips via `FromStr`).
    pub dataflow: String,
    /// Modelled runtime.
    pub cycles: u64,
    /// Modelled total energy.
    pub energy_pj: f64,
    /// Peak on-chip working set.
    pub buffer_peak_bytes: u64,
    /// Objective value (lower is better).
    pub score: f64,
}

impl Decision {
    fn of(ranked: &RankedDataflow) -> Self {
        Decision {
            dataflow: ranked.dataflow.to_string(),
            cycles: ranked.report.total_cycles,
            energy_pj: ranked.report.energy.total_pj(),
            buffer_peak_bytes: ranked.report.buffer_peak_bytes,
            score: ranked.score,
        }
    }
}

/// Server-side counters, returned by the `stats` command and by
/// [`MapperServer::run`] on exit.
#[derive(Debug, Clone, Default, Deserialize, Serialize)]
pub struct ServerStats {
    /// Request lines handled (including control commands and errors).
    pub requests: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Entries currently cached.
    pub cache_entries: u64,
    /// Full searches actually run (completed) by the shared cache.
    pub searches: u64,
    /// Requests answered from a cached entry.
    pub hits: u64,
    /// Requests that piggybacked on another request's in-flight search.
    pub coalesced: u64,
    /// `fast`-mode requests answered by warm-start re-evaluation.
    pub warm_starts: u64,
    /// Cache entries evicted by the LRU bound.
    pub evictions: u64,
    /// Median per-request service latency (µs, over a recent window).
    pub p50_us: u64,
    /// 99th-percentile per-request service latency (µs, over a recent window).
    pub p99_us: u64,
}

/// One response line. `ok == false` carries `error`; mapping responses carry
/// `best`/`ranked`, the cache disposition, and the measured service latency.
#[derive(Debug, Clone, Default, Deserialize, Serialize)]
pub struct MapResponse {
    /// Echo of the request id.
    pub id: Option<u64>,
    /// Whether the request was served.
    pub ok: bool,
    /// What went wrong, when `ok` is false.
    pub error: Option<String>,
    /// `"hit"` | `"coalesced"` | `"search"` | `"warm"` for mapping requests.
    pub cache: Option<String>,
    /// Server-side service time for this request (µs).
    pub latency_us: Option<u64>,
    /// The winning decision.
    pub best: Option<Decision>,
    /// Ranked winners, best first.
    pub ranked: Option<Vec<Decision>>,
    /// Warm-start neighbour distance ([`DseCache::warm_hint`]), `"warm"` only.
    pub warm_distance: Option<f64>,
    /// Counters, for the `stats` and `shutdown` commands.
    pub stats: Option<ServerStats>,
}

impl MapResponse {
    fn err(error: String) -> Self {
        MapResponse { ok: false, error: Some(error), ..Default::default() }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Connection-serving worker threads.
    pub threads: usize,
    /// DSE threads each search uses.
    pub search_threads: usize,
    /// LRU bound of the shared cache.
    pub cache_capacity: usize,
    /// Persist/restore the cache here (loaded at bind, flushed at shutdown).
    pub cache_file: Option<PathBuf>,
    /// Default (and maximum) ranked winners per response.
    pub top_k: usize,
    /// Suppress stderr progress lines.
    pub quiet: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7453".into(),
            threads: 4,
            search_threads: 4,
            cache_capacity: omega_core::dse::DEFAULT_CACHE_CAPACITY,
            cache_file: None,
            top_k: 10,
            quiet: false,
        }
    }
}

/// Sliding window of per-request latencies backing the p50/p99 counters.
const LATENCY_WINDOW: usize = 8192;

/// The daemon: a TCP acceptor, a worker pool, and the shared [`DseCache`].
///
/// [`Self::bind`] claims the port and restores the cache file;
/// [`Self::run`] blocks serving requests until a `shutdown` command or a
/// termination signal, then flushes the cache and returns the final counters.
pub struct MapperServer {
    opts: ServeOptions,
    listener: TcpListener,
    cache: DseCache,
    shutdown: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    warm_starts: AtomicU64,
    latencies_us: Mutex<VecDeque<u64>>,
}

impl MapperServer {
    /// Binds the listen socket and restores the cache file, when configured
    /// and present (a missing file is a cold start, not an error).
    pub fn bind(opts: ServeOptions) -> io::Result<MapperServer> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let cache = DseCache::with_capacity(opts.cache_capacity);
        if let Some(path) = &opts.cache_file {
            if path.exists() {
                let loaded = cache.load_into(path)?;
                if !opts.quiet {
                    eprintln!("mapperd: restored {loaded} cached decisions from {}", path.display());
                }
            }
        }
        Ok(MapperServer {
            opts,
            listener,
            cache,
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            warm_starts: AtomicU64::new(0),
            latencies_us: Mutex::new(VecDeque::with_capacity(LATENCY_WINDOW)),
        })
    }

    /// The bound address (the concrete port when `addr` asked for port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared decision cache.
    pub fn cache(&self) -> &DseCache {
        &self.cache
    }

    /// Asks the serving loop to drain and exit (same effect as the in-band
    /// `shutdown` command or SIGTERM).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::termination_requested()
    }

    /// Serves until shutdown, then flushes the cache file (when configured)
    /// and returns the final counters.
    pub fn run(&self) -> io::Result<ServerStats> {
        let queue: Mutex<VecDeque<TcpStream>> = Mutex::new(VecDeque::new());
        let available = Condvar::new();
        std::thread::scope(|s| {
            for _ in 0..self.opts.threads.max(1) {
                s.spawn(|| self.worker(&queue, &available));
            }
            while !self.shutting_down() {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nodelay(true);
                        // Finite read timeouts keep workers responsive to the
                        // shutdown flag while a connection idles.
                        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
                        lock_recover(&queue).push_back(stream);
                        available.notify_one();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        if !self.opts.quiet {
                            eprintln!("mapperd: accept failed: {e}");
                        }
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            }
            available.notify_all();
        });
        if let Some(path) = &self.opts.cache_file {
            self.cache.save(path)?;
            if !self.opts.quiet {
                eprintln!(
                    "mapperd: flushed {} cached decisions to {}",
                    self.cache.len(),
                    path.display()
                );
            }
        }
        Ok(self.stats())
    }

    fn worker(&self, queue: &Mutex<VecDeque<TcpStream>>, available: &Condvar) {
        loop {
            let stream = {
                let mut q = lock_recover(queue);
                loop {
                    if let Some(s) = q.pop_front() {
                        break Some(s);
                    }
                    if self.shutting_down() {
                        break None;
                    }
                    // Timed wait: a signal flips a flag nobody notifies on.
                    q = available
                        .wait_timeout(q, Duration::from_millis(100))
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            };
            match stream {
                Some(stream) => self.serve_connection(stream),
                None => return,
            }
        }
    }

    fn serve_connection(&self, stream: TcpStream) {
        let Ok(read_half) = stream.try_clone() else { return };
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        let mut line = String::new();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => break, // client closed
                Ok(_) => {
                    let trimmed = line.trim();
                    if !trimmed.is_empty() {
                        let response = self.handle_line(trimmed);
                        let sent = writer
                            .write_all(response.as_bytes())
                            .and_then(|()| writer.write_all(b"\n"))
                            .and_then(|()| writer.flush());
                        if sent.is_err() {
                            break;
                        }
                    }
                    line.clear();
                }
                // Timeout: a partial line (if any) stays buffered in `line`
                // and the next read_line appends the remainder.
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if self.shutting_down() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// Serves one request line and returns the response line (no trailing
    /// newline). Public so the protocol is testable without a socket.
    pub fn handle_line(&self, line: &str) -> String {
        let started = Instant::now();
        self.requests.fetch_add(1, Ordering::Relaxed);
        let mut response = match serde_json::from_str::<MapRequest>(line) {
            Ok(request) => {
                let id = request.id;
                // A panicking request must answer with an error, not take the
                // worker (and a poisoned lock) down with it.
                let outcome = catch_unwind(AssertUnwindSafe(|| self.dispatch(&request)));
                let mut response = match outcome {
                    Ok(Ok(response)) => response,
                    Ok(Err(error)) => MapResponse::err(error),
                    Err(_) => MapResponse::err("internal panic while serving request".into()),
                };
                response.id = id;
                response
            }
            Err(e) => MapResponse::err(format!("bad request: {e}")),
        };
        if !response.ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let latency_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        response.latency_us = Some(latency_us);
        let mut window = lock_recover(&self.latencies_us);
        if window.len() == LATENCY_WINDOW {
            window.pop_front();
        }
        window.push_back(latency_us);
        drop(window);
        serde_json::to_string(&response).unwrap_or_else(|e| {
            format!("{{\"ok\":false,\"error\":\"response serialisation failed: {e}\"}}")
        })
    }

    fn dispatch(&self, request: &MapRequest) -> Result<MapResponse, String> {
        match request.cmd.as_deref().unwrap_or("map") {
            "ping" => Ok(MapResponse { ok: true, ..Default::default() }),
            "stats" => Ok(MapResponse { ok: true, stats: Some(self.stats()), ..Default::default() }),
            "save" => {
                let path = self
                    .opts
                    .cache_file
                    .as_ref()
                    .ok_or_else(|| "no --cache-file configured".to_string())?;
                self.cache.save(path).map_err(|e| format!("cache save failed: {e}"))?;
                Ok(MapResponse { ok: true, ..Default::default() })
            }
            "shutdown" => {
                self.request_shutdown();
                Ok(MapResponse { ok: true, stats: Some(self.stats()), ..Default::default() })
            }
            "map" => self.serve_map(request),
            other => Err(format!("unknown cmd `{other}` (expected map|ping|stats|save|shutdown)")),
        }
    }

    fn serve_map(&self, request: &MapRequest) -> Result<MapResponse, String> {
        let spec = request.workload.as_ref().ok_or_else(|| "missing `workload`".to_string())?;
        let workload = spec.to_workload()?;
        let objective = match request.objective.as_deref() {
            None | Some("runtime") => Objective::Runtime,
            Some("energy") => Objective::Energy,
            Some("edp") => Objective::Edp,
            Some(other) => {
                return Err(format!("unknown objective `{other}` (expected runtime|energy|edp)"))
            }
        };
        let mut cfg = AccelConfig::paper_default();
        if let Some(pes) = request.pes {
            cfg = cfg.with_pes(pes);
        }
        if let Some(bw) = request.bandwidth {
            cfg = cfg.with_bandwidth(bw);
        }
        let mut opts = DseOptions::new(objective);
        opts.threads = self.opts.search_threads;
        opts.top_k = request.top_k.unwrap_or(self.opts.top_k).clamp(1, self.opts.top_k.max(1));
        match request.mode.as_deref().unwrap_or("exact") {
            "exact" => {
                let (outcome, how) = self.cache.explore_traced(&workload, &cfg, &opts);
                Ok(Self::map_response(&outcome, disposition(how), None))
            }
            "fast" => {
                if let Some(outcome) = self.cache.lookup(&workload, &cfg, &opts) {
                    return Ok(Self::map_response(&outcome, "hit", None));
                }
                if let Some(response) = self.warm_start(&workload, &cfg, &opts, objective) {
                    return Ok(response);
                }
                let (outcome, how) = self.cache.explore_traced(&workload, &cfg, &opts);
                Ok(Self::map_response(&outcome, disposition(how), None))
            }
            other => Err(format!("unknown mode `{other}` (expected exact|fast)")),
        }
    }

    /// `fast`-mode miss path: re-evaluates the ranked dataflows of the
    /// nearest cached shape on the actual workload — a handful of cost-model
    /// calls instead of a full search. `None` when the cache is empty or no
    /// hinted dataflow evaluates successfully (caller falls back to a search).
    fn warm_start(
        &self,
        workload: &GnnWorkload,
        cfg: &AccelConfig,
        opts: &DseOptions,
        objective: Objective,
    ) -> Option<MapResponse> {
        let hint = self.cache.warm_hint(workload)?;
        let mut ranked: Vec<Decision> = hint
            .outcome
            .ranked
            .iter()
            .filter_map(|r| {
                let report = evaluate(workload, &r.dataflow, cfg).ok()?;
                let score = objective.score(&report);
                Some(Decision {
                    dataflow: r.dataflow.to_string(),
                    cycles: report.total_cycles,
                    energy_pj: report.energy.total_pj(),
                    buffer_peak_bytes: report.buffer_peak_bytes,
                    score,
                })
            })
            .collect();
        if ranked.is_empty() {
            return None;
        }
        ranked.sort_by(|a, b| a.score.total_cmp(&b.score).then_with(|| a.dataflow.cmp(&b.dataflow)));
        ranked.truncate(opts.top_k.max(1));
        self.warm_starts.fetch_add(1, Ordering::Relaxed);
        Some(MapResponse {
            ok: true,
            cache: Some("warm".into()),
            best: ranked.first().cloned(),
            ranked: Some(ranked),
            warm_distance: Some(hint.distance),
            ..Default::default()
        })
    }

    fn map_response(outcome: &ExploreOutcome, cache: &str, warm: Option<f64>) -> MapResponse {
        MapResponse {
            ok: true,
            cache: Some(cache.into()),
            best: outcome.best().map(Decision::of),
            ranked: Some(outcome.ranked.iter().map(Decision::of).collect()),
            warm_distance: warm,
            ..Default::default()
        }
    }

    /// Current counters: request/error totals, the shared cache's
    /// hit/search/eviction counters, and p50/p99 service latency over a
    /// sliding window of recent requests.
    pub fn stats(&self) -> ServerStats {
        let mut sorted: Vec<u64> = lock_recover(&self.latencies_us).iter().copied().collect();
        sorted.sort_unstable();
        ServerStats {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache_entries: self.cache.len() as u64,
            searches: self.cache.searches() as u64,
            hits: self.cache.hits() as u64,
            coalesced: self.cache.coalesced() as u64,
            warm_starts: self.warm_starts.load(Ordering::Relaxed),
            evictions: self.cache.evictions() as u64,
            p50_us: percentile_us(&sorted, 0.50),
            p99_us: percentile_us(&sorted, 0.99),
        }
    }
}

fn disposition(how: CacheOutcome) -> &'static str {
    match how {
        CacheOutcome::Hit => "hit",
        CacheOutcome::Coalesced => "coalesced",
        CacheOutcome::Searched => "search",
    }
}

/// Nearest-rank percentile of an ascending-sorted sample (0 when empty).
fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload_spec(g: usize) -> WorkloadSpec {
        WorkloadSpec {
            name: Some("tiny".into()),
            v: 24,
            f: 8,
            g,
            degrees: Some((0..24).map(|i| 1 + (i % 4)).collect()),
            mean_degree: None,
            attention_heads: None,
            post_op: None,
        }
    }

    fn test_server() -> MapperServer {
        // Port 0: bind a throwaway socket purely to construct the server; the
        // protocol tests below go through handle_line, not TCP.
        let opts = ServeOptions { addr: "127.0.0.1:0".into(), quiet: true, ..Default::default() };
        MapperServer::bind(opts).expect("bind")
    }

    fn request_json(spec: &WorkloadSpec, extra: &str) -> String {
        let workload = serde_json::to_string(spec).unwrap();
        format!("{{\"workload\":{workload}{extra}}}")
    }

    #[test]
    fn ping_stats_and_bad_json_round_trip() {
        let server = test_server();
        let pong: MapResponse =
            serde_json::from_str(&server.handle_line("{\"cmd\":\"ping\",\"id\":7}")).unwrap();
        assert!(pong.ok);
        assert_eq!(pong.id, Some(7));
        assert!(pong.latency_us.is_some());

        let bad: MapResponse = serde_json::from_str(&server.handle_line("{nope")).unwrap();
        assert!(!bad.ok);
        assert!(bad.error.unwrap().starts_with("bad request"));

        let stats: MapResponse =
            serde_json::from_str(&server.handle_line("{\"cmd\":\"stats\"}")).unwrap();
        let stats = stats.stats.expect("stats payload");
        assert_eq!(stats.requests, 3); // ping + bad line + this stats call
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn map_request_searches_then_hits() {
        let server = test_server();
        let line = request_json(&tiny_workload_spec(8), ",\"top_k\":3");
        let first: MapResponse = serde_json::from_str(&server.handle_line(&line)).unwrap();
        assert!(first.ok, "error: {:?}", first.error);
        assert_eq!(first.cache.as_deref(), Some("search"));
        let best = first.best.expect("a winning decision");
        assert!(best.cycles > 0);
        assert!(first.ranked.unwrap().len() <= 3);

        let second: MapResponse = serde_json::from_str(&server.handle_line(&line)).unwrap();
        assert_eq!(second.cache.as_deref(), Some("hit"));
        assert_eq!(second.best.unwrap().dataflow, best.dataflow);
        assert_eq!(server.cache().searches(), 1);
        assert_eq!(server.cache().hits(), 1);
    }

    #[test]
    fn fast_mode_warm_starts_from_the_nearest_shape() {
        let server = test_server();
        // Seed the cache with one exact search at g=8 …
        let seed = request_json(&tiny_workload_spec(8), "");
        let seeded: MapResponse = serde_json::from_str(&server.handle_line(&seed)).unwrap();
        assert!(seeded.ok);
        // … then ask for the unseen g=16 in fast mode: warm start, no search.
        let fast = request_json(&tiny_workload_spec(16), ",\"mode\":\"fast\"");
        let warm: MapResponse = serde_json::from_str(&server.handle_line(&fast)).unwrap();
        assert!(warm.ok, "error: {:?}", warm.error);
        assert_eq!(warm.cache.as_deref(), Some("warm"));
        assert!(warm.warm_distance.unwrap() > 0.0);
        assert!(warm.best.is_some());
        assert_eq!(server.cache().searches(), 1, "warm start must not search");
    }

    #[test]
    fn map_errors_name_the_field() {
        let server = test_server();
        let missing: MapResponse = serde_json::from_str(&server.handle_line("{}")).unwrap();
        assert_eq!(missing.error.as_deref(), Some("missing `workload`"));

        let mut spec = tiny_workload_spec(8);
        spec.degrees = Some(vec![1; 3]); // wrong length
        let bad: MapResponse =
            serde_json::from_str(&server.handle_line(&request_json(&spec, ""))).unwrap();
        assert!(bad.error.unwrap().contains("degrees length 3 != v 24"));

        let unknown: MapResponse = serde_json::from_str(
            &server.handle_line(&request_json(&tiny_workload_spec(8), ",\"cmd\":\"frobnicate\"")),
        )
        .unwrap();
        assert!(unknown.error.unwrap().contains("unknown cmd"));
    }

    #[test]
    fn uniform_degree_fallback_builds_a_workload() {
        let spec = WorkloadSpec {
            name: None,
            v: 10,
            f: 4,
            g: 4,
            degrees: None,
            mean_degree: Some(2.6),
            attention_heads: Some(2),
            post_op: Some("act".into()),
        };
        let wl = spec.to_workload().unwrap();
        assert_eq!(wl.degrees, vec![3; 10]);
        assert_eq!(wl.nnz, 30);
        assert_eq!(wl.attention.unwrap().heads, 2);
        assert_eq!(wl.post_op, Some(ElementwiseOp::Activation));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile_us(&[], 0.99), 0);
        assert_eq!(percentile_us(&[5], 0.50), 5);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&v, 0.50), 50);
        assert_eq!(percentile_us(&v, 0.99), 99);
        assert_eq!(percentile_us(&v, 1.0), 100);
    }
}
