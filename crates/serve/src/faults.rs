//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] describes which failures `mapperd` should inflict on
//! itself — handler panics, artificial search latency, a crash in the
//! kill-during-save window — so every recovery path (per-request
//! `catch_unwind`, deadline degradation, cache quarantine/rebuild) is
//! exercised by tests and the CI chaos smoke rather than merely claimed.
//! The plan is plain data: parsing it never arms anything, the server
//! consults it at each injection point. `loadgen --chaos` provides the
//! client-side half (slow, garbage, oversized, and disconnecting clients).

/// Which faults to inject, and how often. [`FaultPlan::default`] injects
/// nothing; `mapperd --fault-plan SPEC` (or the `OMEGA_FAULTS` environment
/// variable) arms it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Panic inside the request handler on every Nth `map` request
    /// (0 = never). The daemon must answer an error line and keep serving.
    pub panic_every: u64,
    /// Sleep this long before every cold search, simulating a slow or
    /// contended search path so deadline degradation engages.
    pub search_delay_ms: u64,
    /// Crash the *first* cache save between the temp-file write and the
    /// rename — the window a `kill -9` during save leaves behind. One-shot:
    /// later saves (including the shutdown flush) succeed.
    pub save_crash: bool,
}

impl FaultPlan {
    /// Parses a `key=value` comma list: `panic_every=N`, `search_delay_ms=N`,
    /// `save_crash=0|1`. An empty spec is the no-fault plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault `{part}` is not key=value"))?;
            let n: u64 = value
                .trim()
                .parse()
                .map_err(|e| format!("fault `{key}`: bad value `{value}`: {e}"))?;
            match key.trim() {
                "panic_every" => plan.panic_every = n,
                "search_delay_ms" => plan.search_delay_ms = n,
                "save_crash" => plan.save_crash = n != 0,
                other => {
                    return Err(format!(
                        "unknown fault `{other}` (expected panic_every|search_delay_ms|save_crash)"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// The plan named by the `OMEGA_FAULTS` environment variable (the
    /// no-fault plan when unset).
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var("OMEGA_FAULTS") {
            Ok(spec) => Self::parse(&spec),
            Err(_) => Ok(FaultPlan::default()),
        }
    }

    /// Whether any fault is armed.
    pub fn is_active(&self) -> bool {
        *self != FaultPlan::default()
    }

    /// Whether the `seq`-th `map` request (1-based) should panic.
    pub fn should_panic(&self, seq: u64) -> bool {
        self.panic_every > 0 && seq.is_multiple_of(self.panic_every)
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "panic_every={},search_delay_ms={},save_crash={}",
            self.panic_every, self.search_delay_ms, self.save_crash as u8
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_specs_and_rejects_unknown_keys() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        assert!(!FaultPlan::default().is_active());
        let plan = FaultPlan::parse("panic_every=3, search_delay_ms=250 ,save_crash=1").unwrap();
        assert_eq!(
            plan,
            FaultPlan { panic_every: 3, search_delay_ms: 250, save_crash: true }
        );
        assert!(plan.is_active());
        assert!(FaultPlan::parse("panic_every").is_err());
        assert!(FaultPlan::parse("frobnicate=1").is_err());
        assert!(FaultPlan::parse("panic_every=x").is_err());
        // Display round-trips through parse.
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn panic_schedule_is_every_nth_map_request() {
        let plan = FaultPlan { panic_every: 3, ..Default::default() };
        let fired: Vec<u64> = (1..=9).filter(|&s| plan.should_panic(s)).collect();
        assert_eq!(fired, vec![3, 6, 9]);
        assert!(!FaultPlan::default().should_panic(1), "no-fault plan never panics");
    }
}
