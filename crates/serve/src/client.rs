//! A retrying NDJSON client for `mapperd`.
//!
//! [`MapperClient`] wraps one TCP connection and layers the fault handling a
//! caller should not have to reinvent: connect retries while the daemon
//! starts, reconnection when the connection drops mid-exchange, and bounded
//! retries with exponential backoff + deterministic jitter for transient
//! server-side failures (shed responses, injected handler panics, cancelled
//! searches). Both `loadgen` and `explore --remote` forward through it.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::{MapRequest, MapResponse};

/// SplitMix64 finalizer: a cheap, deterministic bit mixer backing the retry
/// jitter (no external RNG crates).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Retry shape: up to `attempts` tries per request, sleeping
/// `base_delay_ms << try` (capped at `max_delay_ms`) with ±50% deterministic
/// jitter between tries. Jitter decorrelates retry storms: without it, every
/// client that saw the same shed response would hammer back in lockstep.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total tries per request (1 = no retries).
    pub attempts: u32,
    /// First backoff sleep; doubles each retry.
    pub base_delay_ms: u64,
    /// Backoff ceiling.
    pub max_delay_ms: u64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: 4, base_delay_ms: 20, max_delay_ms: 1000, seed: 0x0a11ce }
    }
}

impl RetryPolicy {
    /// The backoff sleep before retry `attempt` (1-based): exponential with
    /// ±50% jitter drawn deterministically from the seed.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base_delay_ms.saturating_shl(attempt.min(16));
        let capped = exp.clamp(1, self.max_delay_ms.max(1));
        // Jitter in [capped/2, capped]: never zero, never past the cap.
        let jitter = mix(self.seed ^ u64::from(attempt)) % (capped / 2 + 1);
        Duration::from_millis(capped - jitter)
    }
}

/// Shim: `u64::checked_shl` returning saturation instead of `None`.
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

/// Whether a failed response is worth retrying: explicit sheds (the server
/// asked us to back off and come back) and transient internal failures
/// (injected or real panics, searches cancelled under the request). Malformed
/// requests and validation errors are *not* retryable — resending the same
/// bad request can never succeed.
pub fn retryable(response: &MapResponse) -> bool {
    if response.ok {
        return false;
    }
    if response.decision_quality.as_deref() == Some("shed") {
        return true;
    }
    match response.error.as_deref() {
        Some(e) => e.contains("panic") || e.contains("cancelled") || e.contains("shutting down"),
        None => false,
    }
}

/// One client connection to `mapperd`, with reconnect + retry built in.
pub struct MapperClient {
    addr: String,
    policy: RetryPolicy,
    stream: Option<BufReader<TcpStream>>,
    retries: u64,
    reconnects: u64,
}

impl MapperClient {
    /// Connects to `addr`, retrying with backoff while the daemon starts up.
    pub fn connect(addr: &str, policy: RetryPolicy) -> std::io::Result<MapperClient> {
        let mut client = MapperClient {
            addr: addr.to_string(),
            policy,
            stream: None,
            retries: 0,
            reconnects: 0,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Request-level retries performed so far (for disposition reporting).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Reconnections performed after a dropped connection.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn ensure_connected(&mut self) -> std::io::Result<&mut BufReader<TcpStream>> {
        if self.stream.is_none() {
            let mut last_err = None;
            for attempt in 1..=self.policy.attempts.max(1) {
                match TcpStream::connect(&self.addr) {
                    Ok(stream) => {
                        stream.set_nodelay(true).ok();
                        self.stream = Some(BufReader::new(stream));
                        last_err = None;
                        break;
                    }
                    Err(e) => {
                        last_err = Some(e);
                        std::thread::sleep(self.policy.backoff(attempt));
                    }
                }
            }
            if let Some(e) = last_err {
                return Err(e);
            }
        }
        Ok(self.stream.as_mut().expect("connected above"))
    }

    /// One raw exchange: send the line, read one response line. Any I/O
    /// failure drops the connection so the next try reconnects.
    fn exchange(&mut self, line: &str) -> std::io::Result<MapResponse> {
        let reader = self.ensure_connected()?;
        let result = (|| {
            let stream = reader.get_mut();
            stream.write_all(line.as_bytes())?;
            stream.write_all(b"\n")?;
            stream.flush()?;
            let mut answer = String::new();
            if reader.read_line(&mut answer)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            serde_json::from_str::<MapResponse>(answer.trim())
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
        })();
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    /// Sends a request line, retrying transient failures (I/O errors,
    /// [`retryable`] responses) with exponential backoff + jitter up to the
    /// policy's attempt budget. The last response (or error) is returned
    /// as-is, so callers still see the final disposition.
    pub fn request_line(&mut self, line: &str) -> std::io::Result<MapResponse> {
        let attempts = self.policy.attempts.max(1);
        let mut last: Option<std::io::Result<MapResponse>> = None;
        for attempt in 1..=attempts {
            if attempt > 1 {
                self.retries += 1;
                std::thread::sleep(self.policy.backoff(attempt - 1));
            }
            match self.exchange(line) {
                Ok(response) if !retryable(&response) => return Ok(response),
                Ok(response) => last = Some(Ok(response)),
                Err(e) => {
                    self.reconnects += 1;
                    last = Some(Err(e));
                }
            }
        }
        last.expect("at least one attempt ran")
    }

    /// Serialises and sends a [`MapRequest`] with the same retry behaviour.
    pub fn request(&mut self, request: &MapRequest) -> std::io::Result<MapResponse> {
        let line = serde_json::to_string(request)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        self.request_line(&line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_jittered_and_deterministic() {
        let policy = RetryPolicy { attempts: 5, base_delay_ms: 10, max_delay_ms: 80, seed: 7 };
        for attempt in 1..=8 {
            let d = policy.backoff(attempt).as_millis() as u64;
            let cap = (10u64 << attempt.min(16)).min(80);
            assert!(d >= cap / 2 && d <= cap, "attempt {attempt}: {d} outside [{}, {cap}]", cap / 2);
            assert_eq!(policy.backoff(attempt), policy.backoff(attempt), "jitter is seeded");
        }
        // Different seeds decorrelate the jitter stream.
        let other = RetryPolicy { seed: 8, ..policy };
        assert!((1..=8).any(|a| policy.backoff(a) != other.backoff(a)));
    }

    #[test]
    fn retryable_distinguishes_transient_from_permanent_failures() {
        let ok = MapResponse { ok: true, ..Default::default() };
        assert!(!retryable(&ok));
        let shed = MapResponse::shed("shed: connection limit 4 reached, retry later".into());
        assert!(retryable(&shed));
        let panic = MapResponse::err("internal panic while serving request".into());
        assert!(retryable(&panic));
        let bad = MapResponse::err("bad request: expected value at line 1".into());
        assert!(!retryable(&bad), "resending a malformed request cannot succeed");
        let missing = MapResponse::err("missing `workload`".into());
        assert!(!retryable(&missing));
    }
}
