//! End-to-end daemon tests over a real loopback socket: concurrent identical
//! requests single-flight onto one search, shutdown flushes a cache file that
//! a restarted server answers hits from, oversized lines get typed errors
//! without killing the connection, overflow connections shed explicitly, and
//! a chaos run (injected panics + a save-path crash + garbage clients)
//! survives with a restart serving warm traffic searchlessly.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use omega_serve::client::{MapperClient, RetryPolicy};
use omega_serve::faults::FaultPlan;
use omega_serve::{MapRequest, MapResponse, MapperServer, ServeOptions, WorkloadSpec};

fn tiny_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: Some("tiny".into()),
        v: 24,
        f: 8,
        g: 8,
        degrees: Some((0..24).map(|i| 1 + (i % 4)).collect()),
        mean_degree: None,
        attention_heads: None,
        post_op: None,
        dataset: None,
    }
}

fn send_line(addr: &std::net::SocketAddr, line: &str) -> MapResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send newline");
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("response line");
    serde_json::from_str(&response).expect("response JSON")
}

#[test]
fn concurrent_identical_requests_trigger_exactly_one_search() {
    let opts = ServeOptions { addr: "127.0.0.1:0".into(), quiet: true, ..Default::default() };
    let server = MapperServer::bind(opts).expect("bind");
    let addr = server.local_addr().expect("addr");
    let request = serde_json::to_string(&MapRequest::for_workload(
        &tiny_spec().to_workload().expect("workload"),
    ))
    .expect("request JSON");

    std::thread::scope(|s| {
        let serving = s.spawn(|| server.run().expect("run"));

        let clients: Vec<_> = (0..4)
            .map(|_| {
                let request = request.clone();
                s.spawn(move || send_line(&addr, &request))
            })
            .collect();
        let responses: Vec<MapResponse> =
            clients.into_iter().map(|c| c.join().expect("client")).collect();

        for r in &responses {
            assert!(r.ok, "error: {:?}", r.error);
            assert!(r.latency_us.is_some());
        }
        let best: Vec<&str> =
            responses.iter().map(|r| r.best.as_ref().unwrap().dataflow.as_str()).collect();
        assert!(best.windows(2).all(|w| w[0] == w[1]), "all clients share one decision: {best:?}");
        let searches =
            responses.iter().filter(|r| r.cache.as_deref() == Some("search")).count();
        assert_eq!(searches, 1, "dispositions: {:?}", responses.iter().map(|r| &r.cache));

        let stats = send_line(&addr, "{\"cmd\":\"shutdown\"}").stats.expect("stats");
        assert_eq!(stats.searches, 1, "exactly one underlying search");
        assert_eq!(stats.hits + stats.coalesced, 3);

        let stats = serving.join().expect("server thread");
        assert_eq!(stats.errors, 0);
    });
}

#[test]
fn shutdown_flushes_cache_file_and_a_restart_answers_hits() {
    let path = std::env::temp_dir().join(format!("omega-serve-daemon-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let request = serde_json::to_string(&MapRequest::for_workload(
        &tiny_spec().to_workload().expect("workload"),
    ))
    .expect("request JSON");

    let opts = ServeOptions {
        addr: "127.0.0.1:0".into(),
        cache_file: Some(path.clone()),
        quiet: true,
        ..Default::default()
    };
    let server = MapperServer::bind(opts.clone()).expect("bind");
    let addr = server.local_addr().expect("addr");
    std::thread::scope(|s| {
        let serving = s.spawn(|| server.run().expect("run"));
        let first = send_line(&addr, &request);
        assert_eq!(first.cache.as_deref(), Some("search"));
        assert!(send_line(&addr, "{\"cmd\":\"shutdown\"}").ok);
        serving.join().expect("server thread");
    });
    assert!(path.exists(), "shutdown flushed the cache file");

    // A restarted server answers the same request from the restored cache
    // without running any search.
    let reloaded = MapperServer::bind(opts).expect("rebind");
    let response: MapResponse =
        serde_json::from_str(&reloaded.handle_line(&request)).expect("response JSON");
    assert_eq!(response.cache.as_deref(), Some("hit"), "error: {:?}", response.error);
    assert_eq!(reloaded.cache().searches(), 0);
    assert_eq!(reloaded.cache().hits(), 1);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn oversized_lines_get_a_typed_error_and_the_connection_survives() {
    let opts = ServeOptions {
        addr: "127.0.0.1:0".into(),
        max_line_bytes: 512,
        quiet: true,
        ..Default::default()
    };
    let server = MapperServer::bind(opts).expect("bind");
    let addr = server.local_addr().expect("addr");
    std::thread::scope(|s| {
        let serving = s.spawn(|| server.run().expect("run"));

        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        // A line well past the bound must be discarded, not buffered …
        let mut line = vec![b'x'; 4096];
        line.push(b'\n');
        stream.write_all(&line).expect("send oversized");
        let mut response = String::new();
        reader.read_line(&mut response).expect("error line");
        let rejected: MapResponse = serde_json::from_str(&response).expect("response JSON");
        assert!(!rejected.ok);
        assert!(
            rejected.error.as_deref().unwrap_or("").contains("oversized request line"),
            "typed error, got: {:?}",
            rejected.error
        );
        // … and the SAME connection keeps working afterwards.
        stream.write_all(b"{\"cmd\":\"ping\",\"id\":9}\n").expect("send ping");
        response.clear();
        reader.read_line(&mut response).expect("pong line");
        let pong: MapResponse = serde_json::from_str(&response).expect("pong JSON");
        assert!(pong.ok);
        assert_eq!(pong.id, Some(9));

        assert!(send_line(&addr, "{\"cmd\":\"shutdown\"}").ok);
        let stats = serving.join().expect("server thread");
        assert_eq!(stats.errors, 1, "exactly the oversized line errored");
    });
}

#[test]
fn connections_past_the_admission_limit_are_shed_explicitly() {
    let opts = ServeOptions {
        addr: "127.0.0.1:0".into(),
        max_connections: 2,
        quiet: true,
        ..Default::default()
    };
    let server = MapperServer::bind(opts).expect("bind");
    let addr = server.local_addr().expect("addr");
    std::thread::scope(|s| {
        let serving = s.spawn(|| server.run().expect("run"));

        // Fill the limit with two held connections, each proven registered
        // by a ping round-trip (TCP connect alone races the accept loop).
        let held: Vec<(TcpStream, BufReader<TcpStream>)> = (0..2)
            .map(|i| {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                stream
                    .write_all(format!("{{\"cmd\":\"ping\",\"id\":{i}}}\n").as_bytes())
                    .expect("ping");
                let mut response = String::new();
                reader.read_line(&mut response).expect("pong");
                assert!(serde_json::from_str::<MapResponse>(&response).expect("JSON").ok);
                (stream, reader)
            })
            .collect();

        // The third connection gets an explicit shed line, then EOF.
        let extra = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(extra);
        let mut response = String::new();
        reader.read_line(&mut response).expect("shed line");
        let shed: MapResponse = serde_json::from_str(&response).expect("shed JSON");
        assert!(!shed.ok);
        assert_eq!(shed.decision_quality.as_deref(), Some("shed"));
        assert!(shed.error.as_deref().unwrap_or("").contains("connection limit"));
        response.clear();
        assert_eq!(reader.read_line(&mut response).expect("EOF"), 0, "shed conn is closed");

        // Releasing a held connection frees a slot for a newcomer.
        drop(held);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let pong = send_line(&addr, "{\"cmd\":\"ping\"}");
            if pong.ok {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "slot never freed after close");
            std::thread::sleep(std::time::Duration::from_millis(20));
        }

        let stats = send_line(&addr, "{\"cmd\":\"shutdown\"}").stats.expect("stats");
        assert!(stats.shed >= 1, "the overflow connection was counted as shed");
        serving.join().expect("server thread");
    });
}

#[test]
fn chaos_run_survives_and_a_restart_serves_warm_with_zero_searches() {
    let path = std::env::temp_dir().join(format!("omega-serve-chaos-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let request = serde_json::to_string(&MapRequest::for_workload(
        &tiny_spec().to_workload().expect("workload"),
    ))
    .expect("request JSON");

    let opts = ServeOptions {
        addr: "127.0.0.1:0".into(),
        cache_file: Some(path.clone()),
        max_line_bytes: 1024,
        faults: FaultPlan { panic_every: 3, save_crash: true, ..Default::default() },
        quiet: true,
        ..Default::default()
    };
    let server = MapperServer::bind(opts).expect("bind");
    let addr = server.local_addr().expect("addr");
    std::thread::scope(|s| {
        let serving = s.spawn(|| server.run().expect("run"));
        let policy = RetryPolicy { attempts: 5, base_delay_ms: 5, max_delay_ms: 50, seed: 11 };
        let mut client = MapperClient::connect(&addr.to_string(), policy).expect("connect");

        // Adversarial clients: garbage JSON, an oversized line, a mid-line
        // disconnect — none may take the daemon down.
        let garbage = send_line(&addr, "{definitely not json");
        assert!(!garbage.ok);
        let oversized = send_line(&addr, &"x".repeat(4096));
        assert!(oversized.error.as_deref().unwrap_or("").contains("oversized"));
        {
            let mut half = TcpStream::connect(addr).expect("connect");
            half.write_all(b"{\"cmd\":\"pi").expect("half line");
        } // dropped mid-line

        // The save path crashes once (injected), leaving a stale .tmp; the
        // in-band response is an error, not a dead daemon. Raw send: no
        // retries, so the crash is observed rather than papered over.
        let crashed = send_line(&addr, "{\"cmd\":\"save\"}");
        assert!(!crashed.ok);
        assert!(crashed.error.as_deref().unwrap_or("").contains("panic"));
        assert!(path.with_extension("tmp").exists(), "crash left the temp file");

        // Map traffic through the retrying client: every third map request
        // panics server-side, but retries land every answer.
        for _ in 0..6 {
            let response = client.request_line(&request).expect("mapped");
            assert!(response.ok, "retries recover injected panics: {:?}", response.error);
            assert_eq!(response.decision_quality.as_deref(), Some("exact"));
        }
        assert!(client.retries() >= 1, "at least one injected panic was retried");

        let stats = send_line(&addr, "{\"cmd\":\"shutdown\"}").stats.expect("stats");
        assert!(stats.faults_injected >= 2, "panic + save crash injected: {stats:?}");
        assert!(stats.errors >= 3, "garbage + oversized + crash + panics all counted");
        serving.join().expect("server thread");
    });
    // The shutdown flush (a plain save — the crash was one-shot) persisted
    // the cache; a restart loads it and serves the hot shape searchlessly.
    assert!(path.exists(), "shutdown still flushed the cache after chaos");
    let reloaded = MapperServer::bind(ServeOptions {
        addr: "127.0.0.1:0".into(),
        cache_file: Some(path.clone()),
        quiet: true,
        ..Default::default()
    })
    .expect("rebind");
    assert!(!path.with_extension("tmp").exists(), "rebind cleaned the stale temp file");
    let warm: MapResponse =
        serde_json::from_str(&reloaded.handle_line(&request)).expect("response JSON");
    assert_eq!(warm.cache.as_deref(), Some("hit"), "error: {:?}", warm.error);
    assert_eq!(reloaded.cache().searches(), 0, "warm restart never searches");

    let _ = std::fs::remove_file(&path);
}
