//! End-to-end daemon tests over a real loopback socket: concurrent identical
//! requests single-flight onto one search, and shutdown flushes a cache file
//! that a restarted server answers hits from.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;


use omega_serve::{MapRequest, MapResponse, MapperServer, ServeOptions, WorkloadSpec};

fn tiny_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: Some("tiny".into()),
        v: 24,
        f: 8,
        g: 8,
        degrees: Some((0..24).map(|i| 1 + (i % 4)).collect()),
        mean_degree: None,
        attention_heads: None,
        post_op: None,
    }
}

fn send_line(addr: &std::net::SocketAddr, line: &str) -> MapResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send newline");
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("response line");
    serde_json::from_str(&response).expect("response JSON")
}

#[test]
fn concurrent_identical_requests_trigger_exactly_one_search() {
    let opts = ServeOptions { addr: "127.0.0.1:0".into(), quiet: true, ..Default::default() };
    let server = MapperServer::bind(opts).expect("bind");
    let addr = server.local_addr().expect("addr");
    let request = serde_json::to_string(&MapRequest::for_workload(
        &tiny_spec().to_workload().expect("workload"),
    ))
    .expect("request JSON");

    std::thread::scope(|s| {
        let serving = s.spawn(|| server.run().expect("run"));

        let clients: Vec<_> = (0..4)
            .map(|_| {
                let request = request.clone();
                s.spawn(move || send_line(&addr, &request))
            })
            .collect();
        let responses: Vec<MapResponse> =
            clients.into_iter().map(|c| c.join().expect("client")).collect();

        for r in &responses {
            assert!(r.ok, "error: {:?}", r.error);
            assert!(r.latency_us.is_some());
        }
        let best: Vec<&str> =
            responses.iter().map(|r| r.best.as_ref().unwrap().dataflow.as_str()).collect();
        assert!(best.windows(2).all(|w| w[0] == w[1]), "all clients share one decision: {best:?}");
        let searches =
            responses.iter().filter(|r| r.cache.as_deref() == Some("search")).count();
        assert_eq!(searches, 1, "dispositions: {:?}", responses.iter().map(|r| &r.cache));

        let stats = send_line(&addr, "{\"cmd\":\"shutdown\"}").stats.expect("stats");
        assert_eq!(stats.searches, 1, "exactly one underlying search");
        assert_eq!(stats.hits + stats.coalesced, 3);

        let stats = serving.join().expect("server thread");
        assert_eq!(stats.errors, 0);
    });
}

#[test]
fn shutdown_flushes_cache_file_and_a_restart_answers_hits() {
    let path = std::env::temp_dir().join(format!("omega-serve-daemon-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let request = serde_json::to_string(&MapRequest::for_workload(
        &tiny_spec().to_workload().expect("workload"),
    ))
    .expect("request JSON");

    let opts = ServeOptions {
        addr: "127.0.0.1:0".into(),
        cache_file: Some(path.clone()),
        quiet: true,
        ..Default::default()
    };
    let server = MapperServer::bind(opts.clone()).expect("bind");
    let addr = server.local_addr().expect("addr");
    std::thread::scope(|s| {
        let serving = s.spawn(|| server.run().expect("run"));
        let first = send_line(&addr, &request);
        assert_eq!(first.cache.as_deref(), Some("search"));
        assert!(send_line(&addr, "{\"cmd\":\"shutdown\"}").ok);
        serving.join().expect("server thread");
    });
    assert!(path.exists(), "shutdown flushed the cache file");

    // A restarted server answers the same request from the restored cache
    // without running any search.
    let reloaded = MapperServer::bind(opts).expect("rebind");
    let response: MapResponse =
        serde_json::from_str(&reloaded.handle_line(&request)).expect("response JSON");
    assert_eq!(response.cache.as_deref(), Some("hit"), "error: {:?}", response.error);
    assert_eq!(reloaded.cache().searches(), 0);
    assert_eq!(reloaded.cache().hits(), 1);

    let _ = std::fs::remove_file(&path);
}
