//! The nine evaluated dataflow configurations of Table V.
//!
//! | Name    | Configuration              | Distinguishing property                  |
//! |---------|----------------------------|------------------------------------------|
//! | Seq1    | SeqAC(VxFxNt, VxGxFx)      | Temporal Aggregation (T_N = 1)           |
//! | Seq2    | SeqAC(VxFxNs, VxGxFx)      | Spatial Aggregation (T_N > 1)            |
//! | SP1     | SPAC(VxFsNt, VxFsGx)       | Temporal Aggregation & high T_F          |
//! | SP2     | SPAC(VsFxNt, VsFxGx)       | Temporal Aggregation & high T_V          |
//! | SPhighV | SPAC(VsFxNt, VsFxGx)       | SP dataflow; extremely high T_V          |
//! | PP1     | PPAC(VxFxNt, VxGxFx)       | Temporal Agg. & low-row granularity      |
//! | PP2     | PPAC(VxFxNs, VxGxFx)       | Spatial Agg. & low granularity           |
//! | PP3     | PPAC(VxFxNt, VsGxFx)       | Temporal Agg. & high granularity         |
//! | PP4     | PPAC(VxFxNs, VsGxFx)       | Spatial Agg. & high granularity          |
//!
//! A preset couples the dataflow *pattern* with the tile-growth policy that
//! realises its distinguishing property on a given workload and PE budget
//! (Section V-A3: tiles are chosen per dataflow/dataset for ~100% static
//! utilisation).

use crate::tiles::{choose_tiling, Cap, PhasePolicy, TileContext};
use crate::{Dim, GnnDataflow, GnnDataflowPattern, IntraTiling};
#[cfg(test)]
use crate::InterPhase;

/// A named, reproducible dataflow configuration (one row of Table V).
#[derive(Debug, Clone)]
pub struct Preset {
    /// Short name used in the result charts (`Seq1`, `PP4`, ...).
    pub name: &'static str,
    /// Table V's "Distinguishing Property" column.
    pub distinguishing_property: &'static str,
    /// The dataflow pattern (with `x` placeholders).
    pub pattern: GnnDataflowPattern,
    agg_policy: PhasePolicy,
    cmb_policy: PhasePolicy,
    /// SP presets tie the Combination tiles to the Aggregation tiles
    /// (`T_V`/`T_F` shared, `T_G = 1`) per the SP-Optimized constraints.
    tie_sp_tiles: bool,
}

impl Preset {
    /// Concretises the preset for a workload, choosing tile sizes within the given
    /// per-phase PE budgets.
    ///
    /// For Seq and SP both phases time-share the array, so callers pass the same
    /// budget twice; for PP the budgets are the two partition sizes (Section V-C1's
    /// 25-75 / 50-50 / 75-25 splits).
    pub fn concretize(&self, ctx: &TileContext, agg_pes: usize, cmb_pes: usize) -> GnnDataflow {
        let agg = choose_tiling(&self.pattern.agg, ctx, agg_pes, &self.agg_policy);
        let cmb = if self.tie_sp_tiles {
            tie_combination_tiles(&self.pattern, &agg)
        } else {
            choose_tiling(&self.pattern.cmb, ctx, cmb_pes, &self.cmb_policy)
        };
        GnnDataflow { inter: self.pattern.inter, phase_order: self.pattern.phase_order, agg, cmb }
    }

    /// All nine presets in Table V order.
    pub fn all() -> Vec<Preset> {
        vec![
            seq1(),
            seq2(),
            sp1(),
            sp2(),
            sp_high_v(),
            pp1(),
            pp2(),
            pp3(),
            pp4(),
        ]
    }

    /// Looks a preset up by case-insensitive name.
    pub fn by_name(name: &str) -> Option<Preset> {
        Self::all().into_iter().find(|p| p.name.eq_ignore_ascii_case(name))
    }
}

/// Builds the SP Combination tiling from the Aggregation tiling: same `T_V`/`T_F`,
/// `T_G = 1` (the intermediate tile computed by Aggregation is consumed in place).
fn tie_combination_tiles(pattern: &GnnDataflowPattern, agg: &IntraTiling) -> IntraTiling {
    let order = pattern.cmb.order();
    let tiles = order.dims().map(|d| match d {
        Dim::V => agg.tile_of(Dim::V),
        Dim::F => agg.tile_of(Dim::F),
        _ => 1,
    });
    IntraTiling::new(pattern.cmb.phase(), order, tiles)
}

fn parse(s: &str) -> GnnDataflowPattern {
    s.parse().expect("preset pattern strings are valid")
}

/// Seq1 — sequential, temporal Aggregation (`T_N = 1`), balanced `V`/`F` and
/// `V`/`G` spatial tiles.
pub fn seq1() -> Preset {
    Preset {
        name: "Seq1",
        distinguishing_property: "Temporal Aggregation (T_N=1)",
        pattern: parse("Seq_AC(VxFxNt, VxGxFx)"),
        agg_policy: PhasePolicy::round_robin(&[Dim::V, Dim::F]),
        cmb_policy: PhasePolicy::round_robin(&[Dim::V, Dim::G]),
        tie_sp_tiles: false,
    }
}

/// Seq2 — sequential, spatial Aggregation (`T_N > 1`, sized to the mean degree).
pub fn seq2() -> Preset {
    Preset {
        name: "Seq2",
        distinguishing_property: "Spatial Aggregation (T_N>1)",
        pattern: parse("Seq_AC(VxFxNs, VxGxFx)"),
        agg_policy: PhasePolicy::round_robin(&[Dim::N, Dim::V, Dim::F])
            .with_cap(Dim::N, Cap::MeanDegreePow2),
        cmb_policy: PhasePolicy::round_robin(&[Dim::V, Dim::G]),
        tie_sp_tiles: false,
    }
}

/// SP1 — sequential pipeline, temporal Aggregation, high `T_F`.
pub fn sp1() -> Preset {
    Preset {
        name: "SP1",
        distinguishing_property: "Temporal Aggregation & high T_F",
        pattern: parse("SP_AC(VxFsNt, VxFsGx)"),
        agg_policy: PhasePolicy::greedy(&[Dim::F, Dim::V]),
        cmb_policy: PhasePolicy::greedy(&[Dim::F, Dim::V]),
        tie_sp_tiles: true,
    }
}

/// SP2 — sequential pipeline, temporal Aggregation, high (but capped) `T_V`.
pub fn sp2() -> Preset {
    Preset {
        name: "SP2",
        distinguishing_property: "Temporal Aggregation & high T_V",
        pattern: parse("SP_AC(VsFxNt, VsFxGx)"),
        agg_policy: PhasePolicy::greedy(&[Dim::V, Dim::F]).with_cap(Dim::V, Cap::BudgetFrac(8)),
        cmb_policy: PhasePolicy::greedy(&[Dim::V, Dim::F]),
        tie_sp_tiles: true,
    }
}

/// SPhighV — SP2's pattern pushed to the extreme: `T_V` = the whole array,
/// `T_F = 1`. Introduced by the paper "to highlight the problem of parallelizing
/// sparse dimensions" (footnote 4): runtime becomes limited by the densest row and
/// partial sums spill.
pub fn sp_high_v() -> Preset {
    Preset {
        name: "SPhighV",
        distinguishing_property: "SP dataflow; extremely high T_V",
        pattern: parse("SP_AC(VsFxNt, VsFxGx)"),
        agg_policy: PhasePolicy::greedy(&[Dim::V, Dim::F]),
        cmb_policy: PhasePolicy::greedy(&[Dim::V, Dim::F]),
        tie_sp_tiles: true,
    }
}

/// PP1 — parallel pipeline, temporal Aggregation, low row granularity (small
/// `T_V`, features-first tiles).
pub fn pp1() -> Preset {
    Preset {
        name: "PP1",
        distinguishing_property: "Temporal Aggregation & granularity of lower rows",
        pattern: parse("PP_AC(VxFxNt, VxGxFx)"),
        agg_policy: PhasePolicy::greedy(&[Dim::F, Dim::V]),
        cmb_policy: PhasePolicy::greedy(&[Dim::G, Dim::F, Dim::V]),
        tie_sp_tiles: false,
    }
}

/// PP2 — parallel pipeline, spatial Aggregation, low granularity.
pub fn pp2() -> Preset {
    Preset {
        name: "PP2",
        distinguishing_property: "Spatial Agg. & low granularity",
        pattern: parse("PP_AC(VxFxNs, VxGxFx)"),
        agg_policy: PhasePolicy::greedy(&[Dim::N, Dim::F, Dim::V]).with_cap(Dim::N, Cap::MeanDegreePow2),
        cmb_policy: PhasePolicy::greedy(&[Dim::G, Dim::F, Dim::V]),
        tie_sp_tiles: false,
    }
}

/// PP3 — parallel pipeline, temporal Aggregation, high granularity: the `Vs` in
/// the Combination pattern pushes `T_V_CMB` (and with it `T_Vmax`, hence `Pel`)
/// high, while the Aggregation keeps feature-first tiles.
pub fn pp3() -> Preset {
    Preset {
        name: "PP3",
        distinguishing_property: "Temporal Agg. & high granularity",
        pattern: parse("PP_AC(VxFxNt, VsGxFx)"),
        agg_policy: PhasePolicy::greedy(&[Dim::F, Dim::V]),
        cmb_policy: PhasePolicy::greedy(&[Dim::G, Dim::V]),
        tie_sp_tiles: false,
    }
}

/// PP4 — parallel pipeline, spatial Aggregation, high granularity.
pub fn pp4() -> Preset {
    Preset {
        name: "PP4",
        distinguishing_property: "Spatial Agg. & high granularity",
        pattern: parse("PP_AC(VxFxNs, VsGxFx)"),
        agg_policy: PhasePolicy::greedy(&[Dim::N, Dim::F, Dim::V]).with_cap(Dim::N, Cap::MeanDegreePow2),
        cmb_policy: PhasePolicy::greedy(&[Dim::G, Dim::V]),
        tie_sp_tiles: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate, Granularity, PhaseOrder};

    fn citeseer_ctx() -> TileContext {
        TileContext::new(PhaseOrder::AC, 3327, 3703, 16, 3.8, 100)
    }

    fn mutag_ctx() -> TileContext {
        TileContext::new(PhaseOrder::AC, 1147, 28, 16, 3.2, 12)
    }

    #[test]
    fn nine_presets_in_table_v_order() {
        let names: Vec<_> = Preset::all().iter().map(|p| p.name).collect();
        assert_eq!(names, ["Seq1", "Seq2", "SP1", "SP2", "SPhighV", "PP1", "PP2", "PP3", "PP4"]);
    }

    #[test]
    fn by_name_lookup() {
        assert!(Preset::by_name("sp2").is_some());
        assert!(Preset::by_name("PPHIGHV").is_none());
    }

    #[test]
    fn all_presets_concretize_validly_on_all_contexts() {
        for ctx in [citeseer_ctx(), mutag_ctx()] {
            for preset in Preset::all() {
                let (a, c) = if preset.pattern.inter == InterPhase::ParallelPipeline {
                    (256, 256)
                } else {
                    (512, 512)
                };
                let df = preset.concretize(&ctx, a, c);
                assert!(validate(&df).is_ok(), "{}: {}", preset.name, df);
                assert!(preset.pattern.agg.order() == df.agg.order());
                // PE budgets respected.
                assert!(df.agg.pe_footprint() <= a, "{} agg {:?}", preset.name, df.tile_tuple());
                assert!(df.cmb.pe_footprint() <= c, "{} cmb {:?}", preset.name, df.tile_tuple());
            }
        }
    }

    #[test]
    fn sp_presets_are_sp_optimized() {
        for name in ["SP1", "SP2", "SPhighV"] {
            let df = Preset::by_name(name).unwrap().concretize(&citeseer_ctx(), 512, 512);
            assert!(df.is_sp_optimized(), "{name}: {df} {:?}", df.tile_tuple());
        }
    }

    #[test]
    fn sp_high_v_maps_the_whole_array_to_vertices() {
        let df = sp_high_v().concretize(&citeseer_ctx(), 512, 512);
        assert_eq!(df.agg.tile_of(Dim::V), 512);
        assert_eq!(df.agg.tile_of(Dim::F), 1);
    }

    #[test]
    fn sp1_vs_sp2_tile_emphasis() {
        let ctx = citeseer_ctx();
        let d1 = sp1().concretize(&ctx, 512, 512);
        let d2 = sp2().concretize(&ctx, 512, 512);
        assert!(d1.agg.tile_of(Dim::F) > d2.agg.tile_of(Dim::F));
        assert!(d2.agg.tile_of(Dim::V) > d1.agg.tile_of(Dim::V));
        assert_eq!(d2.agg.tile_of(Dim::V), 64); // 512/8 cap
    }

    #[test]
    fn footnote4_small_f_forces_high_tv() {
        // Mutag: F = 28 → T_F ≤ 16, so even SP1 ends up with a large T_V.
        let df = sp1().concretize(&mutag_ctx(), 512, 512);
        assert_eq!(df.agg.tile_of(Dim::F), 16);
        assert_eq!(df.agg.tile_of(Dim::V), 32);
    }

    #[test]
    fn pp_presets_have_row_granularity() {
        let ctx = citeseer_ctx();
        for name in ["PP1", "PP2", "PP3", "PP4"] {
            let df = Preset::by_name(name).unwrap().concretize(&ctx, 256, 256);
            assert_eq!(df.granularity(), Some(Granularity::Row), "{name}");
        }
    }

    #[test]
    fn pp3_pipelines_more_rows_than_pp1() {
        let ctx = citeseer_ctx();
        let low = pp1().concretize(&ctx, 256, 256);
        let high = pp3().concretize(&ctx, 256, 256);
        let tvmax_low = low.agg.tile_of(Dim::V).max(low.cmb.tile_of(Dim::V));
        let tvmax_high = high.agg.tile_of(Dim::V).max(high.cmb.tile_of(Dim::V));
        assert!(tvmax_high > tvmax_low, "{tvmax_high} vs {tvmax_low}");
    }

    #[test]
    fn spatial_aggregation_presets_unroll_n() {
        let collab = TileContext::new(PhaseOrder::AC, 4766, 492, 16, 60.0, 200);
        for name in ["Seq2", "PP2", "PP4"] {
            let df = Preset::by_name(name).unwrap().concretize(&collab, 256, 256);
            assert!(df.agg.tile_of(Dim::N) > 1, "{name}");
        }
        // Temporal presets keep T_N = 1.
        for name in ["Seq1", "SP1", "SP2", "PP1", "PP3"] {
            let df = Preset::by_name(name).unwrap().concretize(&collab, 256, 256);
            assert_eq!(df.agg.tile_of(Dim::N), 1, "{name}");
        }
    }

    #[test]
    fn static_utilisation_is_high_when_dims_allow() {
        let ctx = citeseer_ctx();
        for preset in Preset::all() {
            let df = preset.concretize(&ctx, 512, 512);
            let util = df.agg.static_utilisation(512);
            assert!(util >= 0.99, "{}: agg util {util}", preset.name);
        }
    }
}

/// CA-order companions to the Table V presets.
///
/// The paper evaluates AC only ("for the analysis in this section, we focus on
/// AC computation order, but the same concepts apply to CA", Section IV), yet
/// the CA order `A·(X0·W)` is algebraically cheaper whenever `G < F`: the
/// Aggregation then streams `G`-wide rows, shrinking its work from `E×F` to
/// `E×G`. These presets give mappers real coverage of that half of the space
/// (AWB-GCN's dataflow is the PP member, Table II row 9).
pub fn ca_variants() -> Vec<Preset> {
    vec![seq_ca(), sp_ca(), pp_ca_awb()]
}

/// Seq-CA — sequential with the CA computation order, balanced tiles.
pub fn seq_ca() -> Preset {
    Preset {
        name: "SeqCA",
        distinguishing_property: "Sequential, Combination-first (A\u{b7}(XW))",
        pattern: parse("Seq_CA(VxFxNt, VxGxFx)"),
        agg_policy: PhasePolicy::round_robin(&[Dim::V, Dim::F]),
        cmb_policy: PhasePolicy::round_robin(&[Dim::V, Dim::G]),
        tie_sp_tiles: false,
    }
}

/// SP-CA — the SP-Optimized CA template of Table II row 2: Combination holds
/// its `V×G` tile in the RFs and Aggregation consumes it in place.
pub fn sp_ca() -> Preset {
    Preset {
        name: "SPCA",
        distinguishing_property: "SP-Optimized, Combination-first",
        pattern: parse("SP_CA(NxFxVt, VxGxFt)"),
        agg_policy: PhasePolicy::round_robin(&[Dim::N, Dim::F]),
        cmb_policy: PhasePolicy::round_robin(&[Dim::V, Dim::G]),
        tie_sp_tiles: false,
    }
}

/// PP-CA — AWB-GCN's dataflow (Table II row 9): column-granularity parallel
/// pipeline with Combination feeding Aggregation.
pub fn pp_ca_awb() -> Preset {
    Preset {
        name: "PPCA",
        distinguishing_property: "AWB-GCN: PP_CA(FsNtVs, GtFtVs), column granularity",
        pattern: parse("PP_CA(FsNtVs, GtFtVs)"),
        agg_policy: PhasePolicy::round_robin(&[Dim::F, Dim::V]),
        cmb_policy: PhasePolicy::round_robin(&[Dim::V, Dim::F]),
        tie_sp_tiles: false,
    }
}

#[cfg(test)]
mod ca_tests {
    use super::*;
    use crate::{validate, Granularity, PhaseOrder};

    fn cora_ctx() -> TileContext {
        TileContext::new(PhaseOrder::CA, 2708, 1433, 16, 5.0, 230)
    }

    #[test]
    fn ca_variants_concretize_and_validate() {
        for preset in ca_variants() {
            assert_eq!(preset.pattern.phase_order, PhaseOrder::CA);
            let (a, c) = if preset.pattern.inter == InterPhase::ParallelPipeline {
                (256, 256)
            } else {
                (512, 512)
            };
            let df = preset.concretize(&cora_ctx(), a, c);
            assert!(validate(&df).is_ok(), "{}: {df}", preset.name);
            assert!(df.agg.pe_footprint() <= a);
            assert!(df.cmb.pe_footprint() <= c);
        }
    }

    #[test]
    fn awb_gcn_has_column_granularity() {
        let df = pp_ca_awb().concretize(&cora_ctx(), 256, 256);
        assert_eq!(df.granularity(), Some(Granularity::Column));
    }

    #[test]
    fn sp_ca_template_is_pipelinable() {
        let df = sp_ca().concretize(&cora_ctx(), 512, 512);
        // The row-2 CA template is an element-granularity pair.
        assert_eq!(df.granularity(), Some(Granularity::Element));
    }

    #[test]
    fn ca_agg_consumes_g_wide_rows() {
        // Under CA the aggregation's F extent is G = 16, so its F tile caps there.
        let df = seq_ca().concretize(&cora_ctx(), 512, 512);
        assert!(df.agg.tile_of(Dim::F) <= 16);
    }
}
