//! Dataflow legality checks per Table II, plus the SDDMM-phase legality of
//! attention (GAT) layers.

use crate::granularity::pipeline_granularity;
use crate::{Dim, GnnDataflow, GnnDataflowPattern, InterPhase, IntraPattern, IntraTiling, Phase};

/// Why a dataflow is illegal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A pipelined strategy (SP/PP) was requested but the loop-order pair cannot
    /// produce/consume the intermediate in a compatible chunk stream
    /// (Table II rows 2–9 list the legal pairs).
    IncompatiblePipelineOrders {
        /// The offending aggregation loop order (e.g. `"NVF"`).
        agg_order: String,
        /// The offending combination loop order.
        cmb_order: String,
    },
    /// SP-Optimized loop orders were used, but the tile constraints
    /// (`T_N = 1`, tied intermediate tiles) are violated, so the intermediate
    /// cannot stay resident in the PE register files.
    BrokenSpOptimizedTiles {
        /// Explanation of the violated constraint.
        detail: &'static str,
    },
    /// An attention (GAT) layer's SDDMM scoring phase cannot run this loop
    /// order: scores must be produced row-contiguously for the row-wise
    /// softmax, so `V` has to precede `N` in the shared `V`/`F`/`N` nest.
    SddmmOrderUnsupported {
        /// The offending loop order (e.g. `"NVF"`).
        order: String,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::IncompatiblePipelineOrders { agg_order, cmb_order } => write!(
                f,
                "loop orders ({agg_order}, {cmb_order}) cannot pipeline: producer chunk stream \
                 does not match consumer chunk stream (Table II rows 4-9)"
            ),
            ValidationError::BrokenSpOptimizedTiles { detail } => {
                write!(f, "SP-Optimized tile constraint violated: {detail}")
            }
            ValidationError::SddmmOrderUnsupported { order } => write!(
                f,
                "SDDMM scoring cannot run loop order {order}: the row-wise softmax needs \
                 row-contiguous scores, so V must precede N"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Checks a dataflow *pattern* for Table II legality.
///
/// * `Seq` admits any order pair (Table II row 1: "ANY-All pairs").
/// * `SP` and `PP` require a compatible producer/consumer chunk stream
///   (rows 2–9). SP-Optimized loop orders `(VFN, VFG)` / `(FVN, FVG)` are a subset
///   of the element-granularity pairs, so they pass the same check.
pub fn validate_pattern(p: &GnnDataflowPattern) -> Result<(), ValidationError> {
    match p.inter {
        InterPhase::Sequential => Ok(()),
        InterPhase::SequentialPipeline | InterPhase::ParallelPipeline => {
            if pipeline_granularity(p.phase_order, p.agg.order(), p.cmb.order()).is_some() {
                Ok(())
            } else {
                Err(ValidationError::IncompatiblePipelineOrders {
                    agg_order: p.agg.order().to_string(),
                    cmb_order: p.cmb.order().to_string(),
                })
            }
        }
    }
}

/// Checks a concrete dataflow for Table II legality.
///
/// Beyond [`validate_pattern`], a concrete SP dataflow whose loop orders match the
/// SP-Optimized templates but whose tiles break the in-register constraints is
/// still legal — it simply degrades to SP-Generic — so no additional tile check is
/// applied here. Use [`GnnDataflow::is_sp_optimized`] to distinguish the two.
pub fn validate(df: &GnnDataflow) -> Result<(), ValidationError> {
    validate_pattern(&df.to_pattern())
}

/// Checks a tiling's legality as the **SDDMM scoring phase** of an attention
/// (GAT) layer.
///
/// The SDDMM shares the Aggregation dimension set (`V`/`N`/`F` — one dot
/// product per stored non-zero, reduced over `F`), so it reuses the layer's
/// Aggregation tiling. Beyond that shape requirement, the loop order must keep
/// `V` before `N`: each row's scores have to complete contiguously so the
/// row-wise softmax can stream over them — `N`-before-`V` orders interleave
/// every row's score production across the whole phase. The admitted orders
/// are `VFN`, `VNF`, and `FVN`.
pub fn validate_sddmm(tiling: &IntraTiling) -> Result<(), ValidationError> {
    sddmm_order_legal(tiling.phase(), tiling.order())
}

/// [`validate_sddmm`] at the pattern level (same rule: Aggregation dim set,
/// `V` before `N`).
pub fn validate_sddmm_pattern(pattern: &IntraPattern) -> Result<(), ValidationError> {
    sddmm_order_legal(pattern.phase(), pattern.order())
}

fn sddmm_order_legal(phase: Phase, order: crate::LoopOrder) -> Result<(), ValidationError> {
    if phase != Phase::Aggregation {
        return Err(ValidationError::SddmmOrderUnsupported { order: order.to_string() });
    }
    let pos_v = order.position(Dim::V).expect("V is an Aggregation dim");
    let pos_n = order.position(Dim::N).expect("N is an Aggregation dim");
    if pos_v < pos_n {
        Ok(())
    } else {
        Err(ValidationError::SddmmOrderUnsupported { order: order.to_string() })
    }
}

/// Checks a tiling's legality as an **elementwise/normalization phase**
/// (activation, LayerNorm).
///
/// Elementwise phases have no reduction dimension and touch each element O(1)
/// times, so every loop order of either phase's dimension set is legal — the
/// check always succeeds and exists so callers can treat all phase kinds
/// uniformly (and as the anchor point should a future elementwise variant gain
/// an ordering constraint).
pub fn validate_elementwise(_tiling: &IntraTiling) -> Result<(), ValidationError> {
    Ok(())
}



#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dim, IntraTiling, LoopOrder, Phase, PhaseOrder};

    fn tiling(phase: Phase, s: &str, tiles: [usize; 3]) -> IntraTiling {
        let d: Vec<Dim> = s.chars().map(|c| Dim::from_letter(c).unwrap()).collect();
        IntraTiling::new(phase, LoopOrder::new(phase, [d[0], d[1], d[2]]).unwrap(), tiles)
    }

    fn df(inter: InterPhase, agg: &str, cmb: &str) -> GnnDataflow {
        GnnDataflow {
            inter,
            phase_order: PhaseOrder::AC,
            agg: tiling(Phase::Aggregation, agg, [2, 2, 1]),
            cmb: tiling(Phase::Combination, cmb, [2, 2, 1]),
        }
    }

    #[test]
    fn seq_admits_anything() {
        for agg in ["VFN", "NVF", "NFV", "FNV"] {
            for cmb in ["VGF", "GVF", "GFV", "FVG"] {
                assert!(validate(&df(InterPhase::Sequential, agg, cmb)).is_ok(), "{agg},{cmb}");
            }
        }
    }

    #[test]
    fn pp_rejects_incompatible_orders() {
        assert!(validate(&df(InterPhase::ParallelPipeline, "VFN", "VGF")).is_ok());
        let e = validate(&df(InterPhase::ParallelPipeline, "NVF", "VGF")).unwrap_err();
        assert!(matches!(e, ValidationError::IncompatiblePipelineOrders { .. }));
        assert!(e.to_string().contains("NVF"));
        assert!(validate(&df(InterPhase::SequentialPipeline, "NFV", "GVF")).is_err());
    }

    #[test]
    fn sp_generic_orders_are_legal() {
        // SP with PP-style orders (Table II row 3 = rows 4-9).
        assert!(validate(&df(InterPhase::SequentialPipeline, "VNF", "VGF")).is_ok());
        assert!(validate(&df(InterPhase::SequentialPipeline, "FNV", "FVG")).is_ok());
    }

    #[test]
    fn error_display() {
        let e = ValidationError::BrokenSpOptimizedTiles { detail: "T_N must be 1" };
        assert!(e.to_string().contains("T_N"));
        let e = ValidationError::SddmmOrderUnsupported { order: "NVF".into() };
        assert!(e.to_string().contains("NVF"));
        assert!(e.to_string().contains("softmax"));
    }

    #[test]
    fn sddmm_admits_v_before_n_orders_only() {
        for (order, ok) in
            [("VFN", true), ("VNF", true), ("FVN", true), ("FNV", false), ("NVF", false), ("NFV", false)]
        {
            let t = tiling(Phase::Aggregation, order, [2, 2, 1]);
            assert_eq!(validate_sddmm(&t).is_ok(), ok, "{order}");
            assert_eq!(validate_sddmm_pattern(&t.to_pattern()).is_ok(), ok, "{order}");
        }
        // A Combination tiling is the wrong dimension set entirely.
        let cmb = tiling(Phase::Combination, "VGF", [2, 2, 1]);
        assert!(validate_sddmm(&cmb).is_err());
    }

    #[test]
    fn elementwise_admits_every_order_and_shape() {
        for order in ["VFN", "VNF", "FVN", "FNV", "NVF", "NFV"] {
            let t = tiling(Phase::Aggregation, order, [2, 2, 1]);
            assert!(validate_elementwise(&t).is_ok(), "{order}");
        }
        for order in ["VFG", "VGF", "FVG", "FGV", "GVF", "GFV"] {
            let t = tiling(Phase::Combination, order, [2, 2, 1]);
            assert!(validate_elementwise(&t).is_ok(), "{order}");
        }
    }
}
