//! Dataflow legality checks per Table II.

use crate::granularity::pipeline_granularity;
use crate::{GnnDataflow, GnnDataflowPattern, InterPhase};

/// Why a dataflow is illegal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A pipelined strategy (SP/PP) was requested but the loop-order pair cannot
    /// produce/consume the intermediate in a compatible chunk stream
    /// (Table II rows 2–9 list the legal pairs).
    IncompatiblePipelineOrders {
        /// The offending aggregation loop order (e.g. `"NVF"`).
        agg_order: String,
        /// The offending combination loop order.
        cmb_order: String,
    },
    /// SP-Optimized loop orders were used, but the tile constraints
    /// (`T_N = 1`, tied intermediate tiles) are violated, so the intermediate
    /// cannot stay resident in the PE register files.
    BrokenSpOptimizedTiles {
        /// Explanation of the violated constraint.
        detail: &'static str,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::IncompatiblePipelineOrders { agg_order, cmb_order } => write!(
                f,
                "loop orders ({agg_order}, {cmb_order}) cannot pipeline: producer chunk stream \
                 does not match consumer chunk stream (Table II rows 4-9)"
            ),
            ValidationError::BrokenSpOptimizedTiles { detail } => {
                write!(f, "SP-Optimized tile constraint violated: {detail}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Checks a dataflow *pattern* for Table II legality.
///
/// * `Seq` admits any order pair (Table II row 1: "ANY-All pairs").
/// * `SP` and `PP` require a compatible producer/consumer chunk stream
///   (rows 2–9). SP-Optimized loop orders `(VFN, VFG)` / `(FVN, FVG)` are a subset
///   of the element-granularity pairs, so they pass the same check.
pub fn validate_pattern(p: &GnnDataflowPattern) -> Result<(), ValidationError> {
    match p.inter {
        InterPhase::Sequential => Ok(()),
        InterPhase::SequentialPipeline | InterPhase::ParallelPipeline => {
            if pipeline_granularity(p.phase_order, p.agg.order(), p.cmb.order()).is_some() {
                Ok(())
            } else {
                Err(ValidationError::IncompatiblePipelineOrders {
                    agg_order: p.agg.order().to_string(),
                    cmb_order: p.cmb.order().to_string(),
                })
            }
        }
    }
}

/// Checks a concrete dataflow for Table II legality.
///
/// Beyond [`validate_pattern`], a concrete SP dataflow whose loop orders match the
/// SP-Optimized templates but whose tiles break the in-register constraints is
/// still legal — it simply degrades to SP-Generic — so no additional tile check is
/// applied here. Use [`GnnDataflow::is_sp_optimized`] to distinguish the two.
pub fn validate(df: &GnnDataflow) -> Result<(), ValidationError> {
    validate_pattern(&df.to_pattern())
}



#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dim, IntraTiling, LoopOrder, Phase, PhaseOrder};

    fn tiling(phase: Phase, s: &str, tiles: [usize; 3]) -> IntraTiling {
        let d: Vec<Dim> = s.chars().map(|c| Dim::from_letter(c).unwrap()).collect();
        IntraTiling::new(phase, LoopOrder::new(phase, [d[0], d[1], d[2]]).unwrap(), tiles)
    }

    fn df(inter: InterPhase, agg: &str, cmb: &str) -> GnnDataflow {
        GnnDataflow {
            inter,
            phase_order: PhaseOrder::AC,
            agg: tiling(Phase::Aggregation, agg, [2, 2, 1]),
            cmb: tiling(Phase::Combination, cmb, [2, 2, 1]),
        }
    }

    #[test]
    fn seq_admits_anything() {
        for agg in ["VFN", "NVF", "NFV", "FNV"] {
            for cmb in ["VGF", "GVF", "GFV", "FVG"] {
                assert!(validate(&df(InterPhase::Sequential, agg, cmb)).is_ok(), "{agg},{cmb}");
            }
        }
    }

    #[test]
    fn pp_rejects_incompatible_orders() {
        assert!(validate(&df(InterPhase::ParallelPipeline, "VFN", "VGF")).is_ok());
        let e = validate(&df(InterPhase::ParallelPipeline, "NVF", "VGF")).unwrap_err();
        assert!(matches!(e, ValidationError::IncompatiblePipelineOrders { .. }));
        assert!(e.to_string().contains("NVF"));
        assert!(validate(&df(InterPhase::SequentialPipeline, "NFV", "GVF")).is_err());
    }

    #[test]
    fn sp_generic_orders_are_legal() {
        // SP with PP-style orders (Table II row 3 = rows 4-9).
        assert!(validate(&df(InterPhase::SequentialPipeline, "VNF", "VGF")).is_ok());
        assert!(validate(&df(InterPhase::SequentialPipeline, "FNV", "FVG")).is_ok());
    }

    #[test]
    fn error_display() {
        let e = ValidationError::BrokenSpOptimizedTiles { detail: "T_N must be 1" };
        assert!(e.to_string().contains("T_N"));
    }
}
