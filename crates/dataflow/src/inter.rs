//! Inter-phase strategies, phase orders, and pipelining granularities.

use serde::{Deserialize, Serialize};

/// Inter-phase dataflow strategy (Section III-B, Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Deserialize, Serialize)]
pub enum InterPhase {
    /// `Seq` — phases run back-to-back; the whole `V×F` intermediate matrix is
    /// staged through the memory hierarchy.
    Sequential,
    /// `SP` — phase steps interleave over time on the same PEs. Covers both
    /// SP-Generic (intermediate staged through the global buffer at `Pel`
    /// granularity) and SP-Optimized (intermediate pinned in PE register files);
    /// which one applies is a property of the intra-phase pair, see
    /// [`GnnDataflow::is_sp_optimized`](crate::GnnDataflow::is_sp_optimized).
    SequentialPipeline,
    /// `PP` — the PE array is split into two concurrent engines connected by an
    /// intermediate ping-pong buffer.
    ParallelPipeline,
}

impl InterPhase {
    /// Short name used in dataflow strings (`Seq`, `SP`, `PP`).
    pub fn short(self) -> &'static str {
        match self {
            InterPhase::Sequential => "Seq",
            InterPhase::SequentialPipeline => "SP",
            InterPhase::ParallelPipeline => "PP",
        }
    }

    /// All three strategies.
    pub fn all() -> [InterPhase; 3] {
        [InterPhase::Sequential, InterPhase::SequentialPipeline, InterPhase::ParallelPipeline]
    }
}

impl std::fmt::Display for InterPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short())
    }
}

/// Phase computation order: GCNs allow either phase first (Section II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Deserialize, Serialize)]
pub enum PhaseOrder {
    /// Aggregation → Combination: computes `(A·X0)·W`; intermediate is `V×F`.
    AC,
    /// Combination → Aggregation: computes `A·(X0·W)`; intermediate is `V×G`.
    CA,
}

impl PhaseOrder {
    /// Both orders.
    pub fn all() -> [PhaseOrder; 2] {
        [PhaseOrder::AC, PhaseOrder::CA]
    }

    /// Name as used in dataflow strings.
    pub fn short(self) -> &'static str {
        match self {
            PhaseOrder::AC => "AC",
            PhaseOrder::CA => "CA",
        }
    }
}

impl std::fmt::Display for PhaseOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short())
    }
}

/// Granularity at which the intermediate matrix is pipelined between phases for
/// SP-Generic and PP (Section IV-D, Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Deserialize, Serialize)]
pub enum Granularity {
    /// Tiles of `T_V × T_F` elements (`Pel = T_Vmax · T_Fmax`).
    Element,
    /// Whole rows of the intermediate matrix (`Pel = T_Vmax · F`).
    Row,
    /// Whole columns of the intermediate matrix (`Pel = V · T_Fmax`).
    Column,
}

impl Granularity {
    /// Number of pipelined elements `Pel` for an intermediate of `rows × cols`,
    /// given the max tile sizes of the chunked dims across the two phases
    /// (Section IV-D; footnote 1 — we use `T_Dimmax`, with the larger tile
    /// required to be a multiple of the smaller).
    pub fn pel(self, rows: usize, cols: usize, t_row_max: usize, t_col_max: usize) -> usize {
        match self {
            Granularity::Element => t_row_max.min(rows) * t_col_max.min(cols),
            Granularity::Row => t_row_max.min(rows) * cols,
            Granularity::Column => rows * t_col_max.min(cols),
        }
    }
}

impl std::fmt::Display for Granularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Granularity::Element => "element",
            Granularity::Row => "row",
            Granularity::Column => "column",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_names() {
        assert_eq!(InterPhase::Sequential.to_string(), "Seq");
        assert_eq!(InterPhase::SequentialPipeline.to_string(), "SP");
        assert_eq!(InterPhase::ParallelPipeline.to_string(), "PP");
        assert_eq!(PhaseOrder::AC.to_string(), "AC");
        assert_eq!(PhaseOrder::CA.to_string(), "CA");
    }

    #[test]
    fn pel_formulas_match_table_iii() {
        // Intermediate 100×64, T_Vmax = 8, T_Fmax = 4.
        assert_eq!(Granularity::Element.pel(100, 64, 8, 4), 32);
        assert_eq!(Granularity::Row.pel(100, 64, 8, 4), 8 * 64);
        assert_eq!(Granularity::Column.pel(100, 64, 8, 4), 100 * 4);
    }

    #[test]
    fn pel_clamps_to_matrix_extents() {
        assert_eq!(Granularity::Element.pel(2, 3, 8, 4), 6);
        assert_eq!(Granularity::Row.pel(2, 3, 8, 4), 6);
        assert_eq!(Granularity::Column.pel(2, 3, 8, 4), 6);
    }

    #[test]
    fn enumerations() {
        assert_eq!(InterPhase::all().len(), 3);
        assert_eq!(PhaseOrder::all().len(), 2);
    }
}
