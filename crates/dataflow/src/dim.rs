//! Loop-nest vocabulary: dimensions, spatial/temporal mappings, loop orders.

use serde::{Deserialize, Serialize};

/// A loop dimension of a GNN phase (paper notation, Fig. 3):
///
/// * `V` — vertices (output rows in both phases),
/// * `N` — neighbours (the Aggregation reduction dimension, encoded in CSR),
/// * `F` — input features (Aggregation columns; the Combination reduction dim),
/// * `G` — output features (Combination columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Deserialize, Serialize, PartialOrd, Ord)]
pub enum Dim {
    /// Vertices.
    V,
    /// Neighbours (Aggregation reduction).
    N,
    /// Input features (Combination reduction).
    F,
    /// Output features.
    G,
}

impl Dim {
    /// One-letter name as used in the paper's dataflow strings.
    pub fn letter(self) -> char {
        match self {
            Dim::V => 'V',
            Dim::N => 'N',
            Dim::F => 'F',
            Dim::G => 'G',
        }
    }

    /// Parses a single dimension letter (case-insensitive).
    pub fn from_letter(c: char) -> Option<Dim> {
        match c.to_ascii_uppercase() {
            'V' => Some(Dim::V),
            'N' => Some(Dim::N),
            'F' => Some(Dim::F),
            'G' => Some(Dim::G),
            _ => None,
        }
    }
}

impl std::fmt::Display for Dim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// The two GNN phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Deserialize, Serialize)]
pub enum Phase {
    /// SpMM over the adjacency matrix (`H = A · X`).
    Aggregation,
    /// Dense GEMM with the weights (`X' = H · W`).
    Combination,
}

impl Phase {
    /// The three loop dimensions of this phase.
    pub fn dims(self) -> [Dim; 3] {
        match self {
            Phase::Aggregation => [Dim::V, Dim::F, Dim::N],
            Phase::Combination => [Dim::V, Dim::F, Dim::G],
        }
    }

    /// The reduction dimension of this phase (`N` for Aggregation, `F` for
    /// Combination).
    pub fn reduction_dim(self) -> Dim {
        match self {
            Phase::Aggregation => Dim::N,
            Phase::Combination => Dim::F,
        }
    }

    /// `true` if `d` is one of this phase's loop dimensions.
    pub fn owns(self, d: Dim) -> bool {
        self.dims().contains(&d)
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Phase::Aggregation => "Aggregation",
            Phase::Combination => "Combination",
        })
    }
}

/// Concrete mapping of a dimension: spatial (unrolled across PEs, tile size > 1) or
/// temporal (tile size = 1), the paper's `s` / `t` subscripts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Deserialize, Serialize)]
pub enum Mapping {
    /// Unrolled across PEs (`T_Dim > 1`).
    Spatial,
    /// Iterated over time (`T_Dim = 1`).
    Temporal,
}

impl Mapping {
    /// Paper subscript letter.
    pub fn letter(self) -> char {
        match self {
            Mapping::Spatial => 's',
            Mapping::Temporal => 't',
        }
    }
}

/// Mapping *pattern*: spatial, temporal, or either — the paper's `x` subscript used
/// throughout Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Deserialize, Serialize)]
pub enum MappingSpec {
    /// Must be spatial.
    Spatial,
    /// Must be temporal.
    Temporal,
    /// Either spatial or temporal.
    Any,
}

impl MappingSpec {
    /// Paper subscript letter (`s`, `t`, or `x`).
    pub fn letter(self) -> char {
        match self {
            MappingSpec::Spatial => 's',
            MappingSpec::Temporal => 't',
            MappingSpec::Any => 'x',
        }
    }

    /// Parses a subscript letter.
    pub fn from_letter(c: char) -> Option<MappingSpec> {
        match c.to_ascii_lowercase() {
            's' => Some(MappingSpec::Spatial),
            't' => Some(MappingSpec::Temporal),
            'x' => Some(MappingSpec::Any),
            _ => None,
        }
    }

    /// `true` when a concrete mapping satisfies this pattern.
    pub fn admits(self, m: Mapping) -> bool {
        match self {
            MappingSpec::Spatial => m == Mapping::Spatial,
            MappingSpec::Temporal => m == Mapping::Temporal,
            MappingSpec::Any => true,
        }
    }

    /// The concrete mappings this pattern admits.
    pub fn candidates(self) -> &'static [Mapping] {
        match self {
            MappingSpec::Spatial => &[Mapping::Spatial],
            MappingSpec::Temporal => &[Mapping::Temporal],
            MappingSpec::Any => &[Mapping::Spatial, Mapping::Temporal],
        }
    }
}

/// A phase's loop order: the three temporal loops from outermost to innermost
/// (Fig. 4's "Loop order - VGF (V→G→F)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Deserialize, Serialize)]
pub struct LoopOrder {
    dims: [Dim; 3],
}

impl LoopOrder {
    /// Builds a loop order, checking it is a permutation of `phase`'s dimensions.
    pub fn new(phase: Phase, dims: [Dim; 3]) -> Option<LoopOrder> {
        let mut expect = phase.dims();
        let mut got = dims;
        expect.sort();
        got.sort();
        (expect == got).then_some(LoopOrder { dims })
    }

    /// The dimensions, outermost first.
    #[inline]
    pub fn dims(&self) -> [Dim; 3] {
        self.dims
    }

    /// Outermost dimension.
    #[inline]
    pub fn outer(&self) -> Dim {
        self.dims[0]
    }

    /// Middle dimension.
    #[inline]
    pub fn middle(&self) -> Dim {
        self.dims[1]
    }

    /// Innermost dimension.
    #[inline]
    pub fn inner(&self) -> Dim {
        self.dims[2]
    }

    /// Position of `d` (0 = outermost), if present.
    pub fn position(&self, d: Dim) -> Option<usize> {
        self.dims.iter().position(|&x| x == d)
    }

    /// All six loop orders of a phase.
    pub fn all(phase: Phase) -> Vec<LoopOrder> {
        let [a, b, c] = phase.dims();
        [[a, b, c], [a, c, b], [b, a, c], [b, c, a], [c, a, b], [c, b, a]]
            .into_iter()
            .map(|dims| LoopOrder { dims })
            .collect()
    }
}

impl std::fmt::Display for LoopOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in self.dims {
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_letters_round_trip() {
        for d in [Dim::V, Dim::N, Dim::F, Dim::G] {
            assert_eq!(Dim::from_letter(d.letter()), Some(d));
            assert_eq!(Dim::from_letter(d.letter().to_ascii_lowercase()), Some(d));
        }
        assert_eq!(Dim::from_letter('Q'), None);
    }

    #[test]
    fn phase_dims_and_reduction() {
        assert_eq!(Phase::Aggregation.reduction_dim(), Dim::N);
        assert_eq!(Phase::Combination.reduction_dim(), Dim::F);
        assert!(Phase::Aggregation.owns(Dim::N));
        assert!(!Phase::Aggregation.owns(Dim::G));
        assert!(Phase::Combination.owns(Dim::G));
        assert!(!Phase::Combination.owns(Dim::N));
    }

    #[test]
    fn mapping_spec_admission() {
        assert!(MappingSpec::Any.admits(Mapping::Spatial));
        assert!(MappingSpec::Any.admits(Mapping::Temporal));
        assert!(MappingSpec::Spatial.admits(Mapping::Spatial));
        assert!(!MappingSpec::Spatial.admits(Mapping::Temporal));
        assert!(!MappingSpec::Temporal.admits(Mapping::Spatial));
        assert_eq!(MappingSpec::Any.candidates().len(), 2);
        assert_eq!(MappingSpec::Temporal.candidates(), &[Mapping::Temporal]);
    }

    #[test]
    fn subscript_letters() {
        assert_eq!(MappingSpec::from_letter('S'), Some(MappingSpec::Spatial));
        assert_eq!(MappingSpec::from_letter('x'), Some(MappingSpec::Any));
        assert_eq!(MappingSpec::from_letter('q'), None);
        assert_eq!(Mapping::Spatial.letter(), 's');
        assert_eq!(Mapping::Temporal.letter(), 't');
    }

    #[test]
    fn loop_order_validation() {
        assert!(LoopOrder::new(Phase::Aggregation, [Dim::V, Dim::F, Dim::N]).is_some());
        assert!(LoopOrder::new(Phase::Aggregation, [Dim::V, Dim::F, Dim::G]).is_none());
        assert!(LoopOrder::new(Phase::Combination, [Dim::G, Dim::V, Dim::F]).is_some());
        assert!(LoopOrder::new(Phase::Combination, [Dim::V, Dim::V, Dim::F]).is_none());
    }

    #[test]
    fn loop_order_positions() {
        let o = LoopOrder::new(Phase::Combination, [Dim::V, Dim::G, Dim::F]).unwrap();
        assert_eq!(o.outer(), Dim::V);
        assert_eq!(o.middle(), Dim::G);
        assert_eq!(o.inner(), Dim::F);
        assert_eq!(o.position(Dim::F), Some(2));
        assert_eq!(o.position(Dim::N), None);
        assert_eq!(o.to_string(), "VGF");
    }

    #[test]
    fn all_orders_are_six_distinct() {
        for phase in [Phase::Aggregation, Phase::Combination] {
            let all = LoopOrder::all(phase);
            assert_eq!(all.len(), 6);
            let set: std::collections::HashSet<_> = all.iter().map(|o| o.dims()).collect();
            assert_eq!(set.len(), 6);
        }
    }
}
