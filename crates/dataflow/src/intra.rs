//! Intra-phase dataflows: patterns (with `x` placeholders) and concrete tilings.

use serde::{Deserialize, Serialize};

use crate::{Dim, LoopOrder, Mapping, MappingSpec, Phase};

/// An intra-phase dataflow *pattern*: a loop order plus per-dimension mapping
/// specs, e.g. `VxFsNt` (Table II/V style). Patterns describe families of concrete
/// dataflows; [`IntraTiling`] is one member with actual tile sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Deserialize, Serialize)]
pub struct IntraPattern {
    phase: Phase,
    order: LoopOrder,
    /// Mapping spec per loop position (aligned with `order.dims()`).
    maps: [MappingSpec; 3],
}

impl IntraPattern {
    /// Builds a pattern from a loop order and per-position mapping specs.
    pub fn new(phase: Phase, order: LoopOrder, maps: [MappingSpec; 3]) -> Self {
        IntraPattern { phase, order, maps }
    }

    /// Convenience constructor from dimension/spec pairs in loop order.
    ///
    /// Returns `None` if the dims are not a permutation of the phase's dims.
    pub fn from_pairs(phase: Phase, pairs: [(Dim, MappingSpec); 3]) -> Option<Self> {
        let order = LoopOrder::new(phase, [pairs[0].0, pairs[1].0, pairs[2].0])?;
        Some(IntraPattern { phase, order, maps: [pairs[0].1, pairs[1].1, pairs[2].1] })
    }

    /// The phase this pattern belongs to.
    #[inline]
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The loop order.
    #[inline]
    pub fn order(&self) -> LoopOrder {
        self.order
    }

    /// Mapping specs aligned with `order().dims()`.
    #[inline]
    pub fn maps(&self) -> [MappingSpec; 3] {
        self.maps
    }

    /// Mapping spec of dimension `d`, if it belongs to this phase.
    pub fn map_of(&self, d: Dim) -> Option<MappingSpec> {
        self.order.position(d).map(|i| self.maps[i])
    }

    /// `true` when `tiling` instantiates this pattern (same order, mappings
    /// admitted).
    pub fn admits(&self, tiling: &IntraTiling) -> bool {
        tiling.phase() == self.phase
            && tiling.order() == self.order
            && self
                .maps
                .iter()
                .zip(tiling.tiles())
                .all(|(spec, &t)| spec.admits(if t > 1 { Mapping::Spatial } else { Mapping::Temporal }))
    }
}

impl std::fmt::Display for IntraPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (d, m) in self.order.dims().iter().zip(self.maps) {
            write!(f, "{}{}", d.letter(), m.letter())?;
        }
        Ok(())
    }
}

/// A concrete intra-phase dataflow: loop order plus tile sizes.
///
/// Tile size semantics follow the paper (Fig. 4): `T_Dim` is the number of elements
/// of that dimension mapped *in parallel across PEs*; `T_Dim > 1` ⇔ the dimension is
/// spatial (`s`), `T_Dim = 1` ⇔ temporal (`t`). The product of the tile sizes is the
/// number of PEs the phase occupies (its static utilisation numerator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Deserialize, Serialize)]
pub struct IntraTiling {
    phase: Phase,
    order: LoopOrder,
    /// Tile sizes aligned with `order.dims()`.
    tiles: [usize; 3],
}

impl IntraTiling {
    /// Builds a tiling.
    ///
    /// # Panics
    /// Panics if any tile size is zero (a zero tile has no meaning).
    pub fn new(phase: Phase, order: LoopOrder, tiles: [usize; 3]) -> Self {
        assert!(tiles.iter().all(|&t| t > 0), "tile sizes must be >= 1");
        IntraTiling { phase, order, tiles }
    }

    /// The phase this tiling belongs to.
    #[inline]
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The loop order.
    #[inline]
    pub fn order(&self) -> LoopOrder {
        self.order
    }

    /// Tile sizes aligned with `order().dims()`.
    #[inline]
    pub fn tiles(&self) -> &[usize; 3] {
        &self.tiles
    }

    /// Tile size of dimension `d` (1 for dims not in this phase — callers treat
    /// foreign dims as untiled).
    pub fn tile_of(&self, d: Dim) -> usize {
        self.order.position(d).map_or(1, |i| self.tiles[i])
    }

    /// Concrete mapping of dimension `d` (`Spatial` iff its tile exceeds 1).
    pub fn mapping_of(&self, d: Dim) -> Option<Mapping> {
        self.order
            .position(d)
            .map(|i| if self.tiles[i] > 1 { Mapping::Spatial } else { Mapping::Temporal })
    }

    /// Number of PEs this tiling occupies (= product of tile sizes), the paper's
    /// static-utilisation numerator (Section V-A3, footnote 3).
    pub fn pe_footprint(&self) -> usize {
        self.tiles.iter().product()
    }

    /// Static utilisation against a PE budget, in `[0, 1]`.
    pub fn static_utilisation(&self, pes: usize) -> f64 {
        if pes == 0 {
            return 0.0;
        }
        (self.pe_footprint() as f64 / pes as f64).min(1.0)
    }

    /// The pattern this tiling instantiates (every dim mapped concretely).
    pub fn to_pattern(&self) -> IntraPattern {
        let maps = [0, 1, 2].map(|i| {
            if self.tiles[i] > 1 {
                MappingSpec::Spatial
            } else {
                MappingSpec::Temporal
            }
        });
        IntraPattern { phase: self.phase, order: self.order, maps }
    }
}

impl std::fmt::Display for IntraTiling {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (d, t) in self.order.dims().iter().zip(self.tiles) {
            write!(f, "{}{}", d.letter(), if t > 1 { 's' } else { 't' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmb_order(d: [Dim; 3]) -> LoopOrder {
        LoopOrder::new(Phase::Combination, d).unwrap()
    }

    #[test]
    fn pattern_display_matches_paper_syntax() {
        let p = IntraPattern::from_pairs(
            Phase::Combination,
            [(Dim::V, MappingSpec::Spatial), (Dim::G, MappingSpec::Spatial), (Dim::F, MappingSpec::Temporal)],
        )
        .unwrap();
        assert_eq!(p.to_string(), "VsGsFt");
        let q = IntraPattern::from_pairs(
            Phase::Aggregation,
            [(Dim::V, MappingSpec::Any), (Dim::F, MappingSpec::Spatial), (Dim::N, MappingSpec::Temporal)],
        )
        .unwrap();
        assert_eq!(q.to_string(), "VxFsNt");
    }

    #[test]
    fn from_pairs_rejects_wrong_dims() {
        assert!(IntraPattern::from_pairs(
            Phase::Aggregation,
            [(Dim::V, MappingSpec::Any), (Dim::G, MappingSpec::Any), (Dim::N, MappingSpec::Any)],
        )
        .is_none());
    }

    #[test]
    fn tiling_mappings_derive_from_tile_sizes() {
        let t = IntraTiling::new(Phase::Combination, cmb_order([Dim::V, Dim::G, Dim::F]), [2, 2, 1]);
        assert_eq!(t.mapping_of(Dim::V), Some(Mapping::Spatial));
        assert_eq!(t.mapping_of(Dim::F), Some(Mapping::Temporal));
        assert_eq!(t.mapping_of(Dim::N), None);
        assert_eq!(t.tile_of(Dim::G), 2);
        assert_eq!(t.tile_of(Dim::N), 1);
        assert_eq!(t.pe_footprint(), 4);
        assert_eq!(t.to_string(), "VsGsFt");
    }

    #[test]
    fn fig4_example() {
        // Fig. 4: T_V=2, T_G=2, T_F=1 → VsGsFt.
        let t = IntraTiling::new(Phase::Combination, cmb_order([Dim::V, Dim::G, Dim::F]), [2, 2, 1]);
        assert_eq!(t.to_pattern().to_string(), "VsGsFt");
    }

    #[test]
    fn static_utilisation() {
        let t = IntraTiling::new(Phase::Combination, cmb_order([Dim::V, Dim::G, Dim::F]), [16, 16, 2]);
        assert_eq!(t.pe_footprint(), 512);
        assert!((t.static_utilisation(512) - 1.0).abs() < 1e-12);
        assert!((t.static_utilisation(1024) - 0.5).abs() < 1e-12);
        assert_eq!(t.static_utilisation(0), 0.0);
    }

    #[test]
    fn pattern_admits_matching_tiling() {
        let p = IntraPattern::from_pairs(
            Phase::Combination,
            [(Dim::V, MappingSpec::Any), (Dim::G, MappingSpec::Spatial), (Dim::F, MappingSpec::Temporal)],
        )
        .unwrap();
        let good = IntraTiling::new(Phase::Combination, cmb_order([Dim::V, Dim::G, Dim::F]), [1, 4, 1]);
        assert!(p.admits(&good));
        let wrong_order = IntraTiling::new(Phase::Combination, cmb_order([Dim::G, Dim::V, Dim::F]), [4, 1, 1]);
        assert!(!p.admits(&wrong_order));
        let f_spatial = IntraTiling::new(Phase::Combination, cmb_order([Dim::V, Dim::G, Dim::F]), [1, 4, 2]);
        assert!(!p.admits(&f_spatial));
        let g_temporal = IntraTiling::new(Phase::Combination, cmb_order([Dim::V, Dim::G, Dim::F]), [4, 1, 1]);
        assert!(!p.admits(&g_temporal));
    }

    #[test]
    #[should_panic(expected = "tile sizes")]
    fn zero_tile_panics() {
        IntraTiling::new(Phase::Combination, cmb_order([Dim::V, Dim::G, Dim::F]), [0, 1, 1]);
    }

    #[test]
    fn map_of_queries_pattern() {
        let p = IntraPattern::from_pairs(
            Phase::Aggregation,
            [(Dim::F, MappingSpec::Spatial), (Dim::V, MappingSpec::Any), (Dim::N, MappingSpec::Temporal)],
        )
        .unwrap();
        assert_eq!(p.map_of(Dim::F), Some(MappingSpec::Spatial));
        assert_eq!(p.map_of(Dim::N), Some(MappingSpec::Temporal));
        assert_eq!(p.map_of(Dim::G), None);
        assert_eq!(p.order().to_string(), "FVN");
    }
}
