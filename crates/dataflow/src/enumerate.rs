//! Design-space enumeration — reproduces the paper's **6,656** dataflow count.
//!
//! Section III-C: "This leads to a total of 6,656 choices purely from the product
//! of all feasible loop orders, parallelism choices, and phase order across the
//! three inter-phase choices." The count decomposes as:
//!
//! * **Seq** (Table II row 1, "ANY-All pairs"): 6 aggregation orders × 2³ mapping
//!   choices × 6 combination orders × 2³ × 2 phase orders = **4,608**;
//! * **SP-Generic** (row 3, "same as rows 4-9"): 8 legal order pairs per phase
//!   order (see [`crate::granularity`]) × 2⁶ mappings × 2 phase orders = **1,024**;
//! * **PP** (rows 4-9): the same legal pairs = **1,024**.
//!
//! 4,608 + 1,024 + 1,024 = **6,656**. The 16 SP-Optimized instances of row 2 are
//! the subset of SP element-granularity choices with tied tiles and temporal
//! reduction; the paper lists them separately and they are not double-counted —
//! [`sp_optimized_pattern_count`] exposes them for completeness.
//!
//! Tile sizes are *not* part of this count — each choice still has its free
//! `T_Dim` parameters, "which can put the actual number of possible mappings in
//! the trillions" (Section III-C).

use crate::granularity::pipeline_granularity;
use crate::{
    GnnDataflowPattern, InterPhase, IntraPattern, LoopOrder, MappingSpec, Phase, PhaseOrder,
};

/// Iterates over every *concrete-mapping* pattern (each dim `s` or `t`, no `x`) in
/// the design space, in a deterministic order.
pub fn all_patterns() -> impl Iterator<Item = GnnDataflowPattern> {
    let mut out = Vec::with_capacity(design_space_size());
    for inter in InterPhase::all() {
        for phase_order in PhaseOrder::all() {
            for agg_order in LoopOrder::all(Phase::Aggregation) {
                for cmb_order in LoopOrder::all(Phase::Combination) {
                    if !orders_legal(inter, phase_order, agg_order, cmb_order) {
                        continue;
                    }
                    for agg_maps in all_mapping_triples() {
                        for cmb_maps in all_mapping_triples() {
                            out.push(GnnDataflowPattern {
                                inter,
                                phase_order,
                                agg: IntraPattern::new(Phase::Aggregation, agg_order, agg_maps),
                                cmb: IntraPattern::new(Phase::Combination, cmb_order, cmb_maps),
                            });
                        }
                    }
                }
            }
        }
    }
    out.into_iter()
}

/// Whether the loop-order pair is legal under the inter-phase strategy.
fn orders_legal(
    inter: InterPhase,
    phase_order: PhaseOrder,
    agg_order: LoopOrder,
    cmb_order: LoopOrder,
) -> bool {
    match inter {
        InterPhase::Sequential => true,
        InterPhase::SequentialPipeline | InterPhase::ParallelPipeline => {
            pipeline_granularity(phase_order, agg_order, cmb_order).is_some()
        }
    }
}

/// All 8 concrete mapping triples (`s`/`t` per dimension).
fn all_mapping_triples() -> [[MappingSpec; 3]; 8] {
    let opts = [MappingSpec::Spatial, MappingSpec::Temporal];
    let mut out = [[MappingSpec::Spatial; 3]; 8];
    let mut i = 0;
    for a in opts {
        for b in opts {
            for c in opts {
                out[i] = [a, b, c];
                i += 1;
            }
        }
    }
    out
}

/// Number of choices for one inter-phase strategy.
pub fn count_for(inter: InterPhase) -> usize {
    let mut n = 0;
    for phase_order in PhaseOrder::all() {
        for agg_order in LoopOrder::all(Phase::Aggregation) {
            for cmb_order in LoopOrder::all(Phase::Combination) {
                if orders_legal(inter, phase_order, agg_order, cmb_order) {
                    n += 64; // 2^3 agg mappings × 2^3 cmb mappings
                }
            }
        }
    }
    n
}

/// Total size of the enumerated design space (the paper's 6,656).
pub fn design_space_size() -> usize {
    InterPhase::all().iter().map(|&i| count_for(i)).sum()
}

/// Number of SP-Optimized instances (Table II row 2): 4 loop-order templates
/// (2 per phase order) × 2² tied spatial/temporal choices for the shared
/// intermediate-tile dims = 16.
pub fn sp_optimized_pattern_count() -> usize {
    4 * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_pattern;

    #[test]
    fn total_matches_paper() {
        assert_eq!(design_space_size(), 6656);
    }

    #[test]
    fn per_strategy_breakdown() {
        assert_eq!(count_for(InterPhase::Sequential), 4608);
        assert_eq!(count_for(InterPhase::SequentialPipeline), 1024);
        assert_eq!(count_for(InterPhase::ParallelPipeline), 1024);
    }

    #[test]
    fn iterator_agrees_with_count() {
        assert_eq!(all_patterns().count(), 6656);
    }

    #[test]
    fn all_enumerated_patterns_validate() {
        for p in all_patterns() {
            assert!(validate_pattern(&p).is_ok(), "{p}");
        }
    }

    #[test]
    fn patterns_are_distinct() {
        let set: std::collections::HashSet<String> = all_patterns().map(|p| p.to_string()).collect();
        assert_eq!(set.len(), 6656);
    }

    #[test]
    fn sp_optimized_count() {
        assert_eq!(sp_optimized_pattern_count(), 16);
    }

    #[test]
    fn pipelined_patterns_have_granularity() {
        for p in all_patterns() {
            if p.inter != InterPhase::Sequential {
                assert!(p.granularity().is_some(), "{p}");
            }
        }
    }
}
