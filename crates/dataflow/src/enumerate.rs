//! Design-space enumeration — reproduces the paper's **6,656** dataflow count.
//!
//! Section III-C: "This leads to a total of 6,656 choices purely from the product
//! of all feasible loop orders, parallelism choices, and phase order across the
//! three inter-phase choices." The count decomposes as:
//!
//! * **Seq** (Table II row 1, "ANY-All pairs"): 6 aggregation orders × 2³ mapping
//!   choices × 6 combination orders × 2³ × 2 phase orders = **4,608**;
//! * **SP-Generic** (row 3, "same as rows 4-9"): 8 legal order pairs per phase
//!   order (see [`crate::granularity`]) × 2⁶ mappings × 2 phase orders = **1,024**;
//! * **PP** (rows 4-9): the same legal pairs = **1,024**.
//!
//! 4,608 + 1,024 + 1,024 = **6,656**. The 16 SP-Optimized instances of row 2 are
//! the subset of SP element-granularity choices with tied tiles and temporal
//! reduction; the paper lists them separately and they are not double-counted —
//! [`sp_optimized_pattern_count`] exposes them for completeness.
//!
//! Tile sizes are *not* part of this count — each choice still has its free
//! `T_Dim` parameters, "which can put the actual number of possible mappings in
//! the trillions" (Section III-C).
//!
//! The space is exposed two ways, both in the same deterministic order:
//!
//! * [`all_patterns`] — a true lazy iterator (O(#legal order pairs) memory, the
//!   patterns themselves are generated on the fly, never collected);
//! * [`PatternSpace`] — a random-access index over the space with O(1)
//!   [`PatternSpace::get`], which is what lets a parallel design-space explorer
//!   carve the 6,656 choices into chunked work units without materialising a
//!   `Vec` of them.

use crate::granularity::pipeline_granularity;
use crate::{
    GnnDataflowPattern, InterPhase, IntraPattern, LoopOrder, MappingSpec, Phase, PhaseOrder,
};

/// Patterns per legal `(inter, phase order, agg order, cmb order)` block:
/// 2³ aggregation mapping triples × 2³ combination triples.
const BLOCK: usize = 64;

/// One legal `(inter, phase order, agg order, cmb order)` combination; each
/// contributes [`BLOCK`] concrete-mapping patterns.
#[derive(Debug, Clone, Copy)]
struct OrderBlock {
    inter: InterPhase,
    phase_order: PhaseOrder,
    agg_order: LoopOrder,
    cmb_order: LoopOrder,
}

/// Random-access index over the full design space.
///
/// Holds one small descriptor per legal loop-order combination (104 of them for
/// the paper's taxonomy — 72 Seq + 16 SP + 16 PP), never the patterns
/// themselves. `get(i)` materialises pattern `i` on demand, in the same order
/// [`all_patterns`] yields them.
#[derive(Debug, Clone)]
pub struct PatternSpace {
    blocks: Vec<OrderBlock>,
}

impl PatternSpace {
    /// Builds the block index (cheap: walks the ~150 order combinations once).
    pub fn new() -> Self {
        let mut blocks = Vec::new();
        for inter in InterPhase::all() {
            for phase_order in PhaseOrder::all() {
                for agg_order in LoopOrder::all(Phase::Aggregation) {
                    for cmb_order in LoopOrder::all(Phase::Combination) {
                        if orders_legal(inter, phase_order, agg_order, cmb_order) {
                            blocks.push(OrderBlock { inter, phase_order, agg_order, cmb_order });
                        }
                    }
                }
            }
        }
        PatternSpace { blocks }
    }

    /// Total number of patterns (the paper's 6,656).
    pub fn len(&self) -> usize {
        self.blocks.len() * BLOCK
    }

    /// `true` when the space is empty (never, for the paper's taxonomy).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Pattern `i` of the space (same order as [`all_patterns`]).
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> GnnDataflowPattern {
        let b = &self.blocks[i / BLOCK];
        let m = i % BLOCK;
        GnnDataflowPattern {
            inter: b.inter,
            phase_order: b.phase_order,
            agg: IntraPattern::new(Phase::Aggregation, b.agg_order, mapping_triple(m / 8)),
            cmb: IntraPattern::new(Phase::Combination, b.cmb_order, mapping_triple(m % 8)),
        }
    }

    /// Lazily iterates the whole space in index order.
    pub fn iter(&self) -> impl Iterator<Item = GnnDataflowPattern> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

impl Default for PatternSpace {
    fn default() -> Self {
        Self::new()
    }
}

/// Iterates over every *concrete-mapping* pattern (each dim `s` or `t`, no `x`)
/// in the design space, in a deterministic order.
///
/// This is a true streaming iterator: it holds the ~104-entry block index and
/// generates each pattern on demand — the full space is never collected.
pub fn all_patterns() -> impl Iterator<Item = GnnDataflowPattern> {
    let space = PatternSpace::new();
    (0..space.len()).map(move |i| space.get(i))
}

/// Whether the loop-order pair is legal under the inter-phase strategy.
fn orders_legal(
    inter: InterPhase,
    phase_order: PhaseOrder,
    agg_order: LoopOrder,
    cmb_order: LoopOrder,
) -> bool {
    match inter {
        InterPhase::Sequential => true,
        InterPhase::SequentialPipeline | InterPhase::ParallelPipeline => {
            pipeline_granularity(phase_order, agg_order, cmb_order).is_some()
        }
    }
}

/// The `j`-th (0..8) concrete mapping triple, ordered with the first dimension's
/// choice most significant and `Spatial < Temporal` (matching the historical
/// `all_mapping_triples` nesting).
fn mapping_triple(j: usize) -> [MappingSpec; 3] {
    debug_assert!(j < 8);
    let pick = |bit: usize| {
        if j >> bit & 1 == 0 {
            MappingSpec::Spatial
        } else {
            MappingSpec::Temporal
        }
    };
    [pick(2), pick(1), pick(0)]
}

/// Number of choices for one inter-phase strategy.
pub fn count_for(inter: InterPhase) -> usize {
    let mut n = 0;
    for phase_order in PhaseOrder::all() {
        for agg_order in LoopOrder::all(Phase::Aggregation) {
            for cmb_order in LoopOrder::all(Phase::Combination) {
                if orders_legal(inter, phase_order, agg_order, cmb_order) {
                    n += BLOCK; // 2^3 agg mappings × 2^3 cmb mappings
                }
            }
        }
    }
    n
}

/// Total size of the enumerated design space (the paper's 6,656).
pub fn design_space_size() -> usize {
    InterPhase::all().iter().map(|&i| count_for(i)).sum()
}

/// Number of SP-Optimized instances (Table II row 2): 4 loop-order templates
/// (2 per phase order) × 2² tied spatial/temporal choices for the shared
/// intermediate-tile dims = 16.
pub fn sp_optimized_pattern_count() -> usize {
    4 * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_pattern;

    #[test]
    fn total_matches_paper() {
        assert_eq!(design_space_size(), 6656);
    }

    #[test]
    fn per_strategy_breakdown() {
        assert_eq!(count_for(InterPhase::Sequential), 4608);
        assert_eq!(count_for(InterPhase::SequentialPipeline), 1024);
        assert_eq!(count_for(InterPhase::ParallelPipeline), 1024);
    }

    #[test]
    fn iterator_agrees_with_count() {
        assert_eq!(all_patterns().count(), 6656);
    }

    #[test]
    fn all_enumerated_patterns_validate() {
        for p in all_patterns() {
            assert!(validate_pattern(&p).is_ok(), "{p}");
        }
    }

    #[test]
    fn patterns_are_distinct() {
        let set: std::collections::HashSet<String> = all_patterns().map(|p| p.to_string()).collect();
        assert_eq!(set.len(), 6656);
    }

    #[test]
    fn sp_optimized_count() {
        assert_eq!(sp_optimized_pattern_count(), 16);
    }

    #[test]
    fn pipelined_patterns_have_granularity() {
        for p in all_patterns() {
            if p.inter != InterPhase::Sequential {
                assert!(p.granularity().is_some(), "{p}");
            }
        }
    }

    #[test]
    fn space_len_matches_streaming_count() {
        let space = PatternSpace::new();
        assert_eq!(space.len(), 6656);
        assert_eq!(space.len(), all_patterns().count());
        assert!(!space.is_empty());
    }

    #[test]
    fn indexed_access_matches_streaming_order() {
        let space = PatternSpace::new();
        for (i, p) in all_patterns().enumerate() {
            assert_eq!(space.get(i), p, "index {i}");
        }
        assert_eq!(space.iter().count(), space.len());
    }

    #[test]
    fn mapping_triples_cover_all_combinations() {
        let set: std::collections::HashSet<String> =
            (0..8).map(|j| format!("{:?}", mapping_triple(j))).collect();
        assert_eq!(set.len(), 8);
        // First triple is all-spatial, last all-temporal (historical nesting).
        assert_eq!(mapping_triple(0), [MappingSpec::Spatial; 3]);
        assert_eq!(mapping_triple(7), [MappingSpec::Temporal; 3]);
    }
}
