//! Producer/consumer chunk-stream analysis for pipelined inter-phase dataflows.
//!
//! SP-Generic and PP hand the intermediate matrix from the first phase to the
//! second in chunks (Section IV-D). Whether a pair of intra-phase loop orders can
//! pipeline — and at which granularity — is determined by *what the producer
//! completes* and *what the consumer needs*, per loop iteration:
//!
//! * The **producer** finishes a region of the intermediate only once its reduction
//!   dimension (`N` for Aggregation, `F` for Combination) has fully iterated:
//!   reduction innermost → element tiles complete one at a time; reduction in the
//!   middle → whole slices (rows/columns) complete; reduction outermost → nothing
//!   completes until the very end, so no pipelining.
//! * The **consumer** needs a region per iteration of its non-intermediate
//!   dimension (`G` for Combination, `V` for Aggregation-as-consumer in CA):
//!   that dim innermost → it consumes element tiles; in the middle → whole slices;
//!   outermost → it re-reads the entire intermediate each iteration, so no
//!   pipelining.
//!
//! Two orders are compatible when the producer's chunk stream can feed the
//! consumer's in order; the pipeline granularity is the coarser of the two. This
//! analysis reproduces exactly the legal loop-order pairs of Table II rows 4–9
//! (see the tests below, which check all 16 templates and that no others appear).

use serde::Serialize;

use crate::{Dim, Granularity, LoopOrder, Phase, PhaseOrder};

/// Which axis of the intermediate matrix a dimension addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Axis {
    /// Intermediate rows (vertices for AC; Combination-output vertices for CA).
    Row,
    /// Intermediate columns (features for AC; output features for CA).
    Col,
}

/// The stream of intermediate chunks a phase produces or consumes, in traversal
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ChunkStream {
    /// Element tiles, traversed `major`-then-`minor`.
    Element {
        /// Axis iterated in the outer position.
        major: Axis,
        /// Axis iterated in the inner position.
        minor: Axis,
    },
    /// Whole slices along one axis (`Row` slices = intermediate rows, etc.).
    Slice {
        /// The sliced axis.
        axis: Axis,
    },
    /// No pipelining possible (region only complete / only consumable at the end).
    None,
}

/// Maps a phase dimension to the intermediate-matrix axis it addresses, given the
/// phase order. For AC the intermediate is `V×F` in both phases' coordinates; for
/// CA it is `V×G` for the producer (Combination) and is *re-read* as `N×F` by the
/// consumer (Aggregation) — "V×G matrix after Cmb becomes N×F for Agg" (Table II
/// row 7).
pub fn intermediate_axis(phase: Phase, phase_order: PhaseOrder, d: Dim) -> Option<Axis> {
    match (phase_order, phase, d) {
        (PhaseOrder::AC, _, Dim::V) => Some(Axis::Row),
        (PhaseOrder::AC, _, Dim::F) => Some(Axis::Col),
        (PhaseOrder::CA, Phase::Combination, Dim::V) => Some(Axis::Row),
        (PhaseOrder::CA, Phase::Combination, Dim::G) => Some(Axis::Col),
        (PhaseOrder::CA, Phase::Aggregation, Dim::N) => Some(Axis::Row),
        (PhaseOrder::CA, Phase::Aggregation, Dim::F) => Some(Axis::Col),
        _ => None,
    }
}

/// Chunk stream the *producer* phase completes while walking `order`.
pub fn production_stream(phase: Phase, phase_order: PhaseOrder, order: LoopOrder) -> ChunkStream {
    stream_for(phase, phase_order, order, phase.reduction_dim())
}

/// Chunk stream the *consumer* phase requires while walking `order`.
pub fn consumption_stream(phase: Phase, phase_order: PhaseOrder, order: LoopOrder) -> ChunkStream {
    // The consumer's "free" dimension — the one that does not address the
    // intermediate — plays the same structural role as the producer's reduction dim.
    let free = match (phase, phase_order) {
        (Phase::Combination, PhaseOrder::AC) => Dim::G,
        (Phase::Aggregation, PhaseOrder::CA) => Dim::V,
        // A phase can only consume the intermediate when it runs second.
        _ => return ChunkStream::None,
    };
    stream_for(phase, phase_order, order, free)
}

fn stream_for(phase: Phase, phase_order: PhaseOrder, order: LoopOrder, pivot: Dim) -> ChunkStream {
    let Some(pos) = order.position(pivot) else {
        return ChunkStream::None;
    };
    match pos {
        2 => {
            let major = intermediate_axis(phase, phase_order, order.outer());
            let minor = intermediate_axis(phase, phase_order, order.middle());
            match (major, minor) {
                (Some(major), Some(minor)) if major != minor => ChunkStream::Element { major, minor },
                _ => ChunkStream::None,
            }
        }
        1 => match intermediate_axis(phase, phase_order, order.outer()) {
            Some(axis) => ChunkStream::Slice { axis },
            None => ChunkStream::None,
        },
        _ => ChunkStream::None,
    }
}

/// Pipelining granularity for a phase-order + loop-order pair, or `None` when the
/// pair cannot pipeline (Table II rows 4–9 legality).
///
/// `agg_order` / `cmb_order` are the loop orders of the Aggregation and Combination
/// phases; which one produces and which consumes follows from `phase_order`.
pub fn pipeline_granularity(
    phase_order: PhaseOrder,
    agg_order: LoopOrder,
    cmb_order: LoopOrder,
) -> Option<Granularity> {
    let (produce, consume) = match phase_order {
        PhaseOrder::AC => (
            production_stream(Phase::Aggregation, phase_order, agg_order),
            consumption_stream(Phase::Combination, phase_order, cmb_order),
        ),
        PhaseOrder::CA => (
            production_stream(Phase::Combination, phase_order, cmb_order),
            consumption_stream(Phase::Aggregation, phase_order, agg_order),
        ),
    };
    match (produce, consume) {
        (ChunkStream::Element { major: pm, minor: pn }, ChunkStream::Element { major: cm, minor: cn }) => {
            (pm == cm && pn == cn).then_some(Granularity::Element)
        }
        (ChunkStream::Element { major, .. }, ChunkStream::Slice { axis })
        | (ChunkStream::Slice { axis }, ChunkStream::Element { major, .. }) => {
            (major == axis).then(|| slice_granularity(axis))
        }
        (ChunkStream::Slice { axis: a }, ChunkStream::Slice { axis: b }) => {
            (a == b).then(|| slice_granularity(a))
        }
        _ => None,
    }
}

fn slice_granularity(axis: Axis) -> Granularity {
    match axis {
        Axis::Row => Granularity::Row,
        Axis::Col => Granularity::Column,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg(s: &str) -> LoopOrder {
        let dims: Vec<Dim> = s.chars().map(|c| Dim::from_letter(c).unwrap()).collect();
        LoopOrder::new(Phase::Aggregation, [dims[0], dims[1], dims[2]]).unwrap()
    }

    fn cmb(s: &str) -> LoopOrder {
        let dims: Vec<Dim> = s.chars().map(|c| Dim::from_letter(c).unwrap()).collect();
        LoopOrder::new(Phase::Combination, [dims[0], dims[1], dims[2]]).unwrap()
    }

    #[test]
    fn table_ii_row4_element_ac() {
        assert_eq!(pipeline_granularity(PhaseOrder::AC, agg("VFN"), cmb("VFG")), Some(Granularity::Element));
        assert_eq!(pipeline_granularity(PhaseOrder::AC, agg("FVN"), cmb("FVG")), Some(Granularity::Element));
    }

    #[test]
    fn table_ii_row5_row_ac() {
        assert_eq!(pipeline_granularity(PhaseOrder::AC, agg("VFN"), cmb("VGF")), Some(Granularity::Row));
        assert_eq!(pipeline_granularity(PhaseOrder::AC, agg("VNF"), cmb("VGF")), Some(Granularity::Row));
        assert_eq!(pipeline_granularity(PhaseOrder::AC, agg("VNF"), cmb("VFG")), Some(Granularity::Row));
    }

    #[test]
    fn table_ii_row6_column_ac() {
        assert_eq!(pipeline_granularity(PhaseOrder::AC, agg("FVN"), cmb("FGV")), Some(Granularity::Column));
        assert_eq!(pipeline_granularity(PhaseOrder::AC, agg("FNV"), cmb("FGV")), Some(Granularity::Column));
        assert_eq!(pipeline_granularity(PhaseOrder::AC, agg("FNV"), cmb("FVG")), Some(Granularity::Column));
    }

    #[test]
    fn table_ii_row7_element_ca() {
        assert_eq!(pipeline_granularity(PhaseOrder::CA, agg("NFV"), cmb("VGF")), Some(Granularity::Element));
        assert_eq!(pipeline_granularity(PhaseOrder::CA, agg("FNV"), cmb("GVF")), Some(Granularity::Element));
    }

    #[test]
    fn table_ii_row8_row_ca() {
        assert_eq!(pipeline_granularity(PhaseOrder::CA, agg("NVF"), cmb("VGF")), Some(Granularity::Row));
        assert_eq!(pipeline_granularity(PhaseOrder::CA, agg("NVF"), cmb("VFG")), Some(Granularity::Row));
        assert_eq!(pipeline_granularity(PhaseOrder::CA, agg("NFV"), cmb("VFG")), Some(Granularity::Row));
    }

    #[test]
    fn table_ii_row9_column_ca() {
        assert_eq!(pipeline_granularity(PhaseOrder::CA, agg("FVN"), cmb("GVF")), Some(Granularity::Column));
        assert_eq!(pipeline_granularity(PhaseOrder::CA, agg("FVN"), cmb("GFV")), Some(Granularity::Column));
        assert_eq!(pipeline_granularity(PhaseOrder::CA, agg("FNV"), cmb("GFV")), Some(Granularity::Column));
    }

    #[test]
    fn incompatible_pairs_are_rejected() {
        // Major-order mismatch.
        assert_eq!(pipeline_granularity(PhaseOrder::AC, agg("VFN"), cmb("FVG")), None);
        // Slice axes disagree.
        assert_eq!(pipeline_granularity(PhaseOrder::AC, agg("VNF"), cmb("FGV")), None);
        // Reduction outermost: producer completes nothing until the end.
        assert_eq!(pipeline_granularity(PhaseOrder::AC, agg("NVF"), cmb("VGF")), None);
        assert_eq!(pipeline_granularity(PhaseOrder::AC, agg("NFV"), cmb("VFG")), None);
        // Consumer free-dim outermost: re-reads the whole intermediate per G.
        assert_eq!(pipeline_granularity(PhaseOrder::AC, agg("VFN"), cmb("GVF")), None);
        // CA with V-outermost aggregation: irregular gather over the whole
        // intermediate (neighbour rows), cannot pipeline.
        assert_eq!(pipeline_granularity(PhaseOrder::CA, agg("VFN"), cmb("VGF")), None);
        assert_eq!(pipeline_granularity(PhaseOrder::CA, agg("VNF"), cmb("VGF")), None);
    }

    #[test]
    fn exactly_eight_templates_per_phase_order() {
        for phase_order in PhaseOrder::all() {
            let mut count = 0;
            for a in LoopOrder::all(Phase::Aggregation) {
                for c in LoopOrder::all(Phase::Combination) {
                    if pipeline_granularity(phase_order, a, c).is_some() {
                        count += 1;
                    }
                }
            }
            assert_eq!(count, 8, "phase order {phase_order}");
        }
    }

    #[test]
    fn granularity_split_matches_table_ii() {
        // AC: 2 element, 3 row, 3 column templates (rows 4, 5, 6).
        let mut elem = 0;
        let mut row = 0;
        let mut col = 0;
        for a in LoopOrder::all(Phase::Aggregation) {
            for c in LoopOrder::all(Phase::Combination) {
                match pipeline_granularity(PhaseOrder::AC, a, c) {
                    Some(Granularity::Element) => elem += 1,
                    Some(Granularity::Row) => row += 1,
                    Some(Granularity::Column) => col += 1,
                    None => {}
                }
            }
        }
        assert_eq!((elem, row, col), (2, 3, 3));
    }

    #[test]
    fn production_stream_shapes() {
        assert_eq!(
            production_stream(Phase::Aggregation, PhaseOrder::AC, agg("VFN")),
            ChunkStream::Element { major: Axis::Row, minor: Axis::Col }
        );
        assert_eq!(
            production_stream(Phase::Aggregation, PhaseOrder::AC, agg("VNF")),
            ChunkStream::Slice { axis: Axis::Row }
        );
        assert_eq!(production_stream(Phase::Aggregation, PhaseOrder::AC, agg("NVF")), ChunkStream::None);
        assert_eq!(
            production_stream(Phase::Combination, PhaseOrder::CA, cmb("GFV")),
            ChunkStream::Slice { axis: Axis::Col }
        );
    }

    #[test]
    fn consumption_requires_running_second() {
        // Aggregation cannot consume in AC order (it runs first).
        assert_eq!(consumption_stream(Phase::Aggregation, PhaseOrder::AC, agg("VFN")), ChunkStream::None);
        assert_eq!(consumption_stream(Phase::Combination, PhaseOrder::CA, cmb("VGF")), ChunkStream::None);
    }
}
