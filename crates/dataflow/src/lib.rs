//! The GNN dataflow taxonomy of the paper (Section III).
//!
//! A complete GNN dataflow is described by the template
//!
//! ```text
//! <Inter><order>(<AggIntra>, <CmbIntra>)
//! ```
//!
//! e.g. `PP_AC(VtFsNt, VsGsFt)` — HyGCN's dataflow expressed on a flexible spatial
//! accelerator (paper, Section III-C). This crate provides:
//!
//! * [`Dim`], [`Mapping`], [`LoopOrder`] — the vocabulary of intra-phase loop nests
//!   (Fig. 4): three temporal loops plus spatial (`s`) / temporal (`t`) parallelism
//!   per dimension, where *spatial* means a tile size > 1.
//! * [`IntraPattern`] / [`IntraTiling`] — an intra-phase dataflow as a pattern
//!   (possibly with `x` = "either" placeholders, as used throughout Table II) and as
//!   a concrete tiling.
//! * [`InterPhase`], [`PhaseOrder`], [`Granularity`] — the inter-phase strategies
//!   Seq / SP / PP, the AC/CA computation orders, and the element/row/column
//!   pipelining granularities of Section IV-D.
//! * [`granularity`] — the producer/consumer chunk-compatibility analysis that
//!   reproduces the legal loop-order pairs of Table II rows 4–9.
//! * [`GnnDataflowPattern`] / [`GnnDataflow`] — full descriptors with `Display` and
//!   `FromStr` for the paper's template syntax, validation, and SP-Optimized
//!   detection (Table II row 2).
//! * [`enumerate`] — design-space enumeration reproducing the paper's **6,656**
//!   loop-order/parallelism/phase-order choices.
//! * [`tiles`] — tile-size selection maximising static utilisation (Section V-A3).
//! * [`presets`] — the nine evaluated configurations of Table V.
//! * [`analysis`] — the stationarity/streaming/reduction classification of Table I.
//!
//! ```
//! use omega_dataflow::{GnnDataflowPattern, Granularity};
//!
//! // HyGCN's dataflow in the paper's template syntax (Section III-C):
//! let hygcn: GnnDataflowPattern = "PP_AC(VxFsNt, VsGsFt)".parse().unwrap();
//! assert_eq!(hygcn.granularity(), Some(Granularity::Row));
//!
//! // The full design space the taxonomy describes:
//! assert_eq!(omega_dataflow::enumerate::design_space_size(), 6_656);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod descriptor;
mod dim;
pub mod enumerate;
pub mod granularity;
mod inter;
mod intra;
pub mod presets;
pub mod tiles;
mod validate;

pub use descriptor::{GnnDataflow, GnnDataflowPattern, ParseError};
pub use dim::{Dim, LoopOrder, Mapping, MappingSpec, Phase};
pub use inter::{Granularity, InterPhase, PhaseOrder};
pub use intra::{IntraPattern, IntraTiling};
pub use validate::{
    validate, validate_elementwise, validate_pattern, validate_sddmm, validate_sddmm_pattern,
    ValidationError,
};
