//! Table I reproduction: hardware implications of intra-phase dataflow choices.
//!
//! For a 2D GEMM dataflow, the loop order decides which operand is *stationary*
//! (pinned in the PEs) versus *streaming* (re-fetched every cycle), and the spatial
//! dimensions decide which operands are *multicast* and whether partial-sum
//! reduction is *spatial* (across PEs) or *temporal* (read-modify-write inside a
//! PE). The classification rule:
//!
//! * the operand **not** indexed by the innermost loop dimension is stationary —
//!   every other operand's index advances each cycle, so it streams;
//! * a streaming operand is multicast along every spatial dimension it is **not**
//!   indexed by (those PEs all need the same value in the same cycle);
//! * reduction is spatial iff the phase's reduction dimension is spatial.

use serde::Serialize;

use crate::{Dim, IntraTiling, Mapping, Phase};

/// An operand of a GNN phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Operand {
    /// Aggregation: the CSR adjacency matrix `A` (`V × N`).
    Adjacency,
    /// Aggregation: the input feature matrix (`N × F` view of `X`).
    InputFeatures,
    /// The intermediate matrix (`V × F`): Aggregation's output, Combination's input.
    Intermediate,
    /// Combination: the weight matrix `W` (`F × G`).
    Weights,
    /// Combination: the output matrix (`V × G`).
    Output,
}

impl Operand {
    /// The loop dimensions this operand is indexed by, per phase.
    pub fn dims(self, phase: Phase) -> [Dim; 2] {
        match (phase, self) {
            (Phase::Aggregation, Operand::Adjacency) => [Dim::V, Dim::N],
            (Phase::Aggregation, Operand::InputFeatures) => [Dim::N, Dim::F],
            (Phase::Aggregation, Operand::Intermediate) => [Dim::V, Dim::F],
            (Phase::Combination, Operand::Intermediate) => [Dim::V, Dim::F],
            (Phase::Combination, Operand::Weights) => [Dim::F, Dim::G],
            (Phase::Combination, Operand::Output) => [Dim::V, Dim::G],
            _ => panic!("operand {self:?} does not appear in phase {phase}"),
        }
    }

    /// The three operands of a phase: `(input a, input b, output)`.
    pub fn of_phase(phase: Phase) -> [Operand; 3] {
        match phase {
            Phase::Aggregation => [Operand::Adjacency, Operand::InputFeatures, Operand::Intermediate],
            Phase::Combination => [Operand::Intermediate, Operand::Weights, Operand::Output],
        }
    }

    /// The output operand of a phase.
    pub fn output_of(phase: Phase) -> Operand {
        match phase {
            Phase::Aggregation => Operand::Intermediate,
            Phase::Combination => Operand::Output,
        }
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Operand::Adjacency => "Adjacency (V×N)",
            Operand::InputFeatures => "InputFeatures (N×F)",
            Operand::Intermediate => "Intermediate (V×F)",
            Operand::Weights => "Weights (F×G)",
            Operand::Output => "Output (V×G)",
        })
    }
}

/// How partial sums are reduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ReductionStyle {
    /// Across PEs via the reduction network (adder tree / store-and-forward).
    Spatial,
    /// Read-modify-write accumulators inside each PE.
    Temporal,
}

/// Table I-style classification of one intra-phase dataflow.
#[derive(Debug, Clone, Serialize)]
pub struct DataflowAnalysis {
    /// Operand pinned in the PEs (if any input is; the output "stationary" case is
    /// reported through `reduction` = temporal with `output_stationary` = true).
    pub stationary: Option<Operand>,
    /// Operands streamed from the global buffer every cycle.
    pub streaming: Vec<Operand>,
    /// `(operand, dim)` pairs where the operand is spatially multicast across the
    /// PEs of that (spatial) dimension.
    pub multicast: Vec<(Operand, Dim)>,
    /// Whether partial sums reduce across PEs or within them.
    pub reduction: ReductionStyle,
    /// `true` when the output operand is the stationary one (accumulates in place).
    pub output_stationary: bool,
}

/// Classifies a concrete intra-phase tiling (either phase).
pub fn analyse(tiling: &IntraTiling) -> DataflowAnalysis {
    let phase = tiling.phase();
    let inner = tiling.order().inner();
    let operands = Operand::of_phase(phase);
    let output = Operand::output_of(phase);

    let mut stationary = None;
    let mut streaming = Vec::new();
    let mut output_stationary = false;
    for op in operands {
        let indexed_by_inner = op.dims(phase).contains(&inner);
        if op == output {
            output_stationary = !indexed_by_inner;
            if indexed_by_inner {
                streaming.push(op);
            }
        } else if indexed_by_inner {
            streaming.push(op);
        } else {
            stationary = Some(op);
        }
    }

    let mut multicast = Vec::new();
    for &op in &streaming {
        if op == output {
            continue; // outputs are collected, not distributed
        }
        for d in phase.dims() {
            if tiling.mapping_of(d) == Some(Mapping::Spatial) && !op.dims(phase).contains(&d) {
                multicast.push((op, d));
            }
        }
    }

    let reduction = if tiling.mapping_of(phase.reduction_dim()) == Some(Mapping::Spatial) {
        ReductionStyle::Spatial
    } else {
        ReductionStyle::Temporal
    };

    DataflowAnalysis { stationary, streaming, multicast, reduction, output_stationary }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoopOrder;

    fn cmb(order: &str, tiles: [usize; 3]) -> IntraTiling {
        let d: Vec<Dim> = order.chars().map(|c| Dim::from_letter(c).unwrap()).collect();
        IntraTiling::new(
            Phase::Combination,
            LoopOrder::new(Phase::Combination, [d[0], d[1], d[2]]).unwrap(),
            tiles,
        )
    }

    fn agg(order: &str, tiles: [usize; 3]) -> IntraTiling {
        let d: Vec<Dim> = order.chars().map(|c| Dim::from_letter(c).unwrap()).collect();
        IntraTiling::new(
            Phase::Aggregation,
            LoopOrder::new(Phase::Aggregation, [d[0], d[1], d[2]]).unwrap(),
            tiles,
        )
    }

    #[test]
    fn table_i_row1_vsgsft() {
        // VsGsFt: output stationary; intermediate + weights stream with spatial
        // multicast; temporal reduction.
        let a = analyse(&cmb("VGF", [2, 2, 1]));
        assert!(a.output_stationary);
        assert_eq!(a.stationary, None);
        assert!(a.streaming.contains(&Operand::Intermediate));
        assert!(a.streaming.contains(&Operand::Weights));
        assert_eq!(a.reduction, ReductionStyle::Temporal);
        // Intermediate (V,F) multicast across spatial G; Weights (F,G) across V.
        assert!(a.multicast.contains(&(Operand::Intermediate, Dim::G)));
        assert!(a.multicast.contains(&(Operand::Weights, Dim::V)));
    }

    #[test]
    fn table_i_row2_gsfsvt() {
        // GsFsVt: weights stationary; intermediate streams with multicast;
        // spatial reduction across PEs.
        let a = analyse(&cmb("GFV", [2, 2, 1]));
        assert_eq!(a.stationary, Some(Operand::Weights));
        assert!(!a.output_stationary);
        assert!(a.streaming.contains(&Operand::Intermediate));
        assert!(a.streaming.contains(&Operand::Output));
        assert_eq!(a.reduction, ReductionStyle::Spatial);
        assert!(a.multicast.contains(&(Operand::Intermediate, Dim::G)));
    }

    #[test]
    fn table_i_row3_vsfsgt() {
        // VsFsGt: intermediate stationary; weights stream with multicast across V;
        // spatial reduction.
        let a = analyse(&cmb("VFG", [2, 2, 1]));
        assert_eq!(a.stationary, Some(Operand::Intermediate));
        assert!(a.streaming.contains(&Operand::Weights));
        assert!(a.streaming.contains(&Operand::Output));
        assert_eq!(a.reduction, ReductionStyle::Spatial);
        assert!(a.multicast.contains(&(Operand::Weights, Dim::V)));
    }

    #[test]
    fn fig5c_aggregation_vtfsnt() {
        // VtFsNt: intermediate (output) stationary, adjacency + inputs stream,
        // temporal reduction (Fig. 5c).
        let a = analyse(&agg("VFN", [1, 4, 1]));
        assert!(a.output_stationary);
        assert!(a.streaming.contains(&Operand::Adjacency));
        assert!(a.streaming.contains(&Operand::InputFeatures));
        assert_eq!(a.reduction, ReductionStyle::Temporal);
        // Adjacency (V,N) multicast across spatial F.
        assert!(a.multicast.contains(&(Operand::Adjacency, Dim::F)));
    }

    #[test]
    fn spatial_n_gives_spatial_reduction() {
        let a = analyse(&agg("VFN", [1, 4, 8]));
        assert_eq!(a.reduction, ReductionStyle::Spatial);
    }

    #[test]
    fn no_multicast_without_spatial_dims() {
        let a = analyse(&cmb("VGF", [1, 1, 1]));
        assert!(a.multicast.is_empty());
        assert_eq!(a.reduction, ReductionStyle::Temporal);
    }

    #[test]
    fn operand_dims_and_phase_membership() {
        assert_eq!(Operand::Weights.dims(Phase::Combination), [Dim::F, Dim::G]);
        assert_eq!(Operand::Intermediate.dims(Phase::Aggregation), [Dim::V, Dim::F]);
        assert_eq!(Operand::output_of(Phase::Aggregation), Operand::Intermediate);
        assert_eq!(Operand::output_of(Phase::Combination), Operand::Output);
    }

    #[test]
    #[should_panic(expected = "does not appear")]
    fn weights_not_in_aggregation() {
        Operand::Weights.dims(Phase::Aggregation);
    }
}
