//! Tile-size selection: concretising a dataflow pattern onto a PE budget.
//!
//! The paper fixes tile sizes per dataflow/dataset so that "static utilization is
//! nearly 100% of the PEs" (Section V-A3). This module implements that selection:
//! a [`PhasePolicy`] says which dimensions to grow (and how), and
//! [`choose_tiling`] grows power-of-two tiles until the PE budget or the dimension
//! extents are exhausted.
//!
//! Power-of-two tiles keep products exact against the (power-of-two) PE counts the
//! paper evaluates (512, 2048), which is what makes ~100% static utilisation
//! reachable whenever the workload dimensions allow.

use serde::Serialize;

use crate::{Dim, IntraPattern, IntraTiling, MappingSpec, Phase, PhaseOrder};

/// Workload dimensions the tile chooser needs.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TileContext {
    /// Vertices `V` (both phases' output rows).
    pub v: usize,
    /// Aggregation feature width (input features `F` for AC; `G` for CA).
    pub f_agg: usize,
    /// Combination reduction width (`F` for AC; also `F` for CA, where Combination
    /// runs first on the raw features).
    pub f_cmb: usize,
    /// Combination output width `G`.
    pub g: usize,
    /// Mean vertex degree (drives the spatial-`N` tile).
    pub n_mean: f64,
    /// Maximum vertex degree (upper bound for `T_N`).
    pub n_max: usize,
}

impl TileContext {
    /// Builds the context for a workload with the given matrix dimensions.
    ///
    /// `phase_order` decides which width the Aggregation phase sees: under CA the
    /// aggregation input is the Combination output (`G` wide).
    pub fn new(
        phase_order: PhaseOrder,
        v: usize,
        f: usize,
        g: usize,
        n_mean: f64,
        n_max: usize,
    ) -> Self {
        let f_agg = match phase_order {
            PhaseOrder::AC => f,
            PhaseOrder::CA => g,
        };
        TileContext { v, f_agg, f_cmb: f, g, n_mean, n_max }
    }

    /// Extent of dimension `d` in `phase`.
    pub fn extent(&self, phase: Phase, d: Dim) -> usize {
        match (phase, d) {
            (_, Dim::V) => self.v,
            (Phase::Aggregation, Dim::F) => self.f_agg,
            (Phase::Aggregation, Dim::N) => self.n_max,
            (Phase::Combination, Dim::F) => self.f_cmb,
            (Phase::Combination, Dim::G) => self.g,
            _ => 1,
        }
    }
}

/// Upper bound applied to one grown dimension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Cap {
    /// No cap beyond extent and budget.
    Unbounded,
    /// Absolute cap.
    Fixed(usize),
    /// Cap at `budget / denominator` (e.g. `BudgetFrac(8)` keeps `T_V ≤ PEs/8`,
    /// the "high but not extreme" regime of SP2).
    BudgetFrac(usize),
    /// Cap near half the mean degree (nearest power of two) — the sweet spot for
    /// the spatial-`N` tile: larger tiles waste PE-steps on the `ceil(deg/T_N)`
    /// remainder of most rows, smaller ones under-exploit dense rows.
    MeanDegreePow2,
}

/// One dimension to grow, with its cap.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct GrowthRule {
    /// The dimension to grow.
    pub dim: Dim,
    /// Its cap.
    pub cap: Cap,
}

impl GrowthRule {
    /// Uncapped growth rule.
    pub fn free(dim: Dim) -> Self {
        GrowthRule { dim, cap: Cap::Unbounded }
    }

    /// Capped growth rule.
    pub fn capped(dim: Dim, cap: Cap) -> Self {
        GrowthRule { dim, cap }
    }
}

/// How the listed dimensions share the PE budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum GrowthMode {
    /// Fill each dimension to its cap before moving to the next ("high `T_F`"
    /// style presets).
    Greedy,
    /// Double tiles in rotation for a balanced split (Seq-style presets).
    RoundRobin,
}

/// Tile-growth policy for one phase.
#[derive(Debug, Clone, Serialize)]
pub struct PhasePolicy {
    /// Budget-sharing mode.
    pub mode: GrowthMode,
    /// Dimensions to grow, in priority order. Unlisted dims keep tile 1.
    pub rules: Vec<GrowthRule>,
}

impl PhasePolicy {
    /// Greedy policy over `dims`, uncapped.
    pub fn greedy(dims: &[Dim]) -> Self {
        PhasePolicy { mode: GrowthMode::Greedy, rules: dims.iter().map(|&d| GrowthRule::free(d)).collect() }
    }

    /// Round-robin policy over `dims`, uncapped.
    pub fn round_robin(dims: &[Dim]) -> Self {
        PhasePolicy {
            mode: GrowthMode::RoundRobin,
            rules: dims.iter().map(|&d| GrowthRule::free(d)).collect(),
        }
    }

    /// Returns a copy with a cap applied to `dim` (adding the rule if absent).
    pub fn with_cap(mut self, dim: Dim, cap: Cap) -> Self {
        if let Some(r) = self.rules.iter_mut().find(|r| r.dim == dim) {
            r.cap = cap;
        } else {
            self.rules.push(GrowthRule::capped(dim, cap));
        }
        self
    }
}

/// Largest power of two ≤ `x` (`x ≥ 1`).
pub fn prev_pow2(x: usize) -> usize {
    debug_assert!(x >= 1);
    1usize << (usize::BITS - 1 - x.leading_zeros())
}

/// Smallest power of two ≥ `x` (`x ≥ 1`).
pub fn next_pow2(x: usize) -> usize {
    x.next_power_of_two()
}

/// Power of two nearest to `x` in log space (`x ≥ 1`).
pub fn nearest_pow2(x: f64) -> usize {
    1usize << (x.max(1.0).log2().round().max(0.0) as u32)
}

/// Chooses tile sizes instantiating `pattern` within `pe_budget` PEs.
///
/// * Dimensions with a `Temporal` spec keep tile 1.
/// * Dimensions with a `Spatial` spec are seeded at 2 (if extent and budget allow)
///   so the produced tiling actually instantiates the pattern.
/// * Listed dimensions then grow in powers of two per the policy until the budget,
///   their extent, or their cap stops them.
pub fn choose_tiling(
    pattern: &IntraPattern,
    ctx: &TileContext,
    pe_budget: usize,
    policy: &PhasePolicy,
) -> IntraTiling {
    let phase = pattern.phase();
    let dims = pattern.order().dims();
    let mut tiles: [usize; 3] = [1, 1, 1];
    let mut budget = pe_budget.max(1);

    let cap_of = |rule: &GrowthRule| -> usize {
        match rule.cap {
            Cap::Unbounded => usize::MAX,
            Cap::Fixed(k) => k.max(1),
            Cap::BudgetFrac(d) => (pe_budget / d.max(1)).max(1),
            Cap::MeanDegreePow2 => nearest_pow2((ctx.n_mean / 2.0).max(2.0)),
        }
    };

    // Seed required-spatial dims at 2 so the pattern is honoured.
    for (i, &d) in dims.iter().enumerate() {
        if pattern.maps()[i] == MappingSpec::Spatial && ctx.extent(phase, d) >= 2 && budget >= 2 {
            tiles[i] = 2;
            budget /= 2;
        }
    }

    let growable: Vec<(usize, GrowthRule)> = policy
        .rules
        .iter()
        .filter_map(|rule| {
            let i = dims.iter().position(|&d| d == rule.dim)?;
            // Never grow a dim the pattern pins temporal.
            (pattern.maps()[i] != MappingSpec::Temporal).then_some((i, *rule))
        })
        .collect();

    match policy.mode {
        GrowthMode::Greedy => {
            for &(i, rule) in &growable {
                while budget >= 2 && tiles[i] * 2 <= ctx.extent(phase, dims[i]).max(1) && tiles[i] * 2 <= cap_of(&rule)
                {
                    tiles[i] *= 2;
                    budget /= 2;
                }
            }
        }
        GrowthMode::RoundRobin => {
            let mut progressed = true;
            while progressed {
                progressed = false;
                for &(i, rule) in &growable {
                    if budget >= 2
                        && tiles[i] * 2 <= ctx.extent(phase, dims[i]).max(1)
                        && tiles[i] * 2 <= cap_of(&rule)
                    {
                        tiles[i] *= 2;
                        budget /= 2;
                        progressed = true;
                    }
                }
            }
        }
    }

    IntraTiling::new(phase, pattern.order(), tiles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoopOrder;

    fn ctx() -> TileContext {
        TileContext::new(PhaseOrder::AC, 3327, 3703, 16, 3.8, 100)
    }

    fn pattern(phase: Phase, s: &str) -> IntraPattern {
        let chars: Vec<char> = s.chars().collect();
        let dims = [0, 1, 2].map(|i| Dim::from_letter(chars[2 * i]).unwrap());
        let maps = [0, 1, 2].map(|i| MappingSpec::from_letter(chars[2 * i + 1]).unwrap());
        IntraPattern::new(phase, LoopOrder::new(phase, dims).unwrap(), maps)
    }

    #[test]
    fn pow2_helpers() {
        assert_eq!(prev_pow2(1), 1);
        assert_eq!(prev_pow2(2), 2);
        assert_eq!(prev_pow2(28), 16);
        assert_eq!(prev_pow2(512), 512);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(16), 16);
    }

    #[test]
    fn greedy_fills_first_dim_first() {
        // SP1 style: high T_F, temporal N.
        let p = pattern(Phase::Aggregation, "VxFsNt");
        let t = choose_tiling(&p, &ctx(), 512, &PhasePolicy::greedy(&[Dim::F, Dim::V]));
        assert_eq!(t.tile_of(Dim::F), 512); // F=3703 allows full fill
        assert_eq!(t.tile_of(Dim::V), 1);
        assert_eq!(t.tile_of(Dim::N), 1);
        assert_eq!(t.pe_footprint(), 512);
        assert!(p.admits(&t));
    }

    #[test]
    fn greedy_respects_extent_and_spills_to_next_dim() {
        // Mutag-like: F = 28 → T_F caps at 16, rest goes to V.
        let small = TileContext::new(PhaseOrder::AC, 1147, 28, 16, 3.2, 12);
        let p = pattern(Phase::Aggregation, "VxFsNt");
        let t = choose_tiling(&p, &small, 512, &PhasePolicy::greedy(&[Dim::F, Dim::V]));
        assert_eq!(t.tile_of(Dim::F), 16);
        assert_eq!(t.tile_of(Dim::V), 32);
        assert_eq!(t.pe_footprint(), 512);
    }

    #[test]
    fn round_robin_balances() {
        let p = pattern(Phase::Combination, "VxGxFx");
        let t = choose_tiling(&p, &ctx(), 512, &PhasePolicy::round_robin(&[Dim::V, Dim::G]));
        // G = 16 caps; V picks up the rest: 32 × 16 = 512.
        assert_eq!(t.tile_of(Dim::G), 16);
        assert_eq!(t.tile_of(Dim::V), 32);
        assert_eq!(t.pe_footprint(), 512);
    }

    #[test]
    fn budget_frac_cap() {
        let p = pattern(Phase::Aggregation, "VxFxNt");
        let policy = PhasePolicy::greedy(&[Dim::V, Dim::F]).with_cap(Dim::V, Cap::BudgetFrac(8));
        let t = choose_tiling(&p, &ctx(), 512, &policy);
        assert_eq!(t.tile_of(Dim::V), 64);
        assert_eq!(t.tile_of(Dim::F), 8);
    }

    #[test]
    fn mean_degree_cap_for_spatial_n() {
        let dense = TileContext::new(PhaseOrder::AC, 4766, 492, 16, 60.0, 200);
        let p = pattern(Phase::Aggregation, "VxFxNs");
        let policy = PhasePolicy::greedy(&[Dim::N, Dim::F, Dim::V]).with_cap(Dim::N, Cap::MeanDegreePow2);
        let t = choose_tiling(&p, &dense, 512, &policy);
        assert_eq!(t.tile_of(Dim::N), 32); // nearest_pow2(60 / 2)
        assert_eq!(t.pe_footprint(), 512);
        assert!(p.admits(&t));
    }

    #[test]
    fn nearest_pow2_rounds_in_log_space() {
        assert_eq!(nearest_pow2(1.0), 1);
        assert_eq!(nearest_pow2(2.9), 4); // log2(2.9) = 1.54 rounds to 2 → 4
        assert_eq!(nearest_pow2(33.0), 32);
        assert_eq!(nearest_pow2(48.0), 64); // log2(48)=5.58 → 64
        assert_eq!(nearest_pow2(0.5), 1);
    }

    #[test]
    fn spatial_spec_is_seeded_even_without_rule() {
        let p = pattern(Phase::Aggregation, "VxFxNs");
        // No rule for N, but the pattern demands spatial.
        let t = choose_tiling(&p, &ctx(), 512, &PhasePolicy::greedy(&[Dim::V]));
        assert_eq!(t.tile_of(Dim::N), 2);
        assert!(p.admits(&t));
    }

    #[test]
    fn temporal_spec_never_grows() {
        let p = pattern(Phase::Aggregation, "VxFxNt");
        let policy = PhasePolicy::greedy(&[Dim::N, Dim::V]);
        let t = choose_tiling(&p, &ctx(), 512, &policy);
        assert_eq!(t.tile_of(Dim::N), 1);
        assert_eq!(t.tile_of(Dim::V), 512);
    }

    #[test]
    fn tiny_budget_keeps_everything_temporal() {
        let p = pattern(Phase::Aggregation, "VxFxNt");
        let t = choose_tiling(&p, &ctx(), 1, &PhasePolicy::greedy(&[Dim::V, Dim::F]));
        assert_eq!(t.pe_footprint(), 1);
    }

    #[test]
    fn extent_one_dim_stays_one() {
        let narrow = TileContext::new(PhaseOrder::AC, 100, 1, 1, 2.0, 4);
        let p = pattern(Phase::Combination, "VxGxFx");
        let t = choose_tiling(&p, &narrow, 64, &PhasePolicy::round_robin(&[Dim::V, Dim::G, Dim::F]));
        assert_eq!(t.tile_of(Dim::G), 1);
        assert_eq!(t.tile_of(Dim::F), 1);
        assert_eq!(t.tile_of(Dim::V), 64);
    }

    #[test]
    fn ca_context_swaps_agg_width() {
        let c = TileContext::new(PhaseOrder::CA, 100, 1433, 16, 4.0, 50);
        assert_eq!(c.extent(Phase::Aggregation, Dim::F), 16); // agg consumes G-wide rows
        assert_eq!(c.extent(Phase::Combination, Dim::F), 1433);
        assert_eq!(c.extent(Phase::Combination, Dim::G), 16);
    }
}
