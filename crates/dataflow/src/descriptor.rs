//! Complete GNN dataflow descriptors: `<Inter><order>(<AggIntra>, <CmbIntra>)`.

use serde::{Deserialize, Serialize};

use crate::granularity::pipeline_granularity;
use crate::{
    Dim, Granularity, InterPhase, IntraPattern, IntraTiling, LoopOrder, MappingSpec, Phase,
    PhaseOrder,
};

/// A dataflow *pattern*: inter-phase strategy, phase order, and one intra-phase
/// pattern per phase — the exact shape of the rows of Tables II and V, including
/// `x` ("either") mapping placeholders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Deserialize, Serialize)]
pub struct GnnDataflowPattern {
    /// Inter-phase strategy.
    pub inter: InterPhase,
    /// Phase computation order.
    pub phase_order: PhaseOrder,
    /// Aggregation intra-phase pattern.
    pub agg: IntraPattern,
    /// Combination intra-phase pattern.
    pub cmb: IntraPattern,
}

impl GnnDataflowPattern {
    /// Pipelining granularity implied by the loop orders, if the pair can pipeline.
    pub fn granularity(&self) -> Option<Granularity> {
        pipeline_granularity(self.phase_order, self.agg.order(), self.cmb.order())
    }

    /// `true` when `df` instantiates this pattern.
    pub fn admits(&self, df: &GnnDataflow) -> bool {
        self.inter == df.inter
            && self.phase_order == df.phase_order
            && self.agg.admits(&df.agg)
            && self.cmb.admits(&df.cmb)
    }
}

impl std::fmt::Display for GnnDataflowPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}_{}({}, {})", self.inter, self.phase_order, self.agg, self.cmb)
    }
}

/// A concrete GNN dataflow: inter-phase strategy, phase order, and a concrete
/// tiling per phase. This is the unit the OMEGA cost model evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Deserialize, Serialize)]
pub struct GnnDataflow {
    /// Inter-phase strategy.
    pub inter: InterPhase,
    /// Phase computation order.
    pub phase_order: PhaseOrder,
    /// Aggregation tiling.
    pub agg: IntraTiling,
    /// Combination tiling.
    pub cmb: IntraTiling,
}

impl GnnDataflow {
    /// Pipelining granularity implied by the loop orders, if any.
    pub fn granularity(&self) -> Option<Granularity> {
        pipeline_granularity(self.phase_order, self.agg.order(), self.cmb.order())
    }

    /// `true` when this dataflow satisfies the SP-Optimized conditions of Table II
    /// row 2 / Section IV-B:
    ///
    /// * inter-phase strategy is SP;
    /// * the loop-order pair is `(VFN, VFG)` / `(FVN, FVG)` for AC, or
    ///   `(NFV, VGF)` / `(FNV, GVF)` for CA;
    /// * the first phase's reduction is temporal (`T_N = 1` for AC) so the
    ///   accumulated tile stays in the PE registers;
    /// * the intermediate-tile dimensions are tiled identically in both phases
    ///   (`T_V_AGG = T_V_CMB`, `T_F_AGG = T_F_CMB` for AC).
    pub fn is_sp_optimized(&self) -> bool {
        if self.inter != InterPhase::SequentialPipeline {
            return false;
        }
        let a = self.agg.order().dims();
        let c = self.cmb.order().dims();
        match self.phase_order {
            PhaseOrder::AC => {
                let template_ok = (a == [Dim::V, Dim::F, Dim::N] && c == [Dim::V, Dim::F, Dim::G])
                    || (a == [Dim::F, Dim::V, Dim::N] && c == [Dim::F, Dim::V, Dim::G]);
                template_ok
                    && self.agg.tile_of(Dim::N) == 1
                    && self.cmb.tile_of(Dim::G) == 1
                    && self.agg.tile_of(Dim::V) == self.cmb.tile_of(Dim::V)
                    && self.agg.tile_of(Dim::F) == self.cmb.tile_of(Dim::F)
            }
            PhaseOrder::CA => {
                let template_ok = (a == [Dim::N, Dim::F, Dim::V] && c == [Dim::V, Dim::G, Dim::F])
                    || (a == [Dim::F, Dim::N, Dim::V] && c == [Dim::G, Dim::V, Dim::F]);
                // Producer (Combination) reduction temporal; consumer free dim
                // temporal; intermediate tile dims tied via V↔N, G↔F.
                template_ok
                    && self.cmb.tile_of(Dim::F) == 1
                    && self.agg.tile_of(Dim::V) == 1
                    && self.cmb.tile_of(Dim::V) == self.agg.tile_of(Dim::N)
                    && self.cmb.tile_of(Dim::G) == self.agg.tile_of(Dim::F)
            }
        }
    }

    /// Total PE footprint: for Seq and SP the phases time-share the array (max of
    /// the two); for PP they occupy disjoint partitions (sum).
    pub fn pe_footprint(&self) -> usize {
        match self.inter {
            InterPhase::ParallelPipeline => self.agg.pe_footprint() + self.cmb.pe_footprint(),
            _ => self.agg.pe_footprint().max(self.cmb.pe_footprint()),
        }
    }

    /// The pattern this concrete dataflow instantiates.
    pub fn to_pattern(&self) -> GnnDataflowPattern {
        GnnDataflowPattern {
            inter: self.inter,
            phase_order: self.phase_order,
            agg: self.agg.to_pattern(),
            cmb: self.cmb.to_pattern(),
        }
    }

    /// Tile sizes in the figure-caption convention
    /// `(T_V_AGG, T_N, T_F_AGG, T_V_CMB, T_G, T_F_CMB)`.
    pub fn tile_tuple(&self) -> (usize, usize, usize, usize, usize, usize) {
        (
            self.agg.tile_of(Dim::V),
            self.agg.tile_of(Dim::N),
            self.agg.tile_of(Dim::F),
            self.cmb.tile_of(Dim::V),
            self.cmb.tile_of(Dim::G),
            self.cmb.tile_of(Dim::F),
        )
    }
}

impl std::fmt::Display for GnnDataflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}_{}({}, {})", self.inter, self.phase_order, self.agg, self.cmb)
    }
}

/// Error from parsing a dataflow string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid dataflow string: {}", self.detail)
    }
}

impl std::error::Error for ParseError {}

fn err(detail: impl Into<String>) -> ParseError {
    ParseError { detail: detail.into() }
}

impl std::str::FromStr for GnnDataflowPattern {
    type Err = ParseError;

    /// Parses the paper's template syntax, tolerating `_`, `-`, and whitespace
    /// between the components: `PP_AC(VtFsNt, VsGsFt)`, `SPAC(VxFsNt,VxFsGx)`,
    /// `Seq-CA(NFV..., ...)` all work.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let compact: String = s.chars().filter(|c| !c.is_whitespace() && *c != '_' && *c != '-').collect();
        let open = compact.find('(').ok_or_else(|| err("missing '('"))?;
        if !compact.ends_with(')') {
            return Err(err("missing trailing ')'"));
        }
        let head = &compact[..open];
        let body = &compact[open + 1..compact.len() - 1];

        let (inter, rest) = if let Some(r) = head.strip_prefix("Seq") {
            (InterPhase::Sequential, r)
        } else if let Some(r) = head.strip_prefix("SP") {
            (InterPhase::SequentialPipeline, r)
        } else if let Some(r) = head.strip_prefix("PP") {
            (InterPhase::ParallelPipeline, r)
        } else {
            return Err(err(format!("unknown inter-phase prefix in '{head}'")));
        };
        let phase_order = match rest {
            "AC" => PhaseOrder::AC,
            "CA" => PhaseOrder::CA,
            other => return Err(err(format!("unknown phase order '{other}'"))),
        };

        let mut parts = body.split(',');
        let agg_s = parts.next().ok_or_else(|| err("missing aggregation dataflow"))?;
        let cmb_s = parts.next().ok_or_else(|| err("missing combination dataflow"))?;
        if parts.next().is_some() {
            return Err(err("too many comma-separated parts"));
        }
        let agg = parse_intra(Phase::Aggregation, agg_s)?;
        let cmb = parse_intra(Phase::Combination, cmb_s)?;
        Ok(GnnDataflowPattern { inter, phase_order, agg, cmb })
    }
}

fn parse_intra(phase: Phase, s: &str) -> Result<IntraPattern, ParseError> {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() != 6 {
        return Err(err(format!("intra-phase dataflow '{s}' must be 6 characters (DimMap x3)")));
    }
    let mut dims = [Dim::V; 3];
    let mut maps = [MappingSpec::Any; 3];
    for i in 0..3 {
        dims[i] = Dim::from_letter(chars[2 * i])
            .ok_or_else(|| err(format!("bad dimension letter '{}'", chars[2 * i])))?;
        maps[i] = MappingSpec::from_letter(chars[2 * i + 1])
            .ok_or_else(|| err(format!("bad mapping letter '{}'", chars[2 * i + 1])))?;
    }
    let order = LoopOrder::new(phase, dims)
        .ok_or_else(|| err(format!("'{s}' is not a permutation of the {phase} dims")))?;
    Ok(IntraPattern::new(phase, order, maps))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> GnnDataflowPattern {
        s.parse().unwrap()
    }

    #[test]
    fn parses_hygcn_dataflow() {
        // Section III-C: HyGCN is PP_AC(VxFsNt, VsGsFt).
        let p = parse("PP_AC(VxFsNt, VsGsFt)");
        assert_eq!(p.inter, InterPhase::ParallelPipeline);
        assert_eq!(p.phase_order, PhaseOrder::AC);
        assert_eq!(p.agg.to_string(), "VxFsNt");
        assert_eq!(p.cmb.to_string(), "VsGsFt");
        assert_eq!(p.granularity(), Some(Granularity::Row));
    }

    #[test]
    fn parses_awb_gcn_dataflow() {
        // Section III / Table II row 9: AWB-GCN is PP_CA(FsNtVs, GtFtVs).
        let p = parse("PP_CA(FsNtVs, GtFtVs)");
        assert_eq!(p.phase_order, PhaseOrder::CA);
        assert_eq!(p.granularity(), Some(Granularity::Column));
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "Seq_AC(VxFxNt, VxGxFx)",
            "SP_AC(VxFsNt, VxFsGx)",
            "PP_CA(FxVxNx, GxFxVx)",
            "Seq_CA(NtFsVt, VsGsFt)",
        ] {
            let p = parse(s);
            let canonical = p.to_string();
            assert_eq!(parse(&canonical), p, "{s} → {canonical}");
        }
    }

    #[test]
    fn tolerant_syntax_variants() {
        assert_eq!(parse("PPAC(VtFsNt,VsGsFt)"), parse("PP_AC(VtFsNt, VsGsFt)"));
        assert_eq!(parse("PP-AC( Vt Fs Nt , Vs Gs Ft )"), parse("PP_AC(VtFsNt, VsGsFt)"));
    }

    #[test]
    fn parse_errors_are_descriptive() {
        assert!("XX_AC(VtFsNt, VsGsFt)".parse::<GnnDataflowPattern>().is_err());
        assert!("PP_AB(VtFsNt, VsGsFt)".parse::<GnnDataflowPattern>().is_err());
        assert!("PP_AC(VtFsGt, VsGsFt)".parse::<GnnDataflowPattern>().is_err()); // G in agg
        assert!("PP_AC(VtFsNt)".parse::<GnnDataflowPattern>().is_err());
        assert!("PP_AC(VtFsNt, VsGsFt, VsGsFt)".parse::<GnnDataflowPattern>().is_err());
        assert!("PP_AC(VtFs, VsGsFt)".parse::<GnnDataflowPattern>().is_err());
        assert!("PP_AC VtFsNt, VsGsFt".parse::<GnnDataflowPattern>().is_err());
        assert!("PP_AC(VqFsNt, VsGsFt)".parse::<GnnDataflowPattern>().is_err());
        assert!("PP_AC(VtVsNt, VsGsFt)".parse::<GnnDataflowPattern>().is_err()); // V twice
    }

    fn tiling(phase: Phase, s: &str, tiles: [usize; 3]) -> IntraTiling {
        let dims: Vec<Dim> = s.chars().map(|c| Dim::from_letter(c).unwrap()).collect();
        IntraTiling::new(phase, LoopOrder::new(phase, [dims[0], dims[1], dims[2]]).unwrap(), tiles)
    }

    #[test]
    fn sp_optimized_detection_ac() {
        let good = GnnDataflow {
            inter: InterPhase::SequentialPipeline,
            phase_order: PhaseOrder::AC,
            agg: tiling(Phase::Aggregation, "VFN", [4, 8, 1]),
            cmb: tiling(Phase::Combination, "VFG", [4, 8, 1]),
        };
        assert!(good.is_sp_optimized());

        // Spatial N breaks the in-register accumulation.
        let spatial_n = GnnDataflow { agg: tiling(Phase::Aggregation, "VFN", [4, 8, 2]), ..good };
        assert!(!spatial_n.is_sp_optimized());

        // Mismatched tile sizes break the in-place reuse.
        let mismatched = GnnDataflow { cmb: tiling(Phase::Combination, "VFG", [8, 8, 1]), ..good };
        assert!(!mismatched.is_sp_optimized());

        // Wrong loop order pair.
        let wrong_order = GnnDataflow { cmb: tiling(Phase::Combination, "VGF", [4, 1, 8]), ..good };
        assert!(!wrong_order.is_sp_optimized());

        // PP never qualifies.
        let pp = GnnDataflow { inter: InterPhase::ParallelPipeline, ..good };
        assert!(!pp.is_sp_optimized());
    }

    #[test]
    fn sp_optimized_detection_ca() {
        let good = GnnDataflow {
            inter: InterPhase::SequentialPipeline,
            phase_order: PhaseOrder::CA,
            agg: tiling(Phase::Aggregation, "NFV", [8, 4, 1]),
            cmb: tiling(Phase::Combination, "VGF", [8, 4, 1]),
        };
        assert!(good.is_sp_optimized());
        let bad = GnnDataflow { cmb: tiling(Phase::Combination, "VGF", [8, 4, 2]), ..good };
        assert!(!bad.is_sp_optimized());
    }

    #[test]
    fn pe_footprint_by_inter_phase() {
        let agg = tiling(Phase::Aggregation, "VFN", [8, 4, 1]);
        let cmb = tiling(Phase::Combination, "VGF", [16, 4, 1]);
        let seq = GnnDataflow { inter: InterPhase::Sequential, phase_order: PhaseOrder::AC, agg, cmb };
        assert_eq!(seq.pe_footprint(), 64);
        let pp = GnnDataflow { inter: InterPhase::ParallelPipeline, ..seq };
        assert_eq!(pp.pe_footprint(), 32 + 64);
    }

    #[test]
    fn tile_tuple_convention() {
        let df = GnnDataflow {
            inter: InterPhase::Sequential,
            phase_order: PhaseOrder::AC,
            agg: tiling(Phase::Aggregation, "VFN", [8, 4, 2]),
            cmb: tiling(Phase::Combination, "VGF", [16, 4, 1]),
        };
        // (T_V_AGG, T_N, T_F_AGG, T_V_CMB, T_G, T_F_CMB)
        assert_eq!(df.tile_tuple(), (8, 2, 4, 16, 4, 1));
    }

    #[test]
    fn pattern_admits_concrete_dataflow() {
        let pattern: GnnDataflowPattern = "SP_AC(VxFsNt, VxFsGx)".parse().unwrap();
        let df = GnnDataflow {
            inter: InterPhase::SequentialPipeline,
            phase_order: PhaseOrder::AC,
            agg: tiling(Phase::Aggregation, "VFN", [4, 64, 1]),
            cmb: tiling(Phase::Combination, "VFG", [4, 64, 1]),
        };
        assert!(pattern.admits(&df));
        assert_eq!(df.to_pattern().to_string(), "SP_AC(VsFsNt, VsFsGt)");
    }
}
