//! Property tests for the taxonomy: tile chooser, parser, legality, presets.

use proptest::prelude::*;

use omega_dataflow::presets::Preset;
use omega_dataflow::tiles::{choose_tiling, Cap, PhasePolicy, TileContext};
use omega_dataflow::{
    validate_pattern, Dim, GnnDataflowPattern, InterPhase, IntraPattern, LoopOrder, MappingSpec,
    Phase, PhaseOrder,
};

fn arb_context() -> impl Strategy<Value = TileContext> {
    (
        1usize..5000,  // v
        1usize..4096,  // f
        1usize..256,   // g
        1.0f64..80.0,  // mean degree
        1usize..512,   // max degree
    )
        .prop_map(|(v, f, g, mean, max)| {
            TileContext::new(PhaseOrder::AC, v, f, g, mean.min(max as f64), max.max(mean as usize))
        })
}

fn arb_pattern(phase: Phase) -> impl Strategy<Value = IntraPattern> {
    (0usize..6, 0usize..3, 0usize..3, 0usize..3).prop_map(move |(oi, m0, m1, m2)| {
        let order = LoopOrder::all(phase)[oi];
        let spec = |m: usize| match m {
            0 => MappingSpec::Spatial,
            1 => MappingSpec::Temporal,
            _ => MappingSpec::Any,
        };
        IntraPattern::new(phase, order, [spec(m0), spec(m1), spec(m2)])
    })
}

fn arb_policy() -> impl Strategy<Value = PhasePolicy> {
    (proptest::collection::vec(0usize..4, 1..4), proptest::bool::ANY).prop_map(|(dims, rr)| {
        let dim = |i: usize| [Dim::V, Dim::F, Dim::N, Dim::G][i];
        let dims: Vec<Dim> = dims.into_iter().map(dim).collect();
        let p = if rr { PhasePolicy::round_robin(&dims) } else { PhasePolicy::greedy(&dims) };
        p.with_cap(Dim::N, Cap::MeanDegreePow2)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tile chooser never exceeds the PE budget and never produces a tile
    /// beyond a dimension's extent (pow2-rounded).
    #[test]
    fn chooser_respects_budget_and_extents(
        ctx in arb_context(),
        pattern in arb_pattern(Phase::Aggregation),
        policy in arb_policy(),
        budget_log in 0u32..12,
    ) {
        let budget = 1usize << budget_log;
        let t = choose_tiling(&pattern, &ctx, budget, &policy);
        prop_assert!(t.pe_footprint() <= budget.max(2), "{t}: {} > {budget}", t.pe_footprint());
        for (i, &d) in t.order().dims().iter().enumerate() {
            let extent = ctx.extent(Phase::Aggregation, d).max(1);
            prop_assert!(
                t.tiles()[i] <= extent.next_power_of_two(),
                "{t}: tile {} of {d} vs extent {extent}", t.tiles()[i]
            );
        }
        // Temporal-pinned dims stay 1.
        for (i, m) in pattern.maps().iter().enumerate() {
            if *m == MappingSpec::Temporal {
                prop_assert_eq!(t.tiles()[i], 1);
            }
        }
    }

    /// Chooser output is deterministic.
    #[test]
    fn chooser_is_deterministic(
        ctx in arb_context(),
        pattern in arb_pattern(Phase::Combination),
        policy in arb_policy(),
    ) {
        let a = choose_tiling(&pattern, &ctx, 512, &policy);
        let b = choose_tiling(&pattern, &ctx, 512, &policy);
        prop_assert_eq!(a, b);
    }

    /// Every enumerated pattern's string form parses back to itself.
    #[test]
    fn pattern_strings_round_trip(idx in 0usize..6656) {
        let patterns: Vec<_> = omega_dataflow::enumerate::all_patterns().collect();
        let p = patterns[idx % patterns.len()];
        let s = p.to_string();
        let parsed: GnnDataflowPattern = s.parse().unwrap();
        prop_assert_eq!(parsed, p);
        prop_assert!(validate_pattern(&parsed).is_ok());
    }

    /// Granularity is a function of the loop orders alone: mapping specs never
    /// change it.
    #[test]
    fn granularity_ignores_mappings(
        agg in arb_pattern(Phase::Aggregation),
        cmb in arb_pattern(Phase::Combination),
        phase_order_ac in proptest::bool::ANY,
    ) {
        let phase_order = if phase_order_ac { PhaseOrder::AC } else { PhaseOrder::CA };
        let g1 = omega_dataflow::granularity::pipeline_granularity(phase_order, agg.order(), cmb.order());
        let all_any = |p: &IntraPattern| IntraPattern::new(p.phase(), p.order(), [MappingSpec::Any; 3]);
        let g2 = omega_dataflow::granularity::pipeline_granularity(
            phase_order,
            all_any(&agg).order(),
            all_any(&cmb).order(),
        );
        prop_assert_eq!(g1, g2);
    }

    /// Preset concretisation always yields a legal dataflow admitted by its own
    /// pattern, at any budget and workload size.
    #[test]
    fn presets_concretize_legally(
        ctx in arb_context(),
        preset_idx in 0usize..9,
        budget_log in 2u32..12,
    ) {
        let preset = &Preset::all()[preset_idx];
        let budget = 1usize << budget_log;
        let (a, c) = if preset.pattern.inter == InterPhase::ParallelPipeline {
            (budget / 2, budget / 2)
        } else {
            (budget, budget)
        };
        let df = preset.concretize(&ctx, a.max(1), c.max(1));
        prop_assert!(omega_dataflow::validate(&df).is_ok(), "{df}");
        prop_assert!(df.agg.pe_footprint() <= a.max(2), "{df}");
        prop_assert!(df.cmb.pe_footprint() <= c.max(2), "{df}");
        // SP presets stay SP-Optimized at every scale.
        if preset.name.starts_with("SP") {
            prop_assert!(df.is_sp_optimized(), "{}: {df}", preset.name);
        }
    }
}
