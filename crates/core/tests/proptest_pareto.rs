//! Property tests for the one-pass Pareto-frontier DSE: the pruned streaming
//! frontier must equal the brute-force non-dominated set of the full space
//! (enumeration + preset seeds), and must be bit-identical across thread
//! counts — determinism is a property of the space, not of the schedule.

use proptest::prelude::*;

use omega_core::dse::{concretize_pattern, explore, DseOptions, ExploreOutcome};
use omega_core::mapper::Objective;
use omega_core::mapper::extended_candidates;
use omega_core::{evaluate, AccelConfig, CostReport, GnnWorkload};
use omega_dataflow::enumerate::PatternSpace;
use omega_graph::DatasetSpec;

fn workload(hidden: usize) -> GnnWorkload {
    GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(2), hidden)
}

fn axes(r: &CostReport) -> [f64; 3] {
    [r.total_cycles as f64, r.energy.total_pj(), r.buffer_peak_bytes as f64]
}

fn dominates(a: &[f64; 3], b: &[f64; 3]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
}

/// Every successfully evaluated candidate of the space: the full enumeration
/// plus the preset seeds — exactly the population the streaming frontier sees.
fn brute_force_reports(wl: &GnnWorkload, cfg: &AccelConfig) -> Vec<CostReport> {
    let space = PatternSpace::new();
    let mut reports = Vec::new();
    for i in 0..space.len() {
        let df = concretize_pattern(&space.get(i), wl, cfg);
        if let Ok(r) = evaluate(wl, &df, cfg) {
            reports.push(r);
        }
    }
    for df in extended_candidates(wl, cfg) {
        if let Ok(r) = evaluate(wl, &df, cfg) {
            reports.push(r);
        }
    }
    reports
}

fn frontier_key(out: &ExploreOutcome) -> Vec<(String, u64, u64, u64, Option<usize>)> {
    out.frontier
        .iter()
        .map(|p| {
            (
                p.dataflow.to_string(),
                p.runtime_cycles,
                p.energy_pj.to_bits(),
                p.buffer_peak_bytes,
                p.pattern_index,
            )
        })
        .collect()
}

proptest! {
    // Each case sweeps the full 6,656-pattern space several times, so keep the
    // case count small — the properties are about the sweep, not the sample.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The streaming, pruned frontier is exactly the non-dominated set of the
    /// brute-force population: mutually non-dominated, dominating every
    /// non-member, and covering every non-dominated axis vector.
    #[test]
    fn frontier_equals_brute_force_nondominated_set(hidden_pow in 3usize..6) {
        let cfg = AccelConfig::paper_default();
        let wl = workload(1 << hidden_pow);
        let out = explore(
            &wl,
            &cfg,
            &DseOptions { pareto: true, threads: 2, ..DseOptions::new(Objective::Runtime) },
        );
        let population: Vec<[f64; 3]> =
            brute_force_reports(&wl, &cfg).iter().map(axes).collect();
        let front: Vec<[f64; 3]> = out
            .frontier
            .iter()
            .map(|p| [p.runtime_cycles as f64, p.energy_pj, p.buffer_peak_bytes as f64])
            .collect();
        // (a) mutually non-dominated;
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                prop_assert!(i == j || !dominates(a, b), "frontier entry {i} dominates {j}");
            }
        }
        // (b) no population member dominates any frontier entry;
        for v in &population {
            for f in &front {
                prop_assert!(!dominates(v, f), "{v:?} dominates frontier point {f:?}");
            }
        }
        // (c) every non-dominated population vector appears on the frontier.
        for v in &population {
            let dominated = population.iter().any(|w| dominates(w, v));
            if !dominated {
                prop_assert!(
                    front.contains(v),
                    "non-dominated {v:?} missing from the frontier"
                );
            }
        }
    }

    /// 1-, 2-, and 8-thread sweeps produce the same frontier bit for bit, with
    /// and without bound-vector pruning.
    #[test]
    fn frontier_is_bit_identical_across_threads(chunk_idx in 0usize..4) {
        let chunk = [1usize, 17, 64, 301][chunk_idx];
        let cfg = AccelConfig::paper_default();
        let wl = workload(16);
        let base = DseOptions { pareto: true, ..DseOptions::new(Objective::Runtime) };
        let reference = explore(
            &wl,
            &cfg,
            &DseOptions { threads: 1, prune: false, phase_cache: false, ..base },
        );
        prop_assert!(reference.frontier.len() >= 3);
        for threads in [1usize, 2, 8] {
            let out = explore(&wl, &cfg, &DseOptions { threads, chunk, ..base });
            prop_assert_eq!(frontier_key(&out), frontier_key(&reference), "threads = {}", threads);
        }
    }
}
