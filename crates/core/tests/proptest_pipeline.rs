//! Property tests for the PP pipeline schedule and chunk-stream resampling
//! (Section IV-C): `pipeline_runtime` is bounded by its phases and robust to
//! chunk reordering, `resample_durations` preserves totals exactly.

use proptest::prelude::*;

use omega_core::{pipeline_runtime, resample_durations};

/// Deterministic Fisher–Yates over the *interior* indices `1..len-1`, seeded by
/// a SplitMix64 walk — the first and last chunks (fill and drain) stay put.
fn permute_interior(v: &[u64], seed: u64) -> Vec<u64> {
    let mut out = v.to_vec();
    if out.len() <= 3 {
        return out;
    }
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (2..out.len() - 1).rev() {
        let j = 1 + (next() % i as u64) as usize;
        out.swap(i, j);
    }
    out
}

/// Aligned producer/consumer chunk streams of equal (non-zero) length.
fn chunk_pairs() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    proptest::collection::vec((0u64..2_000, 0u64..2_000), 1..48)
        .prop_map(|pairs| pairs.into_iter().unzip())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fill + overlapped steps + drain is bracketed by the slower phase below
    /// and the sequential sum above: `max(Σp, Σc) ≤ runtime ≤ Σp + Σc`.
    #[test]
    fn pipeline_runtime_is_bounded_by_its_phases((p, c) in chunk_pairs()) {
        let total = pipeline_runtime(&p, &c);
        let sp: u64 = p.iter().sum();
        let sc: u64 = c.iter().sum();
        prop_assert!(total >= sp.max(sc), "{} < max({}, {})", total, sp, sc);
        prop_assert!(total <= sp + sc, "{} > {} + {}", total, sp, sc);
    }

    /// Reordering the interior chunks (fill and drain fixed) keeps the
    /// schedule inside the same bracket — in particular no permutation ever
    /// beats the slower phase's total or exceeds the sequential sum.
    #[test]
    fn interior_chunk_permutations_stay_bounded(
        (p, c) in chunk_pairs(),
        seed in 0u64..u64::MAX,
    ) {
        let pp = permute_interior(&p, seed);
        let cp = permute_interior(&c, seed ^ 0xD6E8_FEB8_6659_FD93);
        let sp: u64 = p.iter().sum();
        let sc: u64 = c.iter().sum();
        // Permutation preserves the per-phase totals…
        prop_assert_eq!(pp.iter().sum::<u64>(), sp);
        prop_assert_eq!(cp.iter().sum::<u64>(), sc);
        // …so every permuted schedule obeys the same bracket.
        let total = pipeline_runtime(&pp, &cp);
        prop_assert!(total >= sp.max(sc));
        prop_assert!(total <= sp + sc);
    }

    /// Resampling preserves the total exactly and returns exactly `k` chunks.
    #[test]
    fn resample_preserves_total_and_length(
        d in proptest::collection::vec(0u64..5_000, 0..40),
        k in 1usize..64,
    ) {
        let r = resample_durations(&d, k);
        prop_assert_eq!(r.len(), k);
        prop_assert_eq!(r.iter().sum::<u64>(), d.iter().sum::<u64>());
        // Uniform split: chunks differ by at most one cycle.
        let (min, max) = (*r.iter().min().unwrap(), *r.iter().max().unwrap());
        prop_assert!(max - min <= 1, "{:?}", r);
    }

    /// `k = 1` collapses to the plain sum (a single sequential chunk).
    #[test]
    fn resample_to_one_chunk_is_the_sum(d in proptest::collection::vec(0u64..5_000, 0..40)) {
        prop_assert_eq!(resample_durations(&d, 1), vec![d.iter().sum::<u64>()]);
    }

    /// Resampling a consumer stream to the producer's chunk count never breaks
    /// the pipeline bracket — the invariant `evaluate_chain` relies on when
    /// producer and consumer chunk counts disagree.
    #[test]
    fn pipeline_with_resampled_consumer_stays_bounded(
        p in proptest::collection::vec(0u64..2_000, 1..48),
        c in proptest::collection::vec(0u64..2_000, 1..48),
    ) {
        let cr = resample_durations(&c, p.len());
        let total = pipeline_runtime(&p, &cr);
        let sp: u64 = p.iter().sum();
        let sc: u64 = c.iter().sum();
        prop_assert!(total >= sp.max(sc));
        prop_assert!(total <= sp + sc);
    }
}
