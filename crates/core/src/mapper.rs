//! A mapping optimizer over the dataflow design space (Section VI).
//!
//! The paper positions OMEGA as the cost model a future mapper would search
//! with; this module is that mapper: candidate generation (Table V presets, or
//! deterministic samples of the full 6,656-pattern space concretised by the
//! tile chooser) plus parallel best-of search under a runtime / energy / EDP
//! objective.

use crossbeam::thread;
use serde::Serialize;

use omega_accel::AccelConfig;
use omega_dataflow::enumerate::all_patterns;
use omega_dataflow::presets::Preset;
use omega_dataflow::tiles::{Cap, PhasePolicy};
use omega_dataflow::{Dim, GnnDataflow, InterPhase, IntraTiling, MappingSpec, Phase};

use crate::{evaluate, CostReport, GnnWorkload};

/// What the mapper minimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Objective {
    /// Total cycles.
    Runtime,
    /// Total on-chip buffer energy.
    Energy,
    /// Energy-delay product.
    Edp,
}

impl Objective {
    fn score(self, r: &CostReport) -> f64 {
        match self {
            Objective::Runtime => r.total_cycles as f64,
            Objective::Energy => r.energy.total_pj(),
            Objective::Edp => r.edp(),
        }
    }
}

/// A search winner: the dataflow and its evaluation.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Winning dataflow.
    pub dataflow: GnnDataflow,
    /// Its cost report.
    pub report: CostReport,
    /// Objective value.
    pub score: f64,
    /// Number of candidates evaluated.
    pub evaluated: usize,
}

/// The nine Table V presets concretised for this workload (PP split 50-50).
pub fn preset_candidates(workload: &GnnWorkload, cfg: &AccelConfig) -> Vec<GnnDataflow> {
    Preset::all()
        .iter()
        .map(|p| {
            let ctx = workload.tile_context(p.pattern.phase_order);
            let (a, c) = if p.pattern.inter == InterPhase::ParallelPipeline {
                (cfg.num_pes / 2, cfg.num_pes / 2)
            } else {
                (cfg.num_pes, cfg.num_pes)
            };
            p.concretize(&ctx, a, c)
        })
        .collect()
}

/// Deterministic sample of `n` candidates from the full enumerated pattern
/// space, concretised with a balanced tile policy. `offset` rotates the sample
/// (stride sampling keeps this reproducible without an RNG).
pub fn sampled_candidates(
    workload: &GnnWorkload,
    cfg: &AccelConfig,
    n: usize,
    offset: usize,
) -> Vec<GnnDataflow> {
    let patterns: Vec<_> = all_patterns().collect();
    if patterns.is_empty() || n == 0 {
        return Vec::new();
    }
    let stride = (patterns.len() / n.max(1)).max(1);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let p = &patterns[(offset + i * stride) % patterns.len()];
        let ctx = workload.tile_context(p.phase_order);
        let (agg_pes, cmb_pes) = if p.inter == InterPhase::ParallelPipeline {
            (cfg.num_pes / 2, cfg.num_pes / 2)
        } else {
            (cfg.num_pes, cfg.num_pes)
        };
        // Balanced growth over the dims the pattern allows to be spatial, with
        // the neighbour tile capped at the mean degree.
        let policy_for = |pattern: &omega_dataflow::IntraPattern| {
            let dims: Vec<Dim> = pattern
                .order()
                .dims()
                .iter()
                .enumerate()
                .filter(|&(i, _)| pattern.maps()[i] != MappingSpec::Temporal)
                .map(|(_, &d)| d)
                .collect();
            PhasePolicy::round_robin(&dims).with_cap(Dim::N, Cap::MeanDegreePow2)
        };
        let agg = omega_dataflow::tiles::choose_tiling(&p.agg, &ctx, agg_pes, &policy_for(&p.agg));
        let cmb = omega_dataflow::tiles::choose_tiling(&p.cmb, &ctx, cmb_pes, &policy_for(&p.cmb));
        out.push(GnnDataflow { inter: p.inter, phase_order: p.phase_order, agg, cmb });
    }
    out
}

/// Evaluates all candidates in parallel (crossbeam scoped threads) and returns
/// the best under `objective`. Candidates that fail validation are skipped.
pub fn best_of(
    candidates: &[GnnDataflow],
    workload: &GnnWorkload,
    cfg: &AccelConfig,
    objective: Objective,
    threads: usize,
) -> Option<SearchResult> {
    if candidates.is_empty() {
        return None;
    }
    let threads = threads.max(1).min(candidates.len());
    let chunk = candidates.len().div_ceil(threads);
    let results: Vec<Option<(usize, CostReport)>> = thread::scope(|s| {
        let handles: Vec<_> = candidates
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                s.spawn(move |_| {
                    let mut best: Option<(usize, CostReport)> = None;
                    for (i, df) in slice.iter().enumerate() {
                        if let Ok(r) = evaluate(workload, df, cfg) {
                            let replace = match &best {
                                Some((_, b)) => objective.score(&r) < objective.score(b),
                                None => true,
                            };
                            if replace {
                                best = Some((ci * chunk + i, r));
                            }
                        }
                    }
                    best
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("mapper worker panicked")).collect()
    })
    .expect("mapper scope");

    let evaluated = candidates.len();
    results
        .into_iter()
        .flatten()
        .min_by(|(_, a), (_, b)| {
            objective.score(a).partial_cmp(&objective.score(b)).expect("scores are finite")
        })
        .map(|(i, report)| SearchResult {
            dataflow: candidates[i],
            score: objective.score(&report),
            report,
            evaluated,
        })
}

/// The Table V presets *plus* their CA-order companions (including AWB-GCN's
/// dataflow) — the candidate set that covers both compute orders. CA shrinks
/// aggregation work from `E×F` to `E×G`, so for wide-feature workloads the CA
/// members routinely win.
pub fn extended_candidates(workload: &GnnWorkload, cfg: &AccelConfig) -> Vec<GnnDataflow> {
    let mut out = preset_candidates(workload, cfg);
    for p in omega_dataflow::presets::ca_variants() {
        let ctx = workload.tile_context(p.pattern.phase_order);
        let (a, c) = if p.pattern.inter == InterPhase::ParallelPipeline {
            (cfg.num_pes / 2, cfg.num_pes / 2)
        } else {
            (cfg.num_pes, cfg.num_pes)
        };
        out.push(p.concretize(&ctx, a, c));
    }
    out
}

/// One-call search: presets plus `extra_samples` sampled patterns.
pub fn search(
    workload: &GnnWorkload,
    cfg: &AccelConfig,
    objective: Objective,
    extra_samples: usize,
    threads: usize,
) -> Option<SearchResult> {
    let mut candidates = extended_candidates(workload, cfg);
    candidates.extend(sampled_candidates(workload, cfg, extra_samples, 0));
    best_of(&candidates, workload, cfg, objective, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_graph::DatasetSpec;

    fn wl() -> GnnWorkload {
        GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 16)
    }

    #[test]
    fn preset_candidates_cover_table_v() {
        let cfg = AccelConfig::paper_default();
        let c = preset_candidates(&wl(), &cfg);
        assert_eq!(c.len(), 9);
    }

    #[test]
    fn sampled_candidates_are_deterministic_and_sized() {
        let cfg = AccelConfig::paper_default();
        let a = sampled_candidates(&wl(), &cfg, 20, 0);
        let b = sampled_candidates(&wl(), &cfg, 20, 0);
        assert_eq!(a.len(), 20);
        assert_eq!(a, b);
        let c = sampled_candidates(&wl(), &cfg, 20, 7);
        assert_ne!(a, c);
    }

    #[test]
    fn best_of_minimises_objective() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let candidates = preset_candidates(&workload, &cfg);
        let best = best_of(&candidates, &workload, &cfg, Objective::Runtime, 4).unwrap();
        assert_eq!(best.evaluated, 9);
        // The winner is no slower than every candidate.
        for df in &candidates {
            if let Ok(r) = evaluate(&workload, df, &cfg) {
                assert!(best.report.total_cycles <= r.total_cycles);
            }
        }
    }

    #[test]
    fn objectives_disagree_in_general() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let candidates = preset_candidates(&workload, &cfg);
        let rt = best_of(&candidates, &workload, &cfg, Objective::Runtime, 2).unwrap();
        let en = best_of(&candidates, &workload, &cfg, Objective::Energy, 2).unwrap();
        let edp = best_of(&candidates, &workload, &cfg, Objective::Edp, 2).unwrap();
        // EDP winner can never beat the runtime winner on runtime or the energy
        // winner on energy.
        assert!(edp.report.total_cycles >= rt.report.total_cycles);
        assert!(edp.report.energy.total_pj() >= en.report.energy.total_pj() - 1e-9);
    }

    #[test]
    fn search_combines_sources() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let result = search(&workload, &cfg, Objective::Runtime, 12, 4).unwrap();
        assert_eq!(result.evaluated, 9 + 3 + 12); // presets + CA variants + samples
        assert!(result.score > 0.0);
    }

    #[test]
    fn extended_candidates_cover_both_compute_orders() {
        use omega_dataflow::PhaseOrder;
        let cfg = AccelConfig::paper_default();
        let c = extended_candidates(&wl(), &cfg);
        assert_eq!(c.len(), 12);
        assert!(c.iter().any(|df| df.phase_order == PhaseOrder::CA));
        // On a wide-feature workload the CA members win the runtime search.
        let wide = GnnWorkload::gcn_layer(&DatasetSpec::collab().generate(2), 16);
        let wide_candidates = extended_candidates(&wide, &cfg);
        let best = best_of(&wide_candidates, &wide, &cfg, Objective::Runtime, 4).unwrap();
        assert_eq!(best.dataflow.phase_order, PhaseOrder::CA, "{}", best.dataflow);
    }

    #[test]
    fn empty_candidates_yield_none() {
        let cfg = AccelConfig::paper_default();
        assert!(best_of(&[], &wl(), &cfg, Objective::Runtime, 2).is_none());
    }
}

/// Local search over tile sizes around a concrete dataflow ("the tile sizes
/// (T_Dim) are also parameters which can put the actual number of possible
/// mappings in the trillions", Section III-C).
///
/// Hill climbing: each step tries doubling or halving one tile of one phase
/// (keeping the pattern's spatial/temporal constraints and the PE budgets),
/// keeps the best improving neighbour, and stops at a local optimum or after
/// `max_steps`. Returns the refined result (the input dataflow if no neighbour
/// improves).
pub fn refine_tiles(
    dataflow: &GnnDataflow,
    workload: &GnnWorkload,
    cfg: &AccelConfig,
    objective: Objective,
    max_steps: usize,
) -> Option<SearchResult> {
    let mut current = *dataflow;
    let mut report = evaluate(workload, &current, cfg).ok()?;
    let mut score = objective.score(&report);
    let mut evaluated = 1;

    let budgets = |df: &GnnDataflow| -> (usize, usize) {
        if df.inter == InterPhase::ParallelPipeline {
            (cfg.num_pes / 2, cfg.num_pes / 2)
        } else {
            (cfg.num_pes, cfg.num_pes)
        }
    };

    for _ in 0..max_steps {
        let (agg_budget, cmb_budget) = budgets(&current);
        let mut best_neighbour: Option<(GnnDataflow, CostReport, f64)> = None;
        for (phase_sel, budget) in [(Phase::Aggregation, agg_budget), (Phase::Combination, cmb_budget)] {
            let tiling = if phase_sel == Phase::Aggregation { current.agg } else { current.cmb };
            for pos in 0..3 {
                for grow in [true, false] {
                    let Some(new_tiling) = scaled_tile(&tiling, pos, grow) else { continue };
                    if new_tiling.pe_footprint() > budget {
                        continue;
                    }
                    let candidate = if phase_sel == Phase::Aggregation {
                        GnnDataflow { agg: new_tiling, ..current }
                    } else {
                        GnnDataflow { cmb: new_tiling, ..current }
                    };
                    let Ok(r) = evaluate(workload, &candidate, cfg) else { continue };
                    evaluated += 1;
                    let s = objective.score(&r);
                    if s < score
                        && best_neighbour.as_ref().is_none_or(|(_, _, bs)| s < *bs)
                    {
                        best_neighbour = Some((candidate, r, s));
                    }
                }
            }
        }
        match best_neighbour {
            Some((df, r, s)) => {
                current = df;
                report = r;
                score = s;
            }
            None => break, // local optimum
        }
    }
    Some(SearchResult { dataflow: current, report, score, evaluated })
}

/// Doubles or halves the tile at `pos`, returning `None` when out of range.
fn scaled_tile(tiling: &IntraTiling, pos: usize, grow: bool) -> Option<IntraTiling> {
    let mut tiles = *tiling.tiles();
    if grow {
        tiles[pos] = tiles[pos].checked_mul(2)?;
    } else {
        if tiles[pos] <= 1 {
            return None;
        }
        tiles[pos] /= 2;
    }
    Some(IntraTiling::new(tiling.phase(), tiling.order(), tiles))
}

/// The runtime/energy Pareto frontier of a candidate set: every dataflow not
/// dominated (strictly worse on both axes) by another. Sorted by runtime.
pub fn pareto_frontier(
    candidates: &[GnnDataflow],
    workload: &GnnWorkload,
    cfg: &AccelConfig,
) -> Vec<SearchResult> {
    let mut evaluated: Vec<(GnnDataflow, CostReport)> = candidates
        .iter()
        .filter_map(|df| evaluate(workload, df, cfg).ok().map(|r| (*df, r)))
        .collect();
    evaluated.sort_by_key(|(_, r)| r.total_cycles);
    let mut frontier: Vec<SearchResult> = Vec::new();
    let mut best_energy = f64::INFINITY;
    let n = evaluated.len();
    for (df, r) in evaluated {
        let e = r.energy.total_pj();
        if e < best_energy {
            best_energy = e;
            frontier.push(SearchResult {
                dataflow: df,
                score: r.total_cycles as f64,
                report: r,
                evaluated: n,
            });
        }
    }
    frontier
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use omega_graph::DatasetSpec;

    fn wl() -> GnnWorkload {
        GnnWorkload::gcn_layer(&DatasetSpec::proteins().generate(2), 16)
    }

    #[test]
    fn refine_tiles_never_regresses() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        for df in preset_candidates(&workload, &cfg) {
            let base = evaluate(&workload, &df, &cfg).unwrap();
            let refined = refine_tiles(&df, &workload, &cfg, Objective::Runtime, 8).unwrap();
            assert!(
                refined.report.total_cycles <= base.total_cycles,
                "{df}: {} -> {}",
                base.total_cycles,
                refined.report.total_cycles
            );
            assert!(refined.evaluated >= 1);
        }
    }

    #[test]
    fn refine_tiles_improves_a_bad_start() {
        // Start from a deliberately under-parallelised Seq dataflow.
        use omega_dataflow::{LoopOrder};
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let agg = IntraTiling::new(
            Phase::Aggregation,
            LoopOrder::new(Phase::Aggregation, [Dim::V, Dim::F, Dim::N]).unwrap(),
            [2, 2, 1],
        );
        let cmb = IntraTiling::new(
            Phase::Combination,
            LoopOrder::new(Phase::Combination, [Dim::V, Dim::G, Dim::F]).unwrap(),
            [2, 2, 1],
        );
        let df = GnnDataflow {
            inter: InterPhase::Sequential,
            phase_order: omega_dataflow::PhaseOrder::AC,
            agg,
            cmb,
        };
        let base = evaluate(&workload, &df, &cfg).unwrap();
        let refined = refine_tiles(&df, &workload, &cfg, Objective::Runtime, 32).unwrap();
        assert!(
            (refined.report.total_cycles as f64) < 0.2 * base.total_cycles as f64,
            "{} -> {}",
            base.total_cycles,
            refined.report.total_cycles
        );
        // The refined tiling still fits the machine.
        assert!(refined.dataflow.agg.pe_footprint() <= cfg.num_pes);
        assert!(refined.dataflow.cmb.pe_footprint() <= cfg.num_pes);
    }

    #[test]
    fn pareto_frontier_is_nondominated_and_sorted() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let candidates = preset_candidates(&workload, &cfg);
        let frontier = pareto_frontier(&candidates, &workload, &cfg);
        assert!(!frontier.is_empty());
        assert!(frontier.len() <= candidates.len());
        // Sorted by runtime, strictly improving in energy.
        for w in frontier.windows(2) {
            assert!(w[0].report.total_cycles <= w[1].report.total_cycles);
            assert!(w[0].report.energy.total_pj() > w[1].report.energy.total_pj());
        }
        // No frontier point is dominated by any candidate.
        for f in &frontier {
            for df in &candidates {
                let r = evaluate(&workload, df, &cfg).unwrap();
                let dominates = r.total_cycles < f.report.total_cycles
                    && r.energy.total_pj() < f.report.energy.total_pj();
                assert!(!dominates, "{df} dominates {}", f.dataflow);
            }
        }
    }
}
