//! A mapping optimizer over the dataflow design space (Section VI).
//!
//! The paper positions OMEGA as the cost model a future mapper would search
//! with; this module is that mapper: candidate generation (Table V presets, or
//! deterministic samples of the full 6,656-pattern space concretised by the
//! tile chooser) plus parallel best-of search under a runtime / energy / EDP
//! objective.

use serde::{Deserialize, Serialize};

use omega_accel::AccelConfig;
use omega_dataflow::enumerate::PatternSpace;
use omega_dataflow::presets::Preset;
use omega_dataflow::{GnnDataflow, InterPhase, IntraTiling, Phase};

use crate::{evaluate, CostReport, GnnWorkload};

/// What the mapper minimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Deserialize, Serialize)]
pub enum Objective {
    /// Total cycles.
    Runtime,
    /// Total on-chip buffer energy.
    Energy,
    /// Energy-delay product.
    Edp,
}

impl Objective {
    /// The objective value of a report (lower is better).
    pub fn score(self, r: &CostReport) -> f64 {
        match self {
            Objective::Runtime => r.total_cycles as f64,
            Objective::Energy => r.energy.total_pj(),
            Objective::Edp => r.edp(),
        }
    }

    /// The objective value of a whole-chain report (lower is better) — the
    /// model-level analogue of [`Self::score`], used by
    /// [`crate::dse::model::explore_model`].
    pub fn score_chain(self, r: &crate::multiphase::ChainReport) -> f64 {
        match self {
            Objective::Runtime => r.total_cycles as f64,
            Objective::Energy => r.energy.total_pj(),
            Objective::Edp => r.total_cycles as f64 * r.energy.total_pj(),
        }
    }
}

/// A search winner: the dataflow and its evaluation.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Winning dataflow.
    pub dataflow: GnnDataflow,
    /// Its cost report.
    pub report: CostReport,
    /// Objective value.
    pub score: f64,
    /// Number of candidates actually evaluated (successful `evaluate` calls).
    pub evaluated: usize,
    /// Candidates rejected by dataflow validation (never evaluated).
    pub skipped: usize,
}

/// The nine Table V presets concretised for this workload (PP split 50-50).
pub fn preset_candidates(workload: &GnnWorkload, cfg: &AccelConfig) -> Vec<GnnDataflow> {
    Preset::all()
        .iter()
        .map(|p| {
            let ctx = workload.tile_context(p.pattern.phase_order);
            let (a, c) = if p.pattern.inter == InterPhase::ParallelPipeline {
                (cfg.num_pes / 2, cfg.num_pes / 2)
            } else {
                (cfg.num_pes, cfg.num_pes)
            };
            p.concretize(&ctx, a, c)
        })
        .collect()
}

/// Deterministic sample of up to `n` candidates from the full enumerated
/// pattern space, concretised with the balanced tile policy of
/// [`crate::dse::concretize_pattern`]. `offset` rotates the sample (stride
/// sampling keeps this reproducible without an RNG).
///
/// Guarantee: every returned dataflow comes from a *distinct* pattern — `n` is
/// capped at the space size, and the stride walk never revisits an index, so
/// the result has exactly `min(n, space)` entries (the historical behaviour
/// silently wrapped around and yielded duplicates when `n` exceeded the
/// space).
pub fn sampled_candidates(
    workload: &GnnWorkload,
    cfg: &AccelConfig,
    n: usize,
    offset: usize,
) -> Vec<GnnDataflow> {
    let space = PatternSpace::new();
    if space.is_empty() || n == 0 {
        return Vec::new();
    }
    let len = space.len();
    let n = n.min(len);
    let stride = (len / n).max(1);
    // With n capped the stride walk is collision-free: i·stride < n·⌊len/n⌋ ≤
    // len, so the offsets are distinct mod len. Debug builds keep the
    // distinctness guarantee loud instead of silently shrinking the result.
    debug_assert!(
        {
            let mut taken = vec![false; len];
            (0..n).all(|i| !std::mem::replace(&mut taken[(offset + i * stride) % len], true))
        },
        "stride sample revisited a pattern index (n={n}, stride={stride}, offset={offset})"
    );
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let idx = (offset + i * stride) % len;
        out.push(crate::dse::concretize_pattern(&space.get(idx), workload, cfg));
    }
    out
}

/// Evaluates all candidates in parallel (crossbeam scoped threads, shared with
/// the exhaustive engine of [`crate::dse`]) and returns the best under
/// `objective`. Candidates that fail validation are skipped and counted in
/// [`SearchResult::skipped`]; [`SearchResult::evaluated`] counts the successful
/// `evaluate` calls, so `evaluated + skipped == candidates.len()`.
///
/// The winner's report carries no per-chunk pipeline timeline (`chunk_marks`);
/// re-run [`evaluate`] on the winning dataflow if you need it.
pub fn best_of(
    candidates: &[GnnDataflow],
    workload: &GnnWorkload,
    cfg: &AccelConfig,
    objective: Objective,
    threads: usize,
) -> Option<SearchResult> {
    if candidates.is_empty() {
        return None;
    }
    let gen = |i: usize| candidates[i];
    let job = crate::dse::SearchJob {
        workload,
        cfg,
        objective,
        k: 1,
        threads,
        chunk: candidates.len().div_ceil(threads.max(1)),
    };
    let (merged, evaluated, skipped) = crate::dse::parallel_top_k(candidates.len(), &gen, &job);
    merged
        .into_iter()
        .min_by(|a, b| crate::dse::key_cmp((a.0, a.1), (b.0, b.1)))
        .map(|(score, _, dataflow, report)| SearchResult {
            dataflow,
            report,
            score,
            evaluated,
            skipped,
        })
}

/// The Table V presets *plus* their CA-order companions (including AWB-GCN's
/// dataflow) — the candidate set that covers both compute orders. CA shrinks
/// aggregation work from `E×F` to `E×G`, so for wide-feature workloads the CA
/// members routinely win.
pub fn extended_candidates(workload: &GnnWorkload, cfg: &AccelConfig) -> Vec<GnnDataflow> {
    let mut out = preset_candidates(workload, cfg);
    for p in omega_dataflow::presets::ca_variants() {
        let ctx = workload.tile_context(p.pattern.phase_order);
        let (a, c) = if p.pattern.inter == InterPhase::ParallelPipeline {
            (cfg.num_pes / 2, cfg.num_pes / 2)
        } else {
            (cfg.num_pes, cfg.num_pes)
        };
        out.push(p.concretize(&ctx, a, c));
    }
    out
}

/// One-call search: presets plus `extra_samples` sampled patterns.
pub fn search(
    workload: &GnnWorkload,
    cfg: &AccelConfig,
    objective: Objective,
    extra_samples: usize,
    threads: usize,
) -> Option<SearchResult> {
    let mut candidates = extended_candidates(workload, cfg);
    candidates.extend(sampled_candidates(workload, cfg, extra_samples, 0));
    best_of(&candidates, workload, cfg, objective, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_dataflow::Dim;
    use omega_graph::DatasetSpec;

    fn wl() -> GnnWorkload {
        GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 16)
    }

    #[test]
    fn preset_candidates_cover_table_v() {
        let cfg = AccelConfig::paper_default();
        let c = preset_candidates(&wl(), &cfg);
        assert_eq!(c.len(), 9);
    }

    #[test]
    fn sampled_candidates_are_deterministic_and_sized() {
        let cfg = AccelConfig::paper_default();
        let a = sampled_candidates(&wl(), &cfg, 20, 0);
        let b = sampled_candidates(&wl(), &cfg, 20, 0);
        assert_eq!(a.len(), 20);
        assert_eq!(a, b);
        let c = sampled_candidates(&wl(), &cfg, 20, 7);
        assert_ne!(a, c);
    }

    #[test]
    fn sampled_candidates_cap_at_the_space_without_duplicates() {
        use omega_dataflow::enumerate::design_space_size;
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        // Historically n > space wrapped the stride walk and yielded duplicate
        // patterns; now the result caps at the space size, all-distinct.
        let over = sampled_candidates(&workload, &cfg, design_space_size() + 500, 3);
        assert_eq!(over.len(), design_space_size());
        let distinct: std::collections::HashSet<String> =
            over.iter().map(|df| df.to_string()).collect();
        assert_eq!(distinct.len(), over.len());
    }

    #[test]
    fn best_of_minimises_objective() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let candidates = preset_candidates(&workload, &cfg);
        let best = best_of(&candidates, &workload, &cfg, Objective::Runtime, 4).unwrap();
        assert_eq!(best.evaluated, 9);
        assert_eq!(best.skipped, 0);
        // The winner is no slower than every candidate.
        for df in &candidates {
            if let Ok(r) = evaluate(&workload, df, &cfg) {
                assert!(best.report.total_cycles <= r.total_cycles);
            }
        }
    }

    #[test]
    fn best_of_counts_only_actual_evaluations() {
        use omega_dataflow::{IntraTiling, LoopOrder, PhaseOrder};
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let mut candidates = preset_candidates(&workload, &cfg);
        // A PP dataflow whose loop orders cannot pipeline fails validation and
        // must be counted as skipped, not evaluated.
        let agg_order = LoopOrder::new(Phase::Aggregation, [Dim::N, Dim::V, Dim::F]).unwrap();
        let cmb_order = LoopOrder::new(Phase::Combination, [Dim::V, Dim::G, Dim::F]).unwrap();
        candidates.push(GnnDataflow {
            inter: InterPhase::ParallelPipeline,
            phase_order: PhaseOrder::AC,
            agg: IntraTiling::new(Phase::Aggregation, agg_order, [1, 2, 2]),
            cmb: IntraTiling::new(Phase::Combination, cmb_order, [2, 2, 1]),
        });
        let best = best_of(&candidates, &workload, &cfg, Objective::Runtime, 3).unwrap();
        assert_eq!(best.evaluated, 9);
        assert_eq!(best.skipped, 1);
        assert_eq!(best.evaluated + best.skipped, candidates.len());
    }

    #[test]
    fn objectives_disagree_in_general() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let candidates = preset_candidates(&workload, &cfg);
        let rt = best_of(&candidates, &workload, &cfg, Objective::Runtime, 2).unwrap();
        let en = best_of(&candidates, &workload, &cfg, Objective::Energy, 2).unwrap();
        let edp = best_of(&candidates, &workload, &cfg, Objective::Edp, 2).unwrap();
        // EDP winner can never beat the runtime winner on runtime or the energy
        // winner on energy.
        assert!(edp.report.total_cycles >= rt.report.total_cycles);
        assert!(edp.report.energy.total_pj() >= en.report.energy.total_pj() - 1e-9);
    }

    #[test]
    fn search_combines_sources() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let result = search(&workload, &cfg, Objective::Runtime, 12, 4).unwrap();
        // presets + CA variants + samples, every one either evaluated or skipped.
        assert_eq!(result.evaluated + result.skipped, 9 + 3 + 12);
        assert_eq!(result.skipped, 0); // all concretised candidates validate
        assert!(result.score > 0.0);
    }

    #[test]
    fn extended_candidates_cover_both_compute_orders() {
        use omega_dataflow::PhaseOrder;
        let cfg = AccelConfig::paper_default();
        let c = extended_candidates(&wl(), &cfg);
        assert_eq!(c.len(), 12);
        assert!(c.iter().any(|df| df.phase_order == PhaseOrder::CA));
        // On a wide-feature workload the CA members win the runtime search.
        let wide = GnnWorkload::gcn_layer(&DatasetSpec::collab().generate(2), 16);
        let wide_candidates = extended_candidates(&wide, &cfg);
        let best = best_of(&wide_candidates, &wide, &cfg, Objective::Runtime, 4).unwrap();
        assert_eq!(best.dataflow.phase_order, PhaseOrder::CA, "{}", best.dataflow);
    }

    #[test]
    fn empty_candidates_yield_none() {
        let cfg = AccelConfig::paper_default();
        assert!(best_of(&[], &wl(), &cfg, Objective::Runtime, 2).is_none());
    }
}

/// Local search over tile sizes around a concrete dataflow ("the tile sizes
/// (T_Dim) are also parameters which can put the actual number of possible
/// mappings in the trillions", Section III-C).
///
/// Hill climbing: each step tries doubling or halving one tile of one phase
/// (keeping the pattern's spatial/temporal constraints and the PE budgets),
/// keeps the best improving neighbour, and stops at a local optimum or after
/// `max_steps`. Returns the refined result (the input dataflow if no neighbour
/// improves).
pub fn refine_tiles(
    dataflow: &GnnDataflow,
    workload: &GnnWorkload,
    cfg: &AccelConfig,
    objective: Objective,
    max_steps: usize,
) -> Option<SearchResult> {
    let mut current = *dataflow;
    let mut report = evaluate(workload, &current, cfg).ok()?;
    let mut score = objective.score(&report);
    let mut evaluated = 1;
    let mut skipped = 0;

    let budgets = |df: &GnnDataflow| -> (usize, usize) {
        if df.inter == InterPhase::ParallelPipeline {
            (cfg.num_pes / 2, cfg.num_pes / 2)
        } else {
            (cfg.num_pes, cfg.num_pes)
        }
    };

    for _ in 0..max_steps {
        let (agg_budget, cmb_budget) = budgets(&current);
        let mut best_neighbour: Option<(GnnDataflow, CostReport, f64)> = None;
        for (phase_sel, budget) in [(Phase::Aggregation, agg_budget), (Phase::Combination, cmb_budget)] {
            let tiling = if phase_sel == Phase::Aggregation { current.agg } else { current.cmb };
            for pos in 0..3 {
                for grow in [true, false] {
                    let Some(new_tiling) = scaled_tile(&tiling, pos, grow) else { continue };
                    if new_tiling.pe_footprint() > budget {
                        continue;
                    }
                    let candidate = if phase_sel == Phase::Aggregation {
                        GnnDataflow { agg: new_tiling, ..current }
                    } else {
                        GnnDataflow { cmb: new_tiling, ..current }
                    };
                    let Ok(r) = evaluate(workload, &candidate, cfg) else {
                        skipped += 1;
                        continue;
                    };
                    evaluated += 1;
                    let s = objective.score(&r);
                    if s < score
                        && best_neighbour.as_ref().is_none_or(|(_, _, bs)| s < *bs)
                    {
                        best_neighbour = Some((candidate, r, s));
                    }
                }
            }
        }
        match best_neighbour {
            Some((df, r, s)) => {
                current = df;
                report = r;
                score = s;
            }
            None => break, // local optimum
        }
    }
    Some(SearchResult { dataflow: current, report, score, evaluated, skipped })
}

/// Doubles or halves the tile at `pos`, returning `None` when out of range.
fn scaled_tile(tiling: &IntraTiling, pos: usize, grow: bool) -> Option<IntraTiling> {
    let mut tiles = *tiling.tiles();
    if grow {
        tiles[pos] = tiles[pos].checked_mul(2)?;
    } else {
        if tiles[pos] <= 1 {
            return None;
        }
        tiles[pos] /= 2;
    }
    Some(IntraTiling::new(tiling.phase(), tiling.order(), tiles))
}

/// The runtime/energy Pareto frontier of a candidate set: every dataflow not
/// dominated (strictly worse on both axes) by another. Sorted by runtime.
pub fn pareto_frontier(
    candidates: &[GnnDataflow],
    workload: &GnnWorkload,
    cfg: &AccelConfig,
) -> Vec<SearchResult> {
    let mut evaluated: Vec<(GnnDataflow, CostReport)> = candidates
        .iter()
        .filter_map(|df| evaluate(workload, df, cfg).ok().map(|r| (*df, r)))
        .collect();
    evaluated.sort_by_key(|(_, r)| r.total_cycles);
    let mut frontier: Vec<SearchResult> = Vec::new();
    let mut best_energy = f64::INFINITY;
    let n = evaluated.len();
    let skipped = candidates.len() - n;
    for (df, r) in evaluated {
        let e = r.energy.total_pj();
        if e < best_energy {
            best_energy = e;
            frontier.push(SearchResult {
                dataflow: df,
                score: r.total_cycles as f64,
                report: r,
                evaluated: n,
                skipped,
            });
        }
    }
    frontier
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use omega_dataflow::Dim;
    use omega_graph::DatasetSpec;

    fn wl() -> GnnWorkload {
        GnnWorkload::gcn_layer(&DatasetSpec::proteins().generate(2), 16)
    }

    #[test]
    fn refine_tiles_never_regresses() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        for df in preset_candidates(&workload, &cfg) {
            let base = evaluate(&workload, &df, &cfg).unwrap();
            let refined = refine_tiles(&df, &workload, &cfg, Objective::Runtime, 8).unwrap();
            assert!(
                refined.report.total_cycles <= base.total_cycles,
                "{df}: {} -> {}",
                base.total_cycles,
                refined.report.total_cycles
            );
            assert!(refined.evaluated >= 1);
        }
    }

    #[test]
    fn refine_tiles_improves_a_bad_start() {
        // Start from a deliberately under-parallelised Seq dataflow.
        use omega_dataflow::{LoopOrder};
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let agg = IntraTiling::new(
            Phase::Aggregation,
            LoopOrder::new(Phase::Aggregation, [Dim::V, Dim::F, Dim::N]).unwrap(),
            [2, 2, 1],
        );
        let cmb = IntraTiling::new(
            Phase::Combination,
            LoopOrder::new(Phase::Combination, [Dim::V, Dim::G, Dim::F]).unwrap(),
            [2, 2, 1],
        );
        let df = GnnDataflow {
            inter: InterPhase::Sequential,
            phase_order: omega_dataflow::PhaseOrder::AC,
            agg,
            cmb,
        };
        let base = evaluate(&workload, &df, &cfg).unwrap();
        let refined = refine_tiles(&df, &workload, &cfg, Objective::Runtime, 32).unwrap();
        assert!(
            (refined.report.total_cycles as f64) < 0.2 * base.total_cycles as f64,
            "{} -> {}",
            base.total_cycles,
            refined.report.total_cycles
        );
        // The refined tiling still fits the machine.
        assert!(refined.dataflow.agg.pe_footprint() <= cfg.num_pes);
        assert!(refined.dataflow.cmb.pe_footprint() <= cfg.num_pes);
    }

    #[test]
    fn pareto_frontier_is_nondominated_and_sorted() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let candidates = preset_candidates(&workload, &cfg);
        let frontier = pareto_frontier(&candidates, &workload, &cfg);
        assert!(!frontier.is_empty());
        assert!(frontier.len() <= candidates.len());
        // Sorted by runtime, strictly improving in energy.
        for w in frontier.windows(2) {
            assert!(w[0].report.total_cycles <= w[1].report.total_cycles);
            assert!(w[0].report.energy.total_pj() > w[1].report.energy.total_pj());
        }
        // No frontier point is dominated by any candidate.
        for f in &frontier {
            for df in &candidates {
                let r = evaluate(&workload, df, &cfg).unwrap();
                let dominates = r.total_cycles < f.report.total_cycles
                    && r.energy.total_pj() < f.report.energy.total_pj();
                assert!(!dominates, "{df} dominates {}", f.dataflow);
            }
        }
    }
}
