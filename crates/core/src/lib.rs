//! **OMEGA** — Observing Mapping Efficiency over GNN Accelerators.
//!
//! The paper's core artifact (Section V-A1, Fig. 10): per-phase cycle-level
//! simulations (here `omega-accel`'s engines) feed an **inter-phase cost model**
//! that produces runtime, buffering, and energy for a complete two-phase GNN
//! dataflow described by the taxonomy of `omega-dataflow`:
//!
//! * `Seq` — phase latencies add; the whole `V×F` intermediate stages through
//!   the memory hierarchy (Table III row 1).
//! * `SP-Generic` — latencies still add, but the intermediate occupies only
//!   `Pel` elements of the global buffer at a time (row 2).
//! * `SP-Optimized` — the intermediate never leaves the PE register files:
//!   zero intermediate buffering and the consumer's reload (`t_load`) is gone
//!   (row 3).
//! * `PP` — the array splits into two concurrent partitions linked by a
//!   `2×Pel` ping-pong buffer; runtime follows the pipeline recurrence
//!   `t_p(c₀) + Σᵢ max(t_p(cᵢ), t_c(cᵢ₋₁)) + t_c(c_K)` over `Pel`-sized chunks,
//!   with NoC bandwidth split between the partitions (rows 4-6).
//!
//! Entry point: [`evaluate`] (a [`GnnWorkload`] × [`GnnDataflow`] ×
//! [`AccelConfig`] → [`CostReport`]). [`mapper`] searches candidate sets using
//! `evaluate` as its cost model (the "future work" optimizer of Section VI),
//! [`dse`] exhaustively explores the full 6,656-pattern space in parallel
//! (streamed work queue, top-K reduction, workload-keyed cache), [`models`]
//! stacks layers into whole GNNs and lowers them onto multiphase chains
//! ([`models::to_chain`]), [`dse::model`] jointly searches per-layer dataflows
//! × inter-layer pipelining × PE partitions for those chains, and
//! [`multiphase`] generalises the composition to non-GNN multiphase kernels
//! (DLRM-style chains) with sequential, idealised-pipelined, and partitioned
//! (PP) links.
//!
//! ```
//! use omega_core::{evaluate, AccelConfig, GnnWorkload};
//! use omega_dataflow::presets::Preset;
//!
//! let dataset = omega_graph::DatasetSpec::mutag().generate(1);
//! let wl = GnnWorkload::gcn_layer(&dataset, 16);
//! let hw = AccelConfig::paper_default();
//! let preset = Preset::by_name("SP2").unwrap();
//! let df = preset.concretize(&wl.tile_context(preset.pattern.phase_order), 512, 512);
//! let report = evaluate(&wl, &df, &hw).unwrap();
//! assert_eq!(report.total_cycles, report.agg.cycles + report.cmb.cycles); // Table III, SP
//! assert_eq!(report.intermediate_buffer_elems, 0); // SP-Optimized
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
pub mod dse;
mod evaluate;
pub mod mapper;
pub mod model_check;
pub mod models;
pub mod multiphase;
mod pipeline;
mod workload;

pub use cost::{CostReport, EnergyBreakdown, IntermediateCost};
pub use evaluate::{evaluate, evaluate_many, EvalError, PhaseSimCache, PreparedEval};
pub use pipeline::{pipeline_runtime, resample_durations};
pub use workload::{AttentionSpec, GnnWorkload, PhaseKind, DEFAULT_HIDDEN};

pub use omega_accel::AccelConfig;
pub use omega_dataflow::GnnDataflow;
