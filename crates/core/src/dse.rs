//! Exhaustive parallel design-space exploration (DSE) over the paper's
//! 6,656-choice dataflow space (Section III-C).
//!
//! The mapper of [`crate::mapper`] answers "which of *these* candidates is
//! best?"; this module answers the question the paper says mappers and DSE
//! tools actually need (Section I): **what is the true optimum of the full
//! enumerated space for this workload?** It does so with:
//!
//! * a streaming, chunked work queue over [`PatternSpace`] — workers claim
//!   index ranges from an atomic cursor, materialise each pattern on demand,
//!   concretise it with the balanced tile policy, and evaluate it; the space is
//!   never collected into a `Vec`;
//! * per-worker top-K reduction merged at join, with deterministic
//!   (thread-count-independent) tie-breaking by pattern index;
//! * optional seeding with the Table V presets and their CA companions
//!   (their hand-tuned tile policies are not always reachable by the balanced
//!   concretisation, so seeding guarantees the reported optimum is never worse
//!   than any preset);
//! * an optional second refinement stage that hill-climbs tile sizes around
//!   each surviving winner ([`crate::mapper::refine_tiles`]);
//! * a workload-keyed [`DseCache`] so repeated sweeps (e.g. the bench harness
//!   evaluating 12 knob points against the exhaustive optimum) never re-search
//!   the same workload.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crossbeam::thread;
use serde::Serialize;

use omega_accel::AccelConfig;
use omega_dataflow::enumerate::PatternSpace;
use omega_dataflow::tiles::{choose_tiling, Cap, PhasePolicy};
use omega_dataflow::{Dim, GnnDataflow, GnnDataflowPattern, InterPhase, IntraPattern, MappingSpec};

use crate::mapper::{refine_tiles, Objective};
use crate::{evaluate, CostReport, GnnWorkload};

pub mod model;

/// Tuning knobs of an exhaustive exploration.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DseOptions {
    /// What to minimise.
    pub objective: Objective,
    /// Worker threads (clamped to ≥ 1).
    pub threads: usize,
    /// How many ranked winners to keep.
    pub top_k: usize,
    /// Hill-climbing steps per winner in the refinement stage (0 disables it).
    pub refine_steps: usize,
    /// Patterns per work-queue claim.
    pub chunk: usize,
    /// Also evaluate the Table V presets + CA companions as seeds, so the
    /// reported optimum is never worse than any preset's hand-tuned tiling.
    pub seed_presets: bool,
}

impl Default for DseOptions {
    fn default() -> Self {
        DseOptions {
            objective: Objective::Runtime,
            threads: 4,
            top_k: 10,
            refine_steps: 0,
            chunk: 64,
            seed_presets: true,
        }
    }
}

impl DseOptions {
    /// Default options for `objective`.
    pub fn new(objective: Objective) -> Self {
        DseOptions { objective, ..Default::default() }
    }
}

/// One ranked exploration winner.
#[derive(Debug, Clone, Serialize)]
pub struct RankedDataflow {
    /// The concrete dataflow.
    pub dataflow: GnnDataflow,
    /// Its cost report.
    pub report: CostReport,
    /// Objective value (lower is better).
    pub score: f64,
    /// Index in the enumeration order, when the entry came from the pattern
    /// space (`None` for preset seeds and refined dataflows).
    pub pattern_index: Option<usize>,
}

/// The result of one exhaustive exploration.
#[derive(Debug, Clone, Serialize)]
pub struct ExploreOutcome {
    /// Winners, best first, deduplicated by concrete dataflow (≤ `top_k`).
    pub ranked: Vec<RankedDataflow>,
    /// Size of the enumerated space (the paper's 6,656).
    pub space: usize,
    /// Successful cost-model evaluations (space + seeds + refinement probes).
    pub evaluated: usize,
    /// Candidates rejected by dataflow validation.
    pub skipped: usize,
    /// Preset seeds evaluated.
    pub seeded: usize,
    /// Evaluations spent by the refinement stage.
    pub refine_evals: usize,
    /// Wall-clock of the exploration in milliseconds.
    pub elapsed_ms: f64,
    /// Worker threads used.
    pub threads: usize,
}

impl ExploreOutcome {
    /// The optimum, if any candidate evaluated successfully.
    pub fn best(&self) -> Option<&RankedDataflow> {
        self.ranked.first()
    }
}

/// The balanced concretisation policy used throughout the explorers:
/// round-robin growth over the dims the pattern allows to be spatial, with the
/// neighbour tile capped at the mean degree.
pub(crate) fn balanced_policy(p: &IntraPattern) -> PhasePolicy {
    let dims: Vec<Dim> = p
        .order()
        .dims()
        .iter()
        .enumerate()
        .filter(|&(i, _)| p.maps()[i] != MappingSpec::Temporal)
        .map(|(_, &d)| d)
        .collect();
    PhasePolicy::round_robin(&dims).with_cap(Dim::N, Cap::MeanDegreePow2)
}

/// Concretises an enumerated pattern for `workload`: balanced round-robin
/// growth over the dims the pattern allows to be spatial, the neighbour tile
/// capped at the mean degree, and a 50-50 PE split for PP patterns.
pub fn concretize_pattern(
    pattern: &GnnDataflowPattern,
    workload: &GnnWorkload,
    cfg: &AccelConfig,
) -> GnnDataflow {
    let ctx = workload.tile_context(pattern.phase_order);
    let (agg_pes, cmb_pes) = if pattern.inter == InterPhase::ParallelPipeline {
        (cfg.num_pes / 2, cfg.num_pes / 2)
    } else {
        (cfg.num_pes, cfg.num_pes)
    };
    GnnDataflow {
        inter: pattern.inter,
        phase_order: pattern.phase_order,
        agg: choose_tiling(&pattern.agg, &ctx, agg_pes, &balanced_policy(&pattern.agg)),
        cmb: choose_tiling(&pattern.cmb, &ctx, cmb_pes, &balanced_policy(&pattern.cmb)),
    }
}

/// A candidate with its evaluation, as tracked inside the search (tie-broken by
/// `index` so results are independent of thread interleaving).
#[derive(Debug, Clone)]
struct Entry<C, R> {
    score: f64,
    index: usize,
    candidate: C,
    report: R,
}

/// Bounded best-K accumulator, kept sorted ascending by `(score, index)`.
#[derive(Debug)]
struct TopK<C, R> {
    k: usize,
    entries: Vec<Entry<C, R>>,
}

impl<C, R> TopK<C, R> {
    fn new(k: usize) -> Self {
        TopK { k: k.max(1), entries: Vec::with_capacity(k.max(1) + 1) }
    }

    fn offer(&mut self, e: Entry<C, R>) {
        let key = (e.score, e.index);
        if self.entries.len() == self.k {
            let worst = self.entries.last().expect("non-empty at capacity");
            if (worst.score, worst.index) <= key {
                return;
            }
        }
        let pos = self
            .entries
            .partition_point(|x| (x.score, x.index) < key);
        self.entries.insert(pos, e);
        self.entries.truncate(self.k);
    }
}

/// A scored candidate: `(score, tie-break index, dataflow, report)`.
pub(crate) type Scored = (f64, usize, GnnDataflow, CostReport);

/// A generic scored candidate: `(score, tie-break index, candidate, report)`.
pub(crate) type ScoredEntry<C, R> = (f64, usize, C, R);

/// Shape of any streaming parallel candidate search.
pub(crate) struct ParallelJob {
    /// Winners to keep per worker (and overall).
    pub k: usize,
    pub threads: usize,
    /// Candidates per work-queue claim.
    pub chunk: usize,
}

/// Evaluates `count` candidates produced on demand by `gen` across scoped
/// workers pulling chunked ranges from an atomic cursor; `score` turns a
/// candidate into `(objective value, report)` or `None` when the candidate is
/// invalid. Returns the merged (unsorted) per-worker top-K lists plus
/// `(evaluated, skipped)` counts.
///
/// Generic over the candidate type: [`explore`] and [`crate::mapper::best_of`]
/// search [`GnnDataflow`]s, [`model::explore_model`] searches whole-model
/// mappings — all through this one deterministic (thread-count-invariant)
/// primitive.
pub(crate) fn parallel_search<C: Send, R: Send>(
    count: usize,
    gen: &(dyn Fn(usize) -> C + Sync),
    score: &(dyn Fn(&C) -> Option<(f64, R)> + Sync),
    job: &ParallelJob,
) -> (Vec<ScoredEntry<C, R>>, usize, usize) {
    if count == 0 {
        return (Vec::new(), 0, 0);
    }
    let threads = job.threads.max(1).min(count);
    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    let run_worker = || -> (TopK<C, R>, usize, usize) {
        let chunk = job.chunk.max(1);
        let mut top = TopK::new(job.k);
        let mut evaluated = 0usize;
        let mut skipped = 0usize;
        loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= count {
                break;
            }
            for index in start..(start + chunk).min(count) {
                let candidate = gen(index);
                match score(&candidate) {
                    Some((score, report)) => {
                        evaluated += 1;
                        top.offer(Entry { score, index, candidate, report });
                    }
                    None => skipped += 1,
                }
            }
        }
        (top, evaluated, skipped)
    };
    let results: Vec<(TopK<C, R>, usize, usize)> = thread::scope(|s| {
        let handles: Vec<_> = (0..threads).map(|_| s.spawn(|_| run_worker())).collect();
        handles.into_iter().map(|h| h.join().expect("dse worker panicked")).collect()
    })
    .expect("dse scope");

    let mut merged = Vec::new();
    let mut evaluated = 0;
    let mut skipped = 0;
    for (top, e, s) in results {
        evaluated += e;
        skipped += s;
        merged.extend(top.entries.into_iter().map(|e| (e.score, e.index, e.candidate, e.report)));
    }
    (merged, evaluated, skipped)
}

/// Shared parameters of a parallel *dataflow* candidate search.
pub(crate) struct SearchJob<'a> {
    pub workload: &'a GnnWorkload,
    pub cfg: &'a AccelConfig,
    pub objective: Objective,
    /// Winners to keep per worker (and overall).
    pub k: usize,
    pub threads: usize,
    /// Candidates per work-queue claim.
    pub chunk: usize,
}

/// [`parallel_search`] specialised to dataflow candidates scored by
/// [`evaluate`] — the primitive shared by [`explore`] (over the full pattern
/// space) and [`crate::mapper::best_of`] (over an explicit candidate slice).
pub(crate) fn parallel_top_k(
    count: usize,
    gen: &(dyn Fn(usize) -> GnnDataflow + Sync),
    job: &SearchJob<'_>,
) -> (Vec<Scored>, usize, usize) {
    let pjob = ParallelJob { k: job.k, threads: job.threads, chunk: job.chunk };
    let score = |dataflow: &GnnDataflow| -> Option<(f64, CostReport)> {
        let mut report = evaluate(job.workload, dataflow, job.cfg).ok()?;
        // Ranked winners don't need the per-chunk pipeline timeline, and a
        // poorly-tiled PP candidate's marks run to millions of entries — drop
        // them before retention so per-worker top-K memory stays bounded.
        // (Re-run `evaluate` on a winner to recover its timeline.)
        report.agg.chunk_marks = Vec::new();
        report.cmb.chunk_marks = Vec::new();
        Some((job.objective.score(&report), report))
    };
    parallel_search(count, gen, &score, &pjob)
}

/// Exhaustively searches the full 6,656-pattern space for `workload` on `cfg`.
///
/// Deterministic: the ranked result is independent of `threads` and `chunk`
/// (ties broken by enumeration index).
pub fn explore(workload: &GnnWorkload, cfg: &AccelConfig, opts: &DseOptions) -> ExploreOutcome {
    let t0 = Instant::now();
    let space = PatternSpace::new();
    let total = space.len();
    let threads = opts.threads.max(1);
    let space_ref = &space;
    let gen = move |i: usize| concretize_pattern(&space_ref.get(i), workload, cfg);
    let job = SearchJob {
        workload,
        cfg,
        objective: opts.objective,
        k: opts.top_k,
        threads,
        chunk: opts.chunk,
    };
    let (mut merged, mut evaluated, skipped) = parallel_top_k(total, &gen, &job);

    // Seed with the presets' hand-tuned concretisations (indices past the space
    // keep tie-breaking deterministic and mark them as non-enumerated).
    let mut seeded = 0;
    if opts.seed_presets {
        for (j, df) in crate::mapper::extended_candidates(workload, cfg).into_iter().enumerate() {
            if let Ok(report) = evaluate(workload, &df, cfg) {
                evaluated += 1;
                seeded += 1;
                let score = opts.objective.score(&report);
                merged.push((score, total + j, df, report));
            }
        }
    }

    let ranked = rank(merged, opts.top_k, total);

    // Refinement: hill-climb tile sizes around each surviving winner and
    // re-rank (refined entries can reshuffle or displace the unrefined ones).
    let mut refine_evals = 0;
    let ranked = if opts.refine_steps > 0 {
        let mut pool: Vec<(f64, usize, GnnDataflow, CostReport)> = ranked
            .iter()
            .map(|r| {
                (r.score, r.pattern_index.unwrap_or(usize::MAX / 2), r.dataflow, r.report.clone())
            })
            .collect();
        for r in &ranked {
            if let Some(refined) =
                refine_tiles(&r.dataflow, workload, cfg, opts.objective, opts.refine_steps)
            {
                refine_evals += refined.evaluated;
                pool.push((refined.score, usize::MAX, refined.dataflow, refined.report));
            }
        }
        evaluated += refine_evals;
        rank(pool, opts.top_k, total)
    } else {
        ranked
    };

    ExploreOutcome {
        ranked,
        space: total,
        evaluated,
        skipped,
        seeded,
        refine_evals,
        elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
        threads,
    }
}

/// Sorts by `(score, index)`, deduplicates identical concrete dataflows, and
/// keeps the best `k`.
fn rank(
    mut pool: Vec<(f64, usize, GnnDataflow, CostReport)>,
    k: usize,
    space: usize,
) -> Vec<RankedDataflow> {
    pool.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).expect("scores are finite"));
    let mut out: Vec<RankedDataflow> = Vec::with_capacity(k);
    for (score, index, dataflow, report) in pool {
        if out.len() == k {
            break;
        }
        if out.iter().any(|r| r.dataflow == dataflow) {
            continue;
        }
        out.push(RankedDataflow {
            dataflow,
            report,
            score,
            pattern_index: (index < space).then_some(index),
        });
    }
    out
}

/// A workload-keyed cache of exploration outcomes.
///
/// Keyed by everything the (deterministic) result depends on: the workload
/// fingerprint (dimensions and full degree sequence), the accelerator
/// configuration, and the result-affecting options (`objective`, `top_k`,
/// `refine_steps`, `seed_presets` — *not* `threads`/`chunk`). Repeated sweeps
/// over the same workloads hit the cache instead of re-searching.
#[derive(Debug, Default)]
pub struct DseCache {
    inner: Mutex<HashMap<u64, Arc<ExploreOutcome>>>,
    searches: AtomicUsize,
}

impl DseCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide shared cache (used by the bench sweeps).
    pub fn global() -> &'static DseCache {
        static GLOBAL: OnceLock<DseCache> = OnceLock::new();
        GLOBAL.get_or_init(DseCache::new)
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("dse cache poisoned").len()
    }

    /// `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Actual searches this cache has performed (cache misses) — the
    /// observable that distinguishes "served from cache" from "re-searched",
    /// since a re-search of a known workload would not change [`Self::len`].
    pub fn searches(&self) -> usize {
        self.searches.load(Ordering::Relaxed)
    }

    /// Like [`explore`], but returns the cached outcome when this
    /// (workload, config, options) was searched before.
    pub fn explore(
        &self,
        workload: &GnnWorkload,
        cfg: &AccelConfig,
        opts: &DseOptions,
    ) -> Arc<ExploreOutcome> {
        let key = fingerprint(workload, cfg, opts);
        if let Some(hit) = self.inner.lock().expect("dse cache poisoned").get(&key) {
            return Arc::clone(hit);
        }
        // Search outside the lock (explorations are long; a racing duplicate
        // search is deterministic, so last-write-wins is harmless).
        self.searches.fetch_add(1, Ordering::Relaxed);
        let outcome = Arc::new(explore(workload, cfg, opts));
        self.inner
            .lock()
            .expect("dse cache poisoned")
            .entry(key)
            .or_insert(outcome)
            .clone()
    }
}

/// FNV-1a fingerprint of everything a deterministic exploration depends on.
fn fingerprint(workload: &GnnWorkload, cfg: &AccelConfig, opts: &DseOptions) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    // The workload *name* is deliberately not hashed: it is cosmetic (layer
    // workloads are named "Cora[L0]" etc.), and the dimensions plus the full
    // degree sequence below already determine the search result — so a model
    // layer shaped like a plain dataset workload shares its cache entry.
    for x in [workload.v as u64, workload.f as u64, workload.g as u64, workload.nnz] {
        eat(&x.to_le_bytes());
    }
    for &d in &workload.degrees {
        eat(&(d as u64).to_le_bytes());
    }
    // The accelerator config and the result-affecting options, via their
    // serialised forms (threads/chunk do not affect the deterministic result,
    // so two searches differing only there share a key).
    eat(serde_json::to_string(cfg).unwrap_or_default().as_bytes());
    eat(format!("{:?}", opts.objective).as_bytes());
    for x in [opts.top_k as u64, opts.refine_steps as u64, opts.seed_presets as u64] {
        eat(&x.to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_graph::DatasetSpec;

    fn wl() -> GnnWorkload {
        GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 16)
    }

    fn quick_opts() -> DseOptions {
        DseOptions { threads: 2, top_k: 5, ..DseOptions::new(Objective::Runtime) }
    }

    #[test]
    fn explore_covers_the_whole_space() {
        let cfg = AccelConfig::paper_default();
        let out = explore(&wl(), &cfg, &quick_opts());
        assert_eq!(out.space, 6656);
        // Every pattern either evaluated or was rejected by validation; seeds
        // come on top.
        assert_eq!(out.evaluated - out.seeded + out.skipped, 6656);
        assert_eq!(out.seeded, 12); // 9 presets + 3 CA companions
        assert!(out.ranked.len() <= 5);
        assert!(!out.ranked.is_empty());
        // Ranked ascending, deduplicated.
        for w in out.ranked.windows(2) {
            assert!(w[0].score <= w[1].score);
            assert!(w[0].dataflow != w[1].dataflow);
        }
    }

    #[test]
    fn explore_is_thread_count_invariant() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let a = explore(&workload, &cfg, &DseOptions { threads: 1, ..quick_opts() });
        let b = explore(&workload, &cfg, &DseOptions { threads: 4, chunk: 17, ..quick_opts() });
        assert_eq!(a.evaluated, b.evaluated);
        assert_eq!(a.skipped, b.skipped);
        let key = |o: &ExploreOutcome| -> Vec<(String, u64, Option<usize>)> {
            o.ranked
                .iter()
                .map(|r| (r.dataflow.to_string(), r.report.total_cycles, r.pattern_index))
                .collect()
        };
        assert_eq!(key(&a), key(&b));
    }

    #[test]
    fn explore_winner_beats_every_preset() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let out = explore(&workload, &cfg, &quick_opts());
        let best = out.best().expect("winner");
        for df in crate::mapper::extended_candidates(&workload, &cfg) {
            let r = evaluate(&workload, &df, &cfg).expect("presets evaluate");
            assert!(best.score <= r.total_cycles as f64, "{df}");
        }
    }

    #[test]
    fn refinement_never_worsens_the_optimum() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let plain = explore(&workload, &cfg, &quick_opts());
        let refined =
            explore(&workload, &cfg, &DseOptions { refine_steps: 8, ..quick_opts() });
        assert!(refined.best().unwrap().score <= plain.best().unwrap().score);
        assert!(refined.refine_evals > 0);
        assert!(refined.evaluated > plain.evaluated);
    }

    #[test]
    fn cache_returns_shared_outcome() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let cache = DseCache::new();
        let a = cache.explore(&workload, &cfg, &quick_opts());
        let b = cache.explore(&workload, &cfg, &quick_opts());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        // Thread count does not key the cache…
        let c = cache.explore(&workload, &cfg, &DseOptions { threads: 7, ..quick_opts() });
        assert!(Arc::ptr_eq(&a, &c));
        // …but the objective does.
        let d = cache.explore(
            &workload,
            &cfg,
            &DseOptions { objective: Objective::Edp, threads: 2, top_k: 5, ..Default::default() },
        );
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn top_k_keeps_best_with_deterministic_ties() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let df = concretize_pattern(&PatternSpace::new().get(0), &workload, &cfg);
        let report = evaluate(&workload, &df, &cfg).unwrap();
        let mut top = TopK::new(2);
        for index in [5usize, 3, 9, 1] {
            top.offer(Entry { score: 1.0, index, candidate: df, report: report.clone() });
        }
        let idx: Vec<usize> = top.entries.iter().map(|e| e.index).collect();
        assert_eq!(idx, vec![1, 3]);
    }
}
